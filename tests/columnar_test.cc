// Columnar storage + vectorized scan tests. The heart of the suite is
// the bit-identity contract: every query must produce exactly the same
// rows through the row pipeline (SeqScan -> Filter -> Limit) and the
// vectorized path (ColumnarScan), including typed equality, per-row
// short-circuit and NULL-slot defaults.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "engine/physical_plan.h"
#include "kernels/cpu_features.h"
#include "kernels/predicate_simd.h"
#include "optimizer/scan_cost.h"
#include "relational/column_batch.h"
#include "relational/expression.h"
#include "relational/operator.h"
#include "relational/vectorized.h"
#include "resource/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/column_store.h"
#include "storage/disk_manager.h"
#include "storage/table_heap.h"

namespace relserve {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"score", ValueType::kFloat64},
                 {"name", ValueType::kString},
                 {"features", ValueType::kFloatVector}});
}

Row TestRow(int64_t i) {
  return Row({Value(i), Value(static_cast<double>(i % 7) * 0.5),
              Value(std::string("n") + std::to_string(i % 5)),
              Value(std::vector<float>{static_cast<float>(i),
                                       static_cast<float>(i) * 0.5f})});
}

// Both layouts over the same rows, plus the row-pipeline helpers the
// bit-identity tests compare against.
struct DualTable {
  DiskManager disk;
  BufferPool pool;
  TableHeap heap;
  ColumnarTable columnar;
  Schema schema = TestSchema();

  explicit DualTable(int64_t rows, int64_t fragment_rows = 8)
      : pool(&disk, 256), heap(&pool),
        columnar(&pool, TestSchema(), fragment_rows) {
    Fill(rows);
  }

  void Fill(int64_t rows) {
    for (int64_t i = 0; i < rows; ++i) {
      Row row = TestRow(i);
      std::string bytes;
      row.SerializeTo(&bytes);
      ASSERT_TRUE(heap.Append(bytes).ok());
      ASSERT_TRUE(columnar.AppendRow(row).ok());
    }
  }

  std::vector<Row> RowPath(ExprPtr predicate, int64_t limit = -1) {
    RowIteratorPtr plan = std::make_unique<SeqScan>(&heap, schema);
    if (predicate != nullptr) {
      plan = std::make_unique<Filter>(std::move(plan), predicate);
    }
    if (limit >= 0) {
      plan = std::make_unique<Limit>(std::move(plan), limit);
    }
    auto rows = Collect(plan.get());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? *rows : std::vector<Row>{};
  }

  std::vector<Row> ColumnarPath(ExprPtr predicate, int64_t limit = -1,
                                ThreadPool* tp = nullptr,
                                bool force_serial = false) {
    ColumnarScanOptions opts;
    opts.predicate = std::move(predicate);
    opts.pool = tp;
    opts.force_serial = force_serial;
    opts.limit = limit;
    auto out = ColumnarScan(columnar, opts);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? out->ToRows() : std::vector<Row>{};
  }
};

void ExpectSameRows(const std::vector<Row>& a,
                    const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

// --- ColumnChunk / ColumnBatch ---------------------------------------

TEST(ColumnChunkTest, RoundTripsAllTypes) {
  const Schema schema = TestSchema();
  ColumnBatch batch(schema);
  for (int64_t i = 0; i < 10; ++i) batch.AppendRow(TestRow(i));
  EXPECT_EQ(batch.num_rows, 10);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch.RowAt(i), TestRow(i)) << "row " << i;
  }
}

TEST(ColumnChunkTest, NullsUseLazyValidityBitmap) {
  ColumnChunk chunk(ValueType::kInt64);
  chunk.AppendValue(Value(int64_t{1}));
  EXPECT_FALSE(chunk.has_nulls());  // no bitmap until the first null
  chunk.AppendNull();
  chunk.AppendValue(Value(int64_t{3}));
  ASSERT_TRUE(chunk.has_nulls());
  EXPECT_TRUE(chunk.IsValid(0));
  EXPECT_TRUE(chunk.IsNull(1));
  EXPECT_TRUE(chunk.IsValid(2));
  // Null slots box the type default (the Value layer has no NULL).
  EXPECT_EQ(chunk.GetValue(1), Value(int64_t{0}));
  EXPECT_EQ(chunk.GetValue(2), Value(int64_t{3}));
}

TEST(ColumnBatchTest, FromRowsToRowsRoundTrip) {
  const Schema schema = TestSchema();
  std::vector<Row> rows;
  for (int64_t i = 0; i < 17; ++i) rows.push_back(TestRow(i));
  ColumnBatch batch = ColumnBatch::FromRows(schema, rows);
  ExpectSameRows(batch.ToRows(), rows);
}

// --- ColumnarTable ---------------------------------------------------

TEST(ColumnarTableTest, FragmentRoundTripThroughBufferPool) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  ColumnarTable table(&pool, TestSchema(), /*fragment_rows=*/4);
  for (int64_t i = 0; i < 11; ++i) {
    ASSERT_TRUE(table.AppendRow(TestRow(i)).ok());
  }
  EXPECT_EQ(table.num_rows(), 11);
  // 2 sealed fragments of 4 plus the open tail of 3.
  EXPECT_EQ(table.num_fragments(), 3);
  EXPECT_EQ(table.FragmentRowCount(0), 4);
  EXPECT_EQ(table.FragmentRowCount(2), 3);
  EXPECT_GT(table.sealed_bytes(), 0);

  int64_t i = 0;
  for (int64_t f = 0; f < table.num_fragments(); ++f) {
    auto batch = table.ReadFragment(f);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (int64_t r = 0; r < batch->num_rows; ++r, ++i) {
      EXPECT_EQ(batch->RowAt(r), TestRow(i));
    }
  }
  EXPECT_EQ(i, 11);
}

TEST(ColumnarTableTest, NullRowsSurviveSealAndDecode) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  ColumnarTable table(&pool, TestSchema(), /*fragment_rows=*/4);
  ASSERT_TRUE(table.AppendRow(TestRow(0)).ok());
  ASSERT_TRUE(table.AppendNullRow().ok());
  ASSERT_TRUE(table.AppendRow(TestRow(2)).ok());
  ASSERT_TRUE(table.SealActiveFragment().ok());

  auto batch = table.ReadFragment(0);
  ASSERT_TRUE(batch.ok());
  for (const ColumnChunk& chunk : batch->columns) {
    EXPECT_TRUE(chunk.IsValid(0));
    EXPECT_TRUE(chunk.IsNull(1));
    EXPECT_TRUE(chunk.IsValid(2));
  }
  EXPECT_EQ(batch->RowAt(0), TestRow(0));
  EXPECT_EQ(batch->RowAt(2), TestRow(2));
  // The null row decodes as type defaults.
  EXPECT_EQ(batch->RowAt(1),
            Row({Value(int64_t{0}), Value(0.0), Value(std::string()),
                 Value(std::vector<float>{})}));
}

TEST(ColumnarTableTest, EmptySealedFragmentsScanClean) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  ColumnarTable table(&pool, TestSchema(), /*fragment_rows=*/4);
  ASSERT_TRUE(table.SealActiveFragment(/*allow_empty=*/true).ok());
  ASSERT_TRUE(table.AppendRow(TestRow(0)).ok());
  ASSERT_TRUE(table.SealActiveFragment().ok());
  ASSERT_TRUE(table.SealActiveFragment(/*allow_empty=*/true).ok());
  EXPECT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.num_fragments(), 3);

  ColumnarScanOptions opts;
  auto out = ColumnarScan(table, opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows_emitted, 1);
  ExpectSameRows(out->ToRows(), {TestRow(0)});
}

TEST(ColumnarTableTest, BatchSizeEdges) {
  // Row counts straddling the fragment boundary: 1, N-1, N, N+1.
  constexpr int64_t kN = 4;
  for (int64_t rows : {int64_t{1}, kN - 1, kN, kN + 1}) {
    DualTable t(rows, kN);
    ExpectSameRows(t.ColumnarPath(nullptr), t.RowPath(nullptr));
  }
}

TEST(ColumnarTableTest, AppendBatchSpansFragments) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  ColumnarTable table(&pool, TestSchema(), /*fragment_rows=*/4);
  const Schema schema = TestSchema();
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back(TestRow(i));
  ASSERT_TRUE(
      table.AppendBatch(ColumnBatch::FromRows(schema, rows)).ok());
  EXPECT_EQ(table.num_rows(), 10);
  ColumnarScanOptions opts;
  auto out = ColumnarScan(table, opts);
  ASSERT_TRUE(out.ok());
  ExpectSameRows(out->ToRows(), rows);
}

// --- Bit-identity: row pipeline vs vectorized path -------------------

TEST(BitIdentityTest, UnfilteredScan) {
  DualTable t(37);
  ExpectSameRows(t.ColumnarPath(nullptr), t.RowPath(nullptr));
}

TEST(BitIdentityTest, TypedEquality) {
  DualTable t(37);
  // Int64 column = Int64 literal: matches.
  ExprPtr eq_int = Expression::Binary(
      ExprKind::kEq, Expression::Column(0),
      Expression::Literal(Value(int64_t{5})));
  auto rows = t.RowPath(eq_int);
  EXPECT_EQ(rows.size(), 1u);
  ExpectSameRows(t.ColumnarPath(eq_int), rows);

  // Int64 column = Float64 literal: typed equality, never equal —
  // through both paths.
  ExprPtr eq_mixed = Expression::Binary(
      ExprKind::kEq, Expression::Column(0),
      Expression::Literal(Value(5.0)));
  EXPECT_TRUE(t.RowPath(eq_mixed).empty());
  EXPECT_TRUE(t.ColumnarPath(eq_mixed).empty());

  // String and float-vector equality.
  ExprPtr eq_str = Expression::Binary(
      ExprKind::kEq, Expression::Column(2),
      Expression::Literal(Value(std::string("n3"))));
  ExpectSameRows(t.ColumnarPath(eq_str), t.RowPath(eq_str));
  ExprPtr eq_vec = Expression::Binary(
      ExprKind::kEq, Expression::Column(3),
      Expression::Literal(Value(std::vector<float>{6.0f, 3.0f})));
  auto vec_rows = t.RowPath(eq_vec);
  EXPECT_EQ(vec_rows.size(), 1u);
  ExpectSameRows(t.ColumnarPath(eq_vec), vec_rows);
}

TEST(BitIdentityTest, ComparisonsArithmeticAndBand) {
  DualTable t(53);
  std::vector<ExprPtr> predicates;
  // score < 2.0
  predicates.push_back(Expression::Binary(
      ExprKind::kLt, Expression::Column(1),
      Expression::Literal(Value(2.0))));
  // id <= 10 (int widens to double exactly like the row evaluator)
  predicates.push_back(Expression::Binary(
      ExprKind::kLe, Expression::Column(0),
      Expression::Literal(Value(int64_t{10}))));
  // id + score < 20.5 (same double arithmetic order per row)
  predicates.push_back(Expression::Binary(
      ExprKind::kLt,
      Expression::Binary(ExprKind::kAdd, Expression::Column(0),
                         Expression::Column(1)),
      Expression::Literal(Value(20.5))));
  // |score - 1.0| <= 0.5 (the band predicate)
  predicates.push_back(Expression::AbsDiffLe(
      Expression::Column(1), Expression::Literal(Value(1.0)), 0.5));
  // Bare numeric truthiness: id * score (0 rows drop).
  predicates.push_back(Expression::Binary(
      ExprKind::kMul, Expression::Column(0), Expression::Column(1)));
  for (size_t i = 0; i < predicates.size(); ++i) {
    auto expect = t.RowPath(predicates[i]);
    EXPECT_FALSE(expect.empty()) << "predicate " << i;
    EXPECT_LT(expect.size(), 53u) << "predicate " << i;
    ExpectSameRows(t.ColumnarPath(predicates[i]), expect);
  }
}

TEST(BitIdentityTest, BooleanConnectives) {
  DualTable t(53);
  ExprPtr lt = Expression::Binary(ExprKind::kLt, Expression::Column(0),
                                  Expression::Literal(Value(int64_t{30})));
  ExprPtr eq = Expression::Binary(
      ExprKind::kEq, Expression::Column(2),
      Expression::Literal(Value(std::string("n2"))));
  for (ExprKind kind : {ExprKind::kAnd, ExprKind::kOr}) {
    ExprPtr pred = Expression::Binary(kind, lt, eq);
    ExpectSameRows(t.ColumnarPath(pred), t.RowPath(pred));
  }
  ExprPtr negated = Expression::Not(
      Expression::Binary(ExprKind::kOr, lt, eq));
  ExpectSameRows(t.ColumnarPath(negated), t.RowPath(negated));
}

TEST(BitIdentityTest, AndShortCircuitSuppressesRightErrors) {
  DualTable t(20);
  // (id = -1) AND (bad column): the left side never passes, so the
  // right side's error must stay suppressed — both paths.
  ExprPtr guarded = Expression::Binary(
      ExprKind::kAnd,
      Expression::Binary(ExprKind::kEq, Expression::Column(0),
                         Expression::Literal(Value(int64_t{-1}))),
      Expression::Column(99));
  EXPECT_TRUE(t.RowPath(guarded).empty());
  ColumnarScanOptions opts;
  opts.predicate = guarded;
  auto out = ColumnarScan(t.columnar, opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rows_emitted, 0);

  // Unguarded, the same bad reference fails identically.
  ColumnarScanOptions bad;
  bad.predicate = Expression::Column(99);
  auto row_it = std::make_unique<SeqScan>(&t.heap, t.schema);
  Filter filter(std::move(row_it), bad.predicate);
  auto row_result = Collect(&filter);
  auto col_result = ColumnarScan(t.columnar, bad);
  ASSERT_FALSE(row_result.ok());
  ASSERT_FALSE(col_result.ok());
  EXPECT_EQ(col_result.status().ToString(),
            row_result.status().ToString());
}

TEST(BitIdentityTest, LimitPushdown) {
  DualTable t(37);
  ExprPtr pred = Expression::Binary(
      ExprKind::kLt, Expression::Column(1),
      Expression::Literal(Value(2.0)));
  for (int64_t limit : {0, 1, 7, 100}) {
    ExpectSameRows(t.ColumnarPath(pred, limit), t.RowPath(pred, limit));
  }
}

TEST(BitIdentityTest, ProjectionPushdown) {
  DualTable t(21);
  for (std::vector<int> proj :
       {std::vector<int>{3}, {1, 2}, {2, 0}, {0, 1, 2, 3}}) {
    ColumnarScanOptions opts;
    opts.projection = proj;
    auto out = ColumnarScan(t.columnar, opts);
    ASSERT_TRUE(out.ok());
    auto scan = std::make_unique<SeqScan>(&t.heap, t.schema);
    Project project(std::move(scan), proj);
    auto expect = Collect(&project);
    ASSERT_TRUE(expect.ok());
    ExpectSameRows(out->ToRows(), *expect);
    EXPECT_EQ(out->schema.ToString(), project.schema().ToString());
  }
}

TEST(BitIdentityTest, PredicateOnUnprojectedColumn) {
  DualTable t(29);
  // Filter on score, emit only id: the scan must decode score for the
  // filter but keep it out of the output.
  ColumnarScanOptions opts;
  opts.projection = {0};
  opts.predicate = Expression::Binary(
      ExprKind::kLt, Expression::Column(1),
      Expression::Literal(Value(1.5)));
  auto out = ColumnarScan(t.columnar, opts);
  ASSERT_TRUE(out.ok());
  auto scan = std::make_unique<SeqScan>(&t.heap, t.schema);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         opts.predicate);
  Project project(std::move(filter), {0});
  auto expect = Collect(&project);
  ASSERT_TRUE(expect.ok());
  ExpectSameRows(out->ToRows(), *expect);
}

TEST(BitIdentityTest, RowScanShimComposesWithRowOperators) {
  DualTable t(37);
  // The shim must serve the row-operator API bit-identically.
  ColumnarRowScan shim(&t.columnar);
  auto from_shim = Collect(&shim);
  ASSERT_TRUE(from_shim.ok());
  ExpectSameRows(*from_shim, t.RowPath(nullptr));
  EXPECT_EQ(shim.SizeHint(), 37);

  RowIteratorPtr made =
      MakeTableScan(nullptr, &t.columnar, t.schema);
  ExprPtr pred = Expression::Binary(
      ExprKind::kLt, Expression::Column(0),
      Expression::Literal(Value(int64_t{9})));
  Filter filter(std::move(made), pred);
  auto filtered = Collect(&filter);
  ASSERT_TRUE(filtered.ok());
  ExpectSameRows(*filtered, t.RowPath(pred));
}

// --- Fragment parallelism --------------------------------------------

TEST(ParallelScanTest, ParallelMatchesSerial) {
  ScanCostModel::ResetForTest();
  DualTable t(20000, /*fragment_rows=*/512);
  ThreadPool pool(4);
  ExprPtr pred = Expression::Binary(
      ExprKind::kLt, Expression::Column(1),
      Expression::Literal(Value(1.7)));

  ColumnarScanOptions par;
  par.predicate = pred;
  par.pool = &pool;
  auto parallel = ColumnarScan(t.columnar, par);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel->parallel);  // big enough to fan out

  ColumnarScanOptions ser;
  ser.predicate = pred;
  ser.force_serial = true;
  auto serial = ColumnarScan(t.columnar, ser);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->parallel);

  ExpectSameRows(parallel->ToRows(), serial->ToRows());
  ExpectSameRows(serial->ToRows(), t.RowPath(pred));
  EXPECT_EQ(parallel->rows_scanned, 20000);
  EXPECT_EQ(serial->rows_scanned, 20000);
}

TEST(ParallelScanTest, TinyTableStaysSerial) {
  ScanCostModel::ResetForTest();
  DualTable t(16, /*fragment_rows=*/4);
  ThreadPool pool(4);
  ColumnarScanOptions opts;
  opts.pool = &pool;
  auto out = ColumnarScan(t.columnar, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->parallel);  // dispatch would cost more than the scan
}

TEST(ParallelScanTest, TelemetryCountsRowsAndBytes) {
  DualTable t(100, /*fragment_rows=*/16);
  ColumnarScanOptions opts;
  opts.predicate = Expression::Binary(
      ExprKind::kLt, Expression::Column(0),
      Expression::Literal(Value(int64_t{10})));
  auto out = ColumnarScan(t.columnar, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows_scanned, 100);  // decoded, pre-filter
  EXPECT_EQ(out->rows_emitted, 10);   // post-filter
  EXPECT_GT(out->bytes_scanned, 0);
  EXPECT_GT(out->nanos, 0);
}

TEST(ScanCostModelTest, LearnsFromObservations) {
  ScanCostModel::ResetForTest();
  EXPECT_DOUBLE_EQ(ScanCostModel::ColumnarNsPerCell(),
                   ScanCostModel::kSeedColumnarNsPerCell);
  // Feed consistently slower scans; the EWMA must move toward them.
  for (int i = 0; i < 50; ++i) {
    ScanCostModel::ObserveColumnarScan(/*cells=*/1000,
                                       /*nanos=*/10 * 1000);
  }
  EXPECT_GT(ScanCostModel::ColumnarNsPerCell(), 8.0);
  ScanCostModel::ResetForTest();
  EXPECT_DOUBLE_EQ(ScanCostModel::ColumnarNsPerCell(),
                   ScanCostModel::kSeedColumnarNsPerCell);
}

// --- Columnar gather (the GEMM-tile pivot) ---------------------------

TEST(ColumnarGatherTest, MatchesRowPivot) {
  DualTable t(37);
  ColumnarScanOptions opts;
  opts.projection = {3};
  auto out = ColumnarScan(t.columnar, opts);
  ASSERT_TRUE(out.ok());

  MemoryTracker tracker("test", 64 << 20);
  PhysicalStage stage;
  stage.kind = StageKind::kColumnarGather;
  auto tile = ExecuteColumnarGather(stage, out->batches,
                                    /*chunk_index=*/0, /*width=*/2,
                                    "features", &tracker);
  ASSERT_TRUE(tile.ok()) << tile.status().ToString();
  ASSERT_EQ(tile->shape().dim(0), 37);
  ASSERT_EQ(tile->shape().dim(1), 2);
  // The row-at-a-time pivot the gather replaces.
  auto rows = t.RowPath(nullptr);
  for (int64_t r = 0; r < 37; ++r) {
    const std::vector<float>& f = rows[r].value(3).AsFloatVector();
    EXPECT_EQ(tile->data()[r * 2 + 0], f[0]) << "row " << r;
    EXPECT_EQ(tile->data()[r * 2 + 1], f[1]) << "row " << r;
  }
  EXPECT_EQ(stage.stats.invocations.load(), 1);
  EXPECT_EQ(stage.stats.rows.load(), 37);
}

TEST(ColumnarGatherTest, RejectsWidthMismatchAndWrongType) {
  DualTable t(5);
  ColumnarScanOptions opts;
  auto out = ColumnarScan(t.columnar, opts);
  ASSERT_TRUE(out.ok());
  MemoryTracker tracker("test", 64 << 20);
  PhysicalStage stage;
  stage.kind = StageKind::kColumnarGather;
  // features are width 2; asking for 3 must fail per-row, not by
  // compensating across rows.
  auto bad_width = ExecuteColumnarGather(stage, out->batches, 3, 3,
                                         "features", &tracker);
  EXPECT_TRUE(bad_width.status().IsInvalidArgument());
  // Chunk 0 is the int64 id column.
  auto bad_type = ExecuteColumnarGather(stage, out->batches, 0, 2,
                                        "id", &tracker);
  EXPECT_TRUE(bad_type.status().IsInvalidArgument());
}

// -----------------------------------------------------------------------
// Predicate SIMD strips: the AVX2 backend must emit a selection vector
// bit-identical to the scalar reference on every input — including
// NaN, signed zero, and denormal lanes — at every length (vector body
// + scalar tail).
// -----------------------------------------------------------------------

TEST(PredicateSimdTest, Avx2SelectionBitIdenticalToScalar) {
  const kernels::PredicateKernels* scalar =
      kernels::GetScalarPredicateKernels();
  const kernels::PredicateKernels* avx2 =
      kernels::GetAvx2PredicateKernels();
  ASSERT_NE(scalar, nullptr);
  if (avx2 == nullptr ||
      kernels::DetectSimdLevel() != kernels::SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 predicate backend on this host";
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  // Values chosen so every comparison outcome and special-value rule
  // is exercised in both the 4-wide body and the tail.
  const std::vector<double> specials = {0.0,  -0.0,   1.0, -1.0, nan,
                                        inf,  -inf,   denorm, 2.5,
                                        -2.5, 1e300, -1e300};
  for (int64_t n : {0, 1, 3, 4, 5, 7, 8, 64, 67}) {
    std::vector<double> a(n), b(n);
    std::vector<int64_t> ia(n), ib(n);
    std::vector<int32_t> sel(n);
    uint64_t state = 17 + static_cast<uint64_t>(n);
    for (int64_t i = 0; i < n; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      a[i] = specials[(state >> 33) % specials.size()];
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      b[i] = specials[(state >> 33) % specials.size()];
      ia[i] = static_cast<int64_t>(state >> 61) - 4;
      ib[i] = static_cast<int64_t>(state >> 62) - 2;
      sel[i] = static_cast<int32_t>(i * 3 + 1);  // non-trivial sel ids
    }
    std::vector<int32_t> got(n), want(n);
    auto check = [&](const char* what, int64_t wn, int64_t gn) {
      ASSERT_EQ(wn, gn) << what << " n=" << n;
      for (int64_t i = 0; i < wn; ++i) {
        ASSERT_EQ(want[i], got[i]) << what << " n=" << n << " i=" << i;
      }
    };
    check("lt_f64",
          scalar->lt_f64(a.data(), b.data(), sel.data(), n, want.data()),
          avx2->lt_f64(a.data(), b.data(), sel.data(), n, got.data()));
    check("le_f64",
          scalar->le_f64(a.data(), b.data(), sel.data(), n, want.data()),
          avx2->le_f64(a.data(), b.data(), sel.data(), n, got.data()));
    check("eq_f64",
          scalar->eq_f64(a.data(), b.data(), sel.data(), n, want.data()),
          avx2->eq_f64(a.data(), b.data(), sel.data(), n, got.data()));
    check("absdiff_le_f64",
          scalar->absdiff_le_f64(a.data(), b.data(), 1.5, sel.data(), n,
                                 want.data()),
          avx2->absdiff_le_f64(a.data(), b.data(), 1.5, sel.data(), n,
                               got.data()));
    check("eq_i64",
          scalar->eq_i64(ia.data(), ib.data(), sel.data(), n,
                         want.data()),
          avx2->eq_i64(ia.data(), ib.data(), sel.data(), n, got.data()));
    check("nonzero_f64",
          scalar->nonzero_f64(a.data(), sel.data(), n, want.data()),
          avx2->nonzero_f64(a.data(), sel.data(), n, got.data()));
  }
}

TEST(PredicateSimdTest, SpecialValueSemanticsMatchCppOperators) {
  // The strips must implement the C++ operator truth table exactly:
  // ordered comparisons reject NaN, truthiness (!=) accepts it,
  // -0.0 == 0.0 compares equal.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> a = {nan, 0.0, -0.0, nan};
  const std::vector<double> b = {nan, -0.0, 0.0, 1.0};
  const std::vector<int32_t> sel = {10, 11, 12, 13};
  std::vector<int32_t> out(4);
  for (const kernels::PredicateKernels* pk :
       {kernels::GetScalarPredicateKernels(),
        kernels::GetAvx2PredicateKernels()}) {
    if (pk == nullptr) continue;
    // NaN fails every ordered comparison; zeros compare equal.
    EXPECT_EQ(pk->lt_f64(a.data(), b.data(), sel.data(), 4, out.data()),
              0);
    ASSERT_EQ(
        pk->eq_f64(a.data(), b.data(), sel.data(), 4, out.data()), 2);
    EXPECT_EQ(out[0], 11);
    EXPECT_EQ(out[1], 12);
    // Truthiness: NaN != 0.0 is true, both zeros are falsy.
    ASSERT_EQ(pk->nonzero_f64(a.data(), sel.data(), 4, out.data()), 2);
    EXPECT_EQ(out[0], 10);
    EXPECT_EQ(out[1], 13);
    // |NaN - x| <= eps is false (NaN poisons the difference).
    EXPECT_EQ(pk->absdiff_le_f64(a.data(), b.data(), 100.0, sel.data(),
                                 4, out.data()),
              2);
  }
}

TEST(PredicateSimdTest, VectorizedFilterIdenticalAcrossSimdLevels) {
  // End-to-end: the same columnar filter query must select the same
  // rows whichever predicate backend the evaluator dispatches to.
  DualTable t(257);
  ExprPtr pred = Expression::Binary(ExprKind::kLt, Expression::Column(1),
                                    Expression::Literal(Value(2.0)));
  auto run = [&](kernels::SimdLevel level) {
    kernels::SetActiveSimdLevel(level);
    auto rows = t.ColumnarPath(pred);
    kernels::SetActiveSimdLevel(kernels::DetectSimdLevel());
    return rows;
  };
  const std::vector<Row> scalar_rows = run(kernels::SimdLevel::kScalar);
  const std::vector<Row> avx2_rows = run(kernels::SimdLevel::kAvx2);
  EXPECT_FALSE(scalar_rows.empty());
  ExpectSameRows(scalar_rows, avx2_rows);
}

}  // namespace
}  // namespace relserve
