// End-to-end scenarios mirroring the paper's evaluation at test scale:
// the Table 3 OOM-vs-spilling story, the adaptive optimizer's choice
// of representation, and the Sec. 7.2.2 caching workflow with the
// Monte Carlo SLA policy.

#include <gtest/gtest.h>

#include "engine/connector.h"
#include "engine/external_runtime.h"
#include "graph/model_zoo.h"
#include "relational/row.h"
#include "serving/serving_session.h"
#include "sql/query_executor.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

TEST(IntegrationTest, Table3StoryLargeModelOomsExceptRelational) {
  // A model whose first-layer operator exceeds every whole-tensor
  // arena: weight 2000x4000 = 32 MB, batch 256 input 4 MB.
  ServingConfig config;
  config.buffer_pool_pages = 2048;
  config.working_memory_bytes = 16LL << 20;   // 16 MB in-DB arena
  config.memory_threshold_bytes = 16LL << 20;
  config.block_rows = 256;
  config.block_cols = 256;
  ServingSession session(config);

  auto model = BuildFFNN("big", {4000, 2000, 16}, 1);
  ASSERT_TRUE(model.ok());
  auto table =
      session.CreateTable("data", workloads::FeatureTableSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(workloads::FillFeatureTable(*table, 256, 4000, 2).ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());

  // UDF-centric: the resident weight alone busts the 16 MB arena.
  auto udf_deploy = session.Deploy("big", ServingMode::kForceUdf, 256);
  EXPECT_TRUE(udf_deploy.status().IsOutOfMemory());

  // External runtime with the same memory budget: OOM as well.
  ExternalRuntime runtime("sim", 16LL << 20);
  auto reg = session.OffloadModel("big", &runtime);
  EXPECT_TRUE(reg.IsOutOfMemory());

  // Adaptive: the optimizer lowers the big operator to
  // relation-centric and the query completes by spilling blocks.
  auto plan = session.Deploy("big", ServingMode::kAdaptive, 256);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE((*plan)->AnyRelational());
  auto out = session.Predict("big", "data");
  ASSERT_TRUE(out.ok()) << out.status();
  auto scores = out->ToTensor(session.exec_context());
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->shape(), (Shape{256, 16}));
  // The working arena never held the whole weight.
  EXPECT_LT(session.working_memory()->peak_bytes(),
            16LL << 20);
}

TEST(IntegrationTest, AdaptiveEqualsUdfForSmallModels) {
  ServingSession session(ServingConfig{});
  auto model = BuildFFNN("fraud", {28, 256, 2}, 1);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
  auto plan = session.Deploy("fraud", ServingMode::kAdaptive, 512);
  ASSERT_TRUE(plan.ok());
  // The paper: small models fit the threshold, so the optimizer picks
  // the single-UDF representation.
  EXPECT_TRUE((*plan)->AllUdf());
}

TEST(IntegrationTest, AllThreeArchitecturesAgreeNumerically) {
  ServingConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  ServingSession session(config);
  auto model = BuildFFNN("m", {40, 24, 4}, 5);
  ASSERT_TRUE(model.ok());
  auto table = session.CreateTable("t", workloads::FeatureTableSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(workloads::FillFeatureTable(*table, 64, 40, 3).ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());

  ASSERT_TRUE(session.Deploy("m", ServingMode::kForceUdf, 64).ok());
  auto udf = session.Predict("m", "t");
  ASSERT_TRUE(udf.ok());
  auto udf_t = udf->ToTensor(session.exec_context());
  ASSERT_TRUE(udf_t.ok());

  ASSERT_TRUE(
      session.Deploy("m", ServingMode::kForceRelational, 64).ok());
  auto rel = session.Predict("m", "t");
  ASSERT_TRUE(rel.ok());
  auto rel_t = rel->ToTensor(session.exec_context());
  ASSERT_TRUE(rel_t.ok());

  ExternalRuntime runtime("sim", 64LL << 20);
  ASSERT_TRUE(session.OffloadModel("m", &runtime).ok());
  auto dl = session.PredictViaRuntime("m", "t");
  ASSERT_TRUE(dl.ok());

  EXPECT_LT(udf_t->MaxAbsDiff(*rel_t), 1e-5f);
  EXPECT_LT(udf_t->MaxAbsDiff(*dl), 1e-5f);
}

TEST(IntegrationTest, CachingWorkflowWithSlaPolicy) {
  // Sec. 7.2.2 at test scale: clustered requests, FFNN classifier,
  // HNSW-backed cache, Monte Carlo accuracy estimate.
  ServingSession session(ServingConfig{});
  auto model = BuildFFNN("clf", {16, 32, 10}, 1);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
  ASSERT_TRUE(session.Deploy("clf", ServingMode::kForceUdf, 64).ok());

  auto data = workloads::GenClusteredData(256, 16, 10, 0.02f, 9);
  ASSERT_TRUE(data.ok());

  ApproxResultCache::Config cache_config;
  cache_config.max_distance = 0.25f;
  ASSERT_TRUE(session.EnableApproxCache("clf", 16, cache_config).ok());

  // Warm the cache with the first half.
  auto warm = data->features.Reshape(Shape{256, 16});
  ASSERT_TRUE(warm.ok());
  auto first = session.PredictWithCache("clf", *warm);
  ASSERT_TRUE(first.ok());

  // Second pass over the same requests: mostly hits (measured on the
  // second pass alone, not the cold warm-up).
  auto cache = session.GetApproxCache("clf");
  ASSERT_TRUE(cache.ok());
  const CacheStats before = (*cache)->stats();
  auto second = session.PredictWithCache("clf", *warm);
  ASSERT_TRUE(second.ok());
  const CacheStats after = (*cache)->stats();
  const double second_pass_rate =
      static_cast<double>(after.hits - before.hits) /
      (after.lookups - before.lookups);
  EXPECT_GT(second_pass_rate, 0.6);

  // Monte Carlo policy: with tight clusters the accuracy estimate is
  // high enough for a 90% SLA.
  std::vector<std::vector<float>> sample;
  for (int i = 0; i < 32; ++i) {
    sample.emplace_back(data->features.data() + i * 16,
                        data->features.data() + (i + 1) * 16);
  }
  auto infer = [&](const std::vector<float>& x)
      -> Result<std::vector<float>> {
    auto t = Tensor::FromData(Shape{1, 16}, x);
    RELSERVE_RETURN_NOT_OK(t.status());
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session.PredictBatch("clf", *t));
    RELSERVE_ASSIGN_OR_RETURN(Tensor pred,
                              out.ToTensor(session.exec_context()));
    return std::vector<float>(pred.data(),
                              pred.data() + pred.NumElements());
  };
  auto decision = MonteCarloCachePolicy(*cache, sample, infer, 0.9);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->enable_cache);
}

TEST(IntegrationTest, SqlPredictOverRelationCentricModel) {
  // A SQL inference query whose PREDICT auto-deploys a model that the
  // optimizer lowers to relation-centric: the whole paper stack in
  // one statement.
  ServingConfig config;
  config.working_memory_bytes = 8LL << 20;
  config.memory_threshold_bytes = 2LL << 20;
  config.block_rows = 128;
  config.block_cols = 128;
  ServingSession session(config);

  auto table =
      session.CreateTable("events", workloads::FeatureTableSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(workloads::FillFeatureTable(*table, 64, 2000, 3).ok());
  // Weight 512x2000 = 4 MB > 2 MB threshold -> relational matmul.
  auto model = BuildFFNN("wide", {2000, 512, 4}, 5);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());

  auto result = sql::ExecuteQuery(
      &session,
      "SELECT PREDICT_CLASS(wide) AS cls, COUNT(*) AS n FROM events "
      "GROUP BY cls ORDER BY n DESC");
  ASSERT_TRUE(result.ok()) << result.status();
  // The auto-deployment chose relational for the big layer.
  auto plan = session.Deploy("wide", ServingMode::kAdaptive, 64);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->AnyRelational());
  int64_t total = 0;
  for (const Row& row : result->rows) total += row.value(1).AsInt64();
  EXPECT_EQ(total, 64);
}

TEST(IntegrationTest, ConvModelEndToEndThroughSession) {
  ServingConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  ServingSession session(config);
  // DeepBench-CONV1 geometry at reduced image size.
  zoo::ConvSpec spec{"conv", 28, 28, 8, 16, 1, 1};
  auto model = zoo::BuildFromSpec(spec, 1);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
  ASSERT_TRUE(session.Deploy("conv", ServingMode::kForceUdf, 2).ok());
  auto input = workloads::GenBatch(2, Shape{28, 28, 8}, 7);
  ASSERT_TRUE(input.ok());
  auto udf = session.PredictBatch("conv", *input);
  ASSERT_TRUE(udf.ok());
  auto udf_t = udf->ToTensor(session.exec_context());
  ASSERT_TRUE(udf_t.ok());
  EXPECT_EQ(udf_t->shape(), (Shape{2, 28, 28, 16}));

  ASSERT_TRUE(
      session.Deploy("conv", ServingMode::kForceRelational, 2).ok());
  auto rel = session.PredictBatch("conv", *input);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE(rel->blocked());
  auto rel_t = rel->ToTensor(session.exec_context());
  ASSERT_TRUE(rel_t.ok());
  auto udf_flat = udf_t->Reshape(rel_t->shape());
  ASSERT_TRUE(udf_flat.ok());
  EXPECT_LT(udf_flat->MaxAbsDiff(*rel_t), 1e-4f);
}

}  // namespace
}  // namespace relserve
