#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cache/hnsw_index.h"
#include "cache/result_cache.h"
#include "common/random.h"

namespace relserve {
namespace {

std::vector<float> RandVec(Rng* rng, int dim) {
  std::vector<float> v(dim);
  for (float& x : v) x = rng->Uniform();
  return v;
}

float L2(const std::vector<float>& a, const std::vector<float>& b) {
  float sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(sum);
}

TEST(HnswTest, EmptyIndexReturnsNothing) {
  HnswIndex index(4);
  auto result = index.Search({0, 0, 0, 0}, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(HnswTest, SingleElement) {
  HnswIndex index(2);
  ASSERT_TRUE(index.Add({1.0f, 2.0f}).ok());
  auto result = index.Search({1.0f, 2.1f}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 0);
  EXPECT_NEAR((*result)[0].distance, 0.1f, 1e-5f);
}

TEST(HnswTest, RejectsDimensionMismatch) {
  HnswIndex index(3);
  EXPECT_TRUE(index.Add({1.0f}).status().IsInvalidArgument());
  ASSERT_TRUE(index.Add({1, 2, 3}).ok());
  EXPECT_TRUE(index.Search({1.0f}, 1).status().IsInvalidArgument());
}

TEST(HnswTest, ExactQueryFindsItself) {
  const int dim = 16;
  Rng rng(7);
  HnswIndex index(dim);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < 200; ++i) {
    vectors.push_back(RandVec(&rng, dim));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  for (int i = 0; i < 200; i += 17) {
    auto result = index.Search(vectors[i], 1);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    EXPECT_EQ((*result)[0].id, i);
    EXPECT_NEAR((*result)[0].distance, 0.0f, 1e-5f);
  }
}

TEST(HnswTest, RecallAgainstBruteForce) {
  const int dim = 8;
  const int n = 500;
  Rng rng(13);
  HnswIndex index(dim);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < n; ++i) {
    vectors.push_back(RandVec(&rng, dim));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  int hits = 0;
  const int queries = 50;
  for (int q = 0; q < queries; ++q) {
    const std::vector<float> query = RandVec(&rng, dim);
    // Brute-force nearest.
    int best = 0;
    float best_dist = L2(query, vectors[0]);
    for (int i = 1; i < n; ++i) {
      const float d = L2(query, vectors[i]);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    auto result = index.Search(query, 1);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    if ((*result)[0].id == best) ++hits;
  }
  // HNSW is approximate; demand >= 80% recall@1 at these settings.
  EXPECT_GE(hits, queries * 8 / 10);
}

TEST(HnswTest, NeighborsSortedByDistance) {
  Rng rng(3);
  HnswIndex index(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(index.Add(RandVec(&rng, 4)).ok());
  }
  auto result = index.Search(RandVec(&rng, 4), 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].distance, (*result)[i].distance);
  }
}

TEST(IvfTest, ExactBeforeTraining) {
  IvfIndex::Config config;
  config.train_threshold = 1000;  // never trains in this test
  IvfIndex index(4, config);
  Rng rng(1);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < 50; ++i) {
    vectors.push_back(RandVec(&rng, 4));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  EXPECT_FALSE(index.trained());
  // Untrained search is a brute-force scan: exact.
  for (int i = 0; i < 50; i += 7) {
    auto result = index.Search(vectors[i], 1);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    EXPECT_EQ((*result)[0].id, i);
  }
}

TEST(IvfTest, TrainsAtThresholdAndStaysAccurate) {
  IvfIndex::Config config;
  config.num_lists = 8;
  config.num_probes = 3;
  config.train_threshold = 100;
  IvfIndex index(8, config);
  Rng rng(2);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < 400; ++i) {
    vectors.push_back(RandVec(&rng, 8));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  EXPECT_TRUE(index.trained());
  // Self-queries must find themselves (the query's own list is always
  // the closest probe).
  int hits = 0;
  for (int i = 0; i < 400; i += 13) {
    auto result = index.Search(vectors[i], 1);
    ASSERT_TRUE(result.ok());
    if (!result->empty() && (*result)[0].id == i) ++hits;
  }
  EXPECT_GE(hits, 28);  // 31 queries; IVF recall is high on self-hits
}

TEST(IvfTest, RecallAgainstBruteForce) {
  IvfIndex::Config config;
  config.num_lists = 8;
  config.num_probes = 4;
  config.train_threshold = 64;
  IvfIndex index(8, config);
  Rng rng(3);
  const int n = 500;
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < n; ++i) {
    vectors.push_back(RandVec(&rng, 8));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  int hits = 0;
  const int queries = 50;
  for (int q = 0; q < queries; ++q) {
    const std::vector<float> query = RandVec(&rng, 8);
    int best = 0;
    float best_dist = L2(query, vectors[0]);
    for (int i = 1; i < n; ++i) {
      const float d = L2(query, vectors[i]);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    auto result = index.Search(query, 1);
    ASSERT_TRUE(result.ok());
    if (!result->empty() && (*result)[0].id == best) ++hits;
  }
  EXPECT_GE(hits, queries * 6 / 10);  // half the lists probed
}

TEST(IvfTest, RejectsDimMismatch) {
  IvfIndex index(3);
  EXPECT_TRUE(index.Add({1.0f}).status().IsInvalidArgument());
  ASSERT_TRUE(index.Add({1, 2, 3}).ok());
  EXPECT_TRUE(index.Search({1.0f}, 1).status().IsInvalidArgument());
}

TEST(ApproxCacheTest, WorksWithIvfBackend) {
  ApproxResultCache::Config config;
  config.max_distance = 0.5f;
  config.index_kind = ApproxResultCache::IndexKind::kIvf;
  config.ivf.train_threshold = 8;
  ApproxResultCache cache(2, config);
  for (int i = 0; i < 20; ++i) {
    const float x = static_cast<float>(i);
    ASSERT_TRUE(cache.Insert({x, x}, {x * 10}).ok());
  }
  auto hit = cache.Lookup({5.1f, 5.0f});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FLOAT_EQ((*hit)[0], 50.0f);
  EXPECT_FALSE(cache.Lookup({100.0f, 100.0f}).has_value());
}

TEST(LshTest, SelfQueriesHitTheirBuckets) {
  LshIndex::Config config;
  config.bucket_width = 2.0f;
  LshIndex index(8, config);
  Rng rng(4);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < 200; ++i) {
    vectors.push_back(RandVec(&rng, 8));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  for (int i = 0; i < 200; i += 11) {
    auto result = index.Search(vectors[i], 1);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    EXPECT_EQ((*result)[0].id, i);
    EXPECT_NEAR((*result)[0].distance, 0.0f, 1e-5f);
  }
}

TEST(LshTest, NearbyQueriesUsuallyFindNeighbors) {
  LshIndex::Config config;
  config.num_tables = 12;
  config.bucket_width = 1.5f;
  LshIndex index(8, config);
  Rng rng(5);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < 300; ++i) {
    vectors.push_back(RandVec(&rng, 8));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  int found = 0;
  for (int i = 0; i < 300; i += 10) {
    std::vector<float> query = vectors[i];
    for (float& v : query) v += rng.Normal(0.0f, 0.01f);
    auto result = index.Search(query, 1);
    ASSERT_TRUE(result.ok());
    if (!result->empty() && (*result)[0].id == i) ++found;
  }
  EXPECT_GE(found, 24);  // 30 queries, LSH recall is probabilistic
}

TEST(LshTest, RejectsDimMismatch) {
  LshIndex index(3);
  EXPECT_TRUE(index.Add({1.0f}).status().IsInvalidArgument());
  ASSERT_TRUE(index.Add({1, 2, 3}).ok());
  EXPECT_TRUE(index.Search({1.0f}, 1).status().IsInvalidArgument());
}

TEST(ApproxCacheTest, WorksWithLshBackend) {
  ApproxResultCache::Config config;
  config.max_distance = 0.5f;
  config.index_kind = ApproxResultCache::IndexKind::kLsh;
  config.lsh.bucket_width = 3.0f;
  ApproxResultCache cache(2, config);
  for (int i = 0; i < 20; ++i) {
    const float x = static_cast<float>(i);
    ASSERT_TRUE(cache.Insert({x, x}, {x * 10}).ok());
  }
  auto hit = cache.Lookup({5.05f, 5.0f});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FLOAT_EQ((*hit)[0], 50.0f);
}

TEST(ExactCacheTest, HitsOnlyOnExactBytes) {
  ExactResultCache cache;
  cache.Insert({1.0f, 2.0f}, {0.9f, 0.1f});
  auto hit = cache.Lookup({1.0f, 2.0f});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FLOAT_EQ((*hit)[0], 0.9f);
  EXPECT_FALSE(cache.Lookup({1.0f, 2.0001f}).has_value());
  EXPECT_EQ(cache.stats().lookups, 2);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ApproxCacheTest, HitsWithinDistanceThreshold) {
  ApproxResultCache::Config config;
  config.max_distance = 0.5f;
  ApproxResultCache cache(2, config);
  ASSERT_TRUE(cache.Insert({0.0f, 0.0f}, {1.0f, 0.0f}).ok());
  auto near = cache.Lookup({0.1f, 0.1f});
  ASSERT_TRUE(near.has_value());
  EXPECT_FLOAT_EQ((*near)[0], 1.0f);
  EXPECT_FALSE(cache.Lookup({2.0f, 2.0f}).has_value());
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
}

TEST(ApproxCacheTest, NearestOfSeveralWins) {
  ApproxResultCache::Config config;
  config.max_distance = 10.0f;
  ApproxResultCache cache(1, config);
  ASSERT_TRUE(cache.Insert({0.0f}, {1.0f}).ok());
  ASSERT_TRUE(cache.Insert({5.0f}, {2.0f}).ok());
  auto hit = cache.Lookup({4.0f});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FLOAT_EQ((*hit)[0], 2.0f);
}

TEST(PolicyTest, TightClustersPassLooseSlaFails) {
  // Two well-separated clusters with distinct predictions; cached
  // answers within a cluster agree, so accuracy is high.
  ApproxResultCache::Config config;
  config.max_distance = 1.0f;
  ApproxResultCache cache(2, config);
  ASSERT_TRUE(cache.Insert({0.0f, 0.0f}, {1.0f, 0.0f}).ok());
  ASSERT_TRUE(cache.Insert({10.0f, 10.0f}, {0.0f, 1.0f}).ok());

  auto infer = [](const std::vector<float>& x)
      -> Result<std::vector<float>> {
    // Ground truth: class 0 near origin, class 1 near (10, 10).
    const float d0 = x[0] * x[0] + x[1] * x[1];
    return d0 < 50.0f ? std::vector<float>{1.0f, 0.0f}
                      : std::vector<float>{0.0f, 1.0f};
  };
  std::vector<std::vector<float>> sample = {
      {0.1f, 0.1f}, {0.2f, 0.0f}, {9.9f, 10.0f}, {10.1f, 9.8f}};
  auto decision = MonteCarloCachePolicy(&cache, sample, infer, 0.95);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->enable_cache);
  EXPECT_DOUBLE_EQ(decision->estimated_accuracy, 1.0);
}

TEST(PolicyTest, CrossClusterHitsLowerAccuracy) {
  // Cache radius so large that opposite-class requests hit.
  ApproxResultCache::Config config;
  config.max_distance = 100.0f;
  ApproxResultCache cache(1, config);
  ASSERT_TRUE(cache.Insert({0.0f}, {1.0f, 0.0f}).ok());  // class 0

  auto infer = [](const std::vector<float>& x)
      -> Result<std::vector<float>> {
    return x[0] < 5.0f ? std::vector<float>{1.0f, 0.0f}
                       : std::vector<float>{0.0f, 1.0f};
  };
  std::vector<std::vector<float>> sample = {{0.5f}, {9.0f}, {8.0f},
                                            {1.0f}};
  auto decision = MonteCarloCachePolicy(&cache, sample, infer, 0.9);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->enable_cache);
  EXPECT_DOUBLE_EQ(decision->estimated_accuracy, 0.5);
}

TEST(PolicyTest, EmptySampleRejected) {
  ApproxResultCache::Config config;
  ApproxResultCache cache(1, config);
  auto infer = [](const std::vector<float>&)
      -> Result<std::vector<float>> { return std::vector<float>{1.0f}; };
  EXPECT_TRUE(MonteCarloCachePolicy(&cache, {}, infer, 0.9)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace relserve
