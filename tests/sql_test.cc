#include <gtest/gtest.h>

#include "graph/model.h"
#include "relational/row.h"
#include "serving/serving_session.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/query_executor.h"
#include "workloads/datasets.h"

namespace relserve {
namespace sql {
namespace {

// --- Lexer -----------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT a, 1.5 FROM t WHERE x >= 'hi'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_TRUE((*tokens)[2].IsSymbol(","));
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kNumber);
  EXPECT_TRUE((*tokens)[4].IsKeyword("FROM"));
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kIdentifier);
  EXPECT_TRUE((*tokens)[8].IsSymbol(">="));
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[9].text, "hi");
  EXPECT_EQ((*tokens)[10].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, NegativeAndDecimalNumbers) {
  auto tokens = Lex("-3 2.75");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "-3");
  EXPECT_EQ((*tokens)[1].text, "2.75");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Lex("SELECT ; FROM t").ok());
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
}

// --- Parser ----------------------------------------------------------

TEST(ParserTest, MinimalSelect) {
  auto stmt = Parse("SELECT * FROM tx");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].kind, ItemKind::kStar);
  EXPECT_EQ(stmt->table, "tx");
  EXPECT_EQ(stmt->where, nullptr);
  EXPECT_FALSE(stmt->limit.has_value());
}

TEST(ParserTest, PredictItems) {
  auto stmt = Parse(
      "SELECT id, PREDICT(fraud) AS scores, "
      "PREDICT_CLASS(fraud, embedding) FROM tx LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].kind, ItemKind::kColumn);
  EXPECT_EQ(stmt->items[1].kind, ItemKind::kPredict);
  EXPECT_EQ(stmt->items[1].model, "fraud");
  EXPECT_EQ(stmt->items[1].feature_col, "features");
  EXPECT_EQ(stmt->items[1].alias, "scores");
  EXPECT_EQ(stmt->items[2].kind, ItemKind::kPredictClass);
  EXPECT_EQ(stmt->items[2].feature_col, "embedding");
  EXPECT_EQ(*stmt->limit, 10);
}

TEST(ParserTest, WherePrecedenceAndParens) {
  auto stmt =
      Parse("SELECT * FROM t WHERE a = 1 OR b < 2 AND NOT (c >= 3)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->where, nullptr);
  // OR at the top (AND binds tighter).
  EXPECT_EQ(stmt->where->kind, PredicateKind::kOr);
  EXPECT_EQ(stmt->where->left->kind, PredicateKind::kComparison);
  EXPECT_EQ(stmt->where->right->kind, PredicateKind::kAnd);
  EXPECT_EQ(stmt->where->right->right->kind, PredicateKind::kNot);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t extra").ok());
  EXPECT_FALSE(Parse("SELECT PREDICT( FROM t").ok());
}

// --- Executor --------------------------------------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  SqlExecTest() : session_(ServingConfig{}) {
    const Schema schema({{"id", ValueType::kInt64},
                         {"amount", ValueType::kFloat64},
                         {"features", ValueType::kFloatVector}});
    auto table = session_.CreateTable("tx", schema);
    EXPECT_TRUE(table.ok());
    // Columnar clone of tx, holding identical rows: every dual-path
    // test below asserts bit-identical results across the two.
    auto clone =
        session_.CreateTable("tx_col", schema, TableLayout::kColumnar);
    EXPECT_TRUE(clone.ok());
    for (int i = 0; i < 20; ++i) {
      std::vector<float> features(8, static_cast<float>(i) * 0.1f);
      Row row({Value(int64_t{i}), Value(i * 10.0),
               Value(std::move(features))});
      std::string bytes;
      row.SerializeTo(&bytes);
      EXPECT_TRUE((*table)->heap->Append(bytes).ok());
      EXPECT_TRUE((*clone)->columnar->AppendRow(row).ok());
    }
    auto model = BuildFFNN("scorer", {8, 16, 3}, 5);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE(session_.RegisterModel(std::move(*model)).ok());
  }

  // Runs `query_tmpl` against both layouts ($T = table name) and
  // asserts identical schema and rows.
  void ExpectSameResults(const std::string& query_tmpl) {
    auto fill = [&](const std::string& name) {
      std::string q = query_tmpl;
      const size_t pos = q.find("$T");
      EXPECT_NE(pos, std::string::npos) << query_tmpl;
      q.replace(pos, 2, name);
      return q;
    };
    auto row_result = ExecuteQuery(&session_, fill("tx"));
    auto col_result = ExecuteQuery(&session_, fill("tx_col"));
    ASSERT_TRUE(row_result.ok()) << row_result.status();
    ASSERT_TRUE(col_result.ok()) << col_result.status();
    EXPECT_EQ(row_result->schema.ToString(),
              col_result->schema.ToString());
    ASSERT_EQ(row_result->rows.size(), col_result->rows.size());
    for (size_t i = 0; i < row_result->rows.size(); ++i) {
      EXPECT_EQ(row_result->rows[i], col_result->rows[i])
          << query_tmpl << " row " << i;
    }
  }

  ServingSession session_;
};

TEST_F(SqlExecTest, SelectStar) {
  auto result = ExecuteQuery(&session_, "SELECT * FROM tx");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema.num_columns(), 3);
  EXPECT_EQ(result->rows.size(), 20u);
}

TEST_F(SqlExecTest, WhereAndLimit) {
  auto result = ExecuteQuery(
      &session_, "SELECT id FROM tx WHERE amount >= 50 LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].value(0).AsInt64(), 5);
  EXPECT_EQ(result->rows[2].value(0).AsInt64(), 7);
}

TEST_F(SqlExecTest, PredictAddsScoreVector) {
  auto result = ExecuteQuery(
      &session_,
      "SELECT id, PREDICT(scorer) AS p FROM tx WHERE id < 4");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->schema.column(1).name, "p");
  EXPECT_EQ(result->schema.column(1).type, ValueType::kFloatVector);
  const auto& scores = result->rows[0].value(1).AsFloatVector();
  ASSERT_EQ(scores.size(), 3u);
  float sum = 0;
  for (float s : scores) sum += s;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);  // softmax row
}

TEST_F(SqlExecTest, PredictClassMatchesPredictArgmax) {
  auto result = ExecuteQuery(
      &session_,
      "SELECT PREDICT(scorer), PREDICT_CLASS(scorer) FROM tx");
  ASSERT_TRUE(result.ok()) << result.status();
  for (const Row& row : result->rows) {
    const auto& scores = row.value(0).AsFloatVector();
    const int64_t cls = row.value(1).AsInt64();
    int64_t best = 0;
    for (size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[best]) best = static_cast<int64_t>(c);
    }
    EXPECT_EQ(cls, best);
  }
}

TEST_F(SqlExecTest, PredicateOnPredictInput) {
  // Inference over a filtered subset only.
  auto all = ExecuteQuery(&session_,
                          "SELECT PREDICT_CLASS(scorer) FROM tx");
  auto some = ExecuteQuery(
      &session_,
      "SELECT PREDICT_CLASS(scorer) FROM tx WHERE id >= 10");
  ASSERT_TRUE(all.ok() && some.ok());
  ASSERT_EQ(some->rows.size(), 10u);
  // Row k of the filtered result equals row k+10 of the full result.
  for (size_t i = 0; i < some->rows.size(); ++i) {
    EXPECT_EQ(some->rows[i].value(0).AsInt64(),
              all->rows[i + 10].value(0).AsInt64());
  }
}

TEST_F(SqlExecTest, EmptyResultSkipsInference) {
  auto result = ExecuteQuery(
      &session_,
      "SELECT PREDICT(scorer) FROM tx WHERE amount < -1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(SqlExecTest, ErrorsAreStatuses) {
  EXPECT_TRUE(ExecuteQuery(&session_, "SELECT * FROM missing")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteQuery(&session_, "SELECT nope FROM tx")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      ExecuteQuery(&session_, "SELECT PREDICT(ghost) FROM tx")
          .status()
          .IsNotFound());
  // PREDICT over a non-vector column.
  EXPECT_TRUE(
      ExecuteQuery(&session_, "SELECT PREDICT(scorer, amount) FROM tx")
          .status()
          .IsInvalidArgument());
}

TEST_F(SqlExecTest, GlobalAggregates) {
  auto result = ExecuteQuery(
      &session_,
      "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), "
      "MAX(amount) FROM tx WHERE id < 10");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  const Row& row = result->rows[0];
  EXPECT_EQ(row.value(0).AsInt64(), 10);
  EXPECT_DOUBLE_EQ(row.value(1).AsFloat64(), 450.0);  // 0+10+...+90
  EXPECT_DOUBLE_EQ(row.value(2).AsFloat64(), 45.0);
  EXPECT_DOUBLE_EQ(row.value(3).AsFloat64(), 0.0);
  EXPECT_DOUBLE_EQ(row.value(4).AsFloat64(), 90.0);
}

TEST_F(SqlExecTest, GroupByPredictClass) {
  // The flagship nested query: group rows by the model's decision.
  auto result = ExecuteQuery(
      &session_,
      "SELECT PREDICT_CLASS(scorer) AS cls, COUNT(*) AS n "
      "FROM tx GROUP BY cls");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema.column(0).name, "cls");
  EXPECT_EQ(result->schema.column(1).name, "n");
  int64_t total = 0;
  for (const Row& row : result->rows) {
    EXPECT_GE(row.value(0).AsInt64(), 0);
    EXPECT_LT(row.value(0).AsInt64(), 3);
    total += row.value(1).AsInt64();
  }
  EXPECT_EQ(total, 20);  // every row lands in exactly one group
}

TEST_F(SqlExecTest, GroupByBaseColumnWithAggOverAmount) {
  auto result = ExecuteQuery(
      &session_,
      "SELECT id, SUM(amount) AS total FROM tx WHERE id < 3 "
      "GROUP BY id");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(SqlExecTest, GroupByValidation) {
  // Non-aggregate item missing from GROUP BY.
  EXPECT_TRUE(ExecuteQuery(&session_,
                           "SELECT id, amount, COUNT(*) FROM tx "
                           "GROUP BY id")
                  .status()
                  .IsInvalidArgument());
  // * with GROUP BY.
  EXPECT_TRUE(
      ExecuteQuery(&session_, "SELECT * FROM tx GROUP BY id")
          .status()
          .IsInvalidArgument());
  // SUM(*) is rejected at parse time.
  EXPECT_TRUE(ExecuteQuery(&session_, "SELECT SUM(*) FROM tx")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SqlExecTest, OrderByAscendingAndDescending) {
  auto desc = ExecuteQuery(
      &session_,
      "SELECT id, amount FROM tx ORDER BY amount DESC LIMIT 3");
  ASSERT_TRUE(desc.ok()) << desc.status();
  ASSERT_EQ(desc->rows.size(), 3u);
  EXPECT_EQ(desc->rows[0].value(0).AsInt64(), 19);
  EXPECT_EQ(desc->rows[2].value(0).AsInt64(), 17);
  auto asc = ExecuteQuery(
      &session_,
      "SELECT id, amount FROM tx ORDER BY amount LIMIT 2");
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(asc->rows[0].value(0).AsInt64(), 0);
  EXPECT_EQ(asc->rows[1].value(0).AsInt64(), 1);
}

TEST_F(SqlExecTest, OrderByAppliesToGroupedOutput) {
  auto result = ExecuteQuery(
      &session_,
      "SELECT PREDICT_CLASS(scorer) AS cls, COUNT(*) AS n FROM tx "
      "GROUP BY cls ORDER BY n DESC LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  // The single returned group is the most populous one.
  auto all = ExecuteQuery(
      &session_,
      "SELECT PREDICT_CLASS(scorer) AS cls, COUNT(*) AS n FROM tx "
      "GROUP BY cls");
  ASSERT_TRUE(all.ok());
  int64_t max_n = 0;
  for (const Row& row : all->rows) {
    max_n = std::max(max_n, row.value(1).AsInt64());
  }
  EXPECT_EQ(result->rows[0].value(1).AsInt64(), max_n);
}

TEST_F(SqlExecTest, OrderByUnknownColumnFails) {
  EXPECT_TRUE(ExecuteQuery(&session_,
                           "SELECT id FROM tx ORDER BY ghost")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlExecTest, CreateInsertSelectRoundTrip) {
  auto created = ExecuteStatement(
      &session_,
      "CREATE TABLE sensors (id INT64, reading FLOAT64, "
      "embedding FLOAT_VECTOR)");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_FALSE(created->has_rows);
  EXPECT_NE(created->message.find("created"), std::string::npos);

  auto inserted = ExecuteStatement(
      &session_,
      "INSERT INTO sensors VALUES "
      "(1, 20.5, [0.1, 0.2]), (2, 21, [0.3, 0.4])");
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_NE(inserted->message.find("2 rows"), std::string::npos);

  auto rows = ExecuteStatement(
      &session_, "SELECT id, reading FROM sensors WHERE id = 2");
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(rows->has_rows);
  ASSERT_EQ(rows->query.rows.size(), 1u);
  // Int literal 21 was coerced to the FLOAT64 column.
  EXPECT_DOUBLE_EQ(rows->query.rows[0].value(1).AsFloat64(), 21.0);
}

TEST_F(SqlExecTest, ShowModelsListsDeployments) {
  // Nothing deployed yet: the statement succeeds with zero rows.
  auto empty = ExecuteStatement(&session_, "SHOW MODELS");
  ASSERT_TRUE(empty.ok()) << empty.status();
  ASSERT_TRUE(empty->has_rows);
  EXPECT_EQ(empty->query.rows.size(), 0u);

  ASSERT_TRUE(
      session_.Deploy("scorer", ServingMode::kForceRelational, 8)
          .ok());
  auto shown = ExecuteStatement(&session_, "show models");
  ASSERT_TRUE(shown.ok()) << shown.status();
  ASSERT_TRUE(shown->has_rows);
  ASSERT_EQ(shown->query.rows.size(), 1u);
  const Row& row = shown->query.rows[0];
  EXPECT_EQ(row.value(0).AsString(), "scorer");
  EXPECT_EQ(row.value(1).AsInt64(), 1);  // one compiled plan
  // One private deployment: physical == logical, nothing shared yet.
  const int64_t logical = row.value(2).AsInt64();
  const int64_t physical = row.value(3).AsInt64();
  EXPECT_GT(logical, 0);
  EXPECT_EQ(logical, physical);
  EXPECT_EQ(row.value(4).AsInt64(), 0);
  EXPECT_GT(row.value(5).AsInt64(), 0);

  // A second identical model dedups its weight blocks against the
  // first: physical bytes collapse, shared blocks show up.
  auto clone = BuildFFNN("scorer2", {8, 16, 3}, 5);
  ASSERT_TRUE(clone.ok());
  ASSERT_TRUE(session_.RegisterModel(std::move(*clone)).ok());
  ASSERT_TRUE(
      session_.Deploy("scorer2", ServingMode::kForceRelational, 8)
          .ok());
  auto both = ExecuteStatement(&session_, "SHOW MODELS");
  ASSERT_TRUE(both.ok());
  ASSERT_EQ(both->query.rows.size(), 2u);
  const Row& second = both->query.rows[1];
  EXPECT_EQ(second.value(0).AsString(), "scorer2");
  EXPECT_EQ(second.value(3).AsInt64(), 0);  // fully deduped
  EXPECT_EQ(second.value(4).AsInt64(), second.value(5).AsInt64());

  // Trailing garbage is a parse error, not a crash.
  EXPECT_FALSE(ExecuteStatement(&session_, "SHOW MODELS now").ok());
}

TEST_F(SqlExecTest, InsertValidatesSchema) {
  ASSERT_TRUE(ExecuteStatement(&session_,
                               "CREATE TABLE small (id INT64)")
                  .ok());
  // Wrong arity.
  EXPECT_TRUE(ExecuteStatement(&session_,
                               "INSERT INTO small VALUES (1, 2)")
                  .status()
                  .IsInvalidArgument());
  // Wrong type.
  EXPECT_TRUE(ExecuteStatement(&session_,
                               "INSERT INTO small VALUES ('x')")
                  .status()
                  .IsInvalidArgument());
  // Unknown table.
  EXPECT_TRUE(ExecuteStatement(&session_,
                               "INSERT INTO ghost VALUES (1)")
                  .status()
                  .IsNotFound());
  // Duplicate create.
  EXPECT_EQ(ExecuteStatement(&session_, "CREATE TABLE small (id INT64)")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SqlExecTest, ExplainShowsPipelineAndModelPlan) {
  auto result = ExecuteStatement(
      &session_,
      "EXPLAIN SELECT id, PREDICT(scorer) FROM tx WHERE amount > 50 "
      "LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->has_rows);
  EXPECT_NE(result->message.find("SeqScan tx"), std::string::npos);
  EXPECT_NE(result->message.find("Filter:"), std::string::npos);
  EXPECT_NE(result->message.find("Limit: 5"), std::string::npos);
  // The model's per-operator representation decisions are included.
  EXPECT_NE(result->message.find("MatMul"), std::string::npos);
  EXPECT_NE(result->message.find("udf"), std::string::npos);
}

TEST_F(SqlExecTest, ExplainAnalyzeRunsQueryAndShowsStageTimings) {
  auto result = ExecuteStatement(
      &session_,
      "EXPLAIN ANALYZE SELECT id, PREDICT(scorer) FROM tx "
      "WHERE amount > 50 LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->has_rows);
  // The logical pipeline is still rendered...
  EXPECT_NE(result->message.find("SeqScan tx"), std::string::npos)
      << result->message;
  // ...plus the compiled physical plan with executed-stage stats: the
  // query actually ran, so every stage carries calls and timings.
  EXPECT_NE(result->message.find("PhysicalPlan scorer:"),
            std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("calls="), std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("avg_us="), std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("rows="), std::string::npos)
      << result->message;
}

TEST_F(SqlExecTest, PlainExplainDoesNotExecute) {
  auto result = ExecuteStatement(
      &session_, "EXPLAIN SELECT id, PREDICT(scorer) FROM tx");
  ASSERT_TRUE(result.ok()) << result.status();
  // Without ANALYZE the physical stage stats are absent.
  EXPECT_EQ(result->message.find("calls="), std::string::npos)
      << result->message;
}

// --- Columnar layout through SQL -------------------------------------

TEST(ParserTest, StorageClause) {
  auto columnar = ParseStatement(
      "CREATE TABLE t (id INT64) STORAGE COLUMNAR");
  ASSERT_TRUE(columnar.ok());
  EXPECT_TRUE(columnar->create.columnar);
  auto row = ParseStatement("CREATE TABLE t (id INT64) STORAGE ROW");
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE(row->create.columnar);
  auto implicit = ParseStatement("CREATE TABLE t (id INT64)");
  ASSERT_TRUE(implicit.ok());
  EXPECT_FALSE(implicit->create.columnar);
  EXPECT_TRUE(
      ParseStatement("CREATE TABLE t (id INT64) STORAGE PAPER")
          .status()
          .IsInvalidArgument());
  // COLUMNAR/ROW are not reserved: columns may use the names.
  EXPECT_TRUE(
      ParseStatement("CREATE TABLE t (row INT64, columnar INT64)").ok());
}

TEST_F(SqlExecTest, DualPathBitIdentity) {
  ExpectSameResults("SELECT * FROM $T");
  ExpectSameResults("SELECT id FROM $T WHERE amount >= 50 LIMIT 3");
  ExpectSameResults(
      "SELECT id, amount FROM $T WHERE id < 15 AND amount > 20");
  ExpectSameResults(
      "SELECT id FROM $T WHERE id = 3 OR NOT (amount <= 120)");
  ExpectSameResults("SELECT id FROM $T WHERE amount = 50");
  // Typed equality: id is INT64, 3.0 is a float literal — no rows
  // through either path.
  ExpectSameResults("SELECT id FROM $T WHERE id = 3.0");
  ExpectSameResults(
      "SELECT COUNT(*), SUM(amount), AVG(amount) FROM $T "
      "WHERE id < 10");
  ExpectSameResults(
      "SELECT id, amount FROM $T ORDER BY amount DESC LIMIT 4");
  ExpectSameResults("SELECT id FROM $T WHERE amount < -1");
}

TEST_F(SqlExecTest, DualPathPredict) {
  ExpectSameResults(
      "SELECT id, PREDICT(scorer) AS p FROM $T WHERE id < 4");
  ExpectSameResults(
      "SELECT PREDICT_CLASS(scorer) AS cls, COUNT(*) AS n FROM $T "
      "GROUP BY cls ORDER BY cls");
}

TEST_F(SqlExecTest, ColumnarCreateInsertSelectRoundTrip) {
  auto created = ExecuteStatement(
      &session_,
      "CREATE TABLE sensors_col (id INT64, reading FLOAT64, "
      "embedding FLOAT_VECTOR) STORAGE COLUMNAR");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_NE(created->message.find("columnar"), std::string::npos);
  auto* info = *session_.GetTable("sensors_col");
  EXPECT_EQ(info->layout, TableLayout::kColumnar);
  EXPECT_NE(info->columnar, nullptr);
  EXPECT_EQ(info->heap, nullptr);

  auto inserted = ExecuteStatement(
      &session_,
      "INSERT INTO sensors_col VALUES "
      "(1, 20.5, [0.1, 0.2]), (2, 21, [0.3, 0.4])");
  ASSERT_TRUE(inserted.ok()) << inserted.status();

  auto rows = ExecuteStatement(
      &session_, "SELECT id, reading FROM sensors_col WHERE id = 2");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->query.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows->query.rows[0].value(1).AsFloat64(), 21.0);
}

TEST_F(SqlExecTest, ExplainShowsColumnarScan) {
  auto result = ExecuteStatement(
      &session_, "EXPLAIN SELECT id FROM tx_col WHERE amount > 50");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->message.find("ColumnarScan tx_col"),
            std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("fragments"), std::string::npos);
  EXPECT_NE(result->message.find("[columnar-scan]"), std::string::npos);
  EXPECT_NE(result->message.find("[columnar-gather]"),
            std::string::npos);
  // Without ANALYZE no stage counters are rendered.
  EXPECT_EQ(result->message.find("calls="), std::string::npos);
}

TEST_F(SqlExecTest, ExplainAnalyzeRendersColumnarScanStats) {
  auto result = ExecuteStatement(
      &session_,
      "EXPLAIN ANALYZE SELECT id FROM tx_col WHERE amount > 50");
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string& m = result->message;
  EXPECT_NE(m.find("[columnar-scan] scan tx_col"), std::string::npos)
      << m;
  // The execution ANALYZE just performed shows up in the counters:
  // 20 rows decoded, non-zero payload bytes.
  EXPECT_NE(m.find("calls="), std::string::npos) << m;
  EXPECT_NE(m.find("rows=20"), std::string::npos) << m;
  EXPECT_NE(m.find("bytes="), std::string::npos) << m;
  EXPECT_NE(m.find("scan cost:"), std::string::npos) << m;
}

TEST_F(SqlExecTest, ResultToStringRenders) {
  auto result = ExecuteQuery(
      &session_, "SELECT id, amount FROM tx LIMIT 2");
  ASSERT_TRUE(result.ok());
  const std::string text = result->ToString();
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("amount"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace relserve
