// Durability tests for the write-ahead log and ARIES-lite recovery:
// the record codec must round-trip every type, torn tails (simulated
// crashes mid-append, byte corruption, truncated files) must never
// surface as errors or phantom rows, and the crash-point sweep cuts a
// 1k-row ingest log at *every* frame boundary and asserts the
// recovered table equals exactly the committed prefix — zero lost
// committed rows, zero uncommitted ones, zero checksum errors.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "relational/operator.h"
#include "relational/row.h"
#include "serving/serving_session.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk_manager.h"
#include "storage/mvcc.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

// A clean per-test WAL directory under /tmp (the only file the
// session creates inside is relserve.wal).
std::string FreshWalDir(const std::string& name) {
  const std::string dir = "/tmp/relserve_walrec_" + name;
  ::unlink((dir + "/relserve.wal").c_str());
  ::rmdir(dir.c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

ServingConfig WalConfig(const std::string& wal_dir,
                        WalFsyncPolicy policy =
                            WalFsyncPolicy::kEveryCommit) {
  ServingConfig config;
  config.buffer_pool_pages = 256;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  config.wal_dir = wal_dir;
  config.wal_fsync = policy;
  return config;
}

Row MakeRow(int64_t id) {
  const float f = static_cast<float>(id);
  return Row({Value(id),
              Value(std::vector<float>{f, f + 1, f + 2, f + 3})});
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes,
                    size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(n));
}

// The ids of the rows visible at `snap`, in physical ordinal order.
std::vector<int64_t> VisibleIds(TableInfo* table, Version snap) {
  SeqScan scan(table->heap.get(), table->schema);
  scan.set_visibility(table->visibility.get(), snap);
  EXPECT_TRUE(scan.Open().ok());
  std::vector<int64_t> ids;
  Row row;
  while (true) {
    auto more = scan.Next(&row);
    EXPECT_TRUE(more.ok()) << more.status();
    if (!more.ok() || !*more) break;
    ids.push_back(row.values()[0].AsInt64());
  }
  return ids;
}

TEST(WalCodecTest, SchemaRoundTrips) {
  const Schema schema = workloads::FeatureTableSchema();
  std::string wire;
  EncodeSchema(schema, &wire);
  auto back = DecodeSchema(wire.data(), wire.size());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_columns(), schema.num_columns());
  for (int i = 0; i < schema.num_columns(); ++i) {
    EXPECT_EQ(back->column(i).name, schema.column(i).name);
    EXPECT_EQ(back->column(i).type, schema.column(i).type);
  }
}

TEST(WalCodecTest, EveryRecordTypeRoundTrips) {
  std::vector<WalRecord> records;
  {
    WalRecord rec;
    rec.type = WalRecord::Type::kCreateTable;
    rec.lsn = 1;
    rec.txn_id = 9;
    rec.table = "t";
    rec.layout = 1;
    EncodeSchema(workloads::FeatureTableSchema(),
                 &rec.schema_encoding);
    records.push_back(rec);
  }
  {
    WalRecord rec;
    rec.type = WalRecord::Type::kInsert;
    rec.lsn = 2;
    rec.txn_id = 9;
    rec.table = "t";
    MakeRow(41).SerializeTo(&rec.row_bytes);
    records.push_back(rec);
  }
  {
    WalRecord rec;
    rec.type = WalRecord::Type::kUpdate;
    rec.lsn = 3;
    rec.txn_id = 9;
    rec.table = "t";
    rec.ordinal = 17;
    MakeRow(42).SerializeTo(&rec.row_bytes);
    records.push_back(rec);
  }
  {
    WalRecord rec;
    rec.type = WalRecord::Type::kDelete;
    rec.lsn = 4;
    rec.txn_id = 9;
    rec.table = "t";
    rec.ordinal = 3;
    records.push_back(rec);
  }
  {
    WalRecord rec;
    rec.type = WalRecord::Type::kCommit;
    rec.lsn = 5;
    rec.txn_id = 9;
    rec.commit_version = 77;
    rec.op_count = 4;
    records.push_back(rec);
  }

  for (const WalRecord& rec : records) {
    std::string frame;
    EncodeWalRecord(rec, &frame);
    ASSERT_GE(frame.size(), 8u);  // crc + len header
    auto back = DecodeWalPayload(frame.data() + 8, frame.size() - 8);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->type, rec.type);
    EXPECT_EQ(back->lsn, rec.lsn);
    EXPECT_EQ(back->txn_id, rec.txn_id);
    EXPECT_EQ(back->table, rec.table);
    EXPECT_EQ(back->layout, rec.layout);
    EXPECT_EQ(back->schema_encoding, rec.schema_encoding);
    EXPECT_EQ(back->row_bytes, rec.row_bytes);
    EXPECT_EQ(back->ordinal, rec.ordinal);
    EXPECT_EQ(back->commit_version, rec.commit_version);
    EXPECT_EQ(back->op_count, rec.op_count);
  }
}

TEST(WalTest, ReadAllStopsAtCorruptFrameWithIntactPrefix) {
  const std::string dir = FreshWalDir("corrupt");
  const std::string path = dir + "/relserve.wal";
  {
    WalOptions options;
    options.path = path;
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 5; ++i) {
      WalRecord rec;
      rec.type = WalRecord::Type::kInsert;
      rec.txn_id = 1;
      rec.table = "t";
      MakeRow(i).SerializeTo(&rec.row_bytes);
      ASSERT_TRUE((*wal)->Append(rec).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }

  std::vector<int64_t> boundaries;
  auto all = WriteAheadLog::ReadAll(path, nullptr, &boundaries);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 5u);

  // Flip one byte inside the fourth frame's payload: records 1-3 stay
  // trusted, 4-5 are dropped as a torn tail — checksum mismatch is a
  // stop, never an error or a garbage record.
  std::string bytes = ReadFileBytes(path);
  bytes[boundaries[2] + 12] ^= 0x40;
  WriteFileBytes(path, bytes, bytes.size());

  bool torn = false;
  auto after = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(torn);
  ASSERT_EQ(after->size(), 3u);
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ((*after)[i].lsn, i + 1);
  }
}

TEST(WalTest, OpenTruncatesTornTailAndAppendsCleanly) {
  const std::string dir = FreshWalDir("truncate");
  const std::string path = dir + "/relserve.wal";
  {
    WalOptions options;
    options.path = path;
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok());
    WalRecord rec;
    rec.type = WalRecord::Type::kDelete;
    rec.table = "t";
    rec.ordinal = 0;
    ASSERT_TRUE((*wal)->Append(rec).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // A crash mid-append left half a frame behind.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char junk[7] = {99, 99, 99, 99, 99, 99, 99};
    out.write(junk, sizeof(junk));
  }

  {
    auto wal = WriteAheadLog::Open({path});
    ASSERT_TRUE(wal.ok()) << wal.status();
    WalRecord rec;
    rec.type = WalRecord::Type::kDelete;
    rec.table = "t";
    rec.ordinal = 1;
    auto lsn = (*wal)->Append(rec);
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 2u);  // LSNs continue past the truncated garbage
  }
  bool torn = false;
  auto all = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(torn);  // the reopened log never appends after garbage
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[1].ordinal, 1);
}

TEST(WalTest, TornAppendFailpointLeavesRecoverablePrefix) {
  const std::string dir = FreshWalDir("torn_fp");
  const std::string path = dir + "/relserve.wal";
  auto wal = WriteAheadLog::Open({path});
  ASSERT_TRUE(wal.ok());
  WalRecord rec;
  rec.type = WalRecord::Type::kInsert;
  rec.table = "t";
  MakeRow(7).SerializeTo(&rec.row_bytes);
  ASSERT_TRUE((*wal)->Append(rec).ok());
  {
    // The crash simulation: the append persists only a prefix of the
    // frame (and, like a real crash, the writer never learns).
    failpoint::ScopedFailpoint torn_append(
        "wal.append", failpoint::Spec::Torn().Once());
    ASSERT_TRUE((*wal)->Append(rec).ok());
  }
  bool torn = false;
  auto all = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(all->size(), 1u);  // the intact first record survives
  EXPECT_EQ((*all)[0].lsn, 1u);
}

TEST(WalTest, AppendErrorAbortsCommitWithNothingApplied) {
  const std::string dir = FreshWalDir("append_err");
  ServingSession session(WalConfig(dir));
  ASSERT_TRUE(session.wal_status().ok()) << session.wal_status();
  ASSERT_TRUE(
      session.CreateTable("t", workloads::FeatureTableSchema()).ok());
  ASSERT_TRUE(session.IngestRows("t", {MakeRow(0), MakeRow(1)}).ok());
  const Version before = session.PinSnapshot();

  {
    failpoint::ScopedFailpoint fail(
        "wal.append", failpoint::Spec::Error(StatusCode::kIOError));
    const Status status = session.IngestRows("t", {MakeRow(2)});
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsIOError()) << status;
  }
  // Nothing applied, nothing published: the failed transaction is
  // invisible to every snapshot, and the next commit succeeds.
  EXPECT_EQ(session.PinSnapshot(), before);
  auto table = session.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(VisibleIds(*table, session.PinSnapshot()),
            (std::vector<int64_t>{0, 1}));
  ASSERT_TRUE(session.IngestRows("t", {MakeRow(2)}).ok());
  EXPECT_EQ(VisibleIds(*table, session.PinSnapshot()),
            (std::vector<int64_t>{0, 1, 2}));
}

TEST(WalTest, FsyncErrorAbortsCommitWithNothingApplied) {
  const std::string dir = FreshWalDir("fsync_err");
  ServingSession session(WalConfig(dir));
  ASSERT_TRUE(
      session.CreateTable("t", workloads::FeatureTableSchema()).ok());
  {
    failpoint::ScopedFailpoint fail(
        "wal.fsync", failpoint::Spec::Error(StatusCode::kIOError));
    EXPECT_FALSE(session.IngestRows("t", {MakeRow(0)}).ok());
  }
  auto table = session.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(VisibleIds(*table, session.PinSnapshot()).empty());
  ASSERT_TRUE(session.IngestRows("t", {MakeRow(0)}).ok());
  EXPECT_EQ(VisibleIds(*table, session.PinSnapshot()),
            (std::vector<int64_t>{0}));
}

TEST(WalTest, SessionRestartRecoversExactState) {
  const std::string dir = FreshWalDir("restart");
  std::vector<int64_t> expected;
  {
    ServingSession session(WalConfig(dir));
    ASSERT_TRUE(session.wal_status().ok()) << session.wal_status();
    ASSERT_TRUE(
        session.CreateTable("t", workloads::FeatureTableSchema())
            .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 20; ++i) rows.push_back(MakeRow(i));
    ASSERT_TRUE(session.IngestRows("t", rows).ok());
    // One update (ordinal 3 -> id 103) and one delete (ordinal 7).
    WriteOp update;
    update.kind = WriteOp::Kind::kUpdate;
    update.ordinal = 3;
    update.row = MakeRow(103);
    WriteOp del;
    del.kind = WriteOp::Kind::kDelete;
    del.ordinal = 7;
    ASSERT_TRUE(session.ApplyWrite("t", {update, del}).ok());
    auto table = session.GetTable("t");
    ASSERT_TRUE(table.ok());
    expected = VisibleIds(*table, session.PinSnapshot());
  }

  ServingSession revived(WalConfig(dir));
  ASSERT_TRUE(revived.wal_status().ok()) << revived.wal_status();
  const RecoveryStats& stats = revived.recovery_stats();
  EXPECT_EQ(stats.committed_txns, 3);  // create + ingest + update/delete
  EXPECT_EQ(stats.dropped_uncommitted_ops, 0);
  EXPECT_FALSE(stats.torn_tail);
  auto table = revived.GetTable("t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(VisibleIds(*table, revived.PinSnapshot()), expected);

  // The revived session keeps committing where the old one stopped.
  ASSERT_TRUE(revived.IngestRows("t", {MakeRow(500)}).ok());
  auto ids = VisibleIds(*table, revived.PinSnapshot());
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(ids.back(), 500);
}

TEST(WalTest, GroupCommitConcurrentIngestIsDurable) {
  const std::string dir = FreshWalDir("group");
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 8;
  {
    ServingSession session(
        WalConfig(dir, WalFsyncPolicy::kGroupCommit));
    ASSERT_TRUE(
        session.CreateTable("t", workloads::FeatureTableSchema())
            .ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&session, t] {
        for (int i = 0; i < kTxnsPerThread; ++i) {
          ASSERT_TRUE(
              session.IngestRows("t", {MakeRow(t * 100 + i)}).ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // LSNs in the log are consecutive (transactions never interleave)
  // and a restart recovers every committed row.
  bool torn = false;
  auto all = WriteAheadLog::ReadAll(dir + "/relserve.wal", &torn);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(torn);
  for (size_t i = 0; i < all->size(); ++i) {
    EXPECT_EQ((*all)[i].lsn, i + 1);
  }
  ServingSession revived(WalConfig(dir));
  auto table = revived.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(static_cast<int>(
                VisibleIds(*table, revived.PinSnapshot()).size()),
            kThreads * kTxnsPerThread);
}

// The tentpole acceptance test: replay a 1k-row ingest log cut at
// every frame boundary and demand the recovered table be exactly the
// committed prefix — no lost committed row, no phantom uncommitted
// row, no checksum error, at every possible crash point.
TEST(WalRecoveryTest, CrashSweepEveryBoundaryIsPrefixConsistent) {
  const std::string dir = FreshWalDir("sweep_build");
  const std::string path = dir + "/relserve.wal";
  {
    // kNone: the sweep reads file bytes, not durability, and skipping
    // per-commit fsyncs keeps the builder fast.
    ServingSession session(WalConfig(dir, WalFsyncPolicy::kNone));
    ASSERT_TRUE(session.wal_status().ok()) << session.wal_status();
    ASSERT_TRUE(
        session.CreateTable("t", workloads::FeatureTableSchema())
            .ok());
    int64_t next_id = 0;
    for (int txn = 0; txn < 10; ++txn) {
      std::vector<Row> rows;
      for (int i = 0; i < 100; ++i) rows.push_back(MakeRow(next_id++));
      ASSERT_TRUE(session.IngestRows("t", rows).ok());
    }
    // Updates and deletes so the sweep crosses every record type.
    for (int txn = 0; txn < 3; ++txn) {
      std::vector<WriteOp> ops;
      for (int i = 0; i < 5; ++i) {
        WriteOp op;
        op.kind = WriteOp::Kind::kUpdate;
        op.ordinal = txn * 50 + i;
        op.row = MakeRow(10000 + txn * 50 + i);
        ops.push_back(op);
      }
      for (int i = 0; i < 5; ++i) {
        WriteOp op;
        op.kind = WriteOp::Kind::kDelete;
        op.ordinal = txn * 50 + 20 + i;
        ops.push_back(op);
      }
      ASSERT_TRUE(session.ApplyWrite("t", std::move(ops)).ok());
    }
  }

  bool torn = false;
  std::vector<int64_t> boundaries;
  auto records = WriteAheadLog::ReadAll(path, &torn, &boundaries);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_FALSE(torn);
  ASSERT_EQ(records->size(), boundaries.size());
  ASSERT_GT(records->size(), 1000u);  // 1k inserts + DDL/DML + commits
  const std::string bytes = ReadFileBytes(path);
  ASSERT_EQ(static_cast<int64_t>(bytes.size()), boundaries.back());

  const std::string crash_dir = FreshWalDir("sweep_crash");
  const std::string crash_path = crash_dir + "/relserve.wal";

  // Reference state machine: apply each record's effect only once its
  // transaction's kCommit lies inside the prefix.
  struct ModelRow {
    int64_t id;
    bool live;
  };
  std::vector<ModelRow> model;            // committed state
  std::vector<const WalRecord*> pending;  // current txn's ops
  uint64_t pending_txn = 0;

  for (size_t cut = 0; cut <= records->size(); ++cut) {
    const int64_t prefix_bytes = cut == 0 ? 0 : boundaries[cut - 1];
    WriteFileBytes(crash_path, bytes,
                   static_cast<size_t>(prefix_bytes));

    DiskManager disk;
    BufferPool pool(&disk, 256);
    Catalog catalog(&pool);
    VersionClock clock;
    auto stats = RecoverCatalog(crash_path, &catalog, &clock);
    ASSERT_TRUE(stats.ok()) << "cut " << cut << ": " << stats.status();
    ASSERT_FALSE(stats->torn_tail) << "cut " << cut;
    ASSERT_EQ(stats->records_scanned, static_cast<int64_t>(cut));

    std::vector<int64_t> expected;
    for (const ModelRow& r : model) {
      if (r.live) expected.push_back(r.id);
    }
    auto table = catalog.GetTable("t");
    if (!table.ok()) {
      // The create-table commit is not in this prefix yet, so nothing
      // at all may have been recovered.
      ASSERT_TRUE(expected.empty()) << "cut " << cut;
    } else {
      EXPECT_EQ(VisibleIds(*table, clock.LatestPublished()), expected)
          << "cut " << cut;
    }

    // Advance the reference model by the record at index `cut`.
    if (cut == records->size()) break;
    const WalRecord& rec = (*records)[cut];
    switch (rec.type) {
      case WalRecord::Type::kCommit:
        for (const WalRecord* op : pending) {
          switch (op->type) {
            case WalRecord::Type::kInsert: {
              auto row = Row::Deserialize(op->row_bytes.data(),
                                          op->row_bytes.size());
              ASSERT_TRUE(row.ok());
              model.push_back({row->values()[0].AsInt64(), true});
              break;
            }
            case WalRecord::Type::kUpdate: {
              auto row = Row::Deserialize(op->row_bytes.data(),
                                          op->row_bytes.size());
              ASSERT_TRUE(row.ok());
              model[op->ordinal].live = false;
              model.push_back({row->values()[0].AsInt64(), true});
              break;
            }
            case WalRecord::Type::kDelete:
              model[op->ordinal].live = false;
              break;
            default:
              break;  // kCreateTable: no row effect
          }
        }
        pending.clear();
        break;
      default:
        if (pending.empty()) pending_txn = rec.txn_id;
        ASSERT_EQ(rec.txn_id, pending_txn);  // no interleaving
        pending.push_back(&rec);
        break;
    }
  }
}

}  // namespace
}  // namespace relserve
