#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/cpu_features.h"
#include "kernels/kernels.h"
#include "resource/thread_pool.h"

namespace relserve {
namespace {

using kernels::SimdLevel;

// Pins the active SIMD level for one scope; restores detection after.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    installed_ = kernels::SetActiveSimdLevel(level);
  }
  ~ScopedSimdLevel() {
    kernels::SetActiveSimdLevel(kernels::DetectSimdLevel());
  }
  SimdLevel installed() const { return installed_; }

 private:
  SimdLevel installed_;
};

Tensor Make(Shape shape, std::vector<float> values) {
  auto t = Tensor::FromData(std::move(shape), values);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(GemmTest, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Make(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Make(Shape{2, 2}, {5, 6, 7, 8});
  auto c = kernels::MatMul(a, b, /*transpose_b=*/false);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->At(0, 0), 19);
  EXPECT_FLOAT_EQ(c->At(0, 1), 22);
  EXPECT_FLOAT_EQ(c->At(1, 0), 43);
  EXPECT_FLOAT_EQ(c->At(1, 1), 50);
}

TEST(GemmTest, TransposeBMatchesManual) {
  Tensor a = Make(Shape{1, 3}, {1, 2, 3});
  Tensor b = Make(Shape{2, 3}, {4, 5, 6, 7, 8, 9});  // b^T is [3, 2]
  auto c = kernels::MatMul(a, b, /*transpose_b=*/true);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->At(0, 0), 1 * 4 + 2 * 5 + 3 * 6);
  EXPECT_FLOAT_EQ(c->At(0, 1), 1 * 7 + 2 * 8 + 3 * 9);
}

TEST(GemmTest, AccumulateAddsIntoOutput) {
  Tensor a = Make(Shape{1, 1}, {2});
  Tensor b = Make(Shape{1, 1}, {3});
  auto out = Tensor::Full(Shape{1, 1}, 10.0f);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(kernels::GemmInto(a, b, false, /*accumulate=*/true,
                                &*out)
                  .ok());
  EXPECT_FLOAT_EQ(out->At(0, 0), 16.0f);
}

TEST(GemmTest, RejectsDimensionMismatch) {
  Tensor a = Make(Shape{2, 3}, std::vector<float>(6, 1));
  Tensor b = Make(Shape{2, 2}, std::vector<float>(4, 1));
  EXPECT_TRUE(
      kernels::MatMul(a, b, false).status().IsInvalidArgument());
}

TEST(GemmTest, ParallelMatchesSerial) {
  const int64_t m = 64, k = 37, n = 29;
  auto a = Tensor::Create(Shape{m, k});
  auto b = Tensor::Create(Shape{k, n});
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < m * k; ++i) {
    a->data()[i] = std::sin(static_cast<float>(i));
  }
  for (int64_t i = 0; i < k * n; ++i) {
    b->data()[i] = std::cos(static_cast<float>(i));
  }
  auto serial = kernels::MatMul(*a, *b, false);
  ThreadPool pool(4);
  auto parallel = kernels::MatMul(*a, *b, false, nullptr, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_LT(serial->MaxAbsDiff(*parallel), 1e-5f);
}

// The pre-micro-kernel GEMM, kept verbatim as the reference for the
// exhaustive tail-shape matrix: i-k-j accumulation for row-major b,
// per-element dot products for transposed b.
void LegacyGemm(const Tensor& a, const Tensor& b, bool transpose_b,
                bool accumulate, Tensor* out) {
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n =
      transpose_b ? b.shape().dim(0) : b.shape().dim(1);
  const float* a_data = a.data();
  const float* b_data = b.data();
  float* out_data = out->data();
  if (!transpose_b) {
    for (int64_t i = 0; i < m; ++i) {
      float* out_row = out_data + i * n;
      const float* a_row = a_data + i * k;
      if (!accumulate) {
        for (int64_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      }
      for (int64_t kk = 0; kk < k; ++kk) {
        const float a_ik = a_row[kk];
        const float* b_row = b_data + kk * n;
        for (int64_t j = 0; j < n; ++j) out_row[j] += a_ik * b_row[j];
      }
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      const float* a_row = a_data + i * k;
      float* out_row = out_data + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* b_row = b_data + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
        if (accumulate) {
          out_row[j] += acc;
        } else {
          out_row[j] = acc;
        }
      }
    }
  }
}

Tensor DeterministicTensor(Shape shape, float phase) {
  auto t = Tensor::Create(std::move(shape));
  EXPECT_TRUE(t.ok());
  for (int64_t i = 0; i < t->NumElements(); ++i) {
    t->data()[i] = std::sin(phase + 0.37f * static_cast<float>(i));
  }
  return *t;
}

// Every m, n, k tail class the packing layer distinguishes: below one
// register tile, off-by-one around the kMr=6 / kNr=16 tile edges,
// exact multiples, and sizes straddling the kMc=72 macro-tile.
const int64_t kTailDims[] = {1, 3, 7, 15, 17, 64, 100, 129};

// Dispatched-vs-reference agreement over the full tail-shape matrix
// (all transpose/accumulate variants) for both the scalar backend and
// whatever the hardware dispatches. The SIMD path may differ from the
// reference by FMA/reassociation rounding only: tolerance 1e-4
// relative. The scalar backend must match the legacy kernel
// *bit-for-bit* wherever the legacy accumulation was itself the
// single ascending-k chain the micro-kernel uses (everything except
// transposed-b with accumulate, whose legacy form added a separately
// rounded dot product at the end).
TEST(GemmMicroKernelTest, TailShapeMatrixAgainstLegacyReference) {
  const SimdLevel detected = kernels::DetectSimdLevel();
  for (const int64_t m : kTailDims) {
    for (const int64_t n : kTailDims) {
      for (const int64_t k : kTailDims) {
        const Tensor a = DeterministicTensor(Shape{m, k}, 0.1f);
        const Tensor b_plain = DeterministicTensor(Shape{k, n}, 0.9f);
        const Tensor b_trans = DeterministicTensor(Shape{n, k}, 0.9f);
        for (const bool transpose_b : {false, true}) {
          const Tensor& b = transpose_b ? b_trans : b_plain;
          for (const bool accumulate : {false, true}) {
            const Tensor seed =
                DeterministicTensor(Shape{m, n}, 2.3f);
            auto expected = seed.Clone();
            ASSERT_TRUE(expected.ok());
            LegacyGemm(a, b, transpose_b, accumulate, &*expected);
            for (const SimdLevel level :
                 {SimdLevel::kScalar, detected}) {
              ScopedSimdLevel scoped(level);
              auto out = seed.Clone();
              ASSERT_TRUE(out.ok());
              ASSERT_TRUE(kernels::GemmInto(a, b, transpose_b,
                                            accumulate, &*out)
                              .ok());
              const bool exact =
                  level == SimdLevel::kScalar &&
                  !(transpose_b && accumulate);
              for (int64_t i = 0; i < m * n; ++i) {
                const float want = expected->data()[i];
                const float got = out->data()[i];
                if (exact) {
                  ASSERT_EQ(want, got)
                      << "scalar path diverged at " << i << " for m="
                      << m << " n=" << n << " k=" << k
                      << " transpose_b=" << transpose_b
                      << " accumulate=" << accumulate;
                } else {
                  const float tol =
                      1e-4f * std::max(1.0f, std::fabs(want));
                  ASSERT_NEAR(want, got, tol)
                      << "isa=" << kernels::SimdLevelName(level)
                      << " m=" << m << " n=" << n << " k=" << k
                      << " transpose_b=" << transpose_b
                      << " accumulate=" << accumulate;
                }
              }
            }
          }
        }
      }
    }
  }
}

// GemmTransAInto lowers through the same packed layer with trans_a
// packing; its legacy form (ascending rank-1 updates in memory) is
// the flat chain in both accumulate variants, so the scalar backend
// is exact everywhere.
TEST(GemmMicroKernelTest, TransATailShapesAgainstLegacyReference) {
  const SimdLevel detected = kernels::DetectSimdLevel();
  for (const int64_t m : kTailDims) {
    for (const int64_t k : kTailDims) {
      for (const int64_t contraction : kTailDims) {
        const Tensor a = DeterministicTensor(Shape{contraction, m}, 0.2f);
        const Tensor b =
            DeterministicTensor(Shape{contraction, k}, 1.1f);
        for (const bool accumulate : {false, true}) {
          const Tensor seed = DeterministicTensor(Shape{m, k}, 3.1f);
          // Legacy n-i-j rank-1 updates, zero-skip removed.
          auto expected = seed.Clone();
          ASSERT_TRUE(expected.ok());
          if (!accumulate) {
            for (int64_t i = 0; i < m * k; ++i) {
              expected->data()[i] = 0.0f;
            }
          }
          for (int64_t s = 0; s < contraction; ++s) {
            const float* a_row = a.data() + s * m;
            const float* b_row = b.data() + s * k;
            for (int64_t i = 0; i < m; ++i) {
              float* out_row = expected->data() + i * k;
              for (int64_t j = 0; j < k; ++j) {
                out_row[j] += a_row[i] * b_row[j];
              }
            }
          }
          for (const SimdLevel level : {SimdLevel::kScalar, detected}) {
            ScopedSimdLevel scoped(level);
            auto out = seed.Clone();
            ASSERT_TRUE(out.ok());
            ASSERT_TRUE(
                kernels::GemmTransAInto(a, b, accumulate, &*out).ok());
            for (int64_t i = 0; i < m * k; ++i) {
              const float want = expected->data()[i];
              const float got = out->data()[i];
              if (level == SimdLevel::kScalar) {
                ASSERT_EQ(want, got)
                    << "m=" << m << " k=" << k
                    << " n=" << contraction
                    << " accumulate=" << accumulate << " at " << i;
              } else {
                const float tol =
                    1e-4f * std::max(1.0f, std::fabs(want));
                ASSERT_NEAR(want, got, tol)
                    << "m=" << m << " k=" << k
                    << " n=" << contraction
                    << " accumulate=" << accumulate << " at " << i;
              }
            }
          }
        }
      }
    }
  }
}

// Macro-tile parallelism partitions C rows and keeps every element's
// ascending-k chain on one worker, so pooled execution is
// bit-identical to serial on both backends.
TEST(GemmMicroKernelTest, ParallelMacroTilesBitIdenticalToSerial) {
  ThreadPool pool(4);
  const SimdLevel detected = kernels::DetectSimdLevel();
  for (const SimdLevel level : {SimdLevel::kScalar, detected}) {
    ScopedSimdLevel scoped(level);
    // 300 rows = 5 macro-tiles (kMc = 72), with edge tiles in n and k.
    const Tensor a = DeterministicTensor(Shape{300, 129}, 0.4f);
    const Tensor b = DeterministicTensor(Shape{129, 100}, 1.7f);
    auto serial = Tensor::Create(Shape{300, 100});
    auto parallel = Tensor::Create(Shape{300, 100});
    ASSERT_TRUE(serial.ok() && parallel.ok());
    ASSERT_TRUE(
        kernels::GemmInto(a, b, false, false, &*serial).ok());
    ASSERT_TRUE(
        kernels::GemmInto(a, b, false, false, &*parallel, &pool).ok());
    for (int64_t i = 0; i < serial->NumElements(); ++i) {
      ASSERT_EQ(serial->data()[i], parallel->data()[i])
          << "isa=" << kernels::SimdLevelName(level) << " at " << i;
    }
  }
}

// k > kKc exercises the sequential kc-block accumulation into C.
TEST(GemmMicroKernelTest, MultiKcBlockContraction) {
  const Tensor a = DeterministicTensor(Shape{17, 700}, 0.3f);
  const Tensor b = DeterministicTensor(Shape{700, 33}, 1.3f);
  auto expected = Tensor::Create(Shape{17, 33});
  ASSERT_TRUE(expected.ok());
  LegacyGemm(a, b, false, false, &*expected);
  const SimdLevel detected = kernels::DetectSimdLevel();
  for (const SimdLevel level : {SimdLevel::kScalar, detected}) {
    ScopedSimdLevel scoped(level);
    auto out = Tensor::Create(Shape{17, 33});
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(kernels::GemmInto(a, b, false, false, &*out).ok());
    for (int64_t i = 0; i < out->NumElements(); ++i) {
      const float want = expected->data()[i];
      const float tol = 1e-4f * std::max(1.0f, std::fabs(want));
      ASSERT_NEAR(want, out->data()[i], tol)
          << "isa=" << kernels::SimdLevelName(level) << " at " << i;
    }
  }
}

// The elementwise strips dispatch on the same framework; relu, adds
// and bias are exact per-element ops, so backends must agree
// bit-for-bit on them.
TEST(GemmMicroKernelTest, ElementwiseBackendsAgreeExactly) {
  Tensor base = DeterministicTensor(Shape{7, 129}, 0.6f);
  const Tensor bias = DeterministicTensor(Shape{129}, 1.9f);
  const SimdLevel detected = kernels::DetectSimdLevel();

  auto run = [&](SimdLevel level) -> Tensor {
    ScopedSimdLevel scoped(level);
    auto x = base.Clone();
    EXPECT_TRUE(x.ok());
    kernels::ReluInPlace(&*x);
    EXPECT_TRUE(kernels::BiasAddInPlace(&*x, bias).ok());
    EXPECT_TRUE(kernels::AddInPlace(&*x, base).ok());
    return *x;
  };
  const Tensor scalar_out = run(SimdLevel::kScalar);
  const Tensor simd_out = run(detected);
  for (int64_t i = 0; i < scalar_out.NumElements(); ++i) {
    ASSERT_EQ(scalar_out.data()[i], simd_out.data()[i]) << "at " << i;
  }

  // Softmax reassociates only the exp-sum; max and scale are exact.
  auto softmax = [&](SimdLevel level) -> Tensor {
    ScopedSimdLevel scoped(level);
    auto x = base.Clone();
    EXPECT_TRUE(x.ok());
    EXPECT_TRUE(kernels::SoftmaxRowsInPlace(&*x).ok());
    return *x;
  };
  const Tensor soft_scalar = softmax(SimdLevel::kScalar);
  const Tensor soft_simd = softmax(detected);
  EXPECT_LT(soft_scalar.MaxAbsDiff(soft_simd), 1e-6f);
}

TEST(ElementwiseTest, Relu) {
  Tensor x = Make(Shape{4}, {-1, 0, 2, -3});
  kernels::ReluInPlace(&x);
  EXPECT_FLOAT_EQ(x.data()[0], 0);
  EXPECT_FLOAT_EQ(x.data()[1], 0);
  EXPECT_FLOAT_EQ(x.data()[2], 2);
  EXPECT_FLOAT_EQ(x.data()[3], 0);
}

TEST(ElementwiseTest, BiasAddBroadcastsOverRows) {
  Tensor x = Make(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias = Make(Shape{3}, {10, 20, 30});
  ASSERT_TRUE(kernels::BiasAddInPlace(&x, bias).ok());
  EXPECT_FLOAT_EQ(x.At(0, 0), 10);
  EXPECT_FLOAT_EQ(x.At(0, 2), 30);
  EXPECT_FLOAT_EQ(x.At(1, 1), 21);
}

TEST(ElementwiseTest, BiasAddRejectsWidthMismatch) {
  Tensor x = Make(Shape{2, 3}, std::vector<float>(6, 0));
  Tensor bias = Make(Shape{2}, {1, 2});
  EXPECT_TRUE(kernels::BiasAddInPlace(&x, bias).IsInvalidArgument());
}

TEST(ElementwiseTest, SoftmaxRowsSumToOneAndOrderPreserved) {
  Tensor x = Make(Shape{2, 3}, {1, 2, 3, -1, -1, 5});
  ASSERT_TRUE(kernels::SoftmaxRowsInPlace(&x).ok());
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += x.At(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_LT(x.At(0, 0), x.At(0, 2));
  EXPECT_GT(x.At(1, 2), 0.9f);
}

TEST(ElementwiseTest, SoftmaxIsStableForLargeLogits) {
  Tensor x = Make(Shape{1, 2}, {1000.0f, 1001.0f});
  ASSERT_TRUE(kernels::SoftmaxRowsInPlace(&x).ok());
  EXPECT_FALSE(std::isnan(x.At(0, 0)));
  EXPECT_NEAR(x.At(0, 0) + x.At(0, 1), 1.0f, 1e-5f);
}

TEST(ElementwiseTest, AddInPlace) {
  Tensor a = Make(Shape{3}, {1, 2, 3});
  Tensor b = Make(Shape{3}, {10, 20, 30});
  ASSERT_TRUE(kernels::AddInPlace(&a, b).ok());
  EXPECT_FLOAT_EQ(a.data()[2], 33);
}

TEST(ElementwiseTest, ArgMaxRows) {
  Tensor x = Make(Shape{2, 3}, {0.1f, 0.7f, 0.2f, 5, 1, 2});
  auto argmax = kernels::ArgMaxRows(x);
  EXPECT_EQ(argmax[0], 1);
  EXPECT_EQ(argmax[1], 0);
}

TEST(Im2ColTest, OneByOneKernelIsReshape) {
  // With a 1x1 kernel, im2col is the [h*w, c] flattening the paper
  // describes for LandCover.
  Tensor image = Make(Shape{2, 2, 3},
                      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  auto cols = kernels::Im2Col(image, 1, 1, 1);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->shape(), (Shape{4, 3}));
  EXPECT_FLOAT_EQ(cols->At(0, 0), 1);
  EXPECT_FLOAT_EQ(cols->At(3, 2), 12);
}

TEST(Im2ColTest, TwoByTwoPatchLayout) {
  // 3x3 single-channel image, 2x2 kernel, stride 1 -> 4 patches.
  Tensor image = Make(Shape{3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto cols = kernels::Im2Col(image, 2, 2, 1);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->shape(), (Shape{4, 4}));
  // Patch at (0,0): 1 2 4 5.
  EXPECT_FLOAT_EQ(cols->At(0, 0), 1);
  EXPECT_FLOAT_EQ(cols->At(0, 1), 2);
  EXPECT_FLOAT_EQ(cols->At(0, 2), 4);
  EXPECT_FLOAT_EQ(cols->At(0, 3), 5);
  // Patch at (1,1): 5 6 8 9.
  EXPECT_FLOAT_EQ(cols->At(3, 0), 5);
  EXPECT_FLOAT_EQ(cols->At(3, 3), 9);
}

TEST(Im2ColTest, RowRangeMatchesFull) {
  auto image = Tensor::Create(Shape{5, 4, 2});
  ASSERT_TRUE(image.ok());
  for (int64_t i = 0; i < image->NumElements(); ++i) {
    image->data()[i] = static_cast<float>(i);
  }
  auto full = kernels::Im2Col(*image, 2, 2, 1);
  ASSERT_TRUE(full.ok());
  const int64_t rows = full->shape().dim(0);
  const int64_t patch = full->shape().dim(1);
  for (int64_t lo = 0; lo < rows; lo += 3) {
    const int64_t hi = std::min(rows, lo + 3);
    auto part = Tensor::Create(Shape{hi - lo, patch});
    ASSERT_TRUE(part.ok());
    ASSERT_TRUE(
        kernels::Im2ColRowsInto(*image, 2, 2, 1, lo, hi, &*part).ok());
    for (int64_t r = lo; r < hi; ++r) {
      for (int64_t c = 0; c < patch; ++c) {
        EXPECT_FLOAT_EQ(part->At(r - lo, c), full->At(r, c));
      }
    }
  }
}

TEST(Conv2DTest, IdentityOneByOneKernel) {
  // One output channel copying input channel 0.
  Tensor image = Make(Shape{1, 2, 2, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  Tensor kernel = Make(Shape{1, 1, 1, 2}, {1, 0});
  auto out = kernels::Conv2D(image, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out->data()[0], 1);
  EXPECT_FLOAT_EQ(out->data()[3], 4);
}

TEST(Conv2DTest, SumKernelComputesWindowSums) {
  Tensor image = Make(Shape{1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor kernel = Make(Shape{1, 2, 2, 1}, {1, 1, 1, 1});
  auto out = kernels::Conv2D(image, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out->data()[0], 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out->data()[3], 5 + 6 + 8 + 9);
}

TEST(Conv2DTest, StrideTwoShrinksOutput) {
  auto image = Tensor::Zeros(Shape{1, 5, 5, 1});
  Tensor kernel = Make(Shape{1, 1, 1, 1}, {1});
  auto out = kernels::Conv2D(*image, kernel, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 3, 3, 1}));
}

TEST(Conv2DTest, BatchIsPerImage) {
  Tensor image = Make(Shape{2, 1, 1, 1}, {2, 5});
  Tensor kernel = Make(Shape{1, 1, 1, 1}, {3});
  auto out = kernels::Conv2D(image, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->data()[0], 6);
  EXPECT_FLOAT_EQ(out->data()[1], 15);
}

TEST(MaxPoolTest, TakesWindowMax) {
  Tensor image = Make(Shape{1, 2, 2, 1}, {1, 5, 3, 2});
  auto out = kernels::MaxPool2x2(image);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out->data()[0], 5);
}

TEST(MaxPoolTest, PerChannel) {
  Tensor image =
      Make(Shape{1, 2, 2, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  auto out = kernels::MaxPool2x2(image);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->data()[0], 4);
  EXPECT_FLOAT_EQ(out->data()[1], 40);
}

}  // namespace
}  // namespace relserve
