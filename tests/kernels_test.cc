#include <gtest/gtest.h>

#include <cmath>

#include "kernels/kernels.h"
#include "resource/thread_pool.h"

namespace relserve {
namespace {

Tensor Make(Shape shape, std::vector<float> values) {
  auto t = Tensor::FromData(std::move(shape), values);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(GemmTest, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Make(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Make(Shape{2, 2}, {5, 6, 7, 8});
  auto c = kernels::MatMul(a, b, /*transpose_b=*/false);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->At(0, 0), 19);
  EXPECT_FLOAT_EQ(c->At(0, 1), 22);
  EXPECT_FLOAT_EQ(c->At(1, 0), 43);
  EXPECT_FLOAT_EQ(c->At(1, 1), 50);
}

TEST(GemmTest, TransposeBMatchesManual) {
  Tensor a = Make(Shape{1, 3}, {1, 2, 3});
  Tensor b = Make(Shape{2, 3}, {4, 5, 6, 7, 8, 9});  // b^T is [3, 2]
  auto c = kernels::MatMul(a, b, /*transpose_b=*/true);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->At(0, 0), 1 * 4 + 2 * 5 + 3 * 6);
  EXPECT_FLOAT_EQ(c->At(0, 1), 1 * 7 + 2 * 8 + 3 * 9);
}

TEST(GemmTest, AccumulateAddsIntoOutput) {
  Tensor a = Make(Shape{1, 1}, {2});
  Tensor b = Make(Shape{1, 1}, {3});
  auto out = Tensor::Full(Shape{1, 1}, 10.0f);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(kernels::GemmInto(a, b, false, /*accumulate=*/true,
                                &*out)
                  .ok());
  EXPECT_FLOAT_EQ(out->At(0, 0), 16.0f);
}

TEST(GemmTest, RejectsDimensionMismatch) {
  Tensor a = Make(Shape{2, 3}, std::vector<float>(6, 1));
  Tensor b = Make(Shape{2, 2}, std::vector<float>(4, 1));
  EXPECT_TRUE(
      kernels::MatMul(a, b, false).status().IsInvalidArgument());
}

TEST(GemmTest, ParallelMatchesSerial) {
  const int64_t m = 64, k = 37, n = 29;
  auto a = Tensor::Create(Shape{m, k});
  auto b = Tensor::Create(Shape{k, n});
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < m * k; ++i) {
    a->data()[i] = std::sin(static_cast<float>(i));
  }
  for (int64_t i = 0; i < k * n; ++i) {
    b->data()[i] = std::cos(static_cast<float>(i));
  }
  auto serial = kernels::MatMul(*a, *b, false);
  ThreadPool pool(4);
  auto parallel = kernels::MatMul(*a, *b, false, nullptr, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_LT(serial->MaxAbsDiff(*parallel), 1e-5f);
}

TEST(ElementwiseTest, Relu) {
  Tensor x = Make(Shape{4}, {-1, 0, 2, -3});
  kernels::ReluInPlace(&x);
  EXPECT_FLOAT_EQ(x.data()[0], 0);
  EXPECT_FLOAT_EQ(x.data()[1], 0);
  EXPECT_FLOAT_EQ(x.data()[2], 2);
  EXPECT_FLOAT_EQ(x.data()[3], 0);
}

TEST(ElementwiseTest, BiasAddBroadcastsOverRows) {
  Tensor x = Make(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias = Make(Shape{3}, {10, 20, 30});
  ASSERT_TRUE(kernels::BiasAddInPlace(&x, bias).ok());
  EXPECT_FLOAT_EQ(x.At(0, 0), 10);
  EXPECT_FLOAT_EQ(x.At(0, 2), 30);
  EXPECT_FLOAT_EQ(x.At(1, 1), 21);
}

TEST(ElementwiseTest, BiasAddRejectsWidthMismatch) {
  Tensor x = Make(Shape{2, 3}, std::vector<float>(6, 0));
  Tensor bias = Make(Shape{2}, {1, 2});
  EXPECT_TRUE(kernels::BiasAddInPlace(&x, bias).IsInvalidArgument());
}

TEST(ElementwiseTest, SoftmaxRowsSumToOneAndOrderPreserved) {
  Tensor x = Make(Shape{2, 3}, {1, 2, 3, -1, -1, 5});
  ASSERT_TRUE(kernels::SoftmaxRowsInPlace(&x).ok());
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += x.At(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_LT(x.At(0, 0), x.At(0, 2));
  EXPECT_GT(x.At(1, 2), 0.9f);
}

TEST(ElementwiseTest, SoftmaxIsStableForLargeLogits) {
  Tensor x = Make(Shape{1, 2}, {1000.0f, 1001.0f});
  ASSERT_TRUE(kernels::SoftmaxRowsInPlace(&x).ok());
  EXPECT_FALSE(std::isnan(x.At(0, 0)));
  EXPECT_NEAR(x.At(0, 0) + x.At(0, 1), 1.0f, 1e-5f);
}

TEST(ElementwiseTest, AddInPlace) {
  Tensor a = Make(Shape{3}, {1, 2, 3});
  Tensor b = Make(Shape{3}, {10, 20, 30});
  ASSERT_TRUE(kernels::AddInPlace(&a, b).ok());
  EXPECT_FLOAT_EQ(a.data()[2], 33);
}

TEST(ElementwiseTest, ArgMaxRows) {
  Tensor x = Make(Shape{2, 3}, {0.1f, 0.7f, 0.2f, 5, 1, 2});
  auto argmax = kernels::ArgMaxRows(x);
  EXPECT_EQ(argmax[0], 1);
  EXPECT_EQ(argmax[1], 0);
}

TEST(Im2ColTest, OneByOneKernelIsReshape) {
  // With a 1x1 kernel, im2col is the [h*w, c] flattening the paper
  // describes for LandCover.
  Tensor image = Make(Shape{2, 2, 3},
                      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  auto cols = kernels::Im2Col(image, 1, 1, 1);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->shape(), (Shape{4, 3}));
  EXPECT_FLOAT_EQ(cols->At(0, 0), 1);
  EXPECT_FLOAT_EQ(cols->At(3, 2), 12);
}

TEST(Im2ColTest, TwoByTwoPatchLayout) {
  // 3x3 single-channel image, 2x2 kernel, stride 1 -> 4 patches.
  Tensor image = Make(Shape{3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto cols = kernels::Im2Col(image, 2, 2, 1);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->shape(), (Shape{4, 4}));
  // Patch at (0,0): 1 2 4 5.
  EXPECT_FLOAT_EQ(cols->At(0, 0), 1);
  EXPECT_FLOAT_EQ(cols->At(0, 1), 2);
  EXPECT_FLOAT_EQ(cols->At(0, 2), 4);
  EXPECT_FLOAT_EQ(cols->At(0, 3), 5);
  // Patch at (1,1): 5 6 8 9.
  EXPECT_FLOAT_EQ(cols->At(3, 0), 5);
  EXPECT_FLOAT_EQ(cols->At(3, 3), 9);
}

TEST(Im2ColTest, RowRangeMatchesFull) {
  auto image = Tensor::Create(Shape{5, 4, 2});
  ASSERT_TRUE(image.ok());
  for (int64_t i = 0; i < image->NumElements(); ++i) {
    image->data()[i] = static_cast<float>(i);
  }
  auto full = kernels::Im2Col(*image, 2, 2, 1);
  ASSERT_TRUE(full.ok());
  const int64_t rows = full->shape().dim(0);
  const int64_t patch = full->shape().dim(1);
  for (int64_t lo = 0; lo < rows; lo += 3) {
    const int64_t hi = std::min(rows, lo + 3);
    auto part = Tensor::Create(Shape{hi - lo, patch});
    ASSERT_TRUE(part.ok());
    ASSERT_TRUE(
        kernels::Im2ColRowsInto(*image, 2, 2, 1, lo, hi, &*part).ok());
    for (int64_t r = lo; r < hi; ++r) {
      for (int64_t c = 0; c < patch; ++c) {
        EXPECT_FLOAT_EQ(part->At(r - lo, c), full->At(r, c));
      }
    }
  }
}

TEST(Conv2DTest, IdentityOneByOneKernel) {
  // One output channel copying input channel 0.
  Tensor image = Make(Shape{1, 2, 2, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  Tensor kernel = Make(Shape{1, 1, 1, 2}, {1, 0});
  auto out = kernels::Conv2D(image, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out->data()[0], 1);
  EXPECT_FLOAT_EQ(out->data()[3], 4);
}

TEST(Conv2DTest, SumKernelComputesWindowSums) {
  Tensor image = Make(Shape{1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor kernel = Make(Shape{1, 2, 2, 1}, {1, 1, 1, 1});
  auto out = kernels::Conv2D(image, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out->data()[0], 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out->data()[3], 5 + 6 + 8 + 9);
}

TEST(Conv2DTest, StrideTwoShrinksOutput) {
  auto image = Tensor::Zeros(Shape{1, 5, 5, 1});
  Tensor kernel = Make(Shape{1, 1, 1, 1}, {1});
  auto out = kernels::Conv2D(*image, kernel, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 3, 3, 1}));
}

TEST(Conv2DTest, BatchIsPerImage) {
  Tensor image = Make(Shape{2, 1, 1, 1}, {2, 5});
  Tensor kernel = Make(Shape{1, 1, 1, 1}, {3});
  auto out = kernels::Conv2D(image, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->data()[0], 6);
  EXPECT_FLOAT_EQ(out->data()[1], 15);
}

TEST(MaxPoolTest, TakesWindowMax) {
  Tensor image = Make(Shape{1, 2, 2, 1}, {1, 5, 3, 2});
  auto out = kernels::MaxPool2x2(image);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out->data()[0], 5);
}

TEST(MaxPoolTest, PerChannel) {
  Tensor image =
      Make(Shape{1, 2, 2, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  auto out = kernels::MaxPool2x2(image);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->data()[0], 4);
  EXPECT_FLOAT_EQ(out->data()[1], 40);
}

}  // namespace
}  // namespace relserve
