#include <gtest/gtest.h>

#include <cmath>

#include "relational/operator.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : session_(ServingConfig{}) {}
  ServingSession session_;
};

TEST_F(WorkloadsTest, FeatureTableHasRequestedShape) {
  auto table = session_.CreateTable("t", workloads::FeatureTableSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(workloads::FillFeatureTable(*table, 50, 28, 1).ok());
  EXPECT_EQ((*table)->heap->num_records(), 50);
  SeqScan scan((*table)->heap.get(), (*table)->schema);
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 50u);
  EXPECT_EQ((*rows)[0].value(1).AsFloatVector().size(), 28u);
  EXPECT_EQ((*rows)[49].value(0).AsInt64(), 49);
}

TEST_F(WorkloadsTest, GenerationIsDeterministic) {
  auto t1 = session_.CreateTable("a", workloads::FeatureTableSchema());
  auto t2 = session_.CreateTable("b", workloads::FeatureTableSchema());
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(workloads::FillFeatureTable(*t1, 10, 4, 99).ok());
  ASSERT_TRUE(workloads::FillFeatureTable(*t2, 10, 4, 99).ok());
  SeqScan s1((*t1)->heap.get(), (*t1)->schema);
  SeqScan s2((*t2)->heap.get(), (*t2)->schema);
  auto r1 = Collect(&s1);
  auto r2 = Collect(&s2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i], (*r2)[i]);
  }
}

TEST_F(WorkloadsTest, BoschPartitionsShareCorrelatedKeys) {
  auto d1 = session_.CreateTable("d1", workloads::PartitionedTableSchema());
  auto d2 = session_.CreateTable("d2", workloads::PartitionedTableSchema());
  ASSERT_TRUE(d1.ok() && d2.ok());
  ASSERT_TRUE(
      workloads::FillBoschPartitions(*d1, *d2, 100, 16, 0.05, 7).ok());
  EXPECT_EQ((*d1)->heap->num_records(), 100);
  EXPECT_EQ((*d2)->heap->num_records(), 100);
  // Same-row keys must be close (jitter is small vs the key range).
  SeqScan s1((*d1)->heap.get(), (*d1)->schema);
  SeqScan s2((*d2)->heap.get(), (*d2)->schema);
  auto r1 = Collect(&s1);
  auto r2 = Collect(&s2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  for (size_t i = 0; i < r1->size(); ++i) {
    const double k1 = (*r1)[i].value(1).AsFloat64();
    const double k2 = (*r2)[i].value(1).AsFloat64();
    EXPECT_LT(std::fabs(k1 - k2), 1.0);
  }
}

TEST_F(WorkloadsTest, BoschSimilarityJoinProducesMatches) {
  auto d1 = session_.CreateTable("d1", workloads::PartitionedTableSchema());
  auto d2 = session_.CreateTable("d2", workloads::PartitionedTableSchema());
  ASSERT_TRUE(d1.ok() && d2.ok());
  ASSERT_TRUE(
      workloads::FillBoschPartitions(*d1, *d2, 200, 8, 0.05, 3).ok());
  auto left = std::make_unique<SeqScan>((*d1)->heap.get(), (*d1)->schema);
  auto right = std::make_unique<SeqScan>((*d2)->heap.get(), (*d2)->schema);
  SimilarityJoin join(std::move(left), std::move(right), 1, 1, 0.2);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // Every row should at least match its own partner (jitter << eps).
  EXPECT_GE(static_cast<int64_t>(rows->size()), 180);
}

TEST_F(WorkloadsTest, ClusteredDataLabelsMatchCenters) {
  auto data = workloads::GenClusteredData(500, 16, 10, 0.01f, 5);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->features.shape(), (Shape{500, 16}));
  ASSERT_EQ(data->labels.size(), 500u);
  // Samples with the same label are near each other; different labels
  // are (with overwhelming probability in 16-d) farther apart.
  int same_label_pairs = 0;
  double same_dist = 0, diff_dist = 0;
  int diff_label_pairs = 0;
  const float* f = data->features.data();
  for (int i = 0; i < 100; ++i) {
    for (int j = i + 1; j < 100; ++j) {
      double d = 0;
      for (int k = 0; k < 16; ++k) {
        const double diff = f[i * 16 + k] - f[j * 16 + k];
        d += diff * diff;
      }
      if (data->labels[i] == data->labels[j]) {
        same_dist += std::sqrt(d);
        ++same_label_pairs;
      } else {
        diff_dist += std::sqrt(d);
        ++diff_label_pairs;
      }
    }
  }
  ASSERT_GT(same_label_pairs, 0);
  ASSERT_GT(diff_label_pairs, 0);
  EXPECT_LT(same_dist / same_label_pairs,
            0.25 * diff_dist / diff_label_pairs);
}

TEST_F(WorkloadsTest, GenBatchShape) {
  auto batch = workloads::GenBatch(3, Shape{4, 5}, 1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->shape(), (Shape{3, 4, 5}));
  MemoryTracker tiny("t", 8);
  EXPECT_TRUE(workloads::GenBatch(100, Shape{100}, 1, &tiny)
                  .status()
                  .IsOutOfMemory());
}

}  // namespace
}  // namespace relserve
