#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace relserve {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::OutOfMemory("arena full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "arena full");
  EXPECT_EQ(s.ToString(), "OutOfMemory: arena full");
}

TEST(StatusTest, PredicatesAreExclusive) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsOutOfMemory());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfMemory), "OutOfMemory");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented),
               "NotImplemented");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    RELSERVE_RETURN_NOT_OK(Status::IOError("disk gone"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);

  auto succeeds = []() -> Status {
    RELSERVE_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> {
    return Status::OutOfMemory("full");
  };
  auto outer = [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsOutOfMemory());
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto inner = []() -> Result<int> { return 41; };
  auto outer = [&]() -> Result<int> {
    RELSERVE_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(*outer(), 42);
}

}  // namespace
}  // namespace relserve
