#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/physical_block_index.h"
#include "storage/disk_manager.h"
#include "storage/quantize.h"
#include "storage/table_heap.h"

namespace relserve {
namespace {

TEST(DiskManagerTest, RoundTripsPages) {
  DiskManager disk;
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  EXPECT_NE(a, b);
  std::vector<char> buf(kPageSize, 'x');
  ASSERT_TRUE(disk.WritePage(a, buf.data()).ok());
  std::vector<char> buf2(kPageSize, 'y');
  ASSERT_TRUE(disk.WritePage(b, buf2.data()).ok());
  std::vector<char> out(kPageSize);
  ASSERT_TRUE(disk.ReadPage(a, out.data()).ok());
  EXPECT_EQ(out[0], 'x');
  ASSERT_TRUE(disk.ReadPage(b, out.data()).ok());
  EXPECT_EQ(out[kPageSize - 1], 'y');
}

TEST(DiskManagerTest, UnwrittenPageReadsZeros) {
  DiskManager disk;
  const PageId p = disk.AllocatePage();
  std::vector<char> out(kPageSize, 'z');
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[kPageSize - 1], 0);
}

TEST(BufferPoolTest, NewPageIsPinnedAndWritable) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageId id = kInvalidPageId;
  auto page = pool.NewPage(&id);
  ASSERT_TRUE(page.ok());
  (*page)[0] = 'a';
  ASSERT_TRUE(pool.UnpinPage(id, /*dirty=*/true).ok());
  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)[0], 'a');
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
}

TEST(BufferPoolTest, EvictsLruAndReloadsFromDisk) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  std::vector<PageId> ids(4);
  for (int i = 0; i < 4; ++i) {
    auto page = pool.NewPage(&ids[i]);
    ASSERT_TRUE(page.ok());
    (*page)[0] = static_cast<char>('a' + i);
    ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
  }
  // Pages 0 and 1 must have been evicted (capacity 2).
  EXPECT_GE(pool.stats().evictions, 2);
  for (int i = 0; i < 4; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)[0], static_cast<char>('a' + i)) << "page " << i;
    ASSERT_TRUE(pool.UnpinPage(ids[i], false).ok());
  }
}

TEST(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageId a, b, c;
  ASSERT_TRUE(pool.NewPage(&a).ok());  // stays pinned
  ASSERT_TRUE(pool.NewPage(&b).ok());  // stays pinned
  EXPECT_TRUE(pool.NewPage(&c).status().IsOutOfMemory());
  ASSERT_TRUE(pool.UnpinPage(b, false).ok());
  EXPECT_TRUE(pool.NewPage(&c).ok());  // b's frame is reusable now
}

TEST(BufferPoolTest, UnpinErrorsOnBadPage) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  EXPECT_TRUE(pool.UnpinPage(123, false).IsNotFound());
  PageId a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  EXPECT_FALSE(pool.UnpinPage(a, false).ok());  // double unpin
}

TEST(BufferPoolTest, HitsAndMissesAreCounted) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageId a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.UnpinPage(a, true).ok());
  ASSERT_TRUE(pool.FetchPage(a).ok());  // hit
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  EXPECT_EQ(pool.stats().hits, 1);
}

TEST(TableHeapTest, AppendAndScan) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  TableHeap heap(&pool);
  for (int i = 0; i < 100; ++i) {
    std::string record = "record-" + std::to_string(i);
    ASSERT_TRUE(heap.Append(record).ok());
  }
  EXPECT_EQ(heap.num_records(), 100);
  int seen = 0;
  ASSERT_TRUE(heap.Scan([&](const char* data, int64_t size) {
                    EXPECT_EQ(std::string(data, size),
                              "record-" + std::to_string(seen));
                    ++seen;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, 100);
}

TEST(TableHeapTest, SpillsAcrossPagesAndSurvivesEviction) {
  DiskManager disk;
  BufferPool pool(&disk, 2);  // tiny pool forces spilling
  TableHeap heap(&pool);
  const std::string big(10000, 'x');  // ~6 records per 64K page
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap.Append(big + std::to_string(i)).ok());
  }
  EXPECT_GT(heap.num_pages(), 2);  // more pages than frames
  int seen = 0;
  ASSERT_TRUE(heap.Scan([&](const char* data, int64_t size) {
                    EXPECT_EQ(std::string(data + 10000, size - 10000),
                              std::to_string(seen));
                    ++seen;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, 50);
}

TEST(TableHeapTest, OversizeRecordsGoToOverflowPages) {
  DiskManager disk;
  BufferPool pool(&disk, 4);  // smaller than one overflow chain
  TableHeap heap(&pool);
  // A 3-page record (like a wide image row), between normal records.
  std::string huge(3 * kPageSize + 123, 'x');
  huge[0] = 'A';
  huge[huge.size() - 1] = 'Z';
  ASSERT_TRUE(heap.Append("before").ok());
  ASSERT_TRUE(heap.Append(huge).ok());
  ASSERT_TRUE(heap.Append("after").ok());
  EXPECT_EQ(heap.num_records(), 3);
  std::vector<std::string> seen;
  ASSERT_TRUE(heap.Scan([&](const char* data, int64_t size) {
                    seen.emplace_back(data, size);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "before");
  EXPECT_EQ(seen[1], huge);
  EXPECT_EQ(seen[2], "after");
}

TEST(TableHeapTest, ManyOverflowRecordsSurviveEviction) {
  DiskManager disk;
  BufferPool pool(&disk, 3);
  TableHeap heap(&pool);
  for (int i = 0; i < 10; ++i) {
    std::string big(kPageSize + 100, static_cast<char>('a' + i));
    ASSERT_TRUE(heap.Append(big).ok());
  }
  int i = 0;
  ASSERT_TRUE(heap.Scan([&](const char* data, int64_t size) {
                    EXPECT_EQ(size, kPageSize + 100);
                    EXPECT_EQ(data[0], static_cast<char>('a' + i));
                    ++i;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(i, 10);
}

TEST(TableHeapTest, ReadPageRecords) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  TableHeap heap(&pool);
  ASSERT_TRUE(heap.Append("a").ok());
  ASSERT_TRUE(heap.Append("bb").ok());
  std::vector<std::string> records;
  ASSERT_TRUE(heap.ReadPageRecords(0, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "a");
  EXPECT_EQ(records[1], "bb");
  EXPECT_TRUE(heap.ReadPageRecords(5, &records).IsInvalidArgument());
}

TEST(BlockStoreTest, PutGetRoundTrip) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  auto m = Tensor::Create(Shape{10, 8});
  ASSERT_TRUE(m.ok());
  for (int64_t i = 0; i < 80; ++i) m->data()[i] = static_cast<float>(i);
  BlockStore store(&pool, BlockedShape{10, 8, 4, 4});
  ASSERT_TRUE(store.PutMatrix(*m).ok());
  EXPECT_EQ(store.entries().size(), 3u * 2u);
  auto back = store.ToMatrix();
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(m->MaxAbsDiff(*back), 0.0f);
}

TEST(BlockStoreTest, BlocksLargerThanOnePage) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  // 200x200 block = 160 KB > 64 KB page: payload must span pages.
  auto m = Tensor::Create(Shape{200, 200});
  ASSERT_TRUE(m.ok());
  for (int64_t i = 0; i < m->NumElements(); ++i) {
    m->data()[i] = static_cast<float>(i % 1000);
  }
  BlockStore store(&pool, BlockedShape{200, 200, 200, 200});
  ASSERT_TRUE(store.PutMatrix(*m).ok());
  ASSERT_EQ(store.entries().size(), 1u);
  EXPECT_GT(store.entries()[0].pages.size(), 1u);
  auto block = store.Get(store.entries()[0]);
  ASSERT_TRUE(block.ok());
  EXPECT_FLOAT_EQ(block->data.MaxAbsDiff(*m), 0.0f);
}

TEST(BlockStoreTest, SurvivesPoolPressure) {
  DiskManager disk;
  BufferPool pool(&disk, 2);  // much smaller than the data
  auto m = Tensor::Create(Shape{64, 64});
  ASSERT_TRUE(m.ok());
  for (int64_t i = 0; i < m->NumElements(); ++i) {
    m->data()[i] = static_cast<float>(i);
  }
  BlockStore store(&pool, BlockedShape{64, 64, 16, 16});
  ASSERT_TRUE(store.PutMatrix(*m).ok());
  auto back = store.ToMatrix();
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(m->MaxAbsDiff(*back), 0.0f);
  EXPECT_GT(pool.stats().evictions, 0);
}

TEST(BlockStoreTest, TotalBytesSumsPayloads) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  auto m = Tensor::Zeros(Shape{8, 8});
  BlockStore store(&pool, BlockedShape{8, 8, 4, 4});
  ASSERT_TRUE(store.PutMatrix(*m).ok());
  EXPECT_EQ(store.TotalBytes(), 8 * 8 * 4);
}

TEST(DiskManagerTest, FreedPagesAreRecycled) {
  DiskManager disk;
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  disk.FreePage(a);
  EXPECT_EQ(disk.num_free(), 1);
  EXPECT_EQ(disk.AllocatePage(), a);  // recycled, not a fresh id
  EXPECT_EQ(disk.num_free(), 0);
  const PageId c = disk.AllocatePage();
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
}

TEST(BufferPoolTest, DeletePageEvictsResidentCopyAndRecycles) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageId id;
  ASSERT_TRUE(pool.NewPage(&id).ok());
  // Pinned pages cannot be deleted.
  EXPECT_FALSE(pool.DeletePage(id).ok());
  ASSERT_TRUE(pool.UnpinPage(id, true).ok());
  ASSERT_TRUE(pool.DeletePage(id).ok());
  EXPECT_EQ(disk.num_free(), 1);
  // The freed id comes back for the next page.
  PageId again;
  ASSERT_TRUE(pool.NewPage(&again).ok());
  EXPECT_EQ(again, id);
  ASSERT_TRUE(pool.UnpinPage(again, false).ok());
}

TEST(BlockStoreTest, DroppedStoreRecyclesItsPages) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  auto m = Tensor::Zeros(Shape{16, 16});
  ASSERT_TRUE(m.ok());
  const int64_t allocated_before = disk.num_allocated();
  {
    BlockStore store(&pool, BlockedShape{16, 16, 8, 8});
    ASSERT_TRUE(store.PutMatrix(*m).ok());
  }
  const int64_t allocated_after_first = disk.num_allocated();
  // A second identical store reuses the freed pages: the high-water
  // mark does not grow.
  {
    BlockStore store(&pool, BlockedShape{16, 16, 8, 8});
    ASSERT_TRUE(store.PutMatrix(*m).ok());
    auto back = store.ToMatrix();
    ASSERT_TRUE(back.ok());
    EXPECT_FLOAT_EQ(m->MaxAbsDiff(*back), 0.0f);
  }
  EXPECT_EQ(disk.num_allocated(), allocated_after_first);
  EXPECT_GT(allocated_after_first, allocated_before);
}

TEST(CatalogTest, TablesAndTensorRelations) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  Catalog catalog(&pool);
  Schema schema({{"id", ValueType::kInt64}});
  ASSERT_TRUE(catalog.CreateTable("t", schema).ok());
  EXPECT_TRUE(catalog.CreateTable("t", schema)
                  .status()
                  .code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.GetTable("t").ok());
  EXPECT_TRUE(catalog.GetTable("missing").status().IsNotFound());

  ASSERT_TRUE(
      catalog.CreateTensorRelation("w", BlockedShape{8, 8, 4, 4}).ok());
  ASSERT_TRUE(catalog.GetTensorRelation("w").ok());
  EXPECT_EQ(catalog.TableNames().size(), 1u);
  EXPECT_EQ(catalog.TensorRelationNames().size(), 1u);
}

TEST(FailureInjectionTest, EvictionWriteBackRetriesAlternateVictim) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageId a, b;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.UnpinPage(a, /*dirty=*/true).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
  ASSERT_TRUE(pool.UnpinPage(b, /*dirty=*/true).ok());
  {
    // The next eviction's write-back fails once; the pool must absorb
    // it by evicting the other candidate instead of surfacing it.
    failpoint::ScopedFailpoint fp(
        "disk.write",
        failpoint::Spec::Error(StatusCode::kIOError).Once());
    PageId c;
    auto page = pool.NewPage(&c);
    ASSERT_TRUE(page.ok()) << page.status();
    ASSERT_TRUE(pool.UnpinPage(c, false).ok());
  }
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.writeback_failures, 1);
  EXPECT_GE(stats.evictions, 1);
  // The failed victim stayed resident and dirty: nothing was lost.
  auto again = pool.FetchPage(a);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
}

TEST(FailureInjectionTest, AllEvictionCandidatesFailingIsUnavailable) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageId a, b;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.UnpinPage(a, /*dirty=*/true).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
  ASSERT_TRUE(pool.UnpinPage(b, /*dirty=*/true).ok());
  {
    failpoint::ScopedFailpoint fp(
        "disk.write", failpoint::Spec::Error(StatusCode::kIOError));
    PageId c;
    auto page = pool.NewPage(&c);
    ASSERT_FALSE(page.ok());
    // Transient (retryable), not an I/O verdict the caller must act
    // on: the dirty pages are intact and a later attempt can succeed.
    EXPECT_TRUE(page.status().IsUnavailable()) << page.status();
    EXPECT_EQ(pool.stats().writeback_failures, 2);
  }
  // After the fault clears, the same pool recovers.
  PageId c;
  ASSERT_TRUE(pool.NewPage(&c).ok());
  ASSERT_TRUE(pool.UnpinPage(c, false).ok());
}

TEST(FailureInjectionTest, FlushAllReportsWriteFailure) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageId a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.UnpinPage(a, /*dirty=*/true).ok());
  {
    failpoint::ScopedFailpoint fp(
        "disk.write",
        failpoint::Spec::Error(StatusCode::kIOError).Once());
    EXPECT_EQ(pool.FlushAll().code(), StatusCode::kIOError);
  }
  EXPECT_TRUE(pool.FlushAll().ok());  // retry succeeds
}

TEST(FailureInjectionTest, BlockStorePutFailurePropagates) {
  DiskManager disk;
  BufferPool pool(&disk, 2);  // evictions force write-backs
  BlockStore store(&pool, BlockedShape{64, 64, 16, 16});
  auto m = Tensor::Zeros(Shape{64, 64});
  ASSERT_TRUE(m.ok());
  // Persistent write failure: both eviction candidates fail, so the
  // reservation inside PutMatrix surfaces Unavailable.
  failpoint::ScopedFailpoint fp(
      "disk.write", failpoint::Spec::Error(StatusCode::kIOError));
  Status s = store.PutMatrix(*m);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable()) << s;
}

TEST(BufferPoolTest, ConcurrentFetchStress) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  // 32 pages, each stamped with its index.
  std::vector<PageId> ids(32);
  for (int i = 0; i < 32; ++i) {
    auto page = pool.NewPage(&ids[i]);
    ASSERT_TRUE(page.ok());
    (*page)[0] = static_cast<char>(i);
    ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t);
      for (int iter = 0; iter < 500; ++iter) {
        const int i = static_cast<int>(rng() % 32);
        auto page = pool.FetchPage(ids[i]);
        if (!page.ok()) {
          // All frames transiently pinned by other threads: retry.
          continue;
        }
        if ((*page)[0] != static_cast<char>(i)) {
          mismatches.fetch_add(1);
        }
        pool.UnpinPage(ids[i], false);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(BufferPoolTest, ConcurrentStressTinyCapacityKeepsCountersExact) {
  // Hammer a 4-frame pool from several threads with 24 pages: every
  // fetch either hits or misses (never both, never neither), pin
  // counts stay balanced, and page contents survive constant eviction
  // and write-back.
  DiskManager disk;
  BufferPool pool(&disk, 4);
  constexpr int kPages = 24;
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<PageId> ids(kPages);
  for (int i = 0; i < kPages; ++i) {
    auto page = pool.NewPage(&ids[i]);
    ASSERT_TRUE(page.ok());
    std::memset(*page, static_cast<char>(i + 1), kPageSize);
    ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
  }
  const BufferPoolStats before = pool.stats();

  std::atomic<int64_t> ok_fetches{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> unpin_failures{0};
  // The pool allows concurrent pins of one page; *content* access is
  // coordinated above it (as a DBMS page latch would), so rewriters
  // take the page's latch exclusively and readers take it shared.
  std::vector<std::shared_mutex> latches(kPages);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1234 + t);
      for (int iter = 0; iter < kIters; ++iter) {
        const int i = static_cast<int>(rng() % kPages);
        auto page = pool.FetchPage(ids[i]);
        if (!page.ok()) continue;  // all frames transiently pinned
        ok_fetches.fetch_add(1);
        const char want = static_cast<char>(i + 1);
        // Occasionally rewrite the page (dirty) to force write-backs.
        const bool rewrite = (rng() % 4) == 0;
        if (rewrite) {
          std::unique_lock<std::shared_mutex> latch(latches[i]);
          std::memset(*page, want, kPageSize);
        } else {
          std::shared_lock<std::shared_mutex> latch(latches[i]);
          if ((*page)[0] != want || (*page)[kPageSize - 1] != want) {
            mismatches.fetch_add(1);
          }
        }
        if (!pool.UnpinPage(ids[i], rewrite).ok()) {
          unpin_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(unpin_failures.load(), 0);
  const BufferPoolStats after = pool.stats();
  // Exactness: every successful fetch counted exactly one hit or miss.
  EXPECT_EQ((after.hits - before.hits) + (after.misses - before.misses),
            ok_fetches.load());
  // All pins released: every page is fetchable and deletable again.
  for (int i = 0; i < kPages; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)[0], static_cast<char>(i + 1));
    ASSERT_TRUE(pool.UnpinPage(ids[i], false).ok());
    ASSERT_TRUE(pool.DeletePage(ids[i]).ok());
  }
  EXPECT_EQ(disk.num_free(), kPages);
}

TEST(BufferPoolTest, ConcurrentNewDeleteChurn) {
  // Threads allocate, stamp, drop, and reload pages concurrently —
  // the fetch/unpin/drop races of parallel block stores sharing one
  // pool with a tiny capacity.
  DiskManager disk;
  BufferPool pool(&disk, 4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(77 + t);
      for (int iter = 0; iter < 120; ++iter) {
        PageId id = kInvalidPageId;
        auto page = pool.NewPage(&id);
        if (!page.ok()) continue;  // pool transiently full of pins
        const char stamp = static_cast<char>(1 + (iter + t) % 120);
        std::memset(*page, stamp, kPageSize);
        if (!pool.UnpinPage(id, true).ok()) failures.fetch_add(1);
        if (rng() % 2 == 0) {
          auto again = pool.FetchPage(id);
          if (again.ok()) {
            if ((*again)[kPageSize / 2] != stamp) failures.fetch_add(1);
            if (!pool.UnpinPage(id, false).ok()) failures.fetch_add(1);
          }
        }
        if (!pool.DeletePage(id).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // After the churn every frame is reusable: fill the pool to capacity.
  std::vector<PageId> ids(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.NewPage(&ids[i]).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.UnpinPage(ids[i], false).ok());
  }
}

TEST(BlockStoreTest, ConcurrentPutFromMorsels) {
  // BlockMatMul emits output blocks from parallel morsels; Put must
  // tolerate concurrent callers on one store.
  DiskManager disk;
  BufferPool pool(&disk, 8);
  BlockStore store(&pool, BlockedShape{32, 32, 4, 4});
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int rb = 0; rb < 8; ++rb) {
        for (int cb = t; cb < 8; cb += 4) {
          auto payload = Tensor::Full(
              Shape{4, 4}, static_cast<float>(rb * 8 + cb));
          if (!payload.ok() ||
              !store.Put(TensorBlock{rb, cb, std::move(*payload)})
                   .ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(store.entries().size(), 64u);
  auto m = store.ToMatrix();
  ASSERT_TRUE(m.ok());
  for (int rb = 0; rb < 8; ++rb) {
    for (int cb = 0; cb < 8; ++cb) {
      EXPECT_FLOAT_EQ(m->At(rb * 4, cb * 4),
                      static_cast<float>(rb * 8 + cb));
    }
  }
}

TEST(DedupTest, ExactDuplicatesCollapse) {
  auto a = Tensor::Full(Shape{4, 4}, 1.0f);
  auto b = Tensor::Full(Shape{4, 4}, 1.0f);
  auto c = Tensor::Full(Shape{4, 4}, 2.0f);
  std::vector<TensorBlock> blocks = {
      {0, 0, *a}, {0, 1, *b}, {1, 0, *c}};
  auto result = DeduplicateBlocks(blocks, 0.0f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.unique_blocks, 2);
  EXPECT_EQ(result->mapping, (std::vector<int64_t>{0, 0, 1}));
  EXPECT_FLOAT_EQ(result->stats.max_substitution_error, 0.0f);
}

TEST(DedupTest, ToleranceMergesNearDuplicates) {
  auto a = Tensor::Full(Shape{4}, 1.0f);
  auto b = Tensor::Full(Shape{4}, 1.05f);
  std::vector<TensorBlock> blocks = {{0, 0, *a}, {0, 1, *b}};
  auto strict = DeduplicateBlocks(blocks, 0.01f);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->stats.unique_blocks, 2);
  auto loose = DeduplicateBlocks(blocks, 0.1f);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->stats.unique_blocks, 1);
  EXPECT_NEAR(loose->stats.max_substitution_error, 0.05f, 1e-5f);
  EXPECT_GT(loose->stats.CompressionRatio(), 1.9);
}

TEST(DedupTest, DifferentShapesNeverMerge) {
  auto a = Tensor::Full(Shape{4}, 1.0f);
  auto b = Tensor::Full(Shape{2, 2}, 1.0f);
  std::vector<TensorBlock> blocks = {{0, 0, *a}, {0, 1, *b}};
  auto result = DeduplicateBlocks(blocks, 10.0f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.unique_blocks, 2);
}

TEST(DedupTest, ExpandReconstructsLogicalBlocks) {
  auto a = Tensor::Full(Shape{2}, 1.0f);
  auto b = Tensor::Full(Shape{2}, 1.0f);
  std::vector<TensorBlock> blocks = {{0, 0, *a}, {3, 7, *b}};
  auto result = DeduplicateBlocks(blocks, 0.0f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.unique_blocks, 1);
  auto expanded = ExpandDedup(*result);
  ASSERT_EQ(expanded.size(), 2u);
  // Shared payload, but each logical block keeps its own coordinates.
  EXPECT_FLOAT_EQ(expanded[1].data.data()[0], 1.0f);
  EXPECT_EQ(expanded[0].row_block, 0);
  EXPECT_EQ(expanded[0].col_block, 0);
  EXPECT_EQ(expanded[1].row_block, 3);
  EXPECT_EQ(expanded[1].col_block, 7);
}

TEST(DedupTest, ExpandedBlocksReassembleTheMatrix) {
  // Near-duplicate blocks deduped within tolerance must reassemble to
  // a matrix within that tolerance of the original.
  auto m = Tensor::Create(Shape{8, 8});
  ASSERT_TRUE(m.ok());
  for (int64_t i = 0; i < 64; ++i) {
    // Two repeating 4x4 patterns plus tiny jitter.
    m->data()[i] = static_cast<float>((i / 4 + i % 4) % 2) +
                   1e-4f * static_cast<float>(i % 3);
  }
  auto blocks = SplitMatrix(*m, 4, 4);
  ASSERT_TRUE(blocks.ok());
  auto dedup = DeduplicateBlocks(*blocks, 1e-3f);
  ASSERT_TRUE(dedup.ok());
  ASSERT_LT(dedup->stats.unique_blocks, 4);
  auto back = AssembleMatrix(ExpandDedup(*dedup),
                             BlockedShape{8, 8, 4, 4});
  ASSERT_TRUE(back.ok());
  EXPECT_LE(m->MaxAbsDiff(*back), 1e-3f);
}

TEST(DedupTest, RejectsNegativeTolerance) {
  EXPECT_TRUE(
      DeduplicateBlocks({}, -1.0f).status().IsInvalidArgument());
}

TEST(QuantizeTest, RoundTripErrorIsBounded) {
  auto t = Tensor::Create(Shape{100});
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100; ++i) {
    t->data()[i] = -3.0f + 0.07f * static_cast<float>(i);
  }
  auto q = QuantizeUniform8(*t);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ByteSize(), 100);  // 4x smaller than float
  auto back = Dequantize(*q);
  ASSERT_TRUE(back.ok());
  const float range = 0.07f * 99.0f;
  EXPECT_LE(QuantizationError(*t, *q), range / 255.0f * 0.51f);
  EXPECT_LE(t->MaxAbsDiff(*back), range / 255.0f * 0.51f);
}

TEST(QuantizeTest, ConstantTensorIsExact) {
  auto t = Tensor::Full(Shape{10}, 3.5f);
  auto q = QuantizeUniform8(*t);
  ASSERT_TRUE(q.ok());
  EXPECT_FLOAT_EQ(QuantizationError(*t, *q), 0.0f);
}

// --- BufferPool::Prefetch ---------------------------------------------

// The prefetcher is asynchronous; issued == completed only once its
// queue has drained, so tests wait for that quiescent point.
void WaitForPrefetchIdle(const BufferPool& pool) {
  for (int i = 0; i < 10000; ++i) {
    const BufferPoolStats s = pool.stats();
    if (s.prefetches_completed == s.prefetches_issued) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "prefetch queue never drained";
}

// Writes `n` pages straight to disk, each filled with a byte derived
// from its id, and returns the ids.
std::vector<PageId> SeedDiskPages(DiskManager* disk, int n) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    const PageId id = disk->AllocatePage();
    std::vector<char> buf(kPageSize,
                          static_cast<char>('A' + (id % 26)));
    EXPECT_TRUE(disk->WritePage(id, buf.data()).ok());
    ids.push_back(id);
  }
  return ids;
}

TEST(BufferPoolPrefetchTest, PrefetchThenPinCountsUseful) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  const std::vector<PageId> ids = SeedDiskPages(&disk, 2);

  EXPECT_TRUE(pool.Prefetch(ids[0]));
  EXPECT_TRUE(pool.Prefetch(ids[1]));
  WaitForPrefetchIdle(pool);
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetches_issued, 2);
  EXPECT_EQ(stats.prefetches_completed, 2);
  EXPECT_EQ(stats.prefetch_useful, 0);  // nothing pinned yet

  bool hit = false;
  auto page = pool.FetchPage(ids[0], &hit);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ((*page)[0], static_cast<char>('A' + (ids[0] % 26)));
  ASSERT_TRUE(pool.UnpinPage(ids[0], false).ok());

  // The second pin of the same page is an ordinary hit, not another
  // useful prefetch.
  hit = true;
  ASSERT_TRUE(pool.FetchPage(ids[0], &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(pool.UnpinPage(ids[0], false).ok());

  stats = pool.stats();
  EXPECT_EQ(stats.prefetch_useful, 1);
}

TEST(BufferPoolPrefetchTest, PrefetchResidentPageIsNoop) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageId id = kInvalidPageId;
  auto page = pool.NewPage(&id);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(id, true).ok());

  EXPECT_FALSE(pool.Prefetch(id));  // already resident
  EXPECT_FALSE(pool.Prefetch(kInvalidPageId));
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetches_issued, 0);
  EXPECT_EQ(stats.prefetches_completed, 0);
}

TEST(BufferPoolPrefetchTest, PrefetchRacingEvictionIsSafe) {
  DiskManager disk;
  // Two frames and eight pages: prefetches and demand fetches keep
  // evicting each other's work.
  BufferPool pool(&disk, 2);
  const std::vector<PageId> ids = SeedDiskPages(&disk, 8);

  std::thread prefetcher([&] {
    for (int round = 0; round < 200; ++round) {
      pool.Prefetch(ids[round % ids.size()]);
    }
  });
  std::thread reader([&] {
    for (int round = 0; round < 200; ++round) {
      const PageId id = ids[(round * 3) % ids.size()];
      auto page = pool.FetchPage(id);
      ASSERT_TRUE(page.ok());
      EXPECT_EQ((*page)[kPageSize - 1],
                static_cast<char>('A' + (id % 26)));
      ASSERT_TRUE(pool.UnpinPage(id, false).ok());
    }
  });
  prefetcher.join();
  reader.join();
  WaitForPrefetchIdle(pool);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetches_completed, stats.prefetches_issued);
}

TEST(BufferPoolPrefetchTest, DeletePageCancelsQueuedPrefetch) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  const std::vector<PageId> ids = SeedDiskPages(&disk, 4);

  // Queue prefetches and immediately delete the pages; whichever
  // prefetches had not started yet must be purged, and the counters
  // must still converge.
  for (const PageId id : ids) pool.Prefetch(id);
  for (const PageId id : ids) {
    const Status s = pool.DeletePage(id);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  WaitForPrefetchIdle(pool);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetches_completed, stats.prefetches_issued);
}

}  // namespace
}  // namespace relserve
