#include <gtest/gtest.h>

#include <cmath>

#include "engine/trainer.h"
#include "graph/model.h"
#include "graph/model_zoo.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest() : tracker_("train") { ctx_.tracker = &tracker_; }
  MemoryTracker tracker_;
  ExecContext ctx_;
};

TEST_F(TrainerTest, TrainabilityCheck) {
  auto ffnn = BuildFFNN("m", {8, 16, 4}, 1);
  ASSERT_TRUE(ffnn.ok());
  EXPECT_TRUE(SgdTrainer::IsTrainable(*ffnn));
  auto cnn = zoo::BuildCachingCnn(1);
  ASSERT_TRUE(cnn.ok());
  EXPECT_FALSE(SgdTrainer::IsTrainable(*cnn));
}

TEST_F(TrainerTest, GradientMatchesFiniteDifference) {
  auto model = BuildFFNN("m", {3, 5, 2}, 7);
  ASSERT_TRUE(model.ok());
  auto x = workloads::GenBatch(4, Shape{3}, 2);
  ASSERT_TRUE(x.ok());
  std::vector<int64_t> labels = {0, 1, 1, 0};

  // Analytic gradient of w0[2][1] via one TrainStep with lr so small
  // the loss itself is effectively unchanged: grad = (w_before -
  // w_after) / lr.
  const float lr = 1e-4f;
  auto w0 = model->GetMutableWeight("w0");
  ASSERT_TRUE(w0.ok());
  const float before = (*w0)->At(2, 1);
  auto loss0 = SgdTrainer::TrainStep(&*model, *x, labels, lr, &ctx_);
  ASSERT_TRUE(loss0.ok());
  const float analytic = (before - (*w0)->At(2, 1)) / lr;
  // Undo the update for the finite-difference probe.
  auto fresh = BuildFFNN("m", {3, 5, 2}, 7);
  ASSERT_TRUE(fresh.ok());

  const float eps = 1e-3f;
  auto loss_at = [&](float delta) -> double {
    auto probe = BuildFFNN("m", {3, 5, 2}, 7);  // same seed
    EXPECT_TRUE(probe.ok());
    auto w = probe->GetMutableWeight("w0");
    EXPECT_TRUE(w.ok());
    (*w)->At(2, 1) += delta;
    // TrainStep with lr=0 returns the loss without changing weights.
    auto loss = SgdTrainer::TrainStep(&*probe, *x, labels, 0.0f, &ctx_);
    EXPECT_TRUE(loss.ok());
    return *loss;
  };
  const double numeric =
      (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
  EXPECT_NEAR(analytic, numeric, 1e-2 * std::max(1.0, std::fabs(numeric)));
}

TEST_F(TrainerTest, LossDecreasesAndAccuracyRises) {
  const int64_t n = 512;
  const int64_t dim = 16;
  auto data = workloads::GenClusteredData(n, dim, 4, 0.05f, 11);
  ASSERT_TRUE(data.ok());
  auto model = BuildFFNN("clf", {dim, 32, 4}, 3);
  ASSERT_TRUE(model.ok());

  auto acc_before =
      SgdTrainer::Evaluate(*model, data->features, data->labels, &ctx_);
  ASSERT_TRUE(acc_before.ok());

  auto first_loss = SgdTrainer::TrainStep(&*model, data->features,
                                          data->labels, 0.5f, &ctx_);
  ASSERT_TRUE(first_loss.ok());
  auto final_loss =
      SgdTrainer::Fit(&*model, data->features, data->labels,
                      /*learning_rate=*/0.5f, /*epochs=*/30,
                      /*batch_size=*/128, &ctx_);
  ASSERT_TRUE(final_loss.ok());
  EXPECT_LT(*final_loss, *first_loss);

  auto acc_after =
      SgdTrainer::Evaluate(*model, data->features, data->labels, &ctx_);
  ASSERT_TRUE(acc_after.ok());
  EXPECT_GT(*acc_after, 0.9);
  EXPECT_GT(*acc_after, *acc_before);
}

TEST_F(TrainerTest, RejectsBadInputs) {
  auto model = BuildFFNN("m", {4, 8, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto x = workloads::GenBatch(3, Shape{4}, 1);
  ASSERT_TRUE(x.ok());
  // Wrong label count.
  EXPECT_TRUE(SgdTrainer::TrainStep(&*model, *x, {0, 1}, 0.1f, &ctx_)
                  .status()
                  .IsInvalidArgument());
  // Label out of range.
  EXPECT_TRUE(SgdTrainer::TrainStep(&*model, *x, {0, 1, 5}, 0.1f, &ctx_)
                  .status()
                  .IsInvalidArgument());
  // Non-chain model.
  auto cnn = zoo::BuildCachingCnn(1);
  ASSERT_TRUE(cnn.ok());
  auto img = workloads::GenBatch(2, Shape{28, 28, 1}, 1);
  ASSERT_TRUE(img.ok());
  EXPECT_TRUE(SgdTrainer::TrainStep(&*cnn, *img, {0, 1}, 0.1f, &ctx_)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(TrainerTest, NoArenaLeakAcrossSteps) {
  auto model = BuildFFNN("m", {8, 16, 3}, 2);
  ASSERT_TRUE(model.ok());
  auto x = workloads::GenBatch(32, Shape{8}, 3);
  ASSERT_TRUE(x.ok());
  std::vector<int64_t> labels(32);
  for (int i = 0; i < 32; ++i) labels[i] = i % 3;
  for (int step = 0; step < 5; ++step) {
    ASSERT_TRUE(
        SgdTrainer::TrainStep(&*model, *x, labels, 0.1f, &ctx_).ok());
  }
  EXPECT_EQ(tracker_.used_bytes(), 0);
}

}  // namespace
}  // namespace relserve
