// Golden-text tests for plan rendering: InferencePlan::ToString (the
// logical annotation) and PhysicalPlan::ToString (the compiled stage
// pipeline EXPLAIN shows). Catches silent IR drift — a fusion-rule or
// lowering change must show up here as a diff, deliberately.

#include <gtest/gtest.h>

#include "engine/hybrid_executor.h"
#include "engine/physical_plan.h"
#include "engine/prepared_model.h"
#include "graph/model.h"
#include "optimizer/optimizer.h"
#include "storage/buffer_pool.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

class PlanTextTest : public ::testing::Test {
 protected:
  PlanTextTest() : disk_(), pool_(&disk_, 256), tracker_("work") {
    ctx_.tracker = &tracker_;
    ctx_.buffer_pool = &pool_;
    ctx_.block_rows = 8;
    ctx_.block_cols = 8;
  }

  Result<std::unique_ptr<PhysicalPlan>> Compile(
      const Model& model, const InferencePlan& plan,
      bool fuse = true) {
    PhysicalPlan::Options options;
    options.fuse_elementwise = fuse;
    return PhysicalPlan::Compile(&model, plan, &ctx_, options);
  }

  DiskManager disk_;
  BufferPool pool_;
  MemoryTracker tracker_;
  ExecContext ctx_;
};

TEST_F(PlanTextTest, LogicalPlanGolden) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  const InferencePlan plan = MakeForcedPlan(*model, Repr::kUdf, 2);
  EXPECT_EQ(plan.ToString(*model),
            "Plan for m @ batch 2 (threshold 0 B)\n"
            "  #0 Input est=0B -> udf\n"
            "  #1 MatMul est=0B -> udf\n"
            "  #2 BiasAdd est=0B -> udf\n"
            "  #3 Relu est=0B -> udf\n"
            "  #4 MatMul est=0B -> udf\n"
            "  #5 BiasAdd est=0B -> udf\n"
            "  #6 Softmax est=0B -> udf\n");
}

TEST_F(PlanTextTest, AllUdfPhysicalGolden) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  auto plan = Compile(*model, MakeForcedPlan(*model, Repr::kUdf, 2));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->ToString(),
            "PhysicalPlan m: 2 stages, 4 fused ops\n"
            "  [0] matmul(w0)+bias+relu udf out=[batch, 3]"
            " est=0B flops=0\n"
            "  [1] matmul(w1)+bias+softmax udf out=[batch, 2]"
            " est=0B flops=0\n");
}

TEST_F(PlanTextTest, AllRelationalPhysicalGolden) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  auto plan =
      Compile(*model, MakeForcedPlan(*model, Repr::kRelational, 2));
  ASSERT_TRUE(plan.ok());
  // Softmax needs whole rows: it cannot ride the block-matmul
  // epilogue and lowers to its own row-strip stage.
  EXPECT_EQ((*plan)->ToString(),
            "PhysicalPlan m: 4 stages, 3 fused ops\n"
            "  [0] input-chunk relational out=[batch, 4]"
            " est=0B flops=0\n"
            "  [1] block-matmul(w0)+bias+relu relational"
            " out=[batch, 3] est=0B flops=0\n"
            "  [2] block-matmul(w1)+bias relational out=[batch, 2]"
            " est=0B flops=0\n"
            "  [3] block-softmax relational out=[batch, 2]"
            " est=0B flops=0\n");
}

TEST_F(PlanTextTest, MixedPhysicalGoldenWithTransition) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  // First layer relational, second UDF: the compiler must emit an
  // explicit blocked->whole transition at the boundary.
  InferencePlan mixed = MakeForcedPlan(*model, Repr::kRelational, 2);
  for (int id = 4; id <= 6; ++id) {
    mixed.decisions[id].repr = Repr::kUdf;
  }
  auto plan = Compile(*model, mixed);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->ToString(),
            "PhysicalPlan m: 4 stages, 4 fused ops\n"
            "  [0] input-chunk relational out=[batch, 4]"
            " est=0B flops=0\n"
            "  [1] block-matmul(w0)+bias+relu relational"
            " out=[batch, 3] est=0B flops=0\n"
            "  [2] to-whole udf out=[batch, 3] est=12B flops=0\n"
            "  [3] matmul(w1)+bias+softmax udf out=[batch, 2]"
            " est=0B flops=0\n");
}

TEST_F(PlanTextTest, UnfusedPhysicalGolden) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  auto plan = Compile(*model, MakeForcedPlan(*model, Repr::kUdf, 2),
                      /*fuse=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->ToString(),
            "PhysicalPlan m: 6 stages, 0 fused ops (fusion disabled)\n"
            "  [0] matmul(w0) udf out=[batch, 3] est=0B flops=0\n"
            "  [1] elementwise+bias udf out=[batch, 3]"
            " est=0B flops=0\n"
            "  [2] elementwise+relu udf out=[batch, 3]"
            " est=0B flops=0\n"
            "  [3] matmul(w1) udf out=[batch, 2] est=0B flops=0\n"
            "  [4] elementwise+bias udf out=[batch, 2]"
            " est=0B flops=0\n"
            "  [5] elementwise+softmax udf out=[batch, 2]"
            " est=0B flops=0\n");
}

TEST_F(PlanTextTest, AnalyzeRenderingCarriesStageStats) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  auto prepared = PreparedModel::Prepare(
      &*model, MakeForcedPlan(*model, Repr::kUdf, 2), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(2, Shape{4}, 3);
  ASSERT_TRUE(input.ok());
  auto out = HybridExecutor::Run(*prepared, *input, &ctx_);
  ASSERT_TRUE(out.ok());

  const std::string text = prepared->physical().ToString(true);
  EXPECT_NE(text.find("calls=1"), std::string::npos) << text;
  EXPECT_NE(text.find("rows=2"), std::string::npos) << text;
  EXPECT_NE(text.find("avg_us="), std::string::npos) << text;
  // bytes = batch * out_width * 4 for the final stage.
  EXPECT_NE(text.find("bytes=16"), std::string::npos) << text;
  EXPECT_EQ(ctx_.stats.stages_executed.load(), 2);
}

// The optimizer annotates cost and footprint; compilation sums them
// over fused stages so EXPLAIN shows per-stage work.
TEST_F(PlanTextTest, CompiledStagesCarryOptimizerAnnotations) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer optimizer(/*memory_threshold_bytes=*/1 << 20);
  auto plan = optimizer.Optimize(*model, 2);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->decisions[1].estimated_flops, 0.0);
  auto physical = Compile(*model, *plan);
  ASSERT_TRUE(physical.ok());
  const auto& stages = (*physical)->stages();
  ASSERT_EQ(stages.size(), 2u);
  // Stage 0 fuses matmul+bias+relu: its flops must exceed the matmul
  // node's alone.
  EXPECT_GT(stages[0]->estimated_flops,
            plan->decisions[1].estimated_flops);
  EXPECT_GT(stages[0]->estimated_bytes, 0);
}

}  // namespace
}  // namespace relserve
