#include <gtest/gtest.h>

#include <memory>

#include "relational/expression.h"
#include "relational/operator.h"
#include "relational/row.h"
#include "relational/schema.h"
#include "relational/vectorized.h"
#include "storage/buffer_pool.h"
#include "storage/column_store.h"
#include "storage/table_heap.h"

namespace relserve {
namespace {

Row MakeRow(std::vector<Value> values) { return Row(std::move(values)); }

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kFloat64);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(std::vector<float>{1, 2}).type(),
            ValueType::kFloatVector);
  EXPECT_EQ(Value(int64_t{5}).AsNumeric(), 5.0);
  EXPECT_EQ(Value(2.5).AsNumeric(), 2.5);
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));  // typed equality
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(int64_t{3}).Hash());
  EXPECT_EQ(Value(std::vector<float>{1, 2}).Hash(),
            Value(std::vector<float>{1, 2}).Hash());
}

TEST(SchemaTest, FieldIndexAndProject) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kFloat64}});
  EXPECT_EQ(*s.FieldIndex("b"), 1);
  EXPECT_TRUE(s.FieldIndex("z").status().IsNotFound());
  Schema p = s.Project({1});
  EXPECT_EQ(p.num_columns(), 1);
  EXPECT_EQ(p.column(0).name, "b");
}

TEST(SchemaTest, ConcatRenamesDuplicates) {
  Schema a({{"id", ValueType::kInt64}});
  Schema b({{"id", ValueType::kInt64}, {"x", ValueType::kFloat64}});
  Schema joined = a.Concat(b);
  EXPECT_EQ(joined.num_columns(), 3);
  EXPECT_EQ(joined.column(1).name, "id_r");
  EXPECT_EQ(joined.column(2).name, "x");
}

TEST(RowTest, SerializeRoundTripAllTypes) {
  Row row = MakeRow({Value(int64_t{-7}), Value(3.25),
                     Value(std::string("hello")),
                     Value(std::vector<float>{1.5f, -2.5f})});
  std::string bytes;
  row.SerializeTo(&bytes);
  auto back = Row::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, row);
}

TEST(RowTest, DeserializeRejectsGarbage) {
  std::string bytes = "\xff\x01\x02";
  EXPECT_FALSE(Row::Deserialize(bytes.data(), bytes.size()).ok());
}

TEST(ExpressionTest, ColumnAndLiteral) {
  Row row = MakeRow({Value(int64_t{10}), Value(2.5)});
  auto col = Expression::Column(1);
  EXPECT_EQ((*col->Evaluate(row)).AsFloat64(), 2.5);
  auto lit = Expression::Literal(Value(int64_t{3}));
  EXPECT_EQ((*lit->Evaluate(row)).AsInt64(), 3);
  EXPECT_TRUE(Expression::Column(9)->Evaluate(row).status()
                  .IsInvalidArgument());
}

TEST(ExpressionTest, ArithmeticAndComparison) {
  Row row = MakeRow({Value(4.0), Value(int64_t{3})});
  auto sum = Expression::Binary(ExprKind::kAdd, Expression::Column(0),
                                Expression::Column(1));
  EXPECT_EQ((*sum->Evaluate(row)).AsFloat64(), 7.0);
  auto lt = Expression::Binary(ExprKind::kLt, Expression::Column(1),
                               Expression::Column(0));
  EXPECT_TRUE(*lt->EvaluateBool(row));
  auto eq = Expression::Binary(
      ExprKind::kEq, Expression::Column(1),
      Expression::Literal(Value(int64_t{3})));
  EXPECT_TRUE(*eq->EvaluateBool(row));
}

TEST(ExpressionTest, BooleanShortCircuit) {
  Row row = MakeRow({Value(int64_t{0})});
  // (col0 != 0) AND (bad column ref): short-circuits before the error.
  auto bad = Expression::Column(99);
  auto guard = Expression::Binary(
      ExprKind::kAnd,
      Expression::Binary(ExprKind::kEq, Expression::Column(0),
                         Expression::Literal(Value(int64_t{1}))),
      bad);
  auto result = guard->EvaluateBool(row);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(ExpressionTest, AbsDiffLeIsTheBandPredicate) {
  Row row = MakeRow({Value(1.0), Value(1.4)});
  auto within = Expression::AbsDiffLe(Expression::Column(0),
                                      Expression::Column(1), 0.5);
  EXPECT_TRUE(*within->EvaluateBool(row));
  auto outside = Expression::AbsDiffLe(Expression::Column(0),
                                       Expression::Column(1), 0.3);
  EXPECT_FALSE(*outside->EvaluateBool(row));
}

TEST(ExpressionTest, ToStringIsReadable) {
  auto e = Expression::Binary(
      ExprKind::kAnd,
      Expression::Binary(ExprKind::kLt, Expression::Column(0),
                         Expression::Literal(Value(int64_t{5}))),
      Expression::Not(Expression::Column(1)));
  EXPECT_EQ(e->ToString(), "(($0 < 5) AND (NOT $1))");
}

class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest() : disk_(), pool_(&disk_, 32) {}

  // Builds a table of (id, score) rows 0..n-1 with score = id * 1.5.
  std::unique_ptr<TableHeap> MakeTable(int n) {
    auto heap = std::make_unique<TableHeap>(&pool_);
    for (int i = 0; i < n; ++i) {
      Row row = MakeRow({Value(int64_t{i}), Value(i * 1.5)});
      std::string bytes;
      row.SerializeTo(&bytes);
      EXPECT_TRUE(heap->Append(bytes).ok());
    }
    return heap;
  }

  Schema schema_ =
      Schema({{"id", ValueType::kInt64}, {"score", ValueType::kFloat64}});
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(OperatorTest, SeqScanReturnsAllRowsInOrder) {
  auto heap = MakeTable(10);
  SeqScan scan(heap.get(), schema_);
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*rows)[i].value(0).AsInt64(), i);
  }
}

TEST_F(OperatorTest, SeqScanIsRestartable) {
  auto heap = MakeTable(3);
  SeqScan scan(heap.get(), schema_);
  ASSERT_TRUE(Collect(&scan).ok());
  auto again = Collect(&scan);  // Collect re-opens
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);
}

TEST_F(OperatorTest, FilterKeepsMatching) {
  auto heap = MakeTable(10);
  auto scan = std::make_unique<SeqScan>(heap.get(), schema_);
  auto pred = Expression::Binary(
      ExprKind::kLt, Expression::Column(1),
      Expression::Literal(Value(4.0)));  // score < 4 => id 0, 1, 2
  Filter filter(std::move(scan), pred);
  auto rows = Collect(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(OperatorTest, ProjectReordersColumns) {
  auto heap = MakeTable(2);
  auto scan = std::make_unique<SeqScan>(heap.get(), schema_);
  Project project(std::move(scan), {1, 0});
  EXPECT_EQ(project.schema().column(0).name, "score");
  auto rows = Collect(&project);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1].value(1).AsInt64(), 1);
}

TEST_F(OperatorTest, HashJoinMatchesEqualKeys) {
  std::vector<Row> left = {MakeRow({Value(int64_t{1}),
                                    Value(std::string("a"))}),
                           MakeRow({Value(int64_t{2}),
                                    Value(std::string("b"))}),
                           MakeRow({Value(int64_t{3}),
                                    Value(std::string("c"))})};
  std::vector<Row> right = {
      MakeRow({Value(int64_t{2}), Value(20.0)}),
      MakeRow({Value(int64_t{2}), Value(21.0)}),
      MakeRow({Value(int64_t{3}), Value(30.0)})};
  Schema ls({{"id", ValueType::kInt64}, {"tag", ValueType::kString}});
  Schema rs({{"id", ValueType::kInt64}, {"v", ValueType::kFloat64}});
  HashJoin join(std::make_unique<MemScan>(left, ls),
                std::make_unique<MemScan>(right, rs), 0, 0);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // id=2 fans out to 2 matches, id=3 to 1, id=1 to none.
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(join.schema().num_columns(), 4);
}

TEST_F(OperatorTest, HashJoinEmptySides) {
  Schema s({{"id", ValueType::kInt64}});
  HashJoin join(std::make_unique<MemScan>(std::vector<Row>{}, s),
                std::make_unique<MemScan>(std::vector<Row>{}, s), 0, 0);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(OperatorTest, SimilarityJoinBandSemantics) {
  Schema s({{"key", ValueType::kFloat64}, {"id", ValueType::kInt64}});
  std::vector<Row> left = {MakeRow({Value(1.0), Value(int64_t{0})}),
                           MakeRow({Value(5.0), Value(int64_t{1})})};
  std::vector<Row> right = {MakeRow({Value(1.2), Value(int64_t{10})}),
                            MakeRow({Value(1.6), Value(int64_t{11})}),
                            MakeRow({Value(4.9), Value(int64_t{12})}),
                            MakeRow({Value(9.0), Value(int64_t{13})})};
  SimilarityJoin join(std::make_unique<MemScan>(left, s),
                      std::make_unique<MemScan>(right, s), 0, 0, 0.5);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // left 0 (1.0) matches 1.2; left 1 (5.0) matches 4.9.
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].value(3).AsInt64(), 10);
  EXPECT_EQ((*rows)[1].value(3).AsInt64(), 12);
}

TEST_F(OperatorTest, SimilarityJoinInclusiveBoundary) {
  Schema s({{"key", ValueType::kFloat64}});
  std::vector<Row> left = {MakeRow({Value(1.0)})};
  std::vector<Row> right = {MakeRow({Value(1.5)}),
                            MakeRow({Value(0.5)})};
  SimilarityJoin join(std::make_unique<MemScan>(left, s),
                      std::make_unique<MemScan>(right, s), 0, 0, 0.5);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // both endpoints included
}

TEST_F(OperatorTest, HashAggregateGlobalGroup) {
  auto heap = MakeTable(5);  // scores 0, 1.5, 3, 4.5, 6
  auto scan = std::make_unique<SeqScan>(heap.get(), schema_);
  HashAggregate agg(std::move(scan), {},
                    {{AggFunc::kCount, -1, "n"},
                     {AggFunc::kSum, 1, "total"},
                     {AggFunc::kMin, 1, "lo"},
                     {AggFunc::kMax, 1, "hi"},
                     {AggFunc::kAvg, 1, "mean"}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const Row& r = (*rows)[0];
  EXPECT_EQ(r.value(0).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(r.value(1).AsFloat64(), 15.0);
  EXPECT_DOUBLE_EQ(r.value(2).AsFloat64(), 0.0);
  EXPECT_DOUBLE_EQ(r.value(3).AsFloat64(), 6.0);
  EXPECT_DOUBLE_EQ(r.value(4).AsFloat64(), 3.0);
}

TEST_F(OperatorTest, HashAggregateGroupsByKey) {
  Schema s({{"k", ValueType::kInt64}, {"v", ValueType::kFloat64}});
  std::vector<Row> rows = {MakeRow({Value(int64_t{1}), Value(10.0)}),
                           MakeRow({Value(int64_t{2}), Value(20.0)}),
                           MakeRow({Value(int64_t{1}), Value(30.0)})};
  HashAggregate agg(std::make_unique<MemScan>(rows, s), {0},
                    {{AggFunc::kSum, 1, "total"}});
  auto out = Collect(&agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  double sum_for_1 = 0;
  for (const Row& r : *out) {
    if (r.value(0).AsInt64() == 1) sum_for_1 = r.value(1).AsFloat64();
  }
  EXPECT_DOUBLE_EQ(sum_for_1, 40.0);
}

TEST_F(OperatorTest, ColumnarShimComposesWithSortAndAggregate) {
  // The row-at-a-time shim over a columnar table must be a drop-in
  // replacement for SeqScan under heavier row operators.
  auto heap = MakeTable(30);
  ColumnarTable columnar(&pool_, schema_, /*fragment_rows=*/7);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        columnar.AppendRow(MakeRow({Value(int64_t{i}), Value(i * 1.5)})).ok());
  }

  auto pred = Expression::Binary(ExprKind::kLe, Expression::Literal(Value(15.0)),
                                 Expression::Column(1));

  auto run_sort = [&](RowIteratorPtr scan) {
    auto filter = std::make_unique<Filter>(std::move(scan), pred);
    Sort sort(std::move(filter), /*key=*/0, /*descending=*/true);
    return Collect(&sort);
  };
  auto heap_sorted = run_sort(std::make_unique<SeqScan>(heap.get(), schema_));
  auto col_sorted = run_sort(MakeTableScan(nullptr, &columnar, schema_));
  ASSERT_TRUE(heap_sorted.ok());
  ASSERT_TRUE(col_sorted.ok());
  ASSERT_EQ(heap_sorted->size(), col_sorted->size());
  for (size_t i = 0; i < heap_sorted->size(); ++i) {
    EXPECT_EQ((*heap_sorted)[i], (*col_sorted)[i]);
  }

  auto run_agg = [&](RowIteratorPtr scan) {
    auto filter = std::make_unique<Filter>(std::move(scan), pred);
    HashAggregate agg(std::move(filter), {},
                      {{AggFunc::kCount, -1, "n"}, {AggFunc::kSum, 1, "sum"}});
    return Collect(&agg);
  };
  auto heap_agg = run_agg(std::make_unique<SeqScan>(heap.get(), schema_));
  auto col_agg = run_agg(MakeTableScan(nullptr, &columnar, schema_));
  ASSERT_TRUE(heap_agg.ok());
  ASSERT_TRUE(col_agg.ok());
  ASSERT_EQ(heap_agg->size(), 1u);
  EXPECT_EQ((*heap_agg)[0].value(0).AsInt64(), (*col_agg)[0].value(0).AsInt64());
  EXPECT_DOUBLE_EQ((*heap_agg)[0].value(1).AsFloat64(),
                   (*col_agg)[0].value(1).AsFloat64());
}

TEST_F(OperatorTest, PipelineScanFilterAggregate) {
  auto heap = MakeTable(100);
  auto scan = std::make_unique<SeqScan>(heap.get(), schema_);
  auto pred = Expression::Binary(
      ExprKind::kLt, Expression::Column(0),
      Expression::Literal(Value(int64_t{50})));
  auto filter = std::make_unique<Filter>(std::move(scan), pred);
  HashAggregate agg(std::move(filter), {},
                    {{AggFunc::kCount, -1, "n"}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].value(0).AsInt64(), 50);
}

}  // namespace
}  // namespace relserve
