#include <gtest/gtest.h>

#include <cstdint>

#include "resource/memory_tracker.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "tensor/tensor_block.h"

namespace relserve {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(Shape({}).NumElements(), 1);
  EXPECT_EQ(Shape({5}).NumElements(), 5);
  EXPECT_EQ((Shape{3, 4, 5}).NumElements(), 60);
}

TEST(ShapeTest, ToStringAndEquality) {
  EXPECT_EQ((Shape{128, 1024}).ToString(), "[128, 1024]");
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
}

TEST(TensorTest, CreateAndAccess) {
  auto t = Tensor::Create(Shape{2, 3});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumElements(), 6);
  EXPECT_EQ(t->ByteSize(), 24);
  t->At(1, 2) = 9.5f;
  EXPECT_FLOAT_EQ(t->At(1, 2), 9.5f);
}

TEST(TensorTest, ZerosAndFull) {
  auto z = Tensor::Zeros(Shape{4});
  ASSERT_TRUE(z.ok());
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(z->data()[i], 0.0f);
  auto f = Tensor::Full(Shape{4}, 2.5f);
  ASSERT_TRUE(f.ok());
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(f->data()[i], 2.5f);
}

TEST(TensorTest, AllocationsAreCacheLineAligned) {
  static_assert(kTensorAlignmentBytes == kCacheLineBytes,
                "tensor buffers align to full cache lines");
  static_assert(kTensorAlignmentBytes >= 32,
                "alignment must satisfy aligned AVX loads of packed "
                "micro-kernel panels");
  // Odd element counts would expose any alignment drift in the
  // allocator's rounding.
  for (const int64_t n : {1, 3, 63, 64, 65, 1000}) {
    auto t = Tensor::Create(Shape{n});
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t->data()) %
                  kTensorAlignmentBytes,
              0u)
        << "n=" << n;
  }
}

TEST(TensorTest, FromDataValidatesSize) {
  EXPECT_TRUE(Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4}).ok());
  EXPECT_TRUE(Tensor::FromData(Shape{2, 2}, {1, 2, 3})
                  .status()
                  .IsInvalidArgument());
}

TEST(TensorTest, TrackerChargeAndRelease) {
  MemoryTracker tracker("t", 1000);
  {
    auto t = Tensor::Create(Shape{10, 10}, &tracker);  // 400 B
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(tracker.used_bytes(), 400);
    auto copy = *t;  // shared buffer, no extra charge
    EXPECT_EQ(tracker.used_bytes(), 400);
  }
  EXPECT_EQ(tracker.used_bytes(), 0);
}

TEST(TensorTest, CreateOverLimitReturnsOom) {
  MemoryTracker tracker("t", 100);
  auto t = Tensor::Create(Shape{10, 10}, &tracker);
  EXPECT_TRUE(t.status().IsOutOfMemory());
  EXPECT_EQ(tracker.used_bytes(), 0);
}

TEST(TensorTest, CloneIsDeep) {
  auto a = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  ASSERT_TRUE(a.ok());
  auto b = a->Clone();
  ASSERT_TRUE(b.ok());
  b->data()[0] = 42.0f;
  EXPECT_FLOAT_EQ(a->data()[0], 1.0f);
}

TEST(TensorTest, ReshapeSharesBuffer) {
  auto a = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(a.ok());
  auto b = a->Reshape(Shape{3, 2});
  ASSERT_TRUE(b.ok());
  b->At(0, 0) = 99.0f;
  EXPECT_FLOAT_EQ(a->At(0, 0), 99.0f);
  EXPECT_TRUE(a->Reshape(Shape{7}).status().IsInvalidArgument());
}

TEST(TensorTest, MaxAbsDiff) {
  auto a = Tensor::FromData(Shape{3}, {1, 2, 3});
  auto b = Tensor::FromData(Shape{3}, {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(a->MaxAbsDiff(*b), 1.0f);
  EXPECT_FLOAT_EQ(a->MaxAbsDiff(*a), 0.0f);
}

class BlockingTest : public ::testing::TestWithParam<
                         std::tuple<int64_t, int64_t, int64_t, int64_t>> {
};

TEST_P(BlockingTest, SplitThenAssembleRoundTrips) {
  const auto [rows, cols, br, bc] = GetParam();
  auto m = Tensor::Create(Shape{rows, cols});
  ASSERT_TRUE(m.ok());
  for (int64_t i = 0; i < rows * cols; ++i) {
    m->data()[i] = static_cast<float>(i % 97) * 0.5f;
  }
  auto blocks = SplitMatrix(*m, br, bc);
  ASSERT_TRUE(blocks.ok());
  const BlockedShape geometry{rows, cols, br, bc};
  EXPECT_EQ(static_cast<int64_t>(blocks->size()),
            geometry.NumRowBlocks() * geometry.NumColBlocks());
  auto back = AssembleMatrix(*blocks, geometry);
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(m->MaxAbsDiff(*back), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BlockingTest,
    ::testing::Values(std::make_tuple(8, 8, 4, 4),     // even split
                      std::make_tuple(10, 7, 4, 3),    // ragged edges
                      std::make_tuple(1, 20, 5, 6),    // single row
                      std::make_tuple(20, 1, 6, 5),    // single col
                      std::make_tuple(5, 5, 10, 10),   // one block
                      std::make_tuple(64, 48, 16, 16),
                      std::make_tuple(3, 3, 1, 1)));   // all-singleton

TEST(BlockingTest, RaggedEdgeBlockShapes) {
  const BlockedShape g{10, 7, 4, 3};
  EXPECT_EQ(g.NumRowBlocks(), 3);
  EXPECT_EQ(g.NumColBlocks(), 3);
  EXPECT_EQ(g.RowsInBlock(0), 4);
  EXPECT_EQ(g.RowsInBlock(2), 2);
  EXPECT_EQ(g.ColsInBlock(0), 3);
  EXPECT_EQ(g.ColsInBlock(2), 1);
}

TEST(BlockingTest, ExtractBlockMatchesSplit) {
  auto m = Tensor::Create(Shape{6, 5});
  ASSERT_TRUE(m.ok());
  for (int64_t i = 0; i < 30; ++i) m->data()[i] = static_cast<float>(i);
  const BlockedShape g{6, 5, 4, 2};
  auto all = SplitMatrix(*m, 4, 2);
  ASSERT_TRUE(all.ok());
  for (const TensorBlock& block : *all) {
    auto one = ExtractBlock(*m, g, block.row_block, block.col_block);
    ASSERT_TRUE(one.ok());
    EXPECT_FLOAT_EQ(one->data.MaxAbsDiff(block.data), 0.0f);
  }
}

TEST(BlockingTest, SplitChargesTracker) {
  MemoryTracker tracker("t");
  auto m = Tensor::Create(Shape{8, 8});
  ASSERT_TRUE(m.ok());
  auto blocks = SplitMatrix(*m, 4, 4, &tracker);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(tracker.used_bytes(), 8 * 8 * 4);  // all payload bytes
}

TEST(BlockingTest, SplitRejectsNonMatrix) {
  auto t = Tensor::Create(Shape{2, 2, 2});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(SplitMatrix(*t, 2, 2).status().IsInvalidArgument());
  auto m = Tensor::Create(Shape{2, 2});
  EXPECT_TRUE(SplitMatrix(*m, 0, 2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace relserve
