#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "resource/device_model.h"
#include "resource/memory_tracker.h"
#include "resource/thread_pool.h"

namespace relserve {
namespace {

TEST(MemoryTrackerTest, TracksUsage) {
  MemoryTracker t("test", 1000);
  EXPECT_TRUE(t.Allocate(400).ok());
  EXPECT_EQ(t.used_bytes(), 400);
  EXPECT_TRUE(t.Allocate(600).ok());
  EXPECT_EQ(t.used_bytes(), 1000);
  t.Release(1000);
  EXPECT_EQ(t.used_bytes(), 0);
}

TEST(MemoryTrackerTest, RejectsOverLimit) {
  MemoryTracker t("test", 1000);
  EXPECT_TRUE(t.Allocate(800).ok());
  Status s = t.Allocate(300);
  EXPECT_TRUE(s.IsOutOfMemory());
  // Failed allocation charges nothing.
  EXPECT_EQ(t.used_bytes(), 800);
  EXPECT_EQ(t.oom_count(), 1);
  // Exactly reaching the limit is allowed.
  EXPECT_TRUE(t.Allocate(200).ok());
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker t("test", MemoryTracker::kUnlimited);
  ASSERT_TRUE(t.Allocate(500).ok());
  t.Release(400);
  ASSERT_TRUE(t.Allocate(100).ok());
  EXPECT_EQ(t.peak_bytes(), 500);
  EXPECT_EQ(t.used_bytes(), 200);
}

TEST(MemoryTrackerTest, UnlimitedNeverOoms) {
  MemoryTracker t("test");
  EXPECT_TRUE(t.Allocate(int64_t{1} << 60).ok());
  t.Release(int64_t{1} << 60);
}

TEST(MemoryTrackerTest, ConcurrentAllocationsNeverExceedLimit) {
  constexpr int64_t kLimit = 10000;
  MemoryTracker t("test", kLimit);
  std::atomic<int64_t> granted{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) {
        if (t.Allocate(7).ok()) granted.fetch_add(7);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(granted.load(), kLimit);
  EXPECT_EQ(t.used_bytes(), granted.load());
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(0, 10000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  int64_t total = 0;
  pool.ParallelFor(0, 3, [&](int64_t lo, int64_t hi) {
    total += hi - lo;  // runs inline for tiny ranges
  });
  EXPECT_EQ(total, 3);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForGrainControlsMorselSize) {
  ThreadPool pool(4);
  // grain=1 on a small range: morsel boundaries are deterministic, so
  // a range of 8 splits into exactly 8 single-item morsels.
  std::atomic<int> calls{0};
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(
      0, 8,
      [&](int64_t lo, int64_t hi) {
        calls.fetch_add(1);
        covered.fetch_add(hi - lo);
        EXPECT_EQ(hi - lo, 1);
      },
      /*grain=*/1);
  EXPECT_EQ(calls.load(), 8);
  EXPECT_EQ(covered.load(), 8);
  // Default cost-based grain with a heavy work_hint also splits; with
  // the default hint of 1 the same range runs as one inline call.
  calls = 0;
  pool.ParallelFor(
      0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); },
      /*grain=*/0, /*work_hint=*/ThreadPool::kMinWorkPerMorsel);
  EXPECT_EQ(calls.load(), 8);
  calls = 0;
  pool.ParallelFor(0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Regression: the old implementation waited on a pool-global pending
  // counter, so a body calling ParallelFor from a worker deadlocked
  // (its own still-running task kept pending > 0 forever).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32 * 64);
  pool.ParallelFor(
      0, 32,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          pool.ParallelFor(
              0, 64,
              [&, i](int64_t jlo, int64_t jhi) {
                for (int64_t j = jlo; j < jhi; ++j) {
                  hits[i * 64 + j].fetch_add(1);
                }
              },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForFromWorkerTaskDoesNotDeadlock) {
  // Same regression via Submit: a submitted task running on a worker
  // thread issues a ParallelFor of its own.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  pool.Submit([&] {
    pool.ParallelFor(
        0, 100,
        [&](int64_t lo, int64_t hi) { total.fetch_add(hi - lo); },
        /*grain=*/1);
  });
  pool.Wait();
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsStayIsolated) {
  // Two threads issue ParallelFor concurrently; each call must see
  // exactly its own range complete (per-call task groups, no shared
  // pending counter cross-talk).
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr int64_t kRange = 256;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kRange);
        pool.ParallelFor(
            0, kRange,
            [&](int64_t lo, int64_t hi) {
              for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
            },
            /*grain=*/1);
        // The call returned: its whole range must be done exactly once.
        for (const auto& h : hits) {
          if (h.load() != 1) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(DeviceModelTest, LatencyIncludesTransferAndCompute) {
  DeviceSpec gpu{DeviceKind::kAccelerator, "gpu", 1e9, 1e6, 0.001};
  OperatorProfile op{2e6, 1000000, 0};
  // 0.001 launch + 1.0 transfer + 0.002 compute
  EXPECT_NEAR(EstimateLatencySeconds(op, gpu), 1.003, 1e-9);
}

TEST(DeviceModelTest, CpuHasNoTransferTerm) {
  DeviceSpec cpu{DeviceKind::kCpu, "cpu", 1e9, 0.0, 0.0};
  OperatorProfile op{3e9, 1 << 30, 1 << 20};
  EXPECT_NEAR(EstimateLatencySeconds(op, cpu), 3.0, 1e-9);
}

TEST(DeviceModelTest, SmallOpStaysOnCpuLargeOpGoesToAccelerator) {
  // Matches the paper's decision-forest observation: transfer
  // overheads dominate for small inputs.
  DeviceAllocator alloc({
      DeviceSpec{DeviceKind::kCpu, "cpu", 50e9, 0.0, 0.0},
      DeviceSpec{DeviceKind::kAccelerator, "gpu", 5000e9, 10e9, 1e-4},
  });
  OperatorProfile small{/*flops=*/1e6, /*in=*/4096, /*out=*/1024};
  EXPECT_EQ(alloc.Choose(small).kind, DeviceKind::kCpu);
  OperatorProfile large{/*flops=*/5e12, /*in=*/100 << 20,
                        /*out=*/10 << 20};
  EXPECT_EQ(alloc.Choose(large).kind, DeviceKind::kAccelerator);
}

}  // namespace
}  // namespace relserve
