// Fault-tolerance tests (DESIGN.md "Fault model & recovery"):
// CRC32C-checksummed pages with bounded re-read recovery and
// quarantine, syscall-resume (EINTR / short transfer) loops, typed
// open failure, retry/backoff policy, the per-model circuit breaker,
// and the two graceful-degradation paths — cache-tier failure falls
// back to full inference, relational storage failure falls back to
// UDF-centric re-execution.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/retry.h"
#include "graph/model.h"
#include "serving/circuit_breaker.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "engine/physical_plan.h"
#include "optimizer/scan_cost.h"
#include "relational/vectorized.h"
#include "resource/memory_tracker.h"
#include "resource/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/column_store.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

using failpoint::ScopedFailpoint;
using failpoint::Spec;

class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }

  static std::vector<char> Pattern(char fill = '\xAB') {
    std::vector<char> data(kPageSize);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<char>(fill + static_cast<char>(i % 17));
    }
    return data;
  }
};

// --- CRC32C ---------------------------------------------------------

TEST_F(ResilienceTest, Crc32cKnownAnswer) {
  // The CRC-32C check value: crc of the ASCII digits "123456789".
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c::Value("", 0), 0u);
}

TEST_F(ResilienceTest, Crc32cIncrementalMatchesOneShot) {
  const std::vector<char> data = Pattern();
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t running = 0;
  // Uneven split exercises the unaligned head/tail handling.
  running = crc32c::Extend(running, data.data(), 13);
  running = crc32c::Extend(running, data.data() + 13, data.size() - 13);
  EXPECT_EQ(running, whole);
}

TEST_F(ResilienceTest, Crc32cBackendsProduceIdenticalBits) {
  const std::vector<char> data = Pattern();
  const uint32_t scalar =
      crc32c::internal::ExtendScalar(0, data.data(), data.size());
  EXPECT_EQ(crc32c::Value(data.data(), data.size()), scalar);
  if (crc32c::UsingHardware()) {
    EXPECT_EQ(crc32c::internal::ExtendSse42(0, data.data(), data.size()),
              scalar);
  }
}

// --- Checksummed page storage ---------------------------------------

TEST_F(ResilienceTest, ChecksumRoundTrip) {
  DiskManager disk;
  ASSERT_TRUE(disk.status().ok());
  ASSERT_TRUE(disk.checksums_enabled());
  const PageId page = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  ASSERT_TRUE(disk.WritePage(page, data.data()).ok());
  std::vector<char> out(kPageSize);
  ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPageSize), 0);
  EXPECT_EQ(disk.num_checksum_failures(), 0);
  EXPECT_EQ(disk.num_read_retries(), 0);
}

TEST_F(ResilienceTest, NeverWrittenPageReadsBackZeroFilled) {
  DiskManager disk;
  const PageId written = disk.AllocatePage();
  const PageId hole = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  ASSERT_TRUE(disk.WritePage(written, data.data()).ok());
  std::vector<char> out(kPageSize, '\x7f');
  ASSERT_TRUE(disk.ReadPage(hole, out.data()).ok());
  EXPECT_EQ(out, std::vector<char>(kPageSize, 0));
}

TEST_F(ResilienceTest, TransientReadCorruptionHealsViaReRead) {
  DiskManager disk;
  const PageId page = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  ASSERT_TRUE(disk.WritePage(page, data.data()).ok());

  // One bit flips in flight on the first read attempt only (a bus /
  // DMA glitch). The checksum catches it; the bounded re-read heals.
  ScopedFailpoint fp("disk.read", Spec::Bitflip().Once());
  std::vector<char> out(kPageSize);
  ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPageSize), 0);
  EXPECT_GE(disk.num_checksum_failures(), 1);
  EXPECT_GE(disk.num_read_retries(), 1);
  EXPECT_EQ(disk.num_quarantined(), 0);
}

TEST_F(ResilienceTest, PersistentCorruptionQuarantinesUntilRewritten) {
  DiskManager disk;
  const PageId page = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  {
    // The header checksum covers the caller's payload; the injected
    // flip lands on the bytes that reach the platter — silent on-disk
    // corruption only read-side verification can see.
    ScopedFailpoint fp("disk.write", Spec::Bitflip().Once());
    ASSERT_TRUE(disk.WritePage(page, data.data()).ok());
  }

  std::vector<char> out(kPageSize, '\x7f');
  Status s = disk.ReadPage(page, out.data());
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
  // Corrupt bytes are never handed out, even to status-ignoring
  // callers.
  EXPECT_EQ(out, std::vector<char>(kPageSize, 0));
  EXPECT_GE(disk.num_checksum_failures(), 1);
  EXPECT_TRUE(disk.IsQuarantined(page));
  EXPECT_EQ(disk.num_quarantined(), 1);

  // Quarantined pages fail fast on later reads.
  EXPECT_TRUE(disk.ReadPage(page, out.data()).IsDataLoss());

  // A successful rewrite replaces the bad bytes and lifts the
  // quarantine.
  ASSERT_TRUE(disk.WritePage(page, data.data()).ok());
  EXPECT_FALSE(disk.IsQuarantined(page));
  ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPageSize), 0);
}

TEST_F(ResilienceTest, TornWriteIsDetectedOnRead) {
  DiskManager disk;
  const PageId page = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  {
    // The write reports success but only a prefix reaches disk — the
    // crash-mid-write case. Only the checksum can tell.
    ScopedFailpoint fp("disk.write", Spec::Torn().Once());
    ASSERT_TRUE(disk.WritePage(page, data.data()).ok());
  }
  std::vector<char> out(kPageSize);
  EXPECT_TRUE(disk.ReadPage(page, out.data()).IsDataLoss());
  EXPECT_TRUE(disk.IsQuarantined(page));
}

TEST_F(ResilienceTest, SyscallInterruptionAndShortTransfersResume) {
  DiskManager disk;
  const PageId page = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  {
    // EINTR twice and halved transfers four times during the write;
    // the resume loops must still persist every byte.
    ScopedFailpoint eintr("disk.write.eintr",
                          Spec::Error(StatusCode::kIOError).Limit(2));
    ScopedFailpoint shrt("disk.write.short",
                         Spec::Error(StatusCode::kIOError).Limit(4));
    ASSERT_TRUE(disk.WritePage(page, data.data()).ok());
  }
  {
    ScopedFailpoint eintr("disk.read.eintr",
                          Spec::Error(StatusCode::kIOError).Limit(2));
    ScopedFailpoint shrt("disk.read.short",
                         Spec::Error(StatusCode::kIOError).Limit(4));
    std::vector<char> out(kPageSize);
    ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), kPageSize), 0);
  }
  // Resumed transfers are not checksum events.
  EXPECT_EQ(disk.num_checksum_failures(), 0);
}

TEST_F(ResilienceTest, OpenFailureIsTypedNeverFatal) {
  ScopedFailpoint fp("disk.open", Spec::Error(StatusCode::kIOError));
  auto opened = DiskManager::Open();
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError());

  // The embedded-construction path records the same failure instead of
  // aborting, and every I/O call surfaces it typed.
  DiskManager disk;
  EXPECT_FALSE(disk.ok());
  EXPECT_TRUE(disk.status().IsIOError());
  std::vector<char> buf(kPageSize);
  EXPECT_TRUE(disk.ReadPage(disk.AllocatePage(), buf.data()).IsIOError());
  EXPECT_TRUE(disk.WritePage(0, buf.data()).IsIOError());
}

TEST_F(ResilienceTest, ChecksumsOffIsAnExplicitTrustMode) {
  DiskManagerOptions options;
  options.checksum_pages = false;
  DiskManager disk("", options);
  ASSERT_FALSE(disk.checksums_enabled());
  const PageId page = disk.AllocatePage();
  const std::vector<char> data = Pattern();
  ASSERT_TRUE(disk.WritePage(page, data.data()).ok());

  // With verification off the flipped bit sails through silently —
  // the ablation mode trades this detection for a little throughput.
  ScopedFailpoint fp("disk.read", Spec::Bitflip().Once());
  std::vector<char> out(kPageSize);
  ASSERT_TRUE(disk.ReadPage(page, out.data()).ok());
  EXPECT_NE(std::memcmp(out.data(), data.data(), kPageSize), 0);
  EXPECT_EQ(disk.num_checksum_failures(), 0);
}

TEST_F(ResilienceTest, FailedPrefetchIsCountedAndDropped) {
  DiskManager disk;
  BufferPool pool(&disk, /*capacity_pages=*/1);
  // Materialize page `a` on disk and evict it.
  PageId a = kInvalidPageId;
  {
    auto frame = pool.NewPage(&a);
    ASSERT_TRUE(frame.ok());
    std::memcpy(*frame, Pattern().data(), kPageSize);
    ASSERT_TRUE(pool.UnpinPage(a, /*dirty=*/true).ok());
  }
  PageId b = kInvalidPageId;
  {
    auto frame = pool.NewPage(&b);  // evicts a (write-back succeeds)
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(pool.UnpinPage(b, /*dirty=*/false).ok());
  }

  failpoint::Enable("disk.read", Spec::Error(StatusCode::kIOError));
  ASSERT_TRUE(pool.Prefetch(a));
  // issued == completed once the background queue drains.
  for (int i = 0; i < 2000; ++i) {
    const BufferPoolStats stats = pool.stats();
    if (stats.prefetches_completed >= stats.prefetches_issued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.stats().prefetch_failed, 1);

  // Prefetch failure is never fatal: the foreground fetch performs its
  // own read once the fault clears.
  failpoint::Disable("disk.read");
  auto fetched = pool.FetchPage(a);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(std::memcmp(*fetched, Pattern().data(), kPageSize), 0);
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
}

// --- RetryPolicy ----------------------------------------------------

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_us = 10;
  policy.max_backoff_us = 50;
  policy.total_backoff_budget_us = 10'000;
  return policy;
}

TEST_F(ResilienceTest, RetryAbsorbsTransientFailures) {
  int calls = 0;
  int64_t retries = 0;
  Status s = CallWithRetry(
      FastRetry(5), /*jitter_seed=*/1,
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::Unavailable("warming up");
        return Status::OK();
      },
      &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST_F(ResilienceTest, RetryNeverRepeatsNonTransientFailures) {
  int calls = 0;
  int64_t retries = 0;
  Status s = CallWithRetry(
      FastRetry(5), 1,
      [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("bad request");
      },
      &retries);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0);

  // DataLoss is terminal by design: the disk manager already did its
  // bounded re-reads; the bytes stay wrong until rewritten.
  calls = 0;
  s = CallWithRetry(FastRetry(5), 1, [&]() -> Status {
    ++calls;
    return Status::DataLoss("page 7 quarantined");
  });
  EXPECT_TRUE(s.IsDataLoss());
  EXPECT_EQ(calls, 1);
}

TEST_F(ResilienceTest, RetryRespectsAttemptAndBackoffBudgets) {
  int calls = 0;
  Status s = CallWithRetry(FastRetry(3), 1, [&]() -> Status {
    ++calls;
    return Status::IOError("still down");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 3);

  // A zero backoff budget degrades into fail-fast even for transient
  // errors: no sleeping on a sinking engine.
  RetryPolicy broke = FastRetry(5);
  broke.total_backoff_budget_us = 0;
  calls = 0;
  s = CallWithRetry(broke, 1, [&]() -> Status {
    ++calls;
    return Status::Unavailable("saturated");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
}

TEST_F(ResilienceTest, RetryWorksOverResultValues) {
  int calls = 0;
  Result<int> r = CallWithRetry(FastRetry(4), 1, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::IOError("transient");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 2);
}

// --- CircuitBreaker -------------------------------------------------

CircuitBreakerConfig FastBreaker() {
  CircuitBreakerConfig config;
  config.window_size = 8;
  config.min_samples = 4;
  config.failure_rate_threshold = 0.5;
  config.open_cooldown_us = 2'000;
  config.half_open_successes_to_close = 1;
  config.half_open_max_probes = 1;
  return config;
}

TEST_F(ResilienceTest, BreakerOpensAtWindowedFailureRate) {
  CircuitBreaker breaker(FastBreaker());
  // Below min_samples nothing condemns the model.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // 4th sample at 100% failure: open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1);
  EXPECT_FALSE(breaker.Allow());  // shed during cooldown
  EXPECT_GE(breaker.shed_count(), 1);
}

TEST_F(ResilienceTest, BreakerHalfOpenProbeClosesOnSuccess) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(breaker.Allow());  // cooldown elapsed: probe admitted
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // max_probes=1 caps concurrency
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST_F(ResilienceTest, BreakerHalfOpenProbeFailureReopens) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // the probe hit a still-broken backend
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2);
  EXPECT_FALSE(breaker.Allow());  // a fresh cooldown started
}

// --- Resilient serving path -----------------------------------------

ServingConfig SmallServingConfig() {
  ServingConfig config;
  config.buffer_pool_pages = 256;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  return config;
}

class ServingResilienceTest : public ResilienceTest {
 protected:
  ServingResilienceTest() : session_(SmallServingConfig()) {}

  void LoadModel(const std::string& name = "m") {
    auto model = BuildFFNN(name, {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        session_.Deploy(name, ServingMode::kForceUdf, 8).ok());
  }

  ServingSession session_;
};

TEST_F(ServingResilienceTest, SchedulerRetriesTransientDispatchFault) {
  LoadModel();
  SchedulerConfig config;
  config.num_workers = 1;
  config.retry = FastRetry(3);
  RequestScheduler scheduler(&session_, config);

  auto input = workloads::GenBatch(8, Shape{16}, 42);
  ASSERT_TRUE(input.ok());
  failpoint::Enable("scheduler.dispatch",
                    Spec::Error(StatusCode::kIOError).Once());
  auto result = scheduler.PredictBatch("m", *input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(scheduler.stats().retries.load(), 1);
  EXPECT_EQ(scheduler.stats().shed_breaker.load(), 0);
}

TEST_F(ServingResilienceTest, BreakerOpensShedsAndRecovers) {
  LoadModel();
  SchedulerConfig config;
  config.num_workers = 1;
  config.retry = FastRetry(1);  // isolate the breaker from the retrier
  config.breaker.window_size = 4;
  config.breaker.min_samples = 2;
  config.breaker.failure_rate_threshold = 0.5;
  config.breaker.open_cooldown_us = 20'000;
  config.breaker.half_open_successes_to_close = 1;
  config.breaker.half_open_max_probes = 1;
  RequestScheduler scheduler(&session_, config);

  auto input = workloads::GenBatch(8, Shape{16}, 42);
  ASSERT_TRUE(input.ok());

  failpoint::Enable("scheduler.dispatch",
                    Spec::Error(StatusCode::kIOError));
  for (int i = 0; i < 4; ++i) {
    auto result = scheduler.PredictBatch("m", *input);
    ASSERT_FALSE(result.ok());
    // Terminal transient faults surface as Unavailable — retryable
    // from the client's point of view — whether executed or shed.
    EXPECT_TRUE(result.status().IsUnavailable())
        << result.status().ToString();
  }
  EXPECT_EQ(scheduler.breaker("m")->state(),
            CircuitBreaker::State::kOpen);
  EXPECT_GE(scheduler.stats().shed_breaker.load(), 1);

  // The backend heals; after the cooldown one probe closes the
  // breaker and traffic flows again.
  failpoint::Disable("scheduler.dispatch");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto recovered = scheduler.PredictBatch("m", *input);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(scheduler.breaker("m")->state(),
            CircuitBreaker::State::kClosed);
}

TEST_F(ServingResilienceTest, CacheFailureDegradesToFullInference) {
  LoadModel();
  ASSERT_TRUE(session_.EnableExactCache("m").ok());
  auto input = workloads::GenBatch(4, Shape{16}, 7);
  ASSERT_TRUE(input.ok());

  auto truth = session_.PredictWithCache("m", *input);  // miss + fill
  ASSERT_TRUE(truth.ok());
  auto hit = session_.PredictWithCache("m", *input);  // exact-tier hit
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->MaxAbsDiff(*truth), 0.0f);

  // A failing cache tier must cost correctness nothing: lookups are
  // skipped and every row takes the full-inference path.
  failpoint::Enable("cache.lookup",
                    Spec::Error(StatusCode::kUnavailable));
  auto degraded = session_.PredictWithCache("m", *input);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->MaxAbsDiff(*truth), 0.0f);
}

TEST_F(ServingResilienceTest, SessionSurfacesSpillOpenFailureTyped) {
  ScopedFailpoint fp("disk.open", Spec::Error(StatusCode::kIOError));
  ServingSession session(SmallServingConfig());  // must not abort
  EXPECT_TRUE(session.status().IsIOError());
}

TEST_F(ResilienceTest, RelationalStorageFailureFallsBackToUdf) {
  // Ground truth from a UDF-centric session over identical weights.
  ServingConfig udf_config = SmallServingConfig();
  ServingSession udf_session(udf_config);
  {
    auto model = BuildFFNN("m", {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(udf_session.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        udf_session.Deploy("m", ServingMode::kForceUdf, 8).ok());
  }
  auto input = workloads::GenBatch(8, Shape{16}, 42);
  ASSERT_TRUE(input.ok());
  auto truth_out = udf_session.PredictBatch("m", *input);
  ASSERT_TRUE(truth_out.ok());
  auto truth = truth_out->ToTensor(udf_session.exec_context());
  ASSERT_TRUE(truth.ok());

  // The relational session gets a pool that exactly fits the four
  // blocked weight pages ({16,32,4} under 16x16 blocks), so chunking
  // the input *must* evict — and every eviction write-back fails.
  ServingConfig rel_config = SmallServingConfig();
  rel_config.buffer_pool_pages = 4;
  ServingSession session(rel_config);
  {
    auto model = BuildFFNN("m", {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        session.Deploy("m", ServingMode::kForceRelational, 8).ok());
  }

  const int64_t before =
      session.exec_context()->stats.repr_fallbacks.load();
  failpoint::Enable("bufferpool.evict",
                    Spec::Error(StatusCode::kIOError));
  auto out = session.PredictBatch("m", *input);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto tensor = out->ToTensor(session.exec_context());
  ASSERT_TRUE(tensor.ok());
  failpoint::Disable("bufferpool.evict");

  // The degraded execution re-ran relational nodes UDF-centric (the
  // blocked weights assemble from still-resident pages) and produced
  // bit-identical results.
  EXPECT_GT(session.exec_context()->stats.repr_fallbacks.load(),
            before);
  EXPECT_EQ(tensor->MaxAbsDiff(*truth), 0.0f);
}

// --- Columnar scan / pivot ------------------------------------------

Schema ColumnarFaultSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"features", ValueType::kFloatVector}});
}

Row ColumnarFaultRow(int64_t i) {
  return Row({Value(i), Value(std::vector<float>{
                            static_cast<float>(i), 2.0f})});
}

TEST_F(ResilienceTest, ColumnarScanFailpointSurfacesTypedError) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  ColumnarTable table(&pool, ColumnarFaultSchema(),
                      /*fragment_rows=*/8);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.AppendRow(ColumnarFaultRow(i)).ok());
  }
  ScopedFailpoint fp("columnar.scan",
                     Spec::Error(StatusCode::kIOError));
  Result<ColumnarScanOutput> out =
      ColumnarScan(table, ColumnarScanOptions());
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsIOError()) << out.status().ToString();
}

TEST_F(ResilienceTest, ColumnarPivotFailpointSurfacesTypedError) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  ColumnarTable table(&pool, ColumnarFaultSchema(),
                      /*fragment_rows=*/8);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.AppendRow(ColumnarFaultRow(i)).ok());
  }
  Result<ColumnarScanOutput> out =
      ColumnarScan(table, ColumnarScanOptions());
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  ScopedFailpoint fp("columnar.pivot",
                     Spec::Error(StatusCode::kIOError));
  PhysicalStage stage;
  stage.kind = StageKind::kColumnarGather;
  stage.label = "pivot t";
  MemoryTracker tracker("test");
  Result<Tensor> tile = ExecuteColumnarGather(
      stage, out->batches, /*chunk_index=*/1, /*width=*/2, "features",
      &tracker);
  ASSERT_FALSE(tile.ok());
  EXPECT_TRUE(tile.status().IsIOError()) << tile.status().ToString();
}

TEST_F(ResilienceTest, QuarantinedColumnPageDegradesToTypedDataLoss) {
  ScanCostModel::ResetForTest();
  DiskManager disk;
  // Two frames: almost every sealed column page is evicted by the
  // time the scan runs, so fetches go back to disk.
  BufferPool pool(&disk, 2);
  ColumnarTable table(&pool, ColumnarFaultSchema(),
                      /*fragment_rows=*/512);
  for (int64_t i = 0; i < 9000; ++i) {
    ASSERT_TRUE(table.AppendRow(ColumnarFaultRow(i)).ok());
  }
  ThreadPool tp(2);
  ColumnarScanOptions opts;
  opts.pool = &tp;

  // Clean pass first: this geometry fans out fragment-parallel.
  Result<ColumnarScanOutput> clean = ColumnarScan(table, opts);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->parallel);
  EXPECT_EQ(clean->rows_emitted, 9000);

  // Persistent read-side corruption: every page fetch flips a bit,
  // the bounded re-read never sees a clean copy, the page is
  // quarantined, and the scan degrades to a typed DataLoss instead
  // of serving corrupt feature vectors.
  ScopedFailpoint fp("disk.read", Spec::Bitflip());
  Result<ColumnarScanOutput> out = ColumnarScan(table, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDataLoss()) << out.status().ToString();
  EXPECT_GE(disk.num_quarantined(), 1);
}

}  // namespace
}  // namespace relserve
