// Tests for the epoll network serving front-end: the framed wire
// protocol must round-trip predictions bit-identically, typed errors
// must cross the wire as typed statuses, and no sequence of torn,
// truncated, oversized, or garbage frames may crash the server or
// corrupt a neighboring connection. Fragmented reads (the
// net.read.short failpoint caps every recv at 3 bytes) and
// deterministically corrupted frames (net.frame.corrupt) exercise
// reassembly and rejection on the same code the benchmarks drive.
//
// This binary is part of scripts/tsan_check.sh — every assertion here
// also runs under ThreadSanitizer and UBSan.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/io_util.h"
#include "graph/model.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

ServingConfig SmallConfig() {
  ServingConfig config;
  config.buffer_pool_pages = 256;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  return config;
}

// A raw blocking loopback socket for wire-level malformed-input tests
// (NetClient only speaks well-formed frames).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const void* p, size_t n) {
    const char* bytes = static_cast<const char*>(p);
    size_t done = 0;
    while (done < n) {
      const ssize_t w = io::WriteSome(fd_, bytes + done, n - done);
      if (w <= 0) return false;
      done += static_cast<size_t>(w);
    }
    return true;
  }
  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

  // Reads until EOF (or error); returns everything received.
  std::vector<char> DrainToEof() {
    std::vector<char> all;
    char buf[4096];
    while (true) {
      const ssize_t n = io::ReadSome(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      all.insert(all.end(), buf, buf + n);
    }
    return all;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class NetServingTest : public ::testing::Test {
 protected:
  NetServingTest() : session_(SmallConfig()) {}

  void StartServer(net::NetServerConfig net_config = {}) {
    auto model = BuildFFNN("m", {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(session_.Deploy("m", ServingMode::kForceUdf, 8).ok());

    SchedulerConfig sched_config;
    sched_config.max_batch_rows = 16;
    sched_config.max_delay_us = 100;
    sched_config.num_workers = 2;
    scheduler_ =
        std::make_unique<RequestScheduler>(&session_, sched_config);
    auto server =
        net::NetServer::Start(&session_, scheduler_.get(), net_config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (scheduler_ != nullptr) scheduler_->Shutdown();
  }

  std::unique_ptr<net::NetClient> Connect() {
    auto client = net::NetClient::Connect("127.0.0.1",
                                          server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  Result<Tensor> Direct(const Tensor& input) {
    return scheduler_->PredictBatch("m", input);
  }

  ServingSession session_;
  std::unique_ptr<RequestScheduler> scheduler_;
  std::unique_ptr<net::NetServer> server_;
};

TEST_F(NetServingTest, PingRoundTrip) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetServingTest, PredictRoundTripBitIdentical) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 11);
  ASSERT_TRUE(row.ok());
  auto expected = Direct(*row);
  ASSERT_TRUE(expected.ok());

  auto got = client->Predict("m", *row);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->shape().NumElements(),
            expected->shape().NumElements());
  // Bit-identical, not approximately equal: the wire carries raw
  // float bytes both ways and coalescing is bit-transparent.
  EXPECT_EQ(std::memcmp(got->data(), expected->data(),
                        expected->shape().NumElements() *
                            sizeof(float)),
            0);
}

TEST_F(NetServingTest, MultiRowBatchRoundTrips) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto batch = workloads::GenBatch(8, Shape{16}, 12);
  ASSERT_TRUE(batch.ok());
  auto expected = Direct(*batch);
  ASSERT_TRUE(expected.ok());

  auto got = client->Predict("m", *batch);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->MaxAbsDiff(*expected), 0.0f);
}

TEST_F(NetServingTest, TypedErrorsCrossTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 13);
  ASSERT_TRUE(row.ok());

  // Unknown model: the session's NotFound arrives typed.
  auto missing = client->Predict("nope", *row);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status();

  // Pre-expired deadline: the scheduler's shed arrives typed.
  auto expired = client->Predict("m", *row, /*deadline_us=*/-1);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status();

  // The connection survives both typed errors.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetServingTest, DeployAndStatsOverTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  // Redeploy the registered model relationally over the wire.
  EXPECT_TRUE(client->Deploy("m", /*mode=*/2, /*batch=*/8).ok());
  auto row = workloads::GenBatch(1, Shape{16}, 14);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(client->Predict("m", *row).ok());

  // Deploying an unregistered model fails typed.
  EXPECT_TRUE(client->Deploy("nope", 0, 8).IsNotFound());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(stats->find("\"scheduler\""), std::string::npos);
  EXPECT_NE(stats->find("\"frames_in\""), std::string::npos);
  // Cross-model weight dedup state rides the same stats frame. The
  // relational redeploy above interned weight blocks, so the live
  // counters are nonzero.
  EXPECT_NE(stats->find("\"dedup\""), std::string::npos);
  EXPECT_NE(stats->find("\"unique_blocks\""), std::string::npos);
  EXPECT_EQ(stats->find("\"unique_blocks\":0,"), std::string::npos);
}

TEST_F(NetServingTest, PipelinedRequestsMatchByRequestId) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 15);
  ASSERT_TRUE(row.ok());
  auto expected = Direct(*row);
  ASSERT_TRUE(expected.ok());

  // Many requests in flight on one socket before any reply is read;
  // replies carry ids, and every id comes back exactly once.
  constexpr int kInFlight = 24;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client->SendPredict(100 + i, "m", *row).ok());
  }
  std::set<uint64_t> seen;
  for (int i = 0; i < kInFlight; ++i) {
    auto reply = client->ReceiveReply();
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_TRUE(reply->status.ok()) << reply->status;
    EXPECT_GE(reply->header.request_id, 100u);
    EXPECT_LT(reply->header.request_id, 100u + kInFlight);
    EXPECT_TRUE(seen.insert(reply->header.request_id).second);
    EXPECT_EQ(reply->tensor.MaxAbsDiff(*expected), 0.0f);
  }
}

TEST_F(NetServingTest, ConcurrentClientsAllBitIdentical) {
  StartServer();
  auto row = workloads::GenBatch(1, Shape{16}, 16);
  ASSERT_TRUE(row.ok());
  auto expected = Direct(*row);
  ASSERT_TRUE(expected.ok());

  // 8 threads x 1 connection x 16 closed-loop predicts; rows from
  // different sockets coalesce into shared micro-batches, results
  // must stay per-request exact.
  constexpr int kClients = 8;
  constexpr int kPerClient = 16;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = net::NetClient::Connect("127.0.0.1",
                                            server_->port());
      if (!client.ok()) {
        bad.fetch_add(kPerClient);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        auto got = (*client)->Predict("m", *row);
        if (!got.ok() || got->MaxAbsDiff(*expected) != 0.0f) ++bad;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(scheduler_->stats().coalesced_requests.load(), 0);
}

TEST_F(NetServingTest, CompleterPoolFallbackServesConcurrently) {
  // The futures + completer-pool completion mode (callback completion
  // is the default); same concurrent bit-identity contract, exercising
  // the scheduler-future -> completer handoff instead of inline
  // callbacks.
  net::NetServerConfig config;
  config.use_completer_pool = true;
  StartServer(config);
  auto row = workloads::GenBatch(1, Shape{16}, 21);
  ASSERT_TRUE(row.ok());
  auto expected = Direct(*row);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = net::NetClient::Connect("127.0.0.1",
                                            server_->port());
      if (!client.ok()) {
        bad.fetch_add(kPerClient);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        auto got = (*client)->Predict("m", *row);
        if (!got.ok() || got->MaxAbsDiff(*expected) != 0.0f) ++bad;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(NetServingTest, BadMagicGetsProtocolErrorAndClose) {
  StartServer();
  RawConn raw(server_->port());
  ASSERT_TRUE(raw.connected());

  // A well-framed 16-byte header with the wrong magic.
  char frame[20];
  const uint32_t len = 16;
  std::memcpy(frame, &len, 4);
  std::memset(frame + 4, 0xAB, 16);
  ASSERT_TRUE(raw.Send(frame, sizeof(frame)));

  const std::vector<char> reply = raw.DrainToEof();  // server closed
  // The best-effort reply is a ProtocolError frame with request id 0.
  ASSERT_GE(reply.size(), net::kLenPrefixBytes + net::kFrameHeaderBytes);
  auto header = net::DecodeFrameHeader(
      reply.data() + net::kLenPrefixBytes,
      reply.size() - net::kLenPrefixBytes);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->request_id, 0u);
  EXPECT_EQ(net::StatusCodeFromWire(header->status),
            StatusCode::kProtocolError);
  EXPECT_GE(server_->stats().protocol_errors.load(), 1);
}

TEST_F(NetServingTest, OversizedFrameClosesWithoutAllocating) {
  net::NetServerConfig config;
  config.max_frame_bytes = 4096;
  StartServer(config);
  RawConn raw(server_->port());
  ASSERT_TRUE(raw.connected());

  // Declare a 512 MB frame on a server capped at 4 KB. The cap check
  // runs on the declared length — before any buffer growth.
  const uint32_t huge = 512u << 20;
  ASSERT_TRUE(raw.Send(&huge, sizeof(huge)));

  const std::vector<char> reply = raw.DrainToEof();
  ASSERT_GE(reply.size(), net::kLenPrefixBytes + net::kFrameHeaderBytes);
  auto header = net::DecodeFrameHeader(
      reply.data() + net::kLenPrefixBytes,
      reply.size() - net::kLenPrefixBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(net::StatusCodeFromWire(header->status),
            StatusCode::kProtocolError);
  EXPECT_GE(server_->stats().protocol_errors.load(), 1);

  // The server is still healthy for the next client.
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetServingTest, TruncatedFrameThenHalfCloseIsClean) {
  StartServer();
  RawConn raw(server_->port());
  ASSERT_TRUE(raw.connected());

  // Half a predict frame, then FIN: nothing to reply to, the server
  // just closes its side without dispatching anything.
  net::Buffer full;
  auto row = workloads::GenBatch(1, Shape{16}, 17);
  ASSERT_TRUE(row.ok());
  net::AppendPredictRequest(7, "m", *row, 0, &full);
  ASSERT_TRUE(raw.Send(full.data(), full.size() / 2));
  raw.CloseWrite();
  EXPECT_TRUE(raw.DrainToEof().empty());
  EXPECT_EQ(server_->stats().frames_in.load(), 0);
}

TEST_F(NetServingTest, GarbageBytesNeverCrashTheServer) {
  StartServer();
  // Deterministic LCG garbage, several connections' worth. Every
  // connection must end in a server-side close (oversized/broken
  // framing), and the server must stay fully serviceable after.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 8; ++round) {
    RawConn raw(server_->port());
    ASSERT_TRUE(raw.connected());
    char junk[512];
    for (char& b : junk) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<char>(state >> 33);
    }
    ASSERT_TRUE(raw.Send(junk, sizeof(junk)));
    raw.CloseWrite();
    raw.DrainToEof();
  }
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetServingTest, ShortReadsReassembleFrames) {
  StartServer();
  // Cap every server-side recv at 3 bytes: a multi-hundred-byte
  // predict frame arrives in ~100 fragments and must reassemble.
  failpoint::ScopedFailpoint short_reads(
      "net.read.short", failpoint::Spec::Bitflip());
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 18);
  ASSERT_TRUE(row.ok());
  auto expected = Direct(*row);
  ASSERT_TRUE(expected.ok());
  auto got = client->Predict("m", *row);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->MaxAbsDiff(*expected), 0.0f);
}

TEST_F(NetServingTest, CorruptedFrameIsDetectedAndRejected) {
  StartServer();
  // Flip one deterministic bit in the next frame's magic/version
  // region: the server must answer ProtocolError and close — never
  // dispatch the corrupted frame.
  failpoint::ScopedFailpoint corrupt(
      "net.frame.corrupt", failpoint::Spec::Bitflip().Once());
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 19);
  ASSERT_TRUE(row.ok());
  auto got = client->Predict("m", *row);
  ASSERT_FALSE(got.ok());
  // Either the typed reply arrived before the close, or the close won
  // the race; both are protocol-clean outcomes.
  EXPECT_TRUE(got.status().IsProtocolError() ||
              got.status().IsUnavailable())
      << got.status();
  EXPECT_GE(server_->stats().protocol_errors.load(), 1);
}

TEST_F(NetServingTest, IdleConnectionsAreSwept) {
  net::NetServerConfig config;
  config.idle_timeout_ms = 50;
  StartServer(config);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Ping().ok());
  // Go quiet past the timeout; the sweeper closes us.
  auto reply = client->ReceiveReply();  // blocks until the close
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsUnavailable()) << reply.status();
  EXPECT_GE(server_->stats().idle_closed.load(), 1);
}

TEST_F(NetServingTest, HalfCloseStillDeliversPendingReplies) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 20);
  ASSERT_TRUE(row.ok());
  auto expected = Direct(*row);
  ASSERT_TRUE(expected.ok());

  // Requests in flight, then shutdown(SHUT_WR): the server finishes
  // every admitted request and flushes the replies before closing.
  constexpr int kInFlight = 6;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client->SendPredict(200 + i, "m", *row).ok());
  }
  client->CloseWrite();
  int ok = 0;
  for (int i = 0; i < kInFlight; ++i) {
    auto reply = client->ReceiveReply();
    if (reply.ok() && reply->status.ok() &&
        reply->tensor.MaxAbsDiff(*expected) == 0.0f) {
      ++ok;
    }
  }
  EXPECT_EQ(ok, kInFlight);
  // And then the close arrives.
  EXPECT_TRUE(client->ReceiveReply().status().IsUnavailable());
}

TEST_F(NetServingTest, ShutdownDrainsInFlightRequests) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto row = workloads::GenBatch(1, Shape{16}, 21);
  ASSERT_TRUE(row.ok());

  constexpr int kInFlight = 4;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client->SendPredict(300 + i, "m", *row).ok());
  }
  // Wait until the server has actually read and admitted them, so the
  // drain contract (not a read/shutdown race) is what's under test.
  while (server_->stats().frames_in.load() < kInFlight) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Shutdown();
  int ok = 0;
  for (int i = 0; i < kInFlight; ++i) {
    auto reply = client->ReceiveReply();
    if (reply.ok() && reply->status.ok()) ++ok;
  }
  EXPECT_EQ(ok, kInFlight);
}

TEST_F(NetServingTest, MaxConnectionsRefusedWithTypedFrame) {
  net::NetServerConfig config;
  config.max_connections = 2;
  StartServer(config);

  auto c1 = Connect();
  auto c2 = Connect();
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  ASSERT_TRUE(c1->Ping().ok());
  ASSERT_TRUE(c2->Ping().ok());

  // Third connection: TCP connect succeeds (backlog), but the server
  // answers with a typed Unavailable refusal frame and closes.
  RawConn raw(server_->port());
  ASSERT_TRUE(raw.connected());
  const std::vector<char> reply = raw.DrainToEof();
  ASSERT_GE(reply.size(),
            net::kLenPrefixBytes + net::kFrameHeaderBytes);
  auto header = net::DecodeFrameHeader(
      reply.data() + net::kLenPrefixBytes,
      reply.size() - net::kLenPrefixBytes);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->request_id, 0u);
  EXPECT_EQ(net::StatusCodeFromWire(header->status),
            StatusCode::kUnavailable);
  EXPECT_GE(server_->stats().connections_refused.load(), 1);

  // The admitted connections are untouched by the refusal.
  EXPECT_TRUE(c1->Ping().ok());
  EXPECT_TRUE(c2->Ping().ok());

  // Freeing a slot re-opens admission (the close is observed by the
  // loop asynchronously, so poll briefly).
  c2.reset();
  bool admitted = false;
  for (int i = 0; i < 200 && !admitted; ++i) {
    auto c3 = net::NetClient::Connect("127.0.0.1", server_->port());
    if (c3.ok() && (*c3)->Ping().ok()) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(admitted);
}

TEST_F(NetServingTest, PerConnectionMemoryCapCloses) {
  net::NetServerConfig config;
  config.max_conn_memory_bytes = 4096;
  StartServer(config);
  RawConn raw(server_->port());
  ASSERT_TRUE(raw.connected());

  // A partial frame whose declared length (1 MB) clears the per-frame
  // cap but whose buffered bytes blow the total-memory cap: the frame
  // never completes, yet the connection may not pin that memory.
  const uint32_t declared = 1u << 20;
  ASSERT_TRUE(raw.Send(&declared, sizeof(declared)));
  std::vector<char> partial(16 * 1024, 0x5A);
  ASSERT_TRUE(raw.Send(partial.data(), partial.size()));

  const std::vector<char> reply = raw.DrainToEof();  // server closed
  ASSERT_GE(reply.size(),
            net::kLenPrefixBytes + net::kFrameHeaderBytes);
  auto header = net::DecodeFrameHeader(
      reply.data() + net::kLenPrefixBytes,
      reply.size() - net::kLenPrefixBytes);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(net::StatusCodeFromWire(header->status),
            StatusCode::kProtocolError);
  EXPECT_GE(server_->stats().memory_closed.load(), 1);

  // The abusive connection is gone; the server serves the next one.
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetServingTest, WireStatusBytesAreStable) {
  // On-the-wire values are a protocol contract; renumbering Status
  // enum internals must never leak to the wire.
  EXPECT_EQ(net::WireStatusByte(StatusCode::kOk), 0);
  EXPECT_EQ(net::StatusCodeFromWire(0), StatusCode::kOk);
  EXPECT_EQ(net::StatusCodeFromWire(
                net::WireStatusByte(StatusCode::kProtocolError)),
            StatusCode::kProtocolError);
  EXPECT_EQ(net::StatusCodeFromWire(
                net::WireStatusByte(StatusCode::kDeadlineExceeded)),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net::StatusCodeFromWire(
                net::WireStatusByte(StatusCode::kNotFound)),
            StatusCode::kNotFound);
  // Unknown bytes decode to kInternal, never to kOk.
  EXPECT_EQ(net::StatusCodeFromWire(0xEE), StatusCode::kInternal);
}

}  // namespace
}  // namespace relserve
