// Chaos harness: concurrent mixed serving traffic under randomized
// fault-injection schedules (DESIGN.md "Fault model & recovery").
//
// The contract it enforces, for every randomized seed:
//   - no crash, no deadlock, no broken promise;
//   - every request either succeeds with bits identical to the
//     fault-free ground truth, or fails with a *typed* resilience
//     status — Unavailable (shed / transient exhausted), DataLoss
//     (checksum-verified corruption), or DeadlineExceeded. Silent
//     wrong answers and untyped errors are the only failures.
//
// The model dimensions stay within one tensor block so UDF-centric,
// relation-centric, and fallback re-execution all produce identical
// bits — which is what lets the harness demand exact equality even
// while representations degrade mid-flight.
//
// Seeds default to 50; RELSERVE_CHAOS_SEEDS overrides (tsan_check.sh
// runs a reduced count under ThreadSanitizer). Every schedule is
// derived deterministically from its seed, so a failing seed replays.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "graph/model.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

using failpoint::Spec;

int NumSeeds() {
  const char* env = std::getenv("RELSERVE_CHAOS_SEEDS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 50;
}

ServingConfig ChaosServingConfig() {
  ServingConfig config;
  // Small enough that relational execution actually evicts and
  // reloads pages (so disk/evict faults land on real traffic).
  config.buffer_pool_pages = 48;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  return config;
}

SchedulerConfig ChaosSchedulerConfig() {
  SchedulerConfig config;
  config.max_batch_rows = 8;
  config.max_delay_us = 100;
  config.num_workers = 2;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_us = 20;
  config.retry.max_backoff_us = 200;
  config.retry.total_backoff_budget_us = 2'000;
  config.breaker.window_size = 16;
  config.breaker.min_samples = 4;
  config.breaker.failure_rate_threshold = 0.5;
  config.breaker.open_cooldown_us = 5'000;
  config.breaker.half_open_successes_to_close = 1;
  config.breaker.half_open_max_probes = 2;
  return config;
}

// Arms a randomized subset of the instrumented sites. Probabilities
// stay low enough that most traffic flows; per-site RNG seeds come
// from the round seed, so the whole schedule replays bit-for-bit.
void ArmRandomSchedule(std::mt19937_64& rng) {
  auto coin = [&rng](double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };
  auto within = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  if (coin(0.5)) {
    Spec spec = coin(0.5) ? Spec::Bitflip()
                          : Spec::Error(StatusCode::kIOError);
    failpoint::Enable(
        "disk.read", spec.Probability(within(0.01, 0.15)).Seed(rng()));
  }
  if (coin(0.5)) {
    const uint64_t kind = rng() % 3;
    Spec spec = kind == 0   ? Spec::Error(StatusCode::kIOError)
                : kind == 1 ? Spec::Torn()
                            : Spec::Bitflip();
    failpoint::Enable(
        "disk.write", spec.Probability(within(0.01, 0.10)).Seed(rng()));
  }
  if (coin(0.4)) {
    failpoint::Enable("bufferpool.evict",
                      Spec::Error(StatusCode::kIOError)
                          .Probability(within(0.05, 0.30))
                          .Seed(rng()));
  }
  if (coin(0.4)) {
    failpoint::Enable("cache.lookup",
                      Spec::Error(StatusCode::kUnavailable)
                          .Probability(within(0.10, 0.50))
                          .Seed(rng()));
  }
  if (coin(0.4)) {
    failpoint::Enable("scheduler.dispatch",
                      Spec::Error(StatusCode::kIOError)
                          .Probability(within(0.02, 0.15))
                          .Seed(rng()));
  }
  if (coin(0.3)) {
    failpoint::Enable("disk.read.eintr",
                      Spec::Error(StatusCode::kIOError)
                          .Probability(0.05)
                          .Seed(rng()));
  }
  if (coin(0.2)) {
    failpoint::Enable("disk.write.short",
                      Spec::Error(StatusCode::kIOError)
                          .Probability(0.05)
                          .Seed(rng()));
  }
}

struct RoundTally {
  std::atomic<int> ok_identical{0};
  std::atomic<int> typed_failures{0};
  std::atomic<int> silent_wrong_bits{0};
  std::atomic<int> untyped_errors{0};
};

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

// One full round: fresh session, fault-free ground truth, randomized
// schedule, concurrent mixed traffic, typed-outcome classification.
void RunChaosRound(uint64_t seed, RoundTally* tally) {
  ServingSession session(ChaosServingConfig());
  ASSERT_TRUE(session.status().ok());
  {
    // All dims <= the 16x16 block: every representation is
    // bit-identical, so exact comparison is legitimate.
    auto model = BuildFFNN("m", {16, 16, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
    const ServingMode mode = (seed % 2 == 0)
                                 ? ServingMode::kForceUdf
                                 : ServingMode::kForceRelational;
    ASSERT_TRUE(session.Deploy("m", mode, 8).ok());
    ASSERT_TRUE(session.EnableExactCache("m").ok());
  }

  constexpr int kRows = 8;
  std::vector<Tensor> rows;
  std::vector<Tensor> expected;
  for (int r = 0; r < kRows; ++r) {
    auto row = workloads::GenBatch(1, Shape{16}, 100 + r);
    ASSERT_TRUE(row.ok());
    auto out = session.PredictBatch("m", *row);
    ASSERT_TRUE(out.ok());
    auto truth = out->ToTensor(session.exec_context());
    ASSERT_TRUE(truth.ok());
    rows.push_back(std::move(*row));
    expected.push_back(std::move(*truth));
  }

  RequestScheduler scheduler(&session, ChaosSchedulerConfig());
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  failpoint::SetGlobalSeed(seed);
  ArmRandomSchedule(rng);

  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 24;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kOpsPerClient; ++i) {
        const int r = (c * 5 + i) % kRows;
        Result<Tensor> result = [&]() -> Result<Tensor> {
          if (i % 8 == 7) {
            // An already-expired deadline: must shed typed, never run.
            return scheduler
                .SubmitBatch("m", rows[r], /*deadline_us=*/-1)
                .get();
          }
          if ((c + i) % 2 == 0) {
            return scheduler.PredictWithCache("m", rows[r]);
          }
          return scheduler.PredictBatch("m", rows[r]);
        }();
        if (result.ok()) {
          if (result->MaxAbsDiff(expected[r]) == 0.0f) {
            tally->ok_identical.fetch_add(1);
          } else {
            tally->silent_wrong_bits.fetch_add(1);
          }
        } else {
          const Status& s = result.status();
          if (s.IsUnavailable() || s.IsDataLoss() ||
              s.IsDeadlineExceeded()) {
            tally->typed_failures.fetch_add(1);
          } else {
            tally->untyped_errors.fetch_add(1);
            ADD_FAILURE() << "seed " << seed
                          << ": untyped failure escaped: "
                          << s.ToString();
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  failpoint::DisableAll();
}

TEST_F(ChaosTest, RandomizedFaultSchedulesNeverBreakTheTypedContract) {
  const int seeds = NumSeeds();
  RoundTally tally;
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    RunChaosRound(static_cast<uint64_t>(seed), &tally);
    if (::testing::Test::HasFatalFailure()) break;
  }
  EXPECT_EQ(tally.silent_wrong_bits.load(), 0);
  EXPECT_EQ(tally.untyped_errors.load(), 0);
  // The schedules are mostly-quiet by construction: the bulk of the
  // traffic must have flowed, and exact results never drifted.
  EXPECT_GT(tally.ok_identical.load(), tally.typed_failures.load());
  ::testing::Test::RecordProperty("ok_identical",
                                  tally.ok_identical.load());
  ::testing::Test::RecordProperty("typed_failures",
                                  tally.typed_failures.load());
}

// Corruption injected on the read path must be *detected* — counted by
// the checksum layer and surfaced as DataLoss / healed by re-read —
// never silently served.
TEST_F(ChaosTest, ChecksumMismatchInjectionIsDetectedNotServed) {
  ServingConfig config = ChaosServingConfig();
  config.buffer_pool_pages = 2;  // force evict + reload of weights
  ServingSession session(config);
  auto model = BuildFFNN("m", {16, 16, 4}, 3);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
  ASSERT_TRUE(
      session.Deploy("m", ServingMode::kForceRelational, 8).ok());
  auto input = workloads::GenBatch(8, Shape{16}, 9);
  ASSERT_TRUE(input.ok());
  auto truth_out = session.PredictBatch("m", *input);
  ASSERT_TRUE(truth_out.ok());
  auto truth = truth_out->ToTensor(session.exec_context());
  ASSERT_TRUE(truth.ok());

  failpoint::Enable("disk.read", Spec::Bitflip());  // every attempt
  auto out = session.PredictBatch("m", *input);
  if (out.ok()) {
    // Served despite the fault (e.g. everything stayed resident):
    // bits must still be exact.
    auto tensor = out->ToTensor(session.exec_context());
    ASSERT_TRUE(tensor.ok());
    EXPECT_EQ(tensor->MaxAbsDiff(*truth), 0.0f);
  } else {
    EXPECT_TRUE(out.status().IsDataLoss() ||
                out.status().IsUnavailable())
        << out.status().ToString();
  }
  failpoint::DisableAll();

  DiskManager* disk = session.exec_context()->buffer_pool->disk();
  EXPECT_GE(disk->num_checksum_failures(), 1);
  EXPECT_GE(disk->num_read_retries(), 1);
}

// Sustained failure under concurrent load opens the per-model breaker
// (requests shed typed instead of queueing on a dead backend); once
// the fault clears, probes close it and traffic recovers.
TEST_F(ChaosTest, BreakerOpensUnderSustainedFaultThenRecovers) {
  ServingSession session(ChaosServingConfig());
  auto model = BuildFFNN("m", {16, 16, 4}, 3);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
  ASSERT_TRUE(session.Deploy("m", ServingMode::kForceUdf, 8).ok());

  SchedulerConfig config = ChaosSchedulerConfig();
  config.retry.max_attempts = 1;
  RequestScheduler scheduler(&session, config);
  auto input = workloads::GenBatch(8, Shape{16}, 11);
  ASSERT_TRUE(input.ok());

  failpoint::Enable("scheduler.dispatch",
                    Spec::Error(StatusCode::kIOError));
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        auto result = scheduler.PredictBatch("m", *input);
        EXPECT_FALSE(result.ok());
        EXPECT_TRUE(result.status().IsUnavailable())
            << result.status().ToString();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_GE(scheduler.breaker("m")->times_opened(), 1);
  EXPECT_GE(scheduler.stats().shed_breaker.load(), 1);

  failpoint::Disable("scheduler.dispatch");
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    recovered = scheduler.PredictBatch("m", *input).ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(scheduler.breaker("m")->state(),
            CircuitBreaker::State::kClosed);
}

// Serve-while-ingest under WAL fault injection: readers pin snapshots
// and must read bit-identical results twice per snapshot while a
// writer commits (and sometimes fails, typed) behind them; after the
// schedule, a restart from the same WAL recovers exactly the rows the
// successful commits produced — failed commits leave no trace.
TEST_F(ChaosTest, ServeWhileIngestSnapshotsStableUnderWalFaults) {
  const int rounds = std::max(1, NumSeeds() / 10);
  for (int round = 1; round <= rounds; ++round) {
    SCOPED_TRACE("ingest chaos round " + std::to_string(round));
    const std::string dir =
        "/tmp/relserve_chaos_ingest_" + std::to_string(round);
    ::unlink((dir + "/relserve.wal").c_str());
    ::rmdir(dir.c_str());
    ::mkdir(dir.c_str(), 0755);

    ServingConfig config = ChaosServingConfig();
    config.wal_dir = dir;
    config.wal_fsync = (round % 2 == 0) ? WalFsyncPolicy::kGroupCommit
                                        : WalFsyncPolicy::kEveryCommit;
    auto make_row = [](int64_t id) {
      std::vector<float> f(16);
      for (int i = 0; i < 16; ++i) {
        f[i] = static_cast<float>(id + i) * 0.01f;
      }
      return Row({Value(id), Value(std::move(f))});
    };

    std::atomic<int> committed{0};
    {
      ServingSession session(config);
      ASSERT_TRUE(session.wal_status().ok()) << session.wal_status();
      ASSERT_TRUE(
          session.CreateTable("tx", workloads::FeatureTableSchema())
              .ok());
      std::vector<Row> seed_rows;
      for (int64_t i = 0; i < 16; ++i) seed_rows.push_back(make_row(i));
      ASSERT_TRUE(session.IngestRows("tx", seed_rows).ok());
      auto model = BuildFFNN("m", {16, 16, 4}, 3);
      ASSERT_TRUE(model.ok());
      ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
      ASSERT_TRUE(session.Deploy("m", ServingMode::kForceUdf, 8).ok());

      std::mt19937_64 rng(round * 0x9E3779B97F4A7C15ULL + 7);
      failpoint::SetGlobalSeed(round);
      failpoint::Enable("wal.append",
                        Spec::Error(StatusCode::kIOError)
                            .Probability(0.05)
                            .Seed(rng()));
      failpoint::Enable("wal.fsync",
                        Spec::Error(StatusCode::kIOError)
                            .Probability(0.05)
                            .Seed(rng()));

      std::atomic<bool> done{false};
      std::thread writer([&] {
        for (int64_t txn = 0; txn < 24; ++txn) {
          std::vector<Row> rows;
          for (int64_t i = 0; i < 4; ++i) {
            rows.push_back(make_row(1000 + txn * 4 + i));
          }
          const Status status = session.IngestRows("tx", rows);
          if (status.ok()) {
            committed.fetch_add(1);
          } else {
            // A failed commit must be typed, and applied-nothing.
            EXPECT_TRUE(status.IsIOError()) << status.ToString();
          }
        }
        done.store(true, std::memory_order_release);
      });
      std::vector<std::thread> readers;
      for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
          int64_t last_rows = 0;
          while (!done.load(std::memory_order_acquire)) {
            const Version snap = session.PinSnapshot();
            auto first =
                session.PredictAtSnapshot("m", "tx", "features", snap);
            auto second =
                session.PredictAtSnapshot("m", "tx", "features", snap);
            if (!first.ok() || !second.ok()) {
              ADD_FAILURE() << "snapshot read failed: "
                            << first.status() << " / "
                            << second.status();
              break;
            }
            auto a = first->ToTensor(session.exec_context());
            auto b = second->ToTensor(session.exec_context());
            if (!a.ok() || !b.ok()) {
              ADD_FAILURE() << "materialize failed";
              break;
            }
            EXPECT_EQ(a->shape(), b->shape());
            EXPECT_EQ(a->MaxAbsDiff(*b), 0.0f) << "snap " << snap;
            // Published history only grows.
            EXPECT_GE(a->shape().dim(0), last_rows);
            last_rows = a->shape().dim(0);
          }
        });
      }
      writer.join();
      for (std::thread& t : readers) t.join();
      failpoint::DisableAll();

      auto final_out = session.PredictAtSnapshot(
          "m", "tx", "features", session.PinSnapshot());
      ASSERT_TRUE(final_out.ok()) << final_out.status();
      auto final_tensor = final_out->ToTensor(session.exec_context());
      ASSERT_TRUE(final_tensor.ok());
      EXPECT_EQ(final_tensor->shape().dim(0),
                16 + 4 * committed.load());
    }

    // Crash-restart from the same WAL: every transaction the writer
    // saw commit comes back, in whole-transaction multiples.
    // (dropped_uncommitted_ops may be nonzero: a txn whose op records
    // appended before its commit append failed leaves exactly the
    // orphans recovery exists to drop. And the count may EXCEED the
    // writer's tally: when the commit record reached the file but
    // fsync then failed, ApplyWrite reports an error and applies
    // nothing in-memory, yet the commit is durable — recovery
    // replays it. Durability errors are ambiguous, never lossy.)
    ServingSession revived(config);
    ASSERT_TRUE(revived.wal_status().ok()) << revived.wal_status();
    auto table = revived.GetTable("tx");
    ASSERT_TRUE(table.ok()) << table.status();
    int64_t visible = (*table)->visibility != nullptr
                          ? (*table)->visibility->VisibleCount(
                                0, (*table)->num_rows(),
                                revived.PinSnapshot())
                          : (*table)->num_rows();
    EXPECT_GE(visible, 16 + 4 * committed.load());
    EXPECT_EQ((visible - 16) % 4, 0);
  }
}

}  // namespace
}  // namespace relserve
