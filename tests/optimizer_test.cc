#include <gtest/gtest.h>

#include "graph/model.h"
#include "graph/model_zoo.h"
#include "optimizer/decomposition.h"
#include "optimizer/optimizer.h"

namespace relserve {
namespace {

TEST(EstimatorTest, MatMulFollowsPaperRule) {
  // m x k inputs, k x n weight: estimate = (m*k + k*n + m*n) floats.
  auto model = BuildFFNN("m", {100, 50, 10}, 1);
  ASSERT_TRUE(model.ok());
  const int64_t batch = 32;
  auto bytes = EstimateNodeBytes(*model, /*node_id=*/1, batch);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, (batch * 100 + 100 * 50 + batch * 50) * 4);
}

TEST(EstimatorTest, ElementwiseOpsCountInAndOut) {
  auto model = BuildFFNN("m", {10, 20, 2}, 1);
  ASSERT_TRUE(model.ok());
  // Node 3 is the Relu over [batch, 20].
  auto bytes = EstimateNodeBytes(*model, 3, 8);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, (8 * 20 + 8 * 20) * 4);
}

TEST(EstimatorTest, GrowsWithBatch) {
  auto model = BuildFFNN("m", {10, 20, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto small = EstimateNodeBytes(*model, 1, 1);
  auto large = EstimateNodeBytes(*model, 1, 1000);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(*large, *small);
}

TEST(OptimizerTest, SmallModelIsAllUdf) {
  auto model = BuildFFNN("fraud", {28, 256, 2}, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(64LL << 20);  // 64 MB threshold
  auto plan = opt.Optimize(*model, 1000);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->AllUdf());
}

TEST(OptimizerTest, LargeLayerGoesRelational) {
  // Amazon-14k-FC at 1% scale: the first matmul's weight alone is
  // ~24 MB, far above a 4 MB threshold.
  auto spec = zoo::Table1FcSpecs(0.01)[3];
  auto model = zoo::BuildFromSpec(spec, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(4LL << 20);
  auto plan = opt.Optimize(*model, 100);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->AllUdf());
  EXPECT_EQ(plan->decisions[1].repr, Repr::kRelational);  // big matmul
  // Tiny output-layer softmax stays UDF.
  EXPECT_EQ(plan->decisions.back().repr, Repr::kUdf);
}

TEST(OptimizerTest, ThresholdBoundaryIsStrictlyGreater) {
  auto model = BuildFFNN("m", {10, 10, 10}, 1);
  ASSERT_TRUE(model.ok());
  auto bytes = EstimateNodeBytes(*model, 1, 4);
  ASSERT_TRUE(bytes.ok());
  // Threshold exactly equal to the estimate: stays UDF ("exceeds").
  RuleBasedOptimizer at(*bytes);
  auto plan = at.Optimize(*model, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->decisions[1].repr, Repr::kUdf);
  RuleBasedOptimizer below(*bytes - 1);
  plan = below.Optimize(*model, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->decisions[1].repr, Repr::kRelational);
}

TEST(OptimizerTest, BatchSizeFlipsDecision) {
  auto model = BuildFFNN("m", {1000, 100, 10}, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(1LL << 20);  // 1 MB
  auto small = opt.Optimize(*model, 1);
  auto large = opt.Optimize(*model, 10000);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_EQ(small->decisions[1].repr, Repr::kUdf);
  EXPECT_EQ(large->decisions[1].repr, Repr::kRelational);
}

TEST(OptimizerTest, PlanExplainIsReadable) {
  auto model = BuildFFNN("m", {4, 4, 2}, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(1 << 20);
  auto plan = opt.Optimize(*model, 2);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->ToString(*model);
  EXPECT_NE(text.find("MatMul"), std::string::npos);
  EXPECT_NE(text.find("udf"), std::string::npos);
}

TEST(DeviceAwareOptimizerTest, PlacesBigOpsOnAcceleratorOnly) {
  DeviceAllocator devices({
      DeviceSpec{DeviceKind::kCpu, "cpu", 10e9, 0.0, 0.0},
      DeviceSpec{DeviceKind::kAccelerator, "gpu", 1000e9, 10e9, 1e-4},
  });
  auto model = BuildFFNN("m", {2048, 2048, 4}, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(1LL << 40, &devices);  // everything UDF
  auto plan = opt.Optimize(*model, 512);
  ASSERT_TRUE(plan.ok());
  // The big first matmul (512x2048x2048, ~4.3 GFLOP) beats its
  // transfer cost; the tiny elementwise ops do not.
  EXPECT_EQ(plan->decisions[1].repr, Repr::kUdf);
  EXPECT_EQ(plan->decisions[1].device, DeviceKind::kAccelerator);
  EXPECT_EQ(plan->decisions[3].device, DeviceKind::kCpu);  // relu
  EXPECT_EQ(plan->decisions[0].device, DeviceKind::kCpu);  // input
  // The annotation shows in EXPLAIN.
  EXPECT_NE(plan->ToString(*model).find("@accelerator"),
            std::string::npos);
}

TEST(DeviceAwareOptimizerTest, NoAllocatorMeansCpuEverywhere) {
  auto model = BuildFFNN("m", {2048, 2048, 4}, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(1LL << 40);
  auto plan = opt.Optimize(*model, 512);
  ASSERT_TRUE(plan.ok());
  for (const auto& d : plan->decisions) {
    EXPECT_EQ(d.device, DeviceKind::kCpu);
  }
}

TEST(DeviceAwareOptimizerTest, RelationalOpsStayOnCpu) {
  DeviceAllocator devices({
      DeviceSpec{DeviceKind::kCpu, "cpu", 10e9, 0.0, 0.0},
      DeviceSpec{DeviceKind::kAccelerator, "gpu", 1000e9, 10e9, 1e-4},
  });
  auto model = BuildFFNN("m", {2048, 2048, 4}, 1);
  ASSERT_TRUE(model.ok());
  RuleBasedOptimizer opt(1, &devices);  // everything relational
  auto plan = opt.Optimize(*model, 512);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->decisions[1].repr, Repr::kRelational);
  EXPECT_EQ(plan->decisions[1].device, DeviceKind::kCpu);
}

TEST(DecompositionTest, ApplicabilityCheck) {
  auto reducing = BuildFFNN("m", {968, 256, 2}, 1);
  ASSERT_TRUE(reducing.ok());
  EXPECT_TRUE(CanDecomposeFirstLayer(*reducing));
  auto expanding = BuildFFNN("m", {28, 256, 2}, 1);
  ASSERT_TRUE(expanding.ok());
  EXPECT_FALSE(CanDecomposeFirstLayer(*expanding));
}

TEST(DecompositionTest, SplitWeightsPartitionColumns) {
  auto model = BuildFFNN("m", {10, 4, 2}, 3);
  ASSERT_TRUE(model.ok());
  auto split = SplitFirstLayerWeights(*model, 6, nullptr);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->w1.shape(), (Shape{4, 6}));
  EXPECT_EQ(split->w2.shape(), (Shape{4, 4}));
  auto w = model->GetWeight("w0");
  ASSERT_TRUE(w.ok());
  EXPECT_FLOAT_EQ(split->w1.At(2, 3), (*w)->At(2, 3));
  EXPECT_FLOAT_EQ(split->w2.At(2, 1), (*w)->At(2, 7));
}

TEST(DecompositionTest, SplitRejectsBadWidth) {
  auto model = BuildFFNN("m", {10, 4, 2}, 3);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(SplitFirstLayerWeights(*model, 0, nullptr).ok());
  EXPECT_FALSE(SplitFirstLayerWeights(*model, 10, nullptr).ok());
}

TEST(DecompositionTest, TailModelSkipsFirstMatMul) {
  auto model = BuildFFNN("m", {10, 4, 2}, 3);
  ASSERT_TRUE(model.ok());
  auto tail = BuildTailModel(*model);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->sample_shape(), (Shape{4}));
  // input + bias + relu + matmul + bias + softmax
  EXPECT_EQ(tail->nodes().size(), 6u);
  EXPECT_EQ(tail->node(1).kind, OpKind::kBiasAdd);
  EXPECT_TRUE(tail->GetWeight("b0").ok());
  EXPECT_TRUE(tail->GetWeight("w1").ok());
  EXPECT_FALSE(tail->GetWeight("w0").ok());  // pushed down
}

}  // namespace
}  // namespace relserve
