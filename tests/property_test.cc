// Property-style parameterized sweeps over the core invariants:
//  (1) every execution plan computes the same function;
//  (2) block geometry never changes results;
//  (3) the optimizer's decisions are monotone in batch and threshold;
//  (4) memory accounting always returns to zero.

#include <gtest/gtest.h>

#include <tuple>

#include "engine/hybrid_executor.h"
#include "engine/prepared_model.h"
#include "graph/model.h"
#include "optimizer/optimizer.h"
#include "storage/buffer_pool.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

InferencePlan UniformPlan(const Model& model, Repr repr) {
  InferencePlan plan;
  for (const Node& node : model.nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, repr, 0});
  }
  return plan;
}

// --- (1) + (2): representation and blocking invariance ---------------

class PlanEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::vector<int64_t>,  // model dims
                     int64_t,               // batch
                     int64_t>> {};          // block size

TEST_P(PlanEquivalenceTest, RelationalMatchesUdfForAllGeometries) {
  const auto& [dims, batch, block] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 512);
  MemoryTracker tracker("work");
  ExecContext ctx;
  ctx.tracker = &tracker;
  ctx.buffer_pool = &pool;
  ctx.block_rows = block;
  ctx.block_cols = block;

  auto model = BuildFFNN("m", dims, /*seed=*/dims[0] + batch, nullptr);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(batch, Shape{dims[0]}, batch);
  ASSERT_TRUE(input.ok());

  auto run = [&](Repr repr) -> Result<Tensor> {
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel prepared,
        PreparedModel::Prepare(&*model, UniformPlan(*model, repr),
                               &ctx));
    RELSERVE_ASSIGN_OR_RETURN(
        ExecOutput out, HybridExecutor::Run(prepared, *input, &ctx));
    return out.ToTensor(&ctx);
  };
  {
    auto udf = run(Repr::kUdf);
    auto rel = run(Repr::kRelational);
    ASSERT_TRUE(udf.ok()) << udf.status();
    ASSERT_TRUE(rel.ok()) << rel.status();
    EXPECT_LT(udf->MaxAbsDiff(*rel), 1e-4f);
  }
  // Property (4): with the outputs out of scope, the arena is empty.
  EXPECT_EQ(tracker.used_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(std::vector<int64_t>{5, 9, 3},
                          std::vector<int64_t>{33, 17, 8},
                          std::vector<int64_t>{64, 64, 64},
                          std::vector<int64_t>{20, 50, 30, 4}),
        ::testing::Values(int64_t{1}, int64_t{7}, int64_t{32}),
        ::testing::Values(int64_t{4}, int64_t{16}, int64_t{64})));

// --- (2) continued: block size never changes the relational result ---

class BlockSizeInvarianceTest
    : public ::testing::TestWithParam<int64_t> {};

TEST_P(BlockSizeInvarianceTest, ResultIndependentOfBlockSize) {
  const int64_t block = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 512);
  MemoryTracker tracker("work");
  ExecContext ctx;
  ctx.tracker = &tracker;
  ctx.buffer_pool = &pool;
  ctx.block_rows = block;
  ctx.block_cols = block;

  auto model = BuildFFNN("m", {23, 31, 6}, 77, nullptr);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(19, Shape{23}, 5);
  ASSERT_TRUE(input.ok());
  auto prepared = PreparedModel::Prepare(
      &*model, UniformPlan(*model, Repr::kRelational), &ctx);
  ASSERT_TRUE(prepared.ok());
  auto out = HybridExecutor::Run(*prepared, *input, &ctx);
  ASSERT_TRUE(out.ok());
  auto got = out->ToTensor(&ctx);
  ASSERT_TRUE(got.ok());

  // Reference: plain UDF execution (block-size independent).
  auto ref_prepared = PreparedModel::Prepare(
      &*model, UniformPlan(*model, Repr::kUdf), &ctx);
  ASSERT_TRUE(ref_prepared.ok());
  auto ref_out = HybridExecutor::Run(*ref_prepared, *input, &ctx);
  ASSERT_TRUE(ref_out.ok());
  auto ref = ref_out->ToTensor(&ctx);
  ASSERT_TRUE(ref.ok());
  EXPECT_LT(ref->MaxAbsDiff(*got), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockSizeInvarianceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 64));

// --- (3): optimizer monotonicity --------------------------------------

class OptimizerMonotoneTest
    : public ::testing::TestWithParam<int64_t> {};

TEST_P(OptimizerMonotoneTest,
       RelationalDecisionsGrowWithBatchAndShrinkWithThreshold) {
  const int64_t batch = GetParam();
  auto model = BuildFFNN("m", {500, 200, 20}, 1);
  ASSERT_TRUE(model.ok());

  auto count_relational = [&](int64_t threshold,
                              int64_t b) -> int64_t {
    RuleBasedOptimizer opt(threshold);
    auto plan = opt.Optimize(*model, b);
    EXPECT_TRUE(plan.ok());
    int64_t n = 0;
    for (const auto& d : plan->decisions) {
      if (d.repr == Repr::kRelational) ++n;
    }
    return n;
  };

  // More batch => at least as many relational operators.
  EXPECT_LE(count_relational(1 << 20, batch),
            count_relational(1 << 20, batch * 4));
  // Higher threshold => at most as many relational operators.
  EXPECT_GE(count_relational(1 << 16, batch),
            count_relational(1 << 22, batch));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerMonotoneTest,
                         ::testing::Values(1, 8, 64, 512));

// --- (4): arena accounting under failure ------------------------------

class OomRecoveryTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(OomRecoveryTest, FailedQueriesLeakNothing) {
  const int64_t limit = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 64);
  MemoryTracker tracker("tight", limit);
  ExecContext ctx;
  ctx.tracker = &tracker;
  ctx.buffer_pool = &pool;
  ctx.block_rows = 8;
  ctx.block_cols = 8;

  auto model = BuildFFNN("m", {64, 96, 8}, 3, nullptr);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(32, Shape{64}, 2);
  ASSERT_TRUE(input.ok());
  {
    auto prepared = PreparedModel::Prepare(
        &*model, UniformPlan(*model, Repr::kUdf), &ctx);
    if (prepared.ok()) {
      auto out = HybridExecutor::Run(*prepared, *input, &ctx);
      // Whether it succeeded or OOMed is limit-dependent; either way
      // nothing may stay charged after everything leaves scope.
      (void)out;
    } else {
      EXPECT_TRUE(prepared.status().IsOutOfMemory());
    }
  }
  EXPECT_EQ(tracker.used_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OomRecoveryTest,
                         ::testing::Values(int64_t{1} << 12,
                                           int64_t{1} << 14,
                                           int64_t{1} << 16,
                                           int64_t{1} << 18,
                                           int64_t{1} << 24));

}  // namespace
}  // namespace relserve
