// Tests for the content-addressed, ref-counted PhysicalBlockIndex
// (paper Sec. 4(1)) and the layers above it: BlockStores sharing one
// index, and ServingSession's multi-tenant deploy/undeploy lifecycle.
//
// The load-bearing invariants:
//   - tolerance 0 is byte-exact — dedup never changes a single bit;
//   - physical pages are freed at exactly the last Release, in any
//     undeploy order, and the disk free list returns to baseline;
//   - resident-arm hits share the canonical buffer and charge the
//     memory arena nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/model.h"
#include "resource/memory_tracker.h"
#include "serving/serving_session.h"
#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/physical_block_index.h"
#include "tensor/tensor.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

Tensor Filled(const Shape& shape, float start, float step = 1.0f) {
  auto t = Tensor::Create(shape);
  EXPECT_TRUE(t.ok());
  for (int64_t i = 0; i < t->NumElements(); ++i) {
    t->data()[i] = start + step * static_cast<float>(i);
  }
  return std::move(*t);
}

TEST(PhysicalBlockIndexTest, ExactInternDedupsAndRefcounts) {
  DiskManager disk;
  BufferPool pool(&disk, 32);
  PhysicalBlockIndex index(&pool);

  const Tensor a = Filled(Shape{16, 16}, 1.0f);
  auto first = index.Intern(a, /*tolerance=*/0.0f);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->deduped);
  EXPECT_FALSE(first->pages.empty());

  // A byte-identical tensor in a different buffer resolves to the
  // same physical block — same id, same pages, no new allocation.
  auto copy = a.Clone();
  ASSERT_TRUE(copy.ok());
  auto second = index.Intern(*copy, 0.0f);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->deduped);
  EXPECT_EQ(second->id, first->id);
  EXPECT_EQ(second->pages, first->pages);
  EXPECT_FLOAT_EQ(second->match_error, 0.0f);

  PhysicalBlockStats stats = index.stats();
  EXPECT_EQ(stats.unique_blocks, 1);
  EXPECT_EQ(stats.logical_refs, 2);
  EXPECT_EQ(stats.dedup_hits, 1);
  EXPECT_EQ(stats.physical_bytes, a.ByteSize());
  EXPECT_EQ(stats.logical_bytes, 2 * a.ByteSize());

  index.Release(first->id);
  EXPECT_EQ(index.stats().unique_blocks, 1);  // one ref still live
  index.Release(first->id);
  stats = index.stats();
  EXPECT_EQ(stats.unique_blocks, 0);
  EXPECT_EQ(stats.logical_refs, 0);
  EXPECT_EQ(stats.physical_bytes, 0);
  EXPECT_EQ(stats.freed_blocks, 1);
}

TEST(PhysicalBlockIndexTest, ToleranceZeroIsByteExact) {
  DiskManager disk;
  BufferPool pool(&disk, 32);
  PhysicalBlockIndex index(&pool);

  const Tensor a = Filled(Shape{8, 8}, 0.5f);
  Tensor b = Filled(Shape{8, 8}, 0.5f);
  b.data()[0] += 1e-6f;  // near-identical is not identical

  auto ia = index.Intern(a, 0.0f);
  auto ib = index.Intern(b, 0.0f);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  EXPECT_FALSE(ib->deduped);
  EXPECT_NE(ib->id, ia->id);
  EXPECT_EQ(index.stats().unique_blocks, 2);
  index.Release(ia->id);
  index.Release(ib->id);
}

TEST(PhysicalBlockIndexTest, ToleranceMergesWithBoundedError) {
  DiskManager disk;
  BufferPool pool(&disk, 32);
  PhysicalBlockIndex index(&pool);

  const Tensor a = Filled(Shape{8, 8}, 0.5f);
  Tensor b = Filled(Shape{8, 8}, 0.5f);
  b.data()[7] += 5e-4f;

  const float tolerance = 1e-3f;
  auto ia = index.Intern(a, tolerance);
  auto ib = index.Intern(b, tolerance);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  EXPECT_TRUE(ib->deduped);
  EXPECT_EQ(ib->id, ia->id);
  EXPECT_GT(ib->match_error, 0.0f);
  EXPECT_LE(ib->match_error, tolerance);
  EXPECT_GT(index.stats().max_substitution_error, 0.0f);

  // Beyond the tolerance: no merge.
  Tensor c = Filled(Shape{8, 8}, 0.5f);
  c.data()[7] += 0.5f;
  auto ic = index.Intern(c, tolerance);
  ASSERT_TRUE(ic.ok());
  EXPECT_FALSE(ic->deduped);

  index.Release(ia->id);
  index.Release(ib->id);
  index.Release(ic->id);
}

TEST(PhysicalBlockIndexTest, ReleaseFreesPagesAtLastRef) {
  DiskManager disk;
  BufferPool pool(&disk, 32);
  PhysicalBlockIndex index(&pool);

  // Two refs onto one block whose payload spans several pages.
  const Tensor big = Filled(Shape{256, 256}, 0.0f, 0.25f);
  auto first = index.Intern(big, 0.0f);
  ASSERT_TRUE(first.ok());
  auto second = index.Intern(big, 0.0f);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->pages.size(), 1u);
  const int64_t allocated = disk.num_allocated();

  index.Release(first->id);
  EXPECT_EQ(disk.num_free(), 0);  // one ref left: pages still owned

  index.Release(first->id);
  // Last ref dropped: every page the index allocated is back on the
  // disk free list.
  EXPECT_EQ(disk.num_free(), allocated);
  EXPECT_EQ(index.stats().physical_bytes, 0);

  // Releasing a dead id again is a harmless no-op.
  index.Release(first->id);
  EXPECT_EQ(disk.num_free(), allocated);
}

TEST(PhysicalBlockIndexTest, AddRefExtendsLifetimeAndDiesTyped) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  PhysicalBlockIndex index(&pool);

  const Tensor a = Filled(Shape{4, 4}, 2.0f);
  auto interned = index.Intern(a, 0.0f);
  ASSERT_TRUE(interned.ok());
  ASSERT_TRUE(index.AddRef(interned->id).ok());
  EXPECT_EQ(index.stats().logical_refs, 2);

  index.Release(interned->id);
  index.Release(interned->id);
  EXPECT_EQ(index.stats().unique_blocks, 0);
  // The id is dead now; AddRef must say so, not resurrect it.
  EXPECT_TRUE(index.AddRef(interned->id).IsNotFound());
  EXPECT_TRUE(index.AddRef(kInvalidPhysicalBlockId).IsNotFound());
}

TEST(PhysicalBlockIndexTest, ResidentHitSharesBufferAndChargesOnce) {
  PhysicalBlockIndex index(/*pool=*/nullptr);
  MemoryTracker tracker("test-arena");

  const Tensor a = Filled(Shape{8}, 3.0f);
  auto first = index.InternResident(a, 0.0f, &tracker);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->deduped);
  // The canonical copy was charged to the arena exactly once...
  EXPECT_EQ(tracker.used_bytes(), a.ByteSize());

  auto copy = a.Clone();
  ASSERT_TRUE(copy.ok());
  auto second = index.InternResident(*copy, 0.0f, &tracker);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->deduped);
  // ...and the hit shares that buffer, charging nothing more.
  EXPECT_EQ(second->payload.data(), first->payload.data());
  EXPECT_EQ(tracker.used_bytes(), a.ByteSize());

  index.Release(first->id);
  index.Release(second->id);
}

TEST(PhysicalBlockIndexTest, ArmsNeverCrossDedup) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  PhysicalBlockIndex index(&pool);

  const Tensor a = Filled(Shape{8, 8}, 1.0f);
  auto paged = index.Intern(a, 0.0f);
  auto resident = index.InternResident(a, 0.0f);
  ASSERT_TRUE(paged.ok());
  ASSERT_TRUE(resident.ok());
  // Same bytes, different payload form: two distinct physical blocks.
  EXPECT_FALSE(resident->deduped);
  EXPECT_NE(resident->id, paged->id);
  EXPECT_EQ(index.stats().unique_blocks, 2);
  index.Release(paged->id);
  index.Release(resident->id);
}

TEST(PhysicalBlockIndexTest, MaterializeRoundTrips) {
  DiskManager disk;
  BufferPool pool(&disk, 32);
  PhysicalBlockIndex index(&pool);

  const Tensor big = Filled(Shape{200, 100}, -5.0f, 0.125f);
  auto interned = index.Intern(big, 0.0f);
  ASSERT_TRUE(interned.ok());
  auto back = index.Materialize(interned->id);
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(big.MaxAbsDiff(*back), 0.0f);
  EXPECT_TRUE(index.Materialize(kInvalidPhysicalBlockId)
                  .status()
                  .IsNotFound());
  index.Release(interned->id);
}

TEST(PhysicalBlockIndexTest, ConcurrentInternReleaseIsConsistent) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  PhysicalBlockIndex index(&pool);

  // Four threads repeatedly intern and release the same three
  // payloads; refcounts must never tear (TSan covers the locking,
  // the final stats cover the arithmetic).
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const Tensor payload =
            Filled(Shape{16, 16}, static_cast<float>((t + i) % 3));
        auto interned = index.Intern(payload, 0.0f);
        if (!interned.ok()) {
          ++failures;
          continue;
        }
        index.Release(interned->id);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  const PhysicalBlockStats stats = index.stats();
  EXPECT_EQ(stats.logical_refs, 0);
  EXPECT_EQ(stats.unique_blocks, 0);
  EXPECT_EQ(stats.physical_bytes, 0);
  EXPECT_EQ(stats.interned, kThreads * kIters);
}

TEST(SharedBlockStoreTest, StoresShareBlocksAndSurviveEachOther) {
  DiskManager disk;
  BufferPool pool(&disk, 32);
  PhysicalBlockIndex index(&pool);

  const Tensor m = Filled(Shape{32, 32}, 0.0f, 0.5f);
  const BlockedShape geometry{32, 32, 16, 16};

  auto a = std::make_unique<BlockStore>(&index, geometry,
                                        /*tolerance=*/0.0f);
  ASSERT_TRUE(a->PutMatrix(m).ok());
  EXPECT_EQ(a->shared_blocks(), 0);

  BlockStore b(&index, geometry, 0.0f);
  ASSERT_TRUE(b.PutMatrix(m).ok());
  // Every one of b's entries resolved to a's physical blocks.
  EXPECT_EQ(b.shared_blocks(),
            static_cast<int64_t>(b.entries().size()));
  EXPECT_EQ(b.shared_bytes(), m.ByteSize());
  EXPECT_EQ(index.stats().unique_blocks, 4);
  EXPECT_EQ(index.stats().logical_refs, 8);

  // Dropping the store that interned first must not pull pages out
  // from under the survivor.
  a.reset();
  EXPECT_EQ(index.stats().unique_blocks, 4);
  auto back = b.ToMatrix();
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(m.MaxAbsDiff(*back), 0.0f);
}

TEST(ServingDedupTest, SecondVariantIsFullyShared) {
  ServingConfig config;
  config.block_rows = 16;
  config.block_cols = 16;
  ServingSession session(config);

  // Same builder seed = byte-identical weights: the textbook
  // fine-tuned-variant case.
  for (const char* name : {"va", "vb"}) {
    auto model = BuildFFNN(name, {16, 32, 4}, /*seed=*/3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        session.Deploy(name, ServingMode::kForceRelational, 8).ok());
  }

  const auto deployed = session.ListDeployedModels();
  ASSERT_EQ(deployed.size(), 2u);
  EXPECT_EQ(deployed[0].name, "va");
  EXPECT_GT(deployed[0].physical_weight_bytes, 0);
  EXPECT_EQ(deployed[0].logical_weight_bytes,
            deployed[0].physical_weight_bytes);
  // vb's weights are byte-identical to va's: zero marginal bytes.
  EXPECT_EQ(deployed[1].name, "vb");
  EXPECT_GT(deployed[1].logical_weight_bytes, 0);
  EXPECT_EQ(deployed[1].physical_weight_bytes, 0);
  EXPECT_EQ(deployed[1].shared_blocks, deployed[1].total_blocks);
}

TEST(ServingDedupTest, DedupOutputsAreBitIdentical) {
  auto input = workloads::GenBatch(8, Shape{16}, 77);
  ASSERT_TRUE(input.ok());

  // The same model served with and without the shared index; at
  // tolerance 0 dedup must not change one bit of the output.
  Tensor outputs[2];
  for (const bool dedup : {false, true}) {
    ServingConfig config;
    config.block_rows = 16;
    config.block_cols = 16;
    config.dedup_weights = dedup;
    ServingSession session(config);
    auto model = BuildFFNN("m", {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        session.Deploy("m", ServingMode::kForceRelational, 8).ok());
    auto out = session.PredictBatch("m", *input);
    ASSERT_TRUE(out.ok());
    auto tensor = out->ToTensor(session.exec_context());
    ASSERT_TRUE(tensor.ok());
    // Detach from the session's memory arena: the output outlives
    // the session here.
    auto detached = tensor->Clone();
    ASSERT_TRUE(detached.ok());
    outputs[dedup ? 1 : 0] = std::move(*detached);
  }
  EXPECT_EQ(outputs[0].MaxAbsDiff(outputs[1]), 0.0f);
}

TEST(ServingDedupTest, FiftyVariantsUndeployInAnyOrderNoLeak) {
  ServingConfig config;
  config.block_rows = 16;
  config.block_cols = 16;
  ServingSession session(config);
  ASSERT_NE(session.block_index(), nullptr);

  constexpr int kVariants = 50;
  std::vector<std::string> names;
  for (int i = 0; i < kVariants; ++i) {
    names.push_back("v" + std::to_string(i));
    auto model = BuildFFNN(names.back(), {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        session.Deploy(names.back(), ServingMode::kForceRelational, 4)
            .ok());
  }

  PhysicalBlockStats stats = session.block_index()->stats();
  // 50 byte-identical variants: block count of exactly one model.
  EXPECT_GT(stats.unique_blocks, 0);
  EXPECT_EQ(stats.logical_refs, kVariants * stats.unique_blocks);
  EXPECT_EQ(stats.logical_bytes, kVariants * stats.physical_bytes);

  // Undeploy in a shuffled order: whichever deployment happens to
  // hold the last reference frees the pages.
  std::mt19937 rng(123);
  std::shuffle(names.begin(), names.end(), rng);
  for (const std::string& name : names) {
    ASSERT_TRUE(session.Undeploy(name).ok());
  }

  stats = session.block_index()->stats();
  EXPECT_EQ(stats.unique_blocks, 0);
  EXPECT_EQ(stats.logical_refs, 0);
  EXPECT_EQ(stats.physical_bytes, 0);
  EXPECT_EQ(stats.interned, stats.dedup_hits + stats.freed_blocks);
}

}  // namespace
}  // namespace relserve
