#include <gtest/gtest.h>

#include "engine/external_runtime.h"
#include "graph/model.h"
#include "relational/operator.h"
#include "serving/model_versions.h"
#include "serving/join_pipeline.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

ServingConfig SmallConfig() {
  ServingConfig config;
  config.buffer_pool_pages = 256;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  return config;
}

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() : session_(SmallConfig()) {}

  void LoadFraudSetup(int64_t rows = 100) {
    auto table =
        session_.CreateTable("tx", workloads::FeatureTableSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(workloads::FillFeatureTable(*table, rows, 28, 1).ok());
    auto model = BuildFFNN("fraud", {28, 64, 2}, 2);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
  }

  ServingSession session_;
};

TEST_F(ServingTest, DeployReturnsInspectablePlan) {
  LoadFraudSetup();
  auto plan = session_.Deploy("fraud", ServingMode::kAdaptive, 100);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->AllUdf());  // small model under the threshold
  EXPECT_FALSE((*plan)->ToString(**session_.GetModel("fraud")).empty());
}

TEST_F(ServingTest, DeployUnknownModelFails) {
  EXPECT_TRUE(session_.Deploy("nope", ServingMode::kAdaptive, 1)
                  .status()
                  .IsNotFound());
}

TEST_F(ServingTest, PredictOverTable) {
  LoadFraudSetup(50);
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kAdaptive, 50).ok());
  auto out = session_.Predict("fraud", "tx");
  ASSERT_TRUE(out.ok()) << out.status();
  auto scores = out->ToTensor(session_.exec_context());
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->shape(), (Shape{50, 2}));
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(scores->At(r, 0) + scores->At(r, 1), 1.0f, 1e-4f);
  }
}

TEST_F(ServingTest, PredictRequiresDeploy) {
  LoadFraudSetup();
  EXPECT_TRUE(
      session_.Predict("fraud", "tx").status().IsNotFound());
}

TEST_F(ServingTest, ForcedModesAgreeOnPredictions) {
  LoadFraudSetup(30);
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 30).ok());
  auto udf = session_.Predict("fraud", "tx");
  ASSERT_TRUE(udf.ok());
  auto udf_t = udf->ToTensor(session_.exec_context());
  ASSERT_TRUE(udf_t.ok());

  ASSERT_TRUE(
      session_.Deploy("fraud", ServingMode::kForceRelational, 30).ok());
  auto rel = session_.Predict("fraud", "tx");
  ASSERT_TRUE(rel.ok()) << rel.status();
  auto rel_t = rel->ToTensor(session_.exec_context());
  ASSERT_TRUE(rel_t.ok());
  EXPECT_LT(udf_t->MaxAbsDiff(*rel_t), 1e-5f);
}

TEST_F(ServingTest, RelationalPredictStreamsInput) {
  LoadFraudSetup(40);
  ASSERT_TRUE(
      session_.Deploy("fraud", ServingMode::kForceRelational, 40).ok());
  const int64_t before = session_.working_memory()->peak_bytes();
  auto out = session_.Predict("fraud", "tx");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->blocked());
  // Peak working memory grew by far less than the whole batch
  // (40 x 28 floats = 4480 B would be the materialized input alone;
  // blocks are 16x16).
  (void)before;
  EXPECT_GT(session_.exec_context()->stats.blocks_written, 0);
}

TEST_F(ServingTest, PredictBatchMatchesPredictOverTable) {
  LoadFraudSetup(20);
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 20).ok());
  auto table_out = session_.Predict("fraud", "tx");
  ASSERT_TRUE(table_out.ok());
  auto expected = table_out->ToTensor(session_.exec_context());
  ASSERT_TRUE(expected.ok());

  // Rebuild the same batch by hand.
  auto table = session_.GetTable("tx");
  ASSERT_TRUE(table.ok());
  SeqScan scan((*table)->heap.get(), (*table)->schema);
  ASSERT_TRUE(scan.Open().ok());
  auto input = Tensor::Create(Shape{20, 28});
  ASSERT_TRUE(input.ok());
  Row row;
  int64_t r = 0;
  while (true) {
    auto has = scan.Next(&row);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    const auto& f = row.value(1).AsFloatVector();
    std::copy(f.begin(), f.end(), input->data() + r * 28);
    ++r;
  }
  auto batch_out = session_.PredictBatch("fraud", *input);
  ASSERT_TRUE(batch_out.ok());
  auto got = batch_out->ToTensor(session_.exec_context());
  ASSERT_TRUE(got.ok());
  EXPECT_LT(expected->MaxAbsDiff(*got), 1e-6f);
}

TEST_F(ServingTest, DlCentricOffloadMatchesInDatabase) {
  LoadFraudSetup(25);
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 25).ok());
  ExternalRuntime runtime("sim-tf", 64LL << 20);
  ASSERT_TRUE(session_.OffloadModel("fraud", &runtime).ok());
  auto remote = session_.PredictViaRuntime("fraud", "tx");
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto local = session_.Predict("fraud", "tx");
  ASSERT_TRUE(local.ok());
  auto local_t = local->ToTensor(session_.exec_context());
  ASSERT_TRUE(local_t.ok());
  EXPECT_LT(local_t->MaxAbsDiff(*remote), 1e-6f);
  EXPECT_EQ(runtime.stats().requests, 1);
}

TEST_F(ServingTest, PredictViaRuntimeWithoutOffloadFails) {
  LoadFraudSetup();
  EXPECT_TRUE(session_.PredictViaRuntime("fraud", "tx")
                  .status()
                  .IsNotFound());
}

TEST_F(ServingTest, CacheServesRepeatsAndMatchesModel) {
  LoadFraudSetup();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 8).ok());
  ApproxResultCache::Config config;
  config.max_distance = 1e-6f;  // effectively exact
  ASSERT_TRUE(session_.EnableApproxCache("fraud", 28, config).ok());

  auto batch = workloads::GenBatch(8, Shape{28}, 3);
  ASSERT_TRUE(batch.ok());
  auto first = session_.PredictWithCache("fraud", *batch);
  ASSERT_TRUE(first.ok()) << first.status();
  auto cache = session_.GetApproxCache("fraud");
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->stats().hits, 0);
  EXPECT_EQ((*cache)->size(), 8);

  auto second = session_.PredictWithCache("fraud", *batch);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*cache)->stats().hits, 8);
  EXPECT_LT(first->MaxAbsDiff(*second), 1e-5f);

  // Cached predictions equal direct model output.
  auto direct = session_.PredictBatch("fraud", *batch);
  ASSERT_TRUE(direct.ok());
  auto direct_t = direct->ToTensor(session_.exec_context());
  ASSERT_TRUE(direct_t.ok());
  EXPECT_LT(first->MaxAbsDiff(*direct_t), 1e-5f);
}

TEST_F(ServingTest, ExactCacheTierHasNoAccuracyCost) {
  LoadFraudSetup();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 8).ok());
  ASSERT_TRUE(session_.EnableExactCache("fraud").ok());

  auto batch = workloads::GenBatch(8, Shape{28}, 3);
  ASSERT_TRUE(batch.ok());
  auto first = session_.PredictWithCache("fraud", *batch);
  ASSERT_TRUE(first.ok()) << first.status();
  auto cache = session_.GetExactCache("fraud");
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->stats().hits, 0);

  // Identical bytes: all hits, bit-identical predictions.
  auto second = session_.PredictWithCache("fraud", *batch);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*cache)->stats().hits, 8);
  EXPECT_FLOAT_EQ(first->MaxAbsDiff(*second), 0.0f);

  // A perturbed batch misses the exact tier entirely.
  auto nudged = batch->Clone();
  ASSERT_TRUE(nudged.ok());
  nudged->data()[0] += 1e-6f;
  auto third = session_.PredictWithCache("fraud", *nudged);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*cache)->stats().hits, 8 + 7);  // only row 0 missed
}

TEST_F(ServingTest, ExactTierConsultedBeforeApprox) {
  LoadFraudSetup();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 4).ok());
  ASSERT_TRUE(session_.EnableExactCache("fraud").ok());
  ApproxResultCache::Config config;
  config.max_distance = 100.0f;  // approx would hit everything
  ASSERT_TRUE(session_.EnableApproxCache("fraud", 28, config).ok());

  auto batch = workloads::GenBatch(4, Shape{28}, 9);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(session_.PredictWithCache("fraud", *batch).ok());
  ASSERT_TRUE(session_.PredictWithCache("fraud", *batch).ok());
  auto exact = session_.GetExactCache("fraud");
  auto approx = session_.GetApproxCache("fraud");
  ASSERT_TRUE(exact.ok() && approx.ok());
  // Second pass was served by the exact tier; the approximate index
  // never saw those lookups.
  EXPECT_EQ((*exact)->stats().hits, 4);
  EXPECT_EQ((*approx)->stats().hits, 0);
}

TEST_F(ServingTest, CacheRequiredForPredictWithCache) {
  LoadFraudSetup();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 4).ok());
  auto batch = workloads::GenBatch(4, Shape{28}, 9);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(session_.PredictWithCache("fraud", *batch)
                  .status()
                  .IsNotFound());
}

TEST_F(ServingTest, JoinPipelineNaiveMatchesDecomposed) {
  auto d1 =
      session_.CreateTable("d1", workloads::PartitionedTableSchema());
  auto d2 =
      session_.CreateTable("d2", workloads::PartitionedTableSchema());
  ASSERT_TRUE(d1.ok() && d2.ok());
  ASSERT_TRUE(
      workloads::FillBoschPartitions(*d1, *d2, 60, 12, 0.05, 11).ok());
  auto model = BuildFFNN("bosch", {24, 8, 2}, 4);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());

  JoinInferenceSpec spec;
  spec.d1_table = "d1";
  spec.d2_table = "d2";
  spec.epsilon = 0.2;
  spec.model = "bosch";

  auto naive = RunJoinThenInfer(&session_, spec);
  ASSERT_TRUE(naive.ok()) << naive.status();
  auto decomposed = RunDecomposedInfer(&session_, spec);
  ASSERT_TRUE(decomposed.ok()) << decomposed.status();
  EXPECT_EQ(naive->join_matches, decomposed->join_matches);
  EXPECT_EQ(naive->predictions.shape(),
            decomposed->predictions.shape());
  EXPECT_LT(naive->predictions.MaxAbsDiff(decomposed->predictions),
            1e-4f);
}

TEST_F(ServingTest, DecomposedRejectsNonReducingModel) {
  auto d1 =
      session_.CreateTable("d1", workloads::PartitionedTableSchema());
  auto d2 =
      session_.CreateTable("d2", workloads::PartitionedTableSchema());
  ASSERT_TRUE(d1.ok() && d2.ok());
  ASSERT_TRUE(
      workloads::FillBoschPartitions(*d1, *d2, 10, 4, 0.05, 1).ok());
  auto model = BuildFFNN("wide", {8, 64, 2}, 4);  // 8 -> 64 expands
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
  JoinInferenceSpec spec;
  spec.d1_table = "d1";
  spec.d2_table = "d2";
  spec.model = "wide";
  EXPECT_TRUE(
      RunDecomposedInfer(&session_, spec).status().IsInvalidArgument());
}

TEST_F(ServingTest, AotCompilesDistinctPlanVariants) {
  // A model whose big first layer flips representation with batch
  // size under the 1 MiB test threshold.
  auto model = BuildFFNN("sized", {2000, 64, 4}, 2);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
  // batch 1/2 share the all-UDF signature; the large batches lower at
  // least the first layer. Variants dedupe by signature, so fewer
  // plans than batch sizes are compiled.
  auto variants = session_.DeployAot("sized", {1, 2, 2000, 4000});
  ASSERT_TRUE(variants.ok()) << variants.status();
  EXPECT_GE(*variants, 2);
  EXPECT_LT(*variants, 4);
  EXPECT_EQ(session_.NumAotPlans("sized"), *variants);

  // Runtime selection: both batch regimes serve without Deploy().
  auto small = workloads::GenBatch(1, Shape{2000}, 1);
  ASSERT_TRUE(small.ok());
  auto small_out = session_.PredictBatch("sized", *small);
  ASSERT_TRUE(small_out.ok()) << small_out.status();
  EXPECT_FALSE(small_out->blocked());
  auto large = workloads::GenBatch(4000, Shape{2000}, 1);
  ASSERT_TRUE(large.ok());
  auto large_out = session_.PredictBatch("sized", *large);
  ASSERT_TRUE(large_out.ok()) << large_out.status();

  // The two variants compute the same function.
  auto small_t = small_out->ToTensor(session_.exec_context());
  ASSERT_TRUE(small_t.ok());
  auto large_t = large_out->ToTensor(session_.exec_context());
  ASSERT_TRUE(large_t.ok());
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(small_t->At(0, c), large_t->At(0, c), 1e-4f);
  }
}

TEST_F(ServingTest, AotRequiresBatchSizes) {
  LoadFraudSetup();
  EXPECT_TRUE(
      session_.DeployAot("fraud", {}).status().IsInvalidArgument());
  EXPECT_EQ(session_.NumAotPlans("fraud"), 0);
}

TEST_F(ServingTest, QuantizedVersionTradeoff) {
  LoadFraudSetup();
  auto versions = CreateQuantizedVersion(&session_, "fraud",
                                         /*probe_batch=*/32, 7);
  ASSERT_TRUE(versions.ok()) << versions.status();
  ASSERT_EQ(versions->size(), 2u);
  const ModelVersion& base = (*versions)[0];
  const ModelVersion& int8 = (*versions)[1];
  EXPECT_EQ(base.model_name, "fraud");
  EXPECT_EQ(int8.model_name, "fraud@int8");
  // ~4x smaller, small but nonzero output error.
  EXPECT_LT(int8.weight_bytes, base.weight_bytes / 3);
  EXPECT_GT(int8.max_output_error, 0.0f);
  EXPECT_LT(int8.max_output_error, 0.2f);
  // The quantized version is a registered, servable model.
  ASSERT_TRUE(
      session_.Deploy("fraud@int8", ServingMode::kForceUdf, 8).ok());
  auto batch = workloads::GenBatch(8, Shape{28}, 5);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(session_.PredictBatch("fraud@int8", *batch).ok());

  // SLA selection: a loose bound picks the small version, a bound
  // tighter than the measured error falls back to the base, an
  // impossible bound finds nothing.
  auto loose = SelectVersionForSla(*versions, 1.0f);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(*loose, "fraud@int8");
  auto tight = SelectVersionForSla(
      *versions, int8.max_output_error / 2);
  ASSERT_TRUE(tight.ok());
  EXPECT_EQ(*tight, "fraud");
  EXPECT_TRUE(SelectVersionForSla(*versions, -1.0f)
                  .status()
                  .IsNotFound());
}

TEST_F(ServingTest, RedeployReleasesOldResidentWeights) {
  LoadFraudSetup();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 10).ok());
  const int64_t after_first = session_.working_memory()->used_bytes();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 10).ok());
  EXPECT_EQ(session_.working_memory()->used_bytes(), after_first);
}

TEST_F(ServingTest, SchedulerMatchesDirectCall) {
  LoadFraudSetup();
  ASSERT_TRUE(session_.Deploy("fraud", ServingMode::kForceUdf, 8).ok());
  auto batch = workloads::GenBatch(3, Shape{28}, 11);
  ASSERT_TRUE(batch.ok());
  auto direct = session_.PredictBatch("fraud", *batch);
  ASSERT_TRUE(direct.ok());
  auto expected = direct->ToTensor(session_.exec_context());
  ASSERT_TRUE(expected.ok());

  RequestScheduler scheduler(&session_, SchedulerConfig{});
  auto got = scheduler.PredictBatch("fraud", *batch);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->shape(), expected->shape());
  EXPECT_EQ(got->MaxAbsDiff(*expected), 0.0f);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted.load(), 1);
  EXPECT_EQ(stats.batches.load(), 1);
  EXPECT_EQ(stats.total_rows.load(), 3);
}

TEST_F(ServingTest, SchedulerServesTableRequests) {
  LoadFraudSetup(20);
  ASSERT_TRUE(
      session_.Deploy("fraud", ServingMode::kAdaptive, 20).ok());
  auto direct = session_.Predict("fraud", "tx");
  ASSERT_TRUE(direct.ok());
  auto expected = direct->ToTensor(session_.exec_context());
  ASSERT_TRUE(expected.ok());

  RequestScheduler scheduler(&session_, SchedulerConfig{});
  auto got = scheduler.SubmitPredict("fraud", "tx").get();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->MaxAbsDiff(*expected), 0.0f);
}

}  // namespace
}  // namespace relserve
