#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/hybrid_executor.h"
#include "engine/pipeline_executor.h"
#include "graph/model.h"
#include "graph/model_zoo.h"
#include "resource/bounded_queue.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 4; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, PopAfterCloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, BackpressureBlocksProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.Push(2);
    second_pushed = true;
  });
  // Producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(2));  // woken by Close, push fails
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : tracker_("pipeline") { ctx_.tracker = &tracker_; }

  static InferencePlan AllUdf(const Model& model) {
    InferencePlan plan;
    for (const Node& node : model.nodes()) {
      plan.decisions.push_back(NodeDecision{node.id, Repr::kUdf, 0});
    }
    return plan;
  }

  Result<Tensor> RunBatch(const PreparedModel& prepared,
                          const Tensor& input) {
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              HybridExecutor::Run(prepared, input, &ctx_));
    return out.ToTensor(&ctx_);
  }

  MemoryTracker tracker_;
  ExecContext ctx_;
};

TEST_F(PipelineTest, MatchesBatchExecutionFfnn) {
  auto model = BuildFFNN("m", {12, 24, 5}, 3);
  ASSERT_TRUE(model.ok());
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(100, Shape{12}, 7);
  ASSERT_TRUE(input.ok());
  auto batch = RunBatch(*prepared, *input);
  ASSERT_TRUE(batch.ok());
  PipelineConfig config;
  config.micro_batch_rows = 16;  // ragged tail: 100 = 6*16 + 4
  auto piped = PipelineExecutor::Run(*prepared, *input, &ctx_, config);
  ASSERT_TRUE(piped.ok()) << piped.status();
  EXPECT_EQ(piped->shape(), batch->shape());
  EXPECT_LT(batch->MaxAbsDiff(*piped), 1e-6f);
}

TEST_F(PipelineTest, MatchesBatchExecutionCnn) {
  auto model = zoo::BuildCachingCnn(2);
  ASSERT_TRUE(model.ok());
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(10, Shape{28, 28, 1}, 5);
  ASSERT_TRUE(input.ok());
  auto batch = RunBatch(*prepared, *input);
  ASSERT_TRUE(batch.ok());
  PipelineConfig config;
  config.micro_batch_rows = 3;
  auto piped = PipelineExecutor::Run(*prepared, *input, &ctx_, config);
  ASSERT_TRUE(piped.ok()) << piped.status();
  EXPECT_LT(batch->MaxAbsDiff(*piped), 1e-5f);
}

class PipelineChunkSweep : public PipelineTest,
                           public ::testing::WithParamInterface<int64_t> {
};

TEST_P(PipelineChunkSweep, AnyMicroBatchSizeIsEquivalent) {
  auto model = BuildFFNN("m", {8, 16, 4}, 9);
  ASSERT_TRUE(model.ok());
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(37, Shape{8}, 1);
  ASSERT_TRUE(input.ok());
  auto batch = RunBatch(*prepared, *input);
  ASSERT_TRUE(batch.ok());
  PipelineConfig config;
  config.micro_batch_rows = GetParam();
  auto piped = PipelineExecutor::Run(*prepared, *input, &ctx_, config);
  ASSERT_TRUE(piped.ok());
  EXPECT_LT(batch->MaxAbsDiff(*piped), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineChunkSweep,
                         ::testing::Values(1, 2, 5, 16, 37, 64));

TEST_F(PipelineTest, BoundedPeakMemory) {
  // A deep-ish model over a big batch: the pipeline's peak arena use
  // must stay near (stages x queue x micro-batch), far below the
  // whole-batch activations.
  auto model = BuildFFNN("m", {256, 512, 512, 8}, 1);
  ASSERT_TRUE(model.ok());
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(2048, Shape{256}, 4);
  ASSERT_TRUE(input.ok());

  tracker_.ResetPeak();
  auto batch = RunBatch(*prepared, *input);
  ASSERT_TRUE(batch.ok());
  const int64_t batch_peak = tracker_.peak_bytes();

  tracker_.ResetPeak();
  PipelineConfig config;
  config.micro_batch_rows = 32;
  auto piped = PipelineExecutor::Run(*prepared, *input, &ctx_, config);
  ASSERT_TRUE(piped.ok());
  const int64_t pipe_peak = tracker_.peak_bytes();

  EXPECT_LT(batch->MaxAbsDiff(*piped), 1e-4f);
  // Pipeline holds micro-batches, not whole activations (the output
  // tensor dominates its peak).
  EXPECT_LT(pipe_peak, batch_peak / 2);
}

TEST_F(PipelineTest, RejectsRelationalPreparedModels) {
  auto model = BuildFFNN("m", {8, 8, 2}, 1);
  ASSERT_TRUE(model.ok());
  DiskManager disk;
  BufferPool pool(&disk, 32);
  ExecContext rel_ctx = ctx_;
  rel_ctx.buffer_pool = &pool;
  InferencePlan plan;
  for (const Node& node : model->nodes()) {
    plan.decisions.push_back(
        NodeDecision{node.id, Repr::kRelational, 0});
  }
  auto prepared = PreparedModel::Prepare(&*model, plan, &rel_ctx);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(4, Shape{8}, 1);
  ASSERT_TRUE(input.ok());
  EXPECT_TRUE(PipelineExecutor::Run(*prepared, *input, &rel_ctx)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PipelineTest, PropagatesStageOom) {
  auto model = BuildFFNN("m", {64, 128, 8}, 1);
  ASSERT_TRUE(model.ok());
  // Prepare with an unlimited arena, then execute with a tiny one so
  // the failure happens mid-pipeline.
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(512, Shape{64}, 1);
  ASSERT_TRUE(input.ok());
  MemoryTracker tiny("tiny", 64 * 1024);
  ExecContext tight;
  tight.tracker = &tiny;
  PipelineConfig config;
  config.micro_batch_rows = 128;
  auto out = PipelineExecutor::Run(*prepared, *input, &tight, config);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsOutOfMemory());
  // Nothing leaked even on the failure path.
  EXPECT_EQ(tiny.used_bytes(), 0);
}

TEST_F(PipelineTest, RejectsBadConfig) {
  auto model = BuildFFNN("m", {4, 4, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx_);
  ASSERT_TRUE(prepared.ok());
  auto input = workloads::GenBatch(4, Shape{4}, 1);
  ASSERT_TRUE(input.ok());
  PipelineConfig config;
  config.micro_batch_rows = 0;
  EXPECT_TRUE(PipelineExecutor::Run(*prepared, *input, &ctx_, config)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace relserve
