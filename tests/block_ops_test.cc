#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "engine/block_ops.h"
#include "kernels/kernels.h"
#include "resource/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace relserve {
namespace {

class BlockOpsTest : public ::testing::Test {
 protected:
  BlockOpsTest()
      : disk_(), pool_(&disk_, 64), tracker_("scratch") {
    ctx_.tracker = &tracker_;
    ctx_.buffer_pool = &pool_;
    ctx_.block_rows = 4;
    ctx_.block_cols = 4;
  }

  Tensor RandomMatrix(int64_t rows, int64_t cols, int seed = 1) {
    auto t = Tensor::Create(Shape{rows, cols});
    EXPECT_TRUE(t.ok());
    for (int64_t i = 0; i < rows * cols; ++i) {
      t->data()[i] = std::sin(static_cast<float>(i * seed + 1));
    }
    return *t;
  }

  DiskManager disk_;
  BufferPool pool_;
  MemoryTracker tracker_;
  ExecContext ctx_;
};

TEST_F(BlockOpsTest, ChunkAssembleRoundTrip) {
  Tensor m = RandomMatrix(10, 7);
  auto store = blockops::ChunkMatrix(m, &ctx_);
  ASSERT_TRUE(store.ok());
  auto back = blockops::Assemble(**store, &ctx_);
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(m.MaxAbsDiff(*back), 0.0f);
  EXPECT_EQ(ctx_.stats.chunkings, 1);
  EXPECT_EQ(ctx_.stats.assembles, 1);
}

TEST_F(BlockOpsTest, ChunkLeavesNoScratchCharged) {
  Tensor m = RandomMatrix(16, 16);
  auto store = blockops::ChunkMatrix(m, &ctx_);
  ASSERT_TRUE(store.ok());
  // All block payloads flushed to pages: arena back to zero.
  EXPECT_EQ(tracker_.used_bytes(), 0);
  // Peak was only one block, not the whole matrix.
  EXPECT_LE(tracker_.peak_bytes(), 4 * 4 * 4);
}

TEST_F(BlockOpsTest, BlockMatMulMatchesDenseKernel) {
  Tensor x = RandomMatrix(9, 11, 1);
  Tensor w = RandomMatrix(6, 11, 2);  // weight layout [out, in]
  auto expected = kernels::MatMul(x, w, /*transpose_b=*/true);
  ASSERT_TRUE(expected.ok());

  auto x_store = blockops::ChunkMatrix(x, &ctx_);
  auto w_store = blockops::ChunkMatrix(w, &ctx_);
  ASSERT_TRUE(x_store.ok() && w_store.ok());
  auto c_store = blockops::BlockMatMul(**x_store, **w_store, &ctx_);
  ASSERT_TRUE(c_store.ok());
  auto c = blockops::Assemble(**c_store, &ctx_);
  ASSERT_TRUE(c.ok());
  EXPECT_LT(expected->MaxAbsDiff(*c), 1e-5f);
}

TEST_F(BlockOpsTest, BlockMatMulRejectsInnerMismatch) {
  auto x = blockops::ChunkMatrix(RandomMatrix(4, 5), &ctx_);
  auto w = blockops::ChunkMatrix(RandomMatrix(4, 6), &ctx_);
  ASSERT_TRUE(x.ok() && w.ok());
  EXPECT_TRUE(blockops::BlockMatMul(**x, **w, &ctx_)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BlockOpsTest, BlockReluAndBiasMatchWholeTensor) {
  Tensor m = RandomMatrix(6, 10);
  auto bias = Tensor::Create(Shape{10});
  ASSERT_TRUE(bias.ok());
  for (int i = 0; i < 10; ++i) bias->data()[i] = 0.1f * i - 0.4f;

  Tensor expected = *m.Clone();
  ASSERT_TRUE(kernels::BiasAddInPlace(&expected, *bias).ok());
  kernels::ReluInPlace(&expected);

  auto store = blockops::ChunkMatrix(m, &ctx_);
  ASSERT_TRUE(store.ok());
  auto biased = blockops::BlockBiasAdd(**store, *bias, &ctx_);
  ASSERT_TRUE(biased.ok());
  auto relued = blockops::BlockRelu(**biased, &ctx_);
  ASSERT_TRUE(relued.ok());
  auto got = blockops::Assemble(**relued, &ctx_);
  ASSERT_TRUE(got.ok());
  EXPECT_LT(expected.MaxAbsDiff(*got), 1e-6f);
}

TEST_F(BlockOpsTest, BlockBiasRejectsWidthMismatch) {
  auto store = blockops::ChunkMatrix(RandomMatrix(4, 6), &ctx_);
  ASSERT_TRUE(store.ok());
  auto bias = Tensor::Zeros(Shape{5});
  EXPECT_TRUE(blockops::BlockBiasAdd(**store, *bias, &ctx_)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BlockOpsTest, BlockSoftmaxMatchesWholeTensor) {
  Tensor m = RandomMatrix(7, 9);
  Tensor expected = *m.Clone();
  ASSERT_TRUE(kernels::SoftmaxRowsInPlace(&expected).ok());

  auto store = blockops::ChunkMatrix(m, &ctx_);
  ASSERT_TRUE(store.ok());
  auto soft = blockops::BlockSoftmaxRows(**store, &ctx_);
  ASSERT_TRUE(soft.ok());
  auto got = blockops::Assemble(**soft, &ctx_);
  ASSERT_TRUE(got.ok());
  EXPECT_LT(expected.MaxAbsDiff(*got), 1e-6f);
}

TEST_F(BlockOpsTest, MapBlocksPreservesGeometryAndCoordinates) {
  Tensor m = RandomMatrix(10, 6);
  auto store = blockops::ChunkMatrix(m, &ctx_);
  ASSERT_TRUE(store.ok());
  auto doubled = blockops::MapBlocks(
      **store,
      [](int64_t, int64_t, Tensor* payload) {
        for (int64_t i = 0; i < payload->NumElements(); ++i) {
          payload->data()[i] *= 2.0f;
        }
        return Status::OK();
      },
      &ctx_);
  ASSERT_TRUE(doubled.ok());
  auto got = blockops::Assemble(**doubled, &ctx_);
  ASSERT_TRUE(got.ok());
  for (int64_t i = 0; i < m.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(got->data()[i], 2.0f * m.data()[i]);
  }
}

TEST_F(BlockOpsTest, RowAppenderStreamsRows) {
  const int64_t rows = 3, width = 10;
  auto appender = blockops::BlockedRowAppender::Create(rows, width, &ctx_);
  ASSERT_TRUE(appender.ok());
  Tensor m = RandomMatrix(rows, width);
  for (int64_t r = 0; r < rows; ++r) {
    // Append in two uneven chunks to exercise partial-block paths.
    ASSERT_TRUE(appender->Append(m.data() + r * width, 7).ok());
    ASSERT_TRUE(appender->Append(m.data() + r * width + 7, 3).ok());
    ASSERT_TRUE(appender->EndRow().ok());
  }
  auto store = appender->Finish();
  ASSERT_TRUE(store.ok());
  auto got = blockops::Assemble(**store, &ctx_);
  ASSERT_TRUE(got.ok());
  EXPECT_FLOAT_EQ(m.MaxAbsDiff(*got), 0.0f);
}

TEST_F(BlockOpsTest, RowAppenderRejectsIncompleteRow) {
  auto appender = blockops::BlockedRowAppender::Create(1, 10, &ctx_);
  ASSERT_TRUE(appender.ok());
  float v[3] = {1, 2, 3};
  ASSERT_TRUE(appender->Append(v, 3).ok());
  EXPECT_TRUE(appender->EndRow().IsInvalidArgument());
  EXPECT_FALSE(appender->Finish().ok());
}

TEST_F(BlockOpsTest, LoadRowExtractsSingleRow) {
  Tensor m = RandomMatrix(9, 13);
  auto store = blockops::ChunkMatrix(m, &ctx_);
  ASSERT_TRUE(store.ok());
  for (int64_t r : {int64_t{0}, int64_t{4}, int64_t{8}}) {
    auto row = blockops::LoadRow(**store, r, &ctx_);
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->shape(), (Shape{13}));
    for (int64_t c = 0; c < 13; ++c) {
      EXPECT_FLOAT_EQ(row->data()[c], m.At(r, c));
    }
  }
  EXPECT_TRUE(
      blockops::LoadRow(**store, 9, &ctx_).status().IsInvalidArgument());
}

TEST_F(BlockOpsTest, MatrixStreamWriterMatchesChunkMatrix) {
  Tensor m = RandomMatrix(11, 9);
  auto writer = blockops::MatrixStreamWriter::Create(11, 9, &ctx_);
  ASSERT_TRUE(writer.ok());
  for (int64_t r = 0; r < 11; ++r) {
    ASSERT_TRUE(writer->AppendRow(m.data() + r * 9).ok());
  }
  auto store = writer->Finish();
  ASSERT_TRUE(store.ok());
  auto got = blockops::Assemble(**store, &ctx_);
  ASSERT_TRUE(got.ok());
  EXPECT_FLOAT_EQ(m.MaxAbsDiff(*got), 0.0f);
}

TEST_F(BlockOpsTest, MatrixStreamJoinsAgainstChunkedWeights) {
  // The streamed store's column blocking must align with ChunkMatrix
  // weights for BlockMatMul (this is the Predict streaming path).
  Tensor x = RandomMatrix(10, 9, 1);
  Tensor w = RandomMatrix(5, 9, 2);
  auto writer = blockops::MatrixStreamWriter::Create(10, 9, &ctx_);
  ASSERT_TRUE(writer.ok());
  for (int64_t r = 0; r < 10; ++r) {
    ASSERT_TRUE(writer->AppendRow(x.data() + r * 9).ok());
  }
  auto x_store = writer->Finish();
  auto w_store = blockops::ChunkMatrix(w, &ctx_);
  ASSERT_TRUE(x_store.ok() && w_store.ok());
  auto c_store = blockops::BlockMatMul(**x_store, **w_store, &ctx_);
  ASSERT_TRUE(c_store.ok());
  auto c = blockops::Assemble(**c_store, &ctx_);
  auto expected = kernels::MatMul(x, w, true);
  ASSERT_TRUE(c.ok() && expected.ok());
  EXPECT_LT(expected->MaxAbsDiff(*c), 1e-5f);
}

TEST_F(BlockOpsTest, MatrixStreamWriterRejectsOverAndUnderflow) {
  auto writer = blockops::MatrixStreamWriter::Create(2, 3, &ctx_);
  ASSERT_TRUE(writer.ok());
  float row[3] = {1, 2, 3};
  ASSERT_TRUE(writer->AppendRow(row).ok());
  EXPECT_FALSE(writer->Finish().ok());  // underflow
}

TEST_F(BlockOpsTest, ParallelBlockMatMulBitIdenticalToSerial) {
  // The morsel-parallel join/aggregation must produce the exact same
  // bits as the serial plan: each output block owns its accumulator
  // and aggregates inner blocks in the same order.
  Tensor x = RandomMatrix(37, 29, 1);
  Tensor w = RandomMatrix(23, 29, 2);

  auto run = [&](ExecContext* ctx) -> Tensor {
    auto x_store = blockops::ChunkMatrix(x, ctx);
    auto w_store = blockops::ChunkMatrix(w, ctx);
    EXPECT_TRUE(x_store.ok() && w_store.ok());
    auto c_store = blockops::BlockMatMul(**x_store, **w_store, ctx);
    EXPECT_TRUE(c_store.ok());
    auto c = blockops::Assemble(**c_store, ctx);
    EXPECT_TRUE(c.ok());
    return *c;
  };

  Tensor serial = run(&ctx_);  // ctx_.pool == nullptr

  ThreadPool pool(4);
  DiskManager par_disk;
  BufferPool par_pages(&par_disk, 64);
  ExecContext par_ctx;
  par_ctx.tracker = &tracker_;
  par_ctx.buffer_pool = &par_pages;
  par_ctx.pool = &pool;
  par_ctx.block_rows = 4;
  par_ctx.block_cols = 4;
  for (int round = 0; round < 5; ++round) {
    Tensor parallel = run(&par_ctx);
    ASSERT_EQ(serial.NumElements(), parallel.NumElements());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.NumElements() * sizeof(float)),
              0)
        << "round " << round;
  }
}

TEST_F(BlockOpsTest, ParallelElementwiseOpsMatchSerial) {
  Tensor m = RandomMatrix(33, 21);
  auto bias = Tensor::Create(Shape{21});
  ASSERT_TRUE(bias.ok());
  for (int i = 0; i < 21; ++i) bias->data()[i] = 0.05f * i - 0.3f;

  auto run = [&](ExecContext* ctx) -> Tensor {
    auto store = blockops::ChunkMatrix(m, ctx);
    EXPECT_TRUE(store.ok());
    auto biased = blockops::BlockBiasAdd(**store, *bias, ctx);
    EXPECT_TRUE(biased.ok());
    auto relued = blockops::BlockRelu(**biased, ctx);
    EXPECT_TRUE(relued.ok());
    auto soft = blockops::BlockSoftmaxRows(**relued, ctx);
    EXPECT_TRUE(soft.ok());
    auto got = blockops::Assemble(**soft, ctx);
    EXPECT_TRUE(got.ok());
    return *got;
  };

  Tensor serial = run(&ctx_);

  ThreadPool pool(4);
  DiskManager par_disk;
  BufferPool par_pages(&par_disk, 64);
  ExecContext par_ctx;
  par_ctx.tracker = &tracker_;
  par_ctx.buffer_pool = &par_pages;
  par_ctx.pool = &pool;
  par_ctx.block_rows = 4;
  par_ctx.block_cols = 4;
  Tensor parallel = run(&par_ctx);
  ASSERT_EQ(serial.NumElements(), parallel.NumElements());
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                        serial.NumElements() * sizeof(float)),
            0);
}

TEST_F(BlockOpsTest, ParallelExecStatsStayExact) {
  // Counter totals must not lose updates when morsels race.
  ThreadPool pool(4);
  ExecContext par_ctx;
  par_ctx.tracker = &tracker_;
  par_ctx.buffer_pool = &pool_;
  par_ctx.pool = &pool;
  par_ctx.block_rows = 4;
  par_ctx.block_cols = 4;
  Tensor m = RandomMatrix(16, 16);
  auto store = blockops::ChunkMatrix(m, &par_ctx);
  ASSERT_TRUE(store.ok());
  const int64_t written_after_chunk = par_ctx.stats.blocks_written.load();
  EXPECT_EQ(written_after_chunk, 16);  // 4x4 geometry -> 16 blocks
  auto doubled = blockops::BlockRelu(**store, &par_ctx);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(par_ctx.stats.blocks_read.load(), 16);
  EXPECT_EQ(par_ctx.stats.blocks_written.load(),
            written_after_chunk + 16);
}

TEST_F(BlockOpsTest, RequiresBufferPool) {
  ExecContext no_pool;
  no_pool.tracker = &tracker_;
  Tensor m = RandomMatrix(4, 4);
  EXPECT_TRUE(blockops::ChunkMatrix(m, &no_pool)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace relserve
