// MVCC snapshot-visibility tests: the version clock and per-row
// interval map unit contracts, snapshot-pinned reads that stay
// bit-identical while concurrent ingest lands, and the cache version
// fence that makes a stale cached prediction impossible by
// construction — a commit to a bound table always fences entries
// stamped with any earlier snapshot, including entries raced in by
// lookups that began before the commit.
//
// This binary is part of scripts/tsan_check.sh — the serve-while-
// ingest schedules here also run under ThreadSanitizer and UBSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "graph/model.h"
#include "serving/serving_session.h"
#include "storage/mvcc.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

constexpr int64_t kDim = 8;

ServingConfig SmallConfig() {
  ServingConfig config;
  config.buffer_pool_pages = 256;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  return config;
}

Row MakeRow(int64_t id) {
  std::vector<float> features(kDim);
  for (int64_t i = 0; i < kDim; ++i) {
    features[i] = static_cast<float>(id * kDim + i) * 0.01f;
  }
  return Row({Value(id), Value(std::move(features))});
}

TEST(VersionClockTest, AllocatePublishPin) {
  VersionClock clock;
  EXPECT_EQ(clock.LatestPublished(), 0u);
  const Version v1 = clock.Allocate();
  const Version v2 = clock.Allocate();
  EXPECT_LT(v1, v2);
  // Allocation alone publishes nothing: a pinned snapshot can never
  // name a version whose mutations are still being applied.
  EXPECT_EQ(clock.LatestPublished(), 0u);
  clock.Publish(v1);
  EXPECT_EQ(clock.LatestPublished(), v1);
  clock.Publish(v2);
  EXPECT_EQ(clock.LatestPublished(), v2);
  // Publish never goes backwards.
  clock.Publish(v1);
  EXPECT_EQ(clock.LatestPublished(), v2);
  // Recovery jump: both counters move past the recovered maximum.
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.LatestPublished(), 100u);
  EXPECT_GT(clock.Allocate(), 100u);
}

TEST(VisibilityMapTest, UntrackedRowsAreAlwaysVisible) {
  VisibilityMap map;
  EXPECT_TRUE(map.IsVisible(0, 0));
  EXPECT_TRUE(map.IsVisible(12345, 0));
  EXPECT_TRUE(map.AllVisible(0, 1000, 0));
  EXPECT_EQ(map.VisibleCount(0, 1000, 0), 1000);
}

TEST(VisibilityMapTest, IntervalRules) {
  VisibilityMap map;
  map.AppendRow(5);  // row 0: [5, inf)
  map.AppendRow(7);  // row 1: [7, inf)
  EXPECT_FALSE(map.IsVisible(0, 4));
  EXPECT_TRUE(map.IsVisible(0, 5));  // begin <= snap is inclusive
  EXPECT_TRUE(map.IsVisible(0, 6));
  EXPECT_FALSE(map.IsVisible(1, 6));
  EXPECT_TRUE(map.IsVisible(1, 7));

  // Delete at version 9: visible at 8, gone at 9 (end > snap rule —
  // the deleting transaction's own version no longer sees the row).
  ASSERT_TRUE(map.MarkDeleted(0, 9).ok());
  EXPECT_TRUE(map.IsVisible(0, 8));
  EXPECT_FALSE(map.IsVisible(0, 9));
  EXPECT_FALSE(map.IsVisible(0, 100));
  EXPECT_EQ(map.delete_count(), 1);
}

TEST(VisibilityMapTest, PadToTracksBulkRowsAsAlwaysVisible) {
  VisibilityMap map;
  map.PadTo(3);  // three bulk-loaded rows
  map.AppendRow(4);
  EXPECT_EQ(map.tracked_rows(), 4);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(map.IsVisible(r, 0));
  }
  EXPECT_FALSE(map.IsVisible(3, 3));
  EXPECT_TRUE(map.IsVisible(3, 4));
  EXPECT_TRUE(map.AllVisible(0, 4, 4));
  EXPECT_FALSE(map.AllVisible(0, 4, 2));
}

TEST(VisibilityMapTest, VisibleSelectionOffsetsAreFragmentRelative) {
  VisibilityMap map;
  for (Version v = 1; v <= 8; ++v) map.AppendRow(v);
  std::vector<int32_t> sel;
  // Rows 4..7 carry begin versions 5..8; at snapshot 6 the fragment
  // starting at row 4 sees offsets 0 (begin 5) and 1 (begin 6).
  map.VisibleSelection(4, 4, 6, &sel);
  EXPECT_EQ(sel, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(map.VisibleCount(4, 4, 6), 2);
  EXPECT_FALSE(map.AllVisible(4, 4, 6));
  EXPECT_TRUE(map.AllVisible(4, 4, 8));
}

class MvccServingTest : public ::testing::Test {
 protected:
  MvccServingTest() : session_(SmallConfig()) {}

  void SetUpTableAndModel(int64_t initial_rows) {
    ASSERT_TRUE(
        session_.CreateTable("tx", workloads::FeatureTableSchema())
            .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < initial_rows; ++i) {
      rows.push_back(MakeRow(i));
    }
    ASSERT_TRUE(session_.IngestRows("tx", rows).ok());
    auto model = BuildFFNN("m", {kDim, 16, 2}, 5);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
    ASSERT_TRUE(
        session_.Deploy("m", ServingMode::kForceUdf, 32).ok());
  }

  Result<Tensor> PredictAt(Version snap) {
    auto out = session_.PredictAtSnapshot("m", "tx", "features", snap);
    RELSERVE_RETURN_NOT_OK(out.status());
    return out->ToTensor(session_.exec_context());
  }

  ServingSession session_;
};

TEST_F(MvccServingTest, SnapshotReadsSeeWholeCommitsOrNothing) {
  SetUpTableAndModel(10);
  const Version snap10 = session_.PinSnapshot();
  auto at10 = PredictAt(snap10);
  ASSERT_TRUE(at10.ok()) << at10.status();
  EXPECT_EQ(at10->shape().dim(0), 10);

  std::vector<Row> more;
  for (int64_t i = 10; i < 25; ++i) more.push_back(MakeRow(i));
  ASSERT_TRUE(session_.IngestRows("tx", more).ok());
  const Version snap25 = session_.PinSnapshot();
  EXPECT_GT(snap25, snap10);

  // The old snapshot still evaluates over exactly the old 10 rows,
  // bit-identically; the new one sees the whole 15-row commit.
  auto again10 = PredictAt(snap10);
  ASSERT_TRUE(again10.ok());
  EXPECT_EQ(again10->shape().dim(0), 10);
  EXPECT_EQ(again10->MaxAbsDiff(*at10), 0.0f);
  auto at25 = PredictAt(snap25);
  ASSERT_TRUE(at25.ok());
  EXPECT_EQ(at25->shape().dim(0), 25);
}

TEST_F(MvccServingTest, UpdateAndDeleteRespectSnapshots) {
  SetUpTableAndModel(6);
  const Version before = session_.PinSnapshot();

  WriteOp update;
  update.kind = WriteOp::Kind::kUpdate;
  update.ordinal = 1;
  update.row = MakeRow(100);
  WriteOp del;
  del.kind = WriteOp::Kind::kDelete;
  del.ordinal = 4;
  ASSERT_TRUE(session_.ApplyWrite("tx", {update, del}).ok());
  const Version after = session_.PinSnapshot();

  // Before: 6 original rows. After: 6 - 1 deleted - 1 superseded + 1
  // new version = 5 visible rows.
  auto old_out = PredictAt(before);
  ASSERT_TRUE(old_out.ok());
  EXPECT_EQ(old_out->shape().dim(0), 6);
  auto new_out = PredictAt(after);
  ASSERT_TRUE(new_out.ok());
  EXPECT_EQ(new_out->shape().dim(0), 5);
}

TEST_F(MvccServingTest, ColumnarTableSnapshotsBehaveIdentically) {
  ASSERT_TRUE(session_
                  .CreateTable("ctx",
                               workloads::FeatureTableSchema(),
                               TableLayout::kColumnar)
                  .ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 12; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE(session_.IngestRows("ctx", rows).ok());
  auto model = BuildFFNN("m", {kDim, 16, 2}, 5);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
  ASSERT_TRUE(session_.Deploy("m", ServingMode::kForceUdf, 32).ok());

  const Version snap12 = session_.PinSnapshot();
  auto at12 = session_.PredictAtSnapshot("m", "ctx", "features",
                                         snap12);
  ASSERT_TRUE(at12.ok()) << at12.status();
  auto t12 = at12->ToTensor(session_.exec_context());
  ASSERT_TRUE(t12.ok());
  EXPECT_EQ(t12->shape().dim(0), 12);

  ASSERT_TRUE(
      session_.IngestRows("ctx", {MakeRow(50), MakeRow(51)}).ok());
  auto again = session_.PredictAtSnapshot("m", "ctx", "features",
                                          snap12);
  ASSERT_TRUE(again.ok());
  auto t_again = again->ToTensor(session_.exec_context());
  ASSERT_TRUE(t_again.ok());
  EXPECT_EQ(t_again->shape().dim(0), 12);
  EXPECT_EQ(t_again->MaxAbsDiff(*t12), 0.0f);
  auto now = session_.PredictAtSnapshot("m", "ctx", "features",
                                        session_.PinSnapshot());
  ASSERT_TRUE(now.ok());
  auto t_now = now->ToTensor(session_.exec_context());
  ASSERT_TRUE(t_now.ok());
  EXPECT_EQ(t_now->shape().dim(0), 14);
}

// The serve-while-ingest acceptance criterion: Predicts running
// concurrently with ingest are bit-identical to a serial re-read at
// the same pinned snapshot.
TEST_F(MvccServingTest, ConcurrentIngestBitIdenticalAtFixedSnapshot) {
  SetUpTableAndModel(16);
  std::atomic<bool> done{false};
  std::thread writer([this, &done] {
    for (int64_t txn = 0; txn < 40; ++txn) {
      std::vector<Row> rows;
      for (int64_t i = 0; i < 8; ++i) {
        rows.push_back(MakeRow(1000 + txn * 8 + i));
      }
      ASSERT_TRUE(session_.IngestRows("tx", rows).ok());
    }
    done.store(true, std::memory_order_release);
  });

  // Reader under churn: every pinned snapshot must read the same
  // bytes twice while the writer commits behind it.
  std::map<Version, Tensor> observed;
  do {  // at least one observation even if the writer wins the race
    const Version snap = session_.PinSnapshot();
    auto first = PredictAt(snap);
    ASSERT_TRUE(first.ok()) << first.status();
    auto second = PredictAt(snap);
    ASSERT_TRUE(second.ok()) << second.status();
    ASSERT_EQ(first->shape(), second->shape());
    ASSERT_EQ(first->MaxAbsDiff(*second), 0.0f) << "snap " << snap;
    observed.emplace(snap, std::move(*first));
  } while (!done.load(std::memory_order_acquire));
  writer.join();

  // Serial re-reads after all ingest has quiesced reproduce every
  // under-churn result exactly.
  ASSERT_FALSE(observed.empty());
  for (const auto& [snap, tensor] : observed) {
    auto serial = PredictAt(snap);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ(serial->shape(), tensor.shape());
    EXPECT_EQ(serial->MaxAbsDiff(tensor), 0.0f) << "snap " << snap;
  }
  // And the final snapshot sees every committed row.
  auto final_out = PredictAt(session_.PinSnapshot());
  ASSERT_TRUE(final_out.ok());
  EXPECT_EQ(final_out->shape().dim(0), 16 + 40 * 8);
}

// Stale cache hits are impossible by construction: entries are
// stamped with the snapshot pinned *before* the lookup, and a commit
// to the bound table fences every version at or below its own — so an
// entry computed from pre-commit rows can never satisfy a post-commit
// lookup.
TEST_F(MvccServingTest, CommittedWriteFencesBoundCaches) {
  SetUpTableAndModel(8);
  ASSERT_TRUE(session_.EnableExactCache("m").ok());
  ASSERT_TRUE(session_.BindCacheToTable("m", "tx").ok());
  auto cache = session_.GetExactCache("m");
  ASSERT_TRUE(cache.ok());

  auto input = workloads::GenBatch(1, Shape{kDim}, 33);
  ASSERT_TRUE(input.ok());

  // Warm, then hit.
  auto first = session_.PredictWithCache("m", *input);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = session_.PredictWithCache("m", *input);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*cache)->stats().hits.load(), 1);

  // A committed write to the bound table fences the warm entry.
  ASSERT_TRUE(session_.IngestRows("tx", {MakeRow(99)}).ok());
  EXPECT_GE((*cache)->fence(), session_.PinSnapshot());

  auto third = session_.PredictWithCache("m", *input);
  ASSERT_TRUE(third.ok());
  // No new hit: the fenced entry was discovered stale and erased
  // (invalidations counts lazy erases at lookup).
  EXPECT_EQ((*cache)->stats().hits.load(), 1);
  EXPECT_GE((*cache)->stats().invalidations.load(), 1);

  // The refill is stamped post-commit, so it serves hits again until
  // the next write.
  auto fourth = session_.PredictWithCache("m", *input);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ((*cache)->stats().hits.load(), 2);
}

// Raced inserts cannot resurrect stale entries: an insert stamped
// with a pre-commit snapshot version lands below the fence a racing
// commit publishes, so it can never be served afterwards.
TEST_F(MvccServingTest, RacingCacheInsertLandsBelowFence) {
  SetUpTableAndModel(8);
  ASSERT_TRUE(session_.EnableExactCache("m").ok());
  ASSERT_TRUE(session_.BindCacheToTable("m", "tx").ok());
  auto cache = session_.GetExactCache("m");
  ASSERT_TRUE(cache.ok());

  auto input = workloads::GenBatch(1, Shape{kDim}, 34);
  ASSERT_TRUE(input.ok());
  auto prediction = session_.PredictBatch("m", *input);
  ASSERT_TRUE(prediction.ok());
  auto tensor = prediction->ToTensor(session_.exec_context());
  ASSERT_TRUE(tensor.ok());
  const std::vector<float> features(input->data(),
                                    input->data() + kDim);
  const std::vector<float> pred(
      tensor->data(),
      tensor->data() + tensor->shape().NumElements());

  // Simulate the race PredictWithCache closes by construction: the
  // lookup pinned `snap`, the commit landed before the insert did.
  const Version snap = session_.PinSnapshot();
  ASSERT_TRUE(session_.IngestRows("tx", {MakeRow(77)}).ok());
  (*cache)->Insert(features, pred, snap);

  const int64_t hits_before = (*cache)->stats().hits.load();
  auto out = session_.PredictWithCache("m", *input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*cache)->stats().hits.load(), hits_before);
}

}  // namespace
}  // namespace relserve
