#include <gtest/gtest.h>

#include <cmath>

#include "engine/block_ops.h"
#include "engine/hybrid_executor.h"
#include "engine/prepared_model.h"
#include "graph/model.h"
#include "graph/model_zoo.h"
#include "kernels/kernels.h"
#include "optimizer/optimizer.h"
#include "storage/buffer_pool.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

InferencePlan UniformPlan(const Model& model, Repr repr) {
  InferencePlan plan;
  for (const Node& node : model.nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, repr, 0});
  }
  return plan;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : disk_(), pool_(&disk_, 256), tracker_("work") {
    ctx_.tracker = &tracker_;
    ctx_.buffer_pool = &pool_;
    ctx_.block_rows = 8;
    ctx_.block_cols = 8;
  }

  Result<Tensor> RunWithPlan(const Model& model, InferencePlan plan,
                             const Tensor& input) {
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel prepared,
        PreparedModel::Prepare(&model, std::move(plan), &ctx_));
    RELSERVE_ASSIGN_OR_RETURN(
        ExecOutput out, HybridExecutor::Run(prepared, input, &ctx_));
    return out.ToTensor(&ctx_);
  }

  Result<Tensor> RunWithOptions(const Model& model, InferencePlan plan,
                                const Tensor& input, bool fuse) {
    PhysicalPlan::Options options;
    options.fuse_elementwise = fuse;
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel prepared,
        PreparedModel::Prepare(&model, std::move(plan), &ctx_,
                               options));
    RELSERVE_ASSIGN_OR_RETURN(
        ExecOutput out, HybridExecutor::Run(prepared, input, &ctx_));
    return out.ToTensor(&ctx_);
  }

  DiskManager disk_;
  BufferPool pool_;
  MemoryTracker tracker_;
  ExecContext ctx_;
};

TEST_F(ExecutorTest, UdfFfnnMatchesManualComputation) {
  auto model = BuildFFNN("m", {3, 4, 2}, 5);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(2, Shape{3}, 9);
  ASSERT_TRUE(input.ok());

  auto got = RunWithPlan(*model, UniformPlan(*model, Repr::kUdf), *input);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->shape(), (Shape{2, 2}));

  // Manual forward pass with the kernels.
  auto h = kernels::MatMul(*input, **model->GetWeight("w0"), true);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(
      kernels::BiasAddInPlace(&*h, **model->GetWeight("b0")).ok());
  kernels::ReluInPlace(&*h);
  auto o = kernels::MatMul(*h, **model->GetWeight("w1"), true);
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(
      kernels::BiasAddInPlace(&*o, **model->GetWeight("b1")).ok());
  ASSERT_TRUE(kernels::SoftmaxRowsInPlace(&*o).ok());
  EXPECT_LT(got->MaxAbsDiff(*o), 1e-6f);
}

TEST_F(ExecutorTest, RelationalFfnnMatchesUdf) {
  auto model = BuildFFNN("m", {20, 30, 5}, 5);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(17, Shape{20}, 9);
  ASSERT_TRUE(input.ok());
  auto udf = RunWithPlan(*model, UniformPlan(*model, Repr::kUdf), *input);
  auto rel = RunWithPlan(*model, UniformPlan(*model, Repr::kRelational),
                         *input);
  ASSERT_TRUE(udf.ok());
  ASSERT_TRUE(rel.ok());
  EXPECT_LT(udf->MaxAbsDiff(*rel), 1e-5f);
}

TEST_F(ExecutorTest, MixedPlanMatchesUdf) {
  auto model = BuildFFNN("m", {12, 40, 3}, 2);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(10, Shape{12}, 4);
  ASSERT_TRUE(input.ok());
  // First layer relational, rest UDF: exercises the blocked->whole
  // transition mid-model.
  InferencePlan mixed = UniformPlan(*model, Repr::kUdf);
  mixed.decisions[0].repr = Repr::kRelational;
  mixed.decisions[1].repr = Repr::kRelational;
  mixed.decisions[2].repr = Repr::kRelational;
  auto udf = RunWithPlan(*model, UniformPlan(*model, Repr::kUdf), *input);
  auto got = RunWithPlan(*model, std::move(mixed), *input);
  ASSERT_TRUE(udf.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_LT(udf->MaxAbsDiff(*got), 1e-5f);
  EXPECT_GE(ctx_.stats.assembles, 1);
}

TEST_F(ExecutorTest, UdfCnnMatchesRelationalCnn) {
  ConvLayerSpec conv{3, 2, 2, 1, /*relu=*/true, /*maxpool=*/false};
  auto model = BuildCNN("cnn", Shape{6, 6, 2}, {conv}, {}, 3);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(2, Shape{6, 6, 2}, 11);
  ASSERT_TRUE(input.ok());
  auto udf = RunWithPlan(*model, UniformPlan(*model, Repr::kUdf), *input);
  auto rel = RunWithPlan(*model, UniformPlan(*model, Repr::kRelational),
                         *input);
  ASSERT_TRUE(udf.ok());
  ASSERT_TRUE(rel.ok());
  // Relational conv output stays blocked [batch, pixels*channels];
  // compare flattened.
  auto udf_flat = udf->Reshape(rel->shape());
  ASSERT_TRUE(udf_flat.ok());
  EXPECT_LT(udf_flat->MaxAbsDiff(*rel), 1e-5f);
}

TEST_F(ExecutorTest, CnnWithPoolAndFcRuns) {
  auto model = zoo::BuildCachingCnn(4);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(3, Shape{28, 28, 1}, 8);
  ASSERT_TRUE(input.ok());
  auto out = RunWithPlan(*model, UniformPlan(*model, Repr::kUdf), *input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{3, 10}));
  // Softmax rows sum to 1.
  for (int64_t r = 0; r < 3; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 10; ++c) sum += out->At(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_F(ExecutorTest, UdfOomsWhenArenaTooSmallButRelationalSucceeds) {
  auto model = BuildFFNN("m", {64, 128, 4}, 6);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(64, Shape{64}, 3);
  ASSERT_TRUE(input.ok());

  // Arena smaller than weights + activations: whole-tensor prepare or
  // execution must OOM.
  MemoryTracker small("small", 40 * 1024);
  ExecContext tight = ctx_;
  tight.tracker = &small;
  auto udf_prepared = PreparedModel::Prepare(
      &*model, UniformPlan(*model, Repr::kUdf), &tight);
  bool oomed = false;
  if (!udf_prepared.ok()) {
    oomed = udf_prepared.status().IsOutOfMemory();
  } else {
    auto out = HybridExecutor::Run(*udf_prepared, *input, &tight);
    oomed = !out.ok() && out.status().IsOutOfMemory();
  }
  EXPECT_TRUE(oomed);

  // The same arena runs the model relation-centric: block working set
  // fits.
  MemoryTracker small2("small2", 40 * 1024);
  ExecContext tight2 = ctx_;
  tight2.tracker = &small2;
  auto rel_prepared = PreparedModel::Prepare(
      &*model, UniformPlan(*model, Repr::kRelational), &tight2);
  ASSERT_TRUE(rel_prepared.ok()) << rel_prepared.status();
  auto out = HybridExecutor::Run(*rel_prepared, *input, &tight2);
  ASSERT_TRUE(out.ok()) << out.status();
  auto tensor = out->ToTensor(&ctx_);  // assemble via the big arena
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(tensor->shape(), (Shape{64, 4}));
}

TEST_F(ExecutorTest, RunOnStoreMatchesRunOnTensor) {
  auto model = BuildFFNN("m", {10, 16, 3}, 7);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(9, Shape{10}, 2);
  ASSERT_TRUE(input.ok());
  auto plan = UniformPlan(*model, Repr::kRelational);
  auto prepared = PreparedModel::Prepare(&*model, plan, &ctx_);
  ASSERT_TRUE(prepared.ok());

  auto from_tensor = HybridExecutor::Run(*prepared, *input, &ctx_);
  ASSERT_TRUE(from_tensor.ok());
  auto expected = from_tensor->ToTensor(&ctx_);
  ASSERT_TRUE(expected.ok());

  auto writer = blockops::MatrixStreamWriter::Create(9, 10, &ctx_);
  ASSERT_TRUE(writer.ok());
  for (int64_t r = 0; r < 9; ++r) {
    ASSERT_TRUE(writer->AppendRow(input->data() + r * 10).ok());
  }
  auto store = writer->Finish();
  ASSERT_TRUE(store.ok());
  auto from_store =
      HybridExecutor::RunOnStore(*prepared, std::move(*store), &ctx_);
  ASSERT_TRUE(from_store.ok());
  auto got = from_store->ToTensor(&ctx_);
  ASSERT_TRUE(got.ok());
  EXPECT_LT(expected->MaxAbsDiff(*got), 1e-5f);
}

TEST_F(ExecutorTest, InputTensorIsNotMutated) {
  auto model = BuildFFNN("m", {4, 4, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(2, Shape{4}, 5);
  ASSERT_TRUE(input.ok());
  auto before = input->Clone();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      RunWithPlan(*model, UniformPlan(*model, Repr::kUdf), *input).ok());
  EXPECT_FLOAT_EQ(input->MaxAbsDiff(*before), 0.0f);
}

TEST_F(ExecutorTest, ArenaFullyReleasedAfterQuery) {
  auto model = BuildFFNN("m", {8, 16, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(4, Shape{8}, 5);
  ASSERT_TRUE(input.ok());
  {
    auto prepared = PreparedModel::Prepare(
        &*model, UniformPlan(*model, Repr::kUdf), &ctx_);
    ASSERT_TRUE(prepared.ok());
    auto out = HybridExecutor::Run(*prepared, *input, &ctx_);
    ASSERT_TRUE(out.ok());
  }
  // Prepared weights and all intermediates are out of scope.
  EXPECT_EQ(tracker_.used_bytes(), 0);
}

// Fusing the bias/relu/softmax epilogue into the producing stage must
// not perturb a single bit: the fused path calls the same kernels in
// the same order on the same buffers. Exercised across odd/tail shapes
// where blocked layouts leave partial 8x8 blocks.
TEST_F(ExecutorTest, FusedMatchesUnfusedBitIdenticalUdf) {
  auto model = BuildFFNN("m", {13, 7, 5, 3}, 5);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(9, Shape{13}, 21);
  ASSERT_TRUE(input.ok());
  auto fused = RunWithOptions(*model, UniformPlan(*model, Repr::kUdf),
                              *input, /*fuse=*/true);
  auto plain = RunWithOptions(*model, UniformPlan(*model, Repr::kUdf),
                              *input, /*fuse=*/false);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_FLOAT_EQ(fused->MaxAbsDiff(*plain), 0.0f);
}

TEST_F(ExecutorTest, FusedMatchesUnfusedBitIdenticalRelational) {
  // 13/7/5/3 widths and batch 9 are all non-multiples of the 8x8 block
  // geometry, so every stage sees ragged tail blocks.
  auto model = BuildFFNN("m", {13, 7, 5, 3}, 5);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(9, Shape{13}, 21);
  ASSERT_TRUE(input.ok());
  auto fused = RunWithOptions(
      *model, UniformPlan(*model, Repr::kRelational), *input,
      /*fuse=*/true);
  auto plain = RunWithOptions(
      *model, UniformPlan(*model, Repr::kRelational), *input,
      /*fuse=*/false);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_FLOAT_EQ(fused->MaxAbsDiff(*plain), 0.0f);
}

TEST_F(ExecutorTest, FusedMatchesUnfusedBitIdenticalMixed) {
  auto model = BuildFFNN("m", {13, 7, 5, 3}, 5);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(9, Shape{13}, 21);
  ASSERT_TRUE(input.ok());
  // First layer relational, rest UDF: fusion must stay bit-exact
  // across the repr transition too.
  InferencePlan mixed = UniformPlan(*model, Repr::kUdf);
  mixed.decisions[0].repr = Repr::kRelational;
  mixed.decisions[1].repr = Repr::kRelational;
  mixed.decisions[2].repr = Repr::kRelational;
  mixed.decisions[3].repr = Repr::kRelational;
  InferencePlan mixed2;
  mixed2.decisions = mixed.decisions;
  auto fused = RunWithOptions(*model, std::move(mixed), *input,
                              /*fuse=*/true);
  auto plain = RunWithOptions(*model, std::move(mixed2), *input,
                              /*fuse=*/false);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_FLOAT_EQ(fused->MaxAbsDiff(*plain), 0.0f);
}

TEST_F(ExecutorTest, FusedMatchesUnfusedBitIdenticalConv) {
  ConvLayerSpec conv{3, 2, 2, 1, /*relu=*/true, /*maxpool=*/false};
  auto model = BuildCNN("cnn", Shape{7, 7, 3}, {conv}, {5}, 3);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(3, Shape{7, 7, 3}, 13);
  ASSERT_TRUE(input.ok());
  for (Repr repr : {Repr::kUdf, Repr::kRelational}) {
    auto fused = RunWithOptions(*model, UniformPlan(*model, repr),
                                *input, /*fuse=*/true);
    auto plain = RunWithOptions(*model, UniformPlan(*model, repr),
                                *input, /*fuse=*/false);
    ASSERT_TRUE(fused.ok()) << fused.status();
    ASSERT_TRUE(plain.ok()) << plain.status();
    EXPECT_FLOAT_EQ(fused->MaxAbsDiff(*plain), 0.0f);
  }
}

TEST_F(ExecutorTest, StageStatsAccumulateAcrossRuns) {
  auto model = BuildFFNN("m", {4, 3, 2}, 7);
  ASSERT_TRUE(model.ok());
  auto input = workloads::GenBatch(2, Shape{4}, 3);
  ASSERT_TRUE(input.ok());
  auto prepared = PreparedModel::Prepare(
      &*model, UniformPlan(*model, Repr::kUdf), &ctx_);
  ASSERT_TRUE(prepared.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(HybridExecutor::Run(*prepared, *input, &ctx_).ok());
  }
  for (const auto& stage : prepared->physical().stages()) {
    EXPECT_EQ(stage->stats.invocations.load(), 3);
    EXPECT_EQ(stage->stats.rows.load(), 6);
  }
}

}  // namespace
}  // namespace relserve
