#include <gtest/gtest.h>

#include "engine/connector.h"
#include "engine/external_runtime.h"
#include "engine/hybrid_executor.h"
#include "graph/model.h"
#include "relational/operator.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

TEST(ConnectorTest, FeatureStreamRoundTripFromTensor) {
  auto batch = workloads::GenBatch(5, Shape{7}, 1);
  ASSERT_TRUE(batch.ok());
  auto encoded = Connector::EncodeFeatureStream(*batch);
  ASSERT_TRUE(encoded.ok());
  // Framing adds 4 bytes per row.
  EXPECT_EQ(encoded->size(), 5 * (4 + 7 * 4));
  auto decoded = Connector::DecodeFeatureStream(*encoded, nullptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FLOAT_EQ(batch->MaxAbsDiff(*decoded), 0.0f);
}

TEST(ConnectorTest, FeatureStreamFromRows) {
  Schema schema({{"id", ValueType::kInt64},
                 {"features", ValueType::kFloatVector}});
  std::vector<Row> rows = {
      Row({Value(int64_t{0}), Value(std::vector<float>{1, 2})}),
      Row({Value(int64_t{1}), Value(std::vector<float>{3, 4})})};
  MemScan scan(rows, schema);
  auto encoded = Connector::EncodeFeatureStream(&scan, 1);
  ASSERT_TRUE(encoded.ok());
  auto decoded = Connector::DecodeFeatureStream(*encoded, nullptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(decoded->At(1, 0), 3.0f);
}

TEST(ConnectorTest, EncodeRejectsNonVectorColumn) {
  Schema schema({{"id", ValueType::kInt64}});
  std::vector<Row> rows = {Row({Value(int64_t{0})})};
  MemScan scan(rows, schema);
  EXPECT_TRUE(Connector::EncodeFeatureStream(&scan, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(ConnectorTest, DecodeRejectsRaggedStream) {
  Schema schema({{"f", ValueType::kFloatVector}});
  std::vector<Row> rows = {
      Row({Value(std::vector<float>{1, 2})}),
      Row({Value(std::vector<float>{3})})};
  MemScan scan(rows, schema);
  auto encoded = Connector::EncodeFeatureStream(&scan, 0);
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(Connector::DecodeFeatureStream(*encoded, nullptr).ok());
}

TEST(ConnectorTest, DecodeChargesReceiverArena) {
  auto batch = workloads::GenBatch(10, Shape{100}, 1);
  ASSERT_TRUE(batch.ok());
  auto encoded = Connector::EncodeFeatureStream(*batch);
  ASSERT_TRUE(encoded.ok());
  MemoryTracker arena("rt", 1000);  // too small for 4000 B of floats
  EXPECT_TRUE(Connector::DecodeFeatureStream(*encoded, &arena)
                  .status()
                  .IsOutOfMemory());
}

TEST(ConnectorTest, TensorWireRoundTrip) {
  auto t = workloads::GenBatch(3, Shape{4, 5}, 2);
  ASSERT_TRUE(t.ok());
  auto encoded = Connector::EncodeTensor(*t);
  ASSERT_TRUE(encoded.ok());
  auto decoded = Connector::DecodeTensor(*encoded, nullptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shape(), t->shape());
  EXPECT_FLOAT_EQ(t->MaxAbsDiff(*decoded), 0.0f);
}

TEST(ConnectorTest, DecodeTensorRejectsTruncation) {
  auto t = workloads::GenBatch(2, Shape{3}, 2);
  auto encoded = Connector::EncodeTensor(*t);
  ASSERT_TRUE(encoded.ok());
  std::string truncated = encoded->substr(0, encoded->size() - 4);
  EXPECT_FALSE(Connector::DecodeTensor(truncated, nullptr).ok());
}

TEST(ExternalRuntimeTest, EndToEndInference) {
  auto model = BuildFFNN("m", {8, 16, 3}, 1);
  ASSERT_TRUE(model.ok());
  ExternalRuntime runtime("tf-sim", 64LL << 20);
  ASSERT_TRUE(runtime.RegisterModel(&*model).ok());
  // Weights are resident in the runtime arena after registration.
  EXPECT_GT(runtime.tracker()->used_bytes(), 0);

  auto batch = workloads::GenBatch(6, Shape{8}, 4);
  ASSERT_TRUE(batch.ok());
  auto request = Connector::EncodeFeatureStream(*batch);
  ASSERT_TRUE(request.ok());
  auto response =
      runtime.Infer("m", Connector::Transmit(*request));
  ASSERT_TRUE(response.ok());
  auto prediction = Connector::DecodeTensor(*response, nullptr);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->shape(), (Shape{6, 3}));
  EXPECT_EQ(runtime.stats().requests, 1);
  EXPECT_GT(runtime.stats().bytes_received, 0);
  EXPECT_GT(runtime.stats().bytes_sent, 0);
}

TEST(ExternalRuntimeTest, UnknownModelIsNotFound) {
  ExternalRuntime runtime("rt", 1 << 20);
  EXPECT_TRUE(runtime.Infer("nope", "").status().IsNotFound());
}

TEST(ExternalRuntimeTest, RegisterOomsWhenModelTooLarge) {
  auto model = BuildFFNN("big", {1000, 1000, 10}, 1);  // ~4 MB weights
  ASSERT_TRUE(model.ok());
  ExternalRuntime runtime("tiny", 1 << 20);  // 1 MB arena
  EXPECT_TRUE(runtime.RegisterModel(&*model).IsOutOfMemory());
}

TEST(ExternalRuntimeTest, InferOomsOnOversizedBatch) {
  auto model = BuildFFNN("m", {64, 32, 4}, 1);
  ASSERT_TRUE(model.ok());
  // Arena fits the weights (~10 KB) but not a big batch.
  ExternalRuntime runtime("rt", 64 * 1024);
  ASSERT_TRUE(runtime.RegisterModel(&*model).ok());
  auto batch = workloads::GenBatch(2000, Shape{64}, 4);  // ~512 KB
  ASSERT_TRUE(batch.ok());
  auto request = Connector::EncodeFeatureStream(*batch);
  ASSERT_TRUE(request.ok());
  auto response = runtime.Infer("m", Connector::Transmit(*request));
  EXPECT_TRUE(response.status().IsOutOfMemory());
  // A small batch still works afterwards (no leaked charge).
  auto small = workloads::GenBatch(4, Shape{64}, 4);
  auto ok_request = Connector::EncodeFeatureStream(*small);
  ASSERT_TRUE(ok_request.ok());
  EXPECT_TRUE(runtime.Infer("m", Connector::Transmit(*ok_request)).ok());
}

TEST(ExternalRuntimeTest, MatchesInDatabaseExecution) {
  auto model = BuildFFNN("m", {10, 12, 4}, 9);
  ASSERT_TRUE(model.ok());
  ExternalRuntime runtime("rt", 64LL << 20);
  ASSERT_TRUE(runtime.RegisterModel(&*model).ok());
  auto batch = workloads::GenBatch(5, Shape{10}, 6);
  ASSERT_TRUE(batch.ok());

  auto request = Connector::EncodeFeatureStream(*batch);
  ASSERT_TRUE(request.ok());
  auto response = runtime.Infer("m", *request);
  ASSERT_TRUE(response.ok());
  auto remote = Connector::DecodeTensor(*response, nullptr);
  ASSERT_TRUE(remote.ok());

  // In-database UDF-centric run of the same model.
  MemoryTracker tracker("db");
  ExecContext ctx;
  ctx.tracker = &tracker;
  InferencePlan plan;
  for (const Node& node : model->nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, Repr::kUdf, 0});
  }
  auto prepared = PreparedModel::Prepare(&*model, plan, &ctx);
  ASSERT_TRUE(prepared.ok());
  auto out = HybridExecutor::Run(*prepared, *batch, &ctx);
  ASSERT_TRUE(out.ok());
  auto local = out->ToTensor(&ctx);
  ASSERT_TRUE(local.ok());
  EXPECT_LT(local->MaxAbsDiff(*remote), 1e-6f);
}

}  // namespace
}  // namespace relserve
