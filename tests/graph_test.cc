#include <gtest/gtest.h>

#include <cstdio>

#include "graph/model.h"
#include "graph/model_io.h"
#include "graph/model_zoo.h"

namespace relserve {
namespace {

TEST(ModelTest, FFNNBuilderStructure) {
  auto model = BuildFFNN("m", {28, 256, 2}, 1);
  ASSERT_TRUE(model.ok());
  // input + 2x (matmul, bias, act)
  EXPECT_EQ(model->nodes().size(), 7u);
  EXPECT_EQ(model->node(0).kind, OpKind::kInput);
  EXPECT_EQ(model->node(1).kind, OpKind::kMatMul);
  EXPECT_EQ(model->node(3).kind, OpKind::kRelu);
  EXPECT_EQ(model->node(6).kind, OpKind::kSoftmax);
  auto w0 = model->GetWeight("w0");
  ASSERT_TRUE(w0.ok());
  EXPECT_EQ((*w0)->shape(), (Shape{256, 28}));
  EXPECT_EQ(model->TotalWeightBytes(),
            (256 * 28 + 256 + 2 * 256 + 2) * 4);
}

TEST(ModelTest, ShapeInferenceFfnn) {
  auto model = BuildFFNN("m", {28, 256, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto shapes = model->InferShapes(100);
  ASSERT_TRUE(shapes.ok());
  EXPECT_EQ((*shapes)[0], (Shape{100, 28}));
  EXPECT_EQ((*shapes)[1], (Shape{100, 256}));
  EXPECT_EQ((*shapes)[6], (Shape{100, 2}));
}

TEST(ModelTest, CnnBuilderAndShapeInference) {
  ConvLayerSpec conv{8, 3, 3, 1, /*relu=*/true, /*maxpool=*/true};
  auto model = BuildCNN("cnn", Shape{28, 28, 1}, {conv}, {10}, 1);
  ASSERT_TRUE(model.ok());
  auto shapes = model->InferShapes(4);
  ASSERT_TRUE(shapes.ok());
  // conv -> [4, 26, 26, 8], pool -> [4, 13, 13, 8], flatten ->
  // [4, 1352], fc -> [4, 10]
  EXPECT_EQ((*shapes)[1], (Shape{4, 26, 26, 8}));
  EXPECT_EQ((*shapes)[3], (Shape{4, 13, 13, 8}));
  EXPECT_EQ((*shapes).back(), (Shape{4, 10}));
}

TEST(ModelTest, FlopsScaleWithBatch) {
  auto model = BuildFFNN("m", {28, 256, 2}, 1);
  ASSERT_TRUE(model.ok());
  auto f1 = model->EstimateFlops(1);
  auto f10 = model->EstimateFlops(10);
  ASSERT_TRUE(f1.ok() && f10.ok());
  EXPECT_NEAR(*f10 / *f1, 10.0, 0.01);
}

TEST(ModelTest, BuilderValidatesInput) {
  EXPECT_TRUE(BuildFFNN("m", {28}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(BuildCNN("m", Shape{28, 28}, {}, {}, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(ModelTest, DeterministicWeightsFromSeed) {
  auto a = BuildFFNN("m", {4, 8, 2}, 7);
  auto b = BuildFFNN("m", {4, 8, 2}, 7);
  auto c = BuildFFNN("m", {4, 8, 2}, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FLOAT_EQ(
      (*a->GetWeight("w0"))->MaxAbsDiff(**b->GetWeight("w0")), 0.0f);
  EXPECT_GT((*a->GetWeight("w0"))->MaxAbsDiff(**c->GetWeight("w0")),
            0.0f);
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  auto model = BuildFFNN("roundtrip", {4, 8, 2}, 3);
  ASSERT_TRUE(model.ok());
  const std::string path = "/tmp/relserve_model_test.bin";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), "roundtrip");
  EXPECT_EQ(loaded->nodes().size(), model->nodes().size());
  EXPECT_EQ(loaded->sample_shape(), model->sample_shape());
  for (const auto& [name, weight] : model->weights()) {
    auto w = loaded->GetWeight(name);
    ASSERT_TRUE(w.ok()) << name;
    EXPECT_FLOAT_EQ((*w)->MaxAbsDiff(weight), 0.0f) << name;
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/relserve_bad_model.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a model", f);
  fclose(f);
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadModel("/tmp/does_not_exist_relserve.bin").ok());
}

TEST(ModelZooTest, Table1SpecsMatchPaperAtFullScale) {
  auto specs = zoo::Table1FcSpecs(1.0);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].dims, (std::vector<int64_t>{28, 256, 2}));
  EXPECT_EQ(specs[1].dims, (std::vector<int64_t>{28, 512, 2}));
  EXPECT_EQ(specs[2].dims, (std::vector<int64_t>{76, 3072, 768}));
  EXPECT_EQ(specs[3].dims,
            (std::vector<int64_t>{597540, 1024, 14588}));
}

TEST(ModelZooTest, ScaleShrinksOnlyLargeModels) {
  auto specs = zoo::Table1FcSpecs(0.1);
  EXPECT_EQ(specs[0].dims[0], 28);       // Fraud untouched
  EXPECT_EQ(specs[3].dims[0], 59754);    // Amazon scaled
  auto conv = zoo::Table2ConvSpecs(0.04);
  EXPECT_EQ(conv[0].image_h, 112);       // DeepBench untouched
  EXPECT_EQ(conv[1].image_h, 500);       // LandCover side scaled by 0.2
  EXPECT_EQ(conv[1].out_channels, 82);   // 2048 * 0.04
}

TEST(ModelZooTest, CachingModelsMatchSec722) {
  auto cnn = zoo::BuildCachingCnn(1);
  ASSERT_TRUE(cnn.ok());
  auto conv0 = cnn->GetWeight("conv0");
  ASSERT_TRUE(conv0.ok());
  EXPECT_EQ((*conv0)->shape(), (Shape{32, 3, 3, 1}));
  auto ffnn = zoo::BuildCachingFfnn(1);
  ASSERT_TRUE(ffnn.ok());
  auto shapes = ffnn->InferShapes(1);
  ASSERT_TRUE(shapes.ok());
  EXPECT_EQ(shapes->back(), (Shape{1, 10}));
}

TEST(ModelZooTest, SpecsBuildRunnableModels) {
  for (const auto& spec : zoo::Table1FcSpecs(0.01)) {
    auto model = zoo::BuildFromSpec(spec, 1);
    ASSERT_TRUE(model.ok()) << spec.name;
    EXPECT_TRUE(model->InferShapes(2).ok()) << spec.name;
  }
  for (const auto& spec : zoo::Table2ConvSpecs(0.001)) {
    auto model = zoo::BuildFromSpec(spec, 1);
    ASSERT_TRUE(model.ok()) << spec.name;
    EXPECT_TRUE(model->InferShapes(1).ok()) << spec.name;
  }
}

}  // namespace
}  // namespace relserve
