// Concurrency tests for the serving front-end: mixed multi-threaded
// traffic through the RequestScheduler must produce bit-identical
// results to the serial path, shedding must be typed (DeadlineExceeded
// / Unavailable, never a hang or a broken promise), and redeploying a
// model mid-flight must not invalidate in-flight queries (the
// dangling-Deployment use-after-free regression).
//
// This binary is part of scripts/tsan_check.sh — every assertion here
// also runs under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "engine/physical_plan.h"
#include "graph/model.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "storage/physical_block_index.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

ServingConfig SmallConfig() {
  ServingConfig config;
  config.buffer_pool_pages = 256;
  config.working_memory_bytes = 64LL << 20;
  config.memory_threshold_bytes = 1LL << 20;
  config.block_rows = 16;
  config.block_cols = 16;
  config.num_threads = 2;
  return config;
}

class ServingConcurrencyTest : public ::testing::Test {
 protected:
  ServingConcurrencyTest() : session_(SmallConfig()) {}

  void LoadModel(const std::string& name = "m") {
    auto model = BuildFFNN(name, {16, 32, 4}, 3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
    // One plain Deploy: every micro-batch size runs the same prepared
    // plan, which is what makes coalescing bit-transparent.
    ASSERT_TRUE(session_.Deploy(name, ServingMode::kForceUdf, 8).ok());
  }

  Result<Tensor> DirectRow(const std::string& model,
                           const Tensor& row) {
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session_.PredictBatch(model, row));
    return out.ToTensor(session_.exec_context());
  }

  ServingSession session_;
};

TEST_F(ServingConcurrencyTest, MixedTrafficMatchesSerial) {
  LoadModel();
  ASSERT_TRUE(session_.EnableExactCache("m").ok());

  // Precompute the serial ground truth for every distinct row.
  constexpr int kRows = 24;
  std::vector<Tensor> rows;
  std::vector<Tensor> expected;
  for (int i = 0; i < kRows; ++i) {
    auto row = workloads::GenBatch(1, Shape{16}, 100 + i);
    ASSERT_TRUE(row.ok());
    auto truth = DirectRow("m", *row);
    ASSERT_TRUE(truth.ok());
    rows.push_back(std::move(*row));
    expected.push_back(std::move(*truth));
  }

  SchedulerConfig config;
  config.max_batch_rows = 16;
  config.max_delay_us = 200;
  config.num_workers = 2;
  RequestScheduler scheduler(&session_, config);

  // Four client threads mixing plain and cache-tier traffic over the
  // same rows, plus one thread redeploying the model mid-flight.
  constexpr int kClients = 4;
  constexpr int kPerClient = 3 * kRows;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int r = (c * 7 + i) % kRows;
        const bool cached = (c + i) % 2 == 0;
        auto result =
            cached ? scheduler.PredictWithCache("m", rows[r])
                   : scheduler.PredictBatch("m", rows[r]);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        if (result->MaxAbsDiff(expected[r]) != 0.0f) ++mismatches;
      }
    });
  }
  std::thread redeployer([&] {
    for (int i = 0; i < 10; ++i) {
      // Identical mode/batch => identical plan => identical bits; the
      // point is that the *old* Deployment object is discarded while
      // queries still hold it.
      ASSERT_TRUE(
          session_.Deploy("m", ServingMode::kForceUdf, 8).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& t : clients) t.join();
  redeployer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted.load(), kClients * kPerClient);
  EXPECT_EQ(stats.shed_queue_full.load(), 0);
  EXPECT_EQ(stats.shed_deadline.load(), 0);
}

TEST_F(ServingConcurrencyTest, RedeployMidFlightKeepsOldPlanAlive) {
  LoadModel();
  auto batch = workloads::GenBatch(8, Shape{16}, 7);
  ASSERT_TRUE(batch.ok());
  auto expected = DirectRow("m", *batch);
  ASSERT_TRUE(expected.ok());

  // Hammer Predict and Deploy/DeployAot concurrently: before
  // GetDeployment returned shared_ptrs, the redeploy freed the
  // prepared weights out from under in-flight queries.
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < 3; ++c) {
    readers.emplace_back([&] {
      while (!stop) {
        auto got = DirectRow("m", *batch);
        if (!got.ok() || got->MaxAbsDiff(*expected) != 0.0f) ++bad;
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(session_.Deploy("m", ServingMode::kForceUdf, 8).ok());
    ASSERT_TRUE(session_.DeployAot("m", {4, 8, 16}).ok());
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(ServingConcurrencyTest, RedeploySwapsCompiledPlanAtomically) {
  LoadModel();
  auto batch = workloads::GenBatch(8, Shape{16}, 7);
  ASSERT_TRUE(batch.ok());
  auto expected = DirectRow("m", *batch);
  ASSERT_TRUE(expected.ok());

  // Readers run inference and render EXPLAIN ANALYZE off the deployed
  // PhysicalPlan while a writer swaps compiled plans (alternating
  // reprs, so the stage pipeline genuinely changes shape underneath).
  // The aliasing shared_ptr returned by DeployedPhysicalPlan must keep
  // each snapshot — stages, resident weights, stats — alive through
  // the swap.
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < 2; ++c) {
    readers.emplace_back([&] {
      while (!stop) {
        auto got = DirectRow("m", *batch);
        if (!got.ok() || got->MaxAbsDiff(*expected) > 1e-5f) ++bad;
      }
    });
  }
  readers.emplace_back([&] {
    while (!stop) {
      auto plan = session_.DeployedPhysicalPlan("m");
      if (!plan.ok()) {
        ++bad;
        continue;
      }
      const std::string text = (*plan)->ToString(/*analyze=*/true);
      if (text.find("PhysicalPlan m:") == std::string::npos) ++bad;
    }
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session_.Deploy("m", ServingMode::kForceUdf, 8).ok());
    ASSERT_TRUE(
        session_.Deploy("m", ServingMode::kForceRelational, 8).ok());
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(ServingConcurrencyTest, ExpiredDeadlineShedsTyped) {
  LoadModel();
  SchedulerConfig config;
  config.start_paused = true;
  RequestScheduler scheduler(&session_, config);

  auto row = workloads::GenBatch(1, Shape{16}, 1);
  ASSERT_TRUE(row.ok());
  // Negative deadline: expired before the dispatcher can see it.
  auto doomed = scheduler.SubmitBatch("m", *row, -1);
  auto fine = scheduler.SubmitBatch("m", *row);
  scheduler.Resume();

  auto doomed_result = doomed.get();
  ASSERT_FALSE(doomed_result.ok());
  EXPECT_TRUE(doomed_result.status().IsDeadlineExceeded())
      << doomed_result.status();
  auto fine_result = fine.get();
  EXPECT_TRUE(fine_result.ok()) << fine_result.status();
  EXPECT_EQ(scheduler.stats().shed_deadline.load(), 1);
}

TEST_F(ServingConcurrencyTest, ZeroDeadlineMeansNoDeadline) {
  LoadModel();
  SchedulerConfig config;
  config.start_paused = true;
  RequestScheduler scheduler(&session_, config);

  auto row = workloads::GenBatch(1, Shape{16}, 4);
  ASSERT_TRUE(row.ok());
  // Deadline 0 is "no deadline", not "due immediately": the request
  // sits queued far longer than any batching window and must still
  // execute, not shed.
  auto pending = scheduler.SubmitBatch("m", *row, /*deadline_us=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.Resume();
  auto result = pending.get();
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(scheduler.stats().shed_deadline.load(), 0);
}

TEST_F(ServingConcurrencyTest, TinyDeadlineExpiresWhileQueued) {
  LoadModel();
  SchedulerConfig config;
  config.start_paused = true;
  RequestScheduler scheduler(&session_, config);

  auto row = workloads::GenBatch(1, Shape{16}, 5);
  ASSERT_TRUE(row.ok());
  // A positive-but-tiny deadline that lapses between admission and
  // dispatch (the scheduler is paused through it) must shed with
  // DeadlineExceeded at dispatch, never execute late.
  auto doomed = scheduler.SubmitBatch("m", *row, /*deadline_us=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scheduler.Resume();
  auto result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  EXPECT_EQ(scheduler.stats().shed_deadline.load(), 1);
}

TEST_F(ServingConcurrencyTest, UndeployBetweenAdmissionAndDispatch) {
  LoadModel();
  SchedulerConfig config;
  config.start_paused = true;
  RequestScheduler scheduler(&session_, config);

  auto row = workloads::GenBatch(1, Shape{16}, 6);
  ASSERT_TRUE(row.ok());
  // Admit while deployed, undeploy before the dispatcher runs: the
  // queued request must resolve with a typed NotFound — never a crash,
  // never a hang.
  auto orphaned = scheduler.SubmitBatch("m", *row);
  ASSERT_TRUE(session_.Undeploy("m").ok());
  scheduler.Resume();
  auto result = orphaned.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound()) << result.status();

  // Still NotFound on a fresh submission...
  auto still_gone = scheduler.SubmitBatch("m", *row).get();
  ASSERT_FALSE(still_gone.ok());
  EXPECT_TRUE(still_gone.status().IsNotFound());

  // ...and redeploying brings the model back without a new scheduler.
  ASSERT_TRUE(session_.Deploy("m", ServingMode::kForceUdf, 8).ok());
  auto back = scheduler.SubmitBatch("m", *row).get();
  EXPECT_TRUE(back.ok()) << back.status();

  // Undeploying a model that has nothing deployed is a typed NotFound.
  EXPECT_TRUE(session_.Undeploy("nope").IsNotFound());
}

TEST_F(ServingConcurrencyTest, FullAdmissionQueueShedsTyped) {
  LoadModel();
  SchedulerConfig config;
  config.start_paused = true;  // nothing drains until Resume
  config.queue_capacity = 2;
  RequestScheduler scheduler(&session_, config);

  auto row = workloads::GenBatch(1, Shape{16}, 2);
  ASSERT_TRUE(row.ok());
  auto a = scheduler.SubmitBatch("m", *row);
  auto b = scheduler.SubmitBatch("m", *row);
  auto shed = scheduler.SubmitBatch("m", *row);

  // The third submission must shed immediately — the queue holds two.
  auto shed_result = shed.get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_TRUE(shed_result.status().IsUnavailable())
      << shed_result.status();
  EXPECT_EQ(scheduler.stats().shed_queue_full.load(), 1);

  scheduler.Resume();
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
}

TEST_F(ServingConcurrencyTest, ShutdownDrainsAdmittedRequests) {
  LoadModel();
  SchedulerConfig config;
  config.start_paused = true;
  RequestScheduler scheduler(&session_, config);

  auto row = workloads::GenBatch(1, Shape{16}, 3);
  ASSERT_TRUE(row.ok());
  std::vector<std::future<Result<Tensor>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(scheduler.SubmitBatch("m", *row));
  }
  // Shutdown without ever resuming: every admitted request must still
  // resolve (drained by the exiting dispatcher), never a broken
  // promise or a hang.
  scheduler.Shutdown();
  for (auto& f : futures) {
    auto result = f.get();
    EXPECT_TRUE(result.ok()) << result.status();
  }

  auto late = scheduler.SubmitBatch("m", *row).get();
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsUnavailable());
}

TEST_F(ServingConcurrencyTest, ConcurrentCacheTrafficIsSafe) {
  LoadModel();
  ASSERT_TRUE(session_.EnableExactCache("m").ok());
  ApproxResultCache::Config cache_config;
  ASSERT_TRUE(session_.EnableApproxCache("m", 16, cache_config).ok());

  // Hammer the cache tiers from several threads; the point is the
  // shared_mutex protection inside the caches (TSan verifies), plus
  // sane results throughout.
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    workers.emplace_back([&, c] {
      for (int i = 0; i < 40; ++i) {
        auto batch =
            workloads::GenBatch(2, Shape{16}, 500 + (c * 40 + i) % 20);
        if (!batch.ok()) {
          ++failures;
          continue;
        }
        auto out = session_.PredictWithCache("m", *batch);
        if (!out.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto cache = session_.GetExactCache("m");
  ASSERT_TRUE(cache.ok());
  EXPECT_GT((*cache)->stats().lookups.load(), 0);
}

TEST_F(ServingConcurrencyTest, DeployUndeployPredictChurn) {
  // Several same-seed variants (identical weights, so every relational
  // deployment shares its blocks through the PhysicalBlockIndex) are
  // deployed, undeployed, and served concurrently. In-flight requests
  // hold the plan via shared_ptr, so an Undeploy racing a Predict must
  // never produce a use-after-free — only a typed NotFound for
  // requests that resolve after the teardown. TSan covers the index's
  // internal locking.
  constexpr int kChurnVariants = 4;
  for (int i = 0; i < kChurnVariants; ++i) {
    auto model =
        BuildFFNN("v" + std::to_string(i), {16, 32, 4}, /*seed=*/3);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(session_.RegisterModel(std::move(*model)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad_status{0};

  std::thread churner([&] {
    for (int round = 0; round < 30; ++round) {
      for (int i = 0; i < kChurnVariants; ++i) {
        const std::string name = "v" + std::to_string(i);
        auto deployed =
            session_.Deploy(name, ServingMode::kForceRelational, 4);
        if (!deployed.ok()) ++bad_status;
      }
      // Tear down in a different order than deployment so the last
      // reference to a shared block moves between variants.
      for (int i = kChurnVariants - 1; i >= 0; --i) {
        auto s = session_.Undeploy("v" + std::to_string(i));
        if (!s.ok()) ++bad_status;
      }
    }
    stop = true;
  });

  std::vector<std::thread> predictors;
  for (int t = 0; t < 3; ++t) {
    predictors.emplace_back([&, t] {
      auto batch = workloads::GenBatch(4, Shape{16}, 900 + t);
      if (!batch.ok()) {
        ++bad_status;
        return;
      }
      int spins = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string name =
            "v" + std::to_string(spins++ % kChurnVariants);
        auto out = session_.PredictBatch(name, *batch);
        // NotFound is the expected race outcome; anything else is a
        // real failure.
        if (!out.ok() && !out.status().IsNotFound()) ++bad_status;
      }
    });
  }

  churner.join();
  for (std::thread& t : predictors) t.join();
  EXPECT_EQ(bad_status.load(), 0);

  // Everything was undeployed: the shared-block index must be empty
  // again (no leaked refs from any interleaving).
  ASSERT_NE(session_.block_index(), nullptr);
  const PhysicalBlockStats stats = session_.block_index()->stats();
  EXPECT_EQ(stats.unique_blocks, 0);
  EXPECT_EQ(stats.logical_refs, 0);
  EXPECT_EQ(stats.physical_bytes, 0);
}

}  // namespace
}  // namespace relserve
