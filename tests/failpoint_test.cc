// Unit tests for the failpoint registry: trigger composition
// (skip/limit/probability), action semantics (error, delay, torn,
// bitflip), the RELSERVE_FAILPOINTS grammar, and seeded determinism —
// the property the chaos harness relies on to replay failing seeds.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

namespace relserve {
namespace failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisableAll(); }
};

TEST_F(FailpointTest, DisarmedSiteIsFreeAndSilent) {
  EXPECT_FALSE(Evaluate("never.armed").fired);
  EXPECT_TRUE(InjectedStatus("never.armed").ok());
  EXPECT_EQ(HitCount("never.armed"), 0);
}

TEST_F(FailpointTest, ErrorActionReturnsConfiguredStatus) {
  Enable("site.a", Spec::Error(StatusCode::kUnavailable));
  Status s = InjectedStatus("site.a");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(HitCount("site.a"), 1);
  EXPECT_EQ(FireCount("site.a"), 1);
  Disable("site.a");
  EXPECT_TRUE(InjectedStatus("site.a").ok());
}

TEST_F(FailpointTest, SkipAndLimitCompose) {
  // Pass 2 evaluations, then fire at most 3 times, then pass forever.
  Enable("site.b",
         Spec::Error(StatusCode::kIOError).Skip(2).Limit(3));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (!InjectedStatus("site.b").ok()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(HitCount("site.b"), 10);
  EXPECT_EQ(FireCount("site.b"), 3);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  Enable("site.once", Spec::Error(StatusCode::kIOError).Once());
  EXPECT_FALSE(InjectedStatus("site.once").ok());
  EXPECT_TRUE(InjectedStatus("site.once").ok());
  EXPECT_TRUE(InjectedStatus("site.once").ok());
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    Enable("site.p",
           Spec::Error(StatusCode::kIOError).Probability(0.5).Seed(
               seed));
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(!InjectedStatus("site.p").ok());
    }
    Disable("site.p");
    return outcomes;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);  // same seed -> identical schedule
  EXPECT_NE(a, c);  // different seed -> different schedule
  int fired = 0;
  for (const bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 8);   // p=0.5 over 64 draws
  EXPECT_LT(fired, 56);
}

TEST_F(FailpointTest, TornWriteTruncatesIoLength) {
  Enable("site.torn", Spec::Torn().Seed(3));
  char buf[64];
  std::memset(buf, 'x', sizeof(buf));
  int64_t io_len = 64;
  ASSERT_TRUE(InjectedIo("site.torn", buf, 64, &io_len).ok());
  EXPECT_GE(io_len, 0);
  EXPECT_LT(io_len, 64);  // a strict prefix
}

TEST_F(FailpointTest, BitflipFlipsExactlyOneBit) {
  Enable("site.flip", Spec::Bitflip().Seed(5));
  std::vector<char> buf(256, 0);
  int64_t io_len = 256;
  ASSERT_TRUE(
      InjectedIo("site.flip", buf.data(), 256, &io_len).ok());
  int bits_set = 0;
  for (const char c : buf) {
    unsigned char byte = static_cast<unsigned char>(c);
    while (byte != 0) {
      bits_set += byte & 1;
      byte >>= 1;
    }
  }
  EXPECT_EQ(bits_set, 1);
  EXPECT_EQ(io_len, 256);  // bitflip never tears
}

TEST_F(FailpointTest, ApplyBitflipIsDeferredReplayable) {
  Enable("site.defer", Spec::Bitflip().Seed(9));
  const Eval eval = Evaluate("site.defer");
  ASSERT_TRUE(eval.fired);
  std::vector<char> a(128, 0), b(128, 0);
  ApplyBitflip(eval, a.data(), 128);
  ApplyBitflip(eval, b.data(), 128);
  EXPECT_EQ(a, b);  // same Eval -> same bit
  EXPECT_NE(a, std::vector<char>(128, 0));
}

TEST_F(FailpointTest, EnableFromStringParsesGrammar) {
  ASSERT_TRUE(EnableFromString(
                  "x.a=error(Unavailable),p=0.25,skip=1,limit=5;"
                  "x.b=delay(10);x.c=torn,once;x.d=bitflip,seed=11")
                  .ok());
  const auto sites = ActiveSites();
  EXPECT_EQ(sites.size(), 4u);
  // x.a passes its first (skipped) evaluation.
  EXPECT_TRUE(InjectedStatus("x.a").ok());
  // x.b delays then proceeds: never an error.
  EXPECT_TRUE(InjectedStatus("x.b").ok());
}

TEST_F(FailpointTest, MalformedEntriesAreReportedButDoNotDisarmRest) {
  Status s = EnableFromString("ok.site=error(IOError);bad entry;"
                              "also.ok=delay(1)");
  EXPECT_FALSE(s.ok());  // the malformed entry is reported...
  EXPECT_FALSE(InjectedStatus("ok.site").ok());   // ...but both good
  EXPECT_TRUE(InjectedStatus("also.ok").ok());    // entries are armed
  EXPECT_EQ(ActiveSites().size(), 2u);
}

TEST_F(FailpointTest, UnknownStatusCodeIsInvalidArgument) {
  Status s = EnableFromString("x=error(Bogus)");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_TRUE(ActiveSites().empty());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint fp("scoped.site",
                       Spec::Error(StatusCode::kIOError));
    EXPECT_FALSE(InjectedStatus("scoped.site").ok());
  }
  EXPECT_TRUE(InjectedStatus("scoped.site").ok());
  if (std::getenv("RELSERVE_FAILPOINTS") == nullptr) {
    EXPECT_FALSE(AnyActive());  // armed-count bookkeeping is exact
  }
}

// Environment-activation smoke: scripts/tsan_check.sh runs this test
// with RELSERVE_FAILPOINTS="chaos.smoke=error(Unavailable),limit=2"
// to prove the env path arms real sites in a fresh process. Skipped
// in a normal ctest run where the variable is unset.
TEST_F(FailpointTest, EnvActivationSmoke) {
  const char* env = std::getenv("RELSERVE_FAILPOINTS");
  if (env == nullptr || std::strstr(env, "chaos.smoke") == nullptr) {
    GTEST_SKIP() << "RELSERVE_FAILPOINTS not set for this process";
  }
  EXPECT_TRUE(AnyActive());
  Status first = InjectedStatus("chaos.smoke");
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.IsUnavailable());
}

}  // namespace
}  // namespace failpoint
}  // namespace relserve
