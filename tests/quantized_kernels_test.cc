// Tests for the quantized / sparse kernel arms and the fused top-k
// epilogue: bit-for-bit scalar==AVX2 invariants across odd tail
// shapes, analytical fp32-vs-int8 error bounds, top-k tie determinism
// at any thread count, and the stage-level guarantee that a top-k head
// never materializes the full logits matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "engine/physical_plan.h"
#include "graph/model.h"
#include "kernels/cpu_features.h"
#include "kernels/int8_gemm.h"
#include "kernels/kernels.h"
#include "kernels/sparse_gemm.h"
#include "kernels/topk.h"
#include "optimizer/optimizer.h"
#include "resource/device_model.h"
#include "resource/thread_pool.h"
#include "serving/serving_session.h"

namespace relserve {
namespace {

using kernels::CsrWeight;
using kernels::Int8Weight;
using kernels::QuantizeMode;
using kernels::SimdLevel;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    installed_ = kernels::SetActiveSimdLevel(level);
  }
  ~ScopedSimdLevel() {
    kernels::SetActiveSimdLevel(kernels::DetectSimdLevel());
  }
  SimdLevel installed() const { return installed_; }

 private:
  SimdLevel installed_;
};

class ScopedQuantizeMode {
 public:
  explicit ScopedQuantizeMode(QuantizeMode mode)
      : previous_(kernels::ActiveQuantizeMode()) {
    kernels::SetActiveQuantizeMode(mode);
  }
  ~ScopedQuantizeMode() { kernels::SetActiveQuantizeMode(previous_); }

 private:
  QuantizeMode previous_;
};

// Deterministic pseudo-random fill in [-1, 1).
float Rand01(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<float>((*state >> 33) & 0xFFFFFF) /
             static_cast<float>(1 << 23) -
         1.0f;
}

Tensor RandomTensor(Shape shape, uint64_t seed) {
  auto t = Tensor::Create(std::move(shape));
  EXPECT_TRUE(t.ok());
  uint64_t state = seed * 2654435761ULL + 1;
  for (int64_t i = 0; i < t->NumElements(); ++i) {
    t->data()[i] = Rand01(&state);
  }
  return *std::move(t);
}

// ---------------------------------------------------------------------
// Int8 quantization scheme
// ---------------------------------------------------------------------

TEST(Int8QuantizeTest, PerChannelScalesAndRowSums) {
  Tensor w = Tensor::FromData(Shape{2, 3}, {1.0f, -2.0f, 0.5f,  //
                                            0.0f, 0.0f, 0.0f})
                 .ValueOrDie();
  auto q = kernels::QuantizeWeightPerChannel(w);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->out, 2);
  EXPECT_EQ(q->in, 3);
  EXPECT_EQ(q->padded_in % 32, 0);
  // Channel 0: scale = 2/127; -2 maps to -127, 1 to round(63.5)=64.
  EXPECT_FLOAT_EQ(q->scales[0], 2.0f / 127.0f);
  EXPECT_EQ(q->data[0], 64);
  EXPECT_EQ(q->data[1], -127);
  EXPECT_EQ(q->data[2], 32);
  EXPECT_EQ(q->row_sums[0], 64 - 127 + 32);
  // All-zero channel: scale stays finite, all codes zero.
  EXPECT_FLOAT_EQ(q->scales[1], 1.0f);
  EXPECT_EQ(q->row_sums[1], 0);
  // Padding lanes are zero.
  for (int64_t p = 3; p < q->padded_in; ++p) {
    EXPECT_EQ(q->data[p], 0);
  }
}

TEST(Int8QuantizeTest, ActivationRowIsShiftedU7) {
  std::vector<float> x = {0.0f, 63.0f, -63.0f, 31.5f};
  std::vector<uint8_t> q(32);
  const float scale =
      kernels::QuantizeRowU7(x.data(), 4, 32, q.data());
  EXPECT_FLOAT_EQ(scale, 1.0f);  // maxabs/63 = 63/63
  EXPECT_EQ(q[0], 64);           // shifted zero
  EXPECT_EQ(q[1], 127);
  EXPECT_EQ(q[2], 1);
  EXPECT_EQ(q[3], 96);  // round(31.5) = 32 -> 96
  for (int p = 4; p < 32; ++p) EXPECT_EQ(q[p], 64);  // padding
}

// Exhaustive odd-shape sweep: the scalar and AVX2 int8 backends must
// agree BIT-FOR-BIT (both compute exact integer accumulators; the
// shared driver does the only float arithmetic).
TEST(Int8GemmTest, ScalarAndAvx2BitIdenticalAcrossTails) {
  if (kernels::DetectSimdLevel() != SimdLevel::kAvx2 ||
      kernels::internal::GetAvx2Int8Backend() == nullptr) {
    GTEST_SKIP() << "no AVX2 backend on this host";
  }
  const std::vector<int64_t> kDims = {1, 2, 3, 5, 7, 8, 31, 32, 33, 64};
  uint64_t seed = 7;
  for (int64_t m : kDims) {
    for (int64_t n : kDims) {
      for (int64_t k : kDims) {
        Tensor a = RandomTensor(Shape{m, k}, ++seed);
        Tensor w = RandomTensor(Shape{n, k}, ++seed);
        auto qw = kernels::QuantizeWeightPerChannel(w);
        ASSERT_TRUE(qw.ok());
        auto scalar_out = Tensor::Create(Shape{m, n});
        auto avx2_out = Tensor::Create(Shape{m, n});
        ASSERT_TRUE(scalar_out.ok() && avx2_out.ok());
        {
          ScopedSimdLevel pin(SimdLevel::kScalar);
          ASSERT_TRUE(kernels::Int8GemmTransBInto(a, *qw, &*scalar_out)
                          .ok());
        }
        {
          ScopedSimdLevel pin(SimdLevel::kAvx2);
          ASSERT_TRUE(
              kernels::Int8GemmTransBInto(a, *qw, &*avx2_out).ok());
        }
        ASSERT_EQ(std::memcmp(scalar_out->data(), avx2_out->data(),
                              m * n * sizeof(float)),
                  0)
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(Int8GemmTest, ParallelMatchesSerialBitForBit) {
  Tensor a = RandomTensor(Shape{64, 97}, 11);
  Tensor w = RandomTensor(Shape{53, 97}, 12);
  auto qw = kernels::QuantizeWeightPerChannel(w);
  ASSERT_TRUE(qw.ok());
  auto serial = Tensor::Create(Shape{64, 53});
  auto parallel = Tensor::Create(Shape{64, 53});
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_TRUE(kernels::Int8GemmTransBInto(a, *qw, &*serial).ok());
  ThreadPool pool(4);
  ASSERT_TRUE(
      kernels::Int8GemmTransBInto(a, *qw, &*parallel, &pool).ok());
  EXPECT_EQ(std::memcmp(serial->data(), parallel->data(),
                        64 * 53 * sizeof(float)),
            0);
}

// Analytical error bound: per contraction term,
//   |x*w - deq| <= |x| * scale_w/2 + |w| * scale_a/2
//                  + scale_a * scale_w / 4,
// so the per-element error is at most the sum of those bounds (plus
// fp32 rounding slack in the reference itself).
TEST(Int8GemmTest, ErrorWithinAnalyticalBoundOfFp32) {
  const int64_t m = 17, n = 23, k = 61;
  Tensor a = RandomTensor(Shape{m, k}, 21);
  Tensor w = RandomTensor(Shape{n, k}, 22);
  auto qw = kernels::QuantizeWeightPerChannel(w);
  ASSERT_TRUE(qw.ok());
  auto deq = Tensor::Create(Shape{m, n});
  ASSERT_TRUE(deq.ok());
  ASSERT_TRUE(kernels::Int8GemmTransBInto(a, *qw, &*deq).ok());
  auto ref = kernels::MatMul(a, w, /*transpose_b=*/true);
  ASSERT_TRUE(ref.ok());
  for (int64_t r = 0; r < m; ++r) {
    float maxabs = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      maxabs = std::max(maxabs, std::fabs(a.data()[r * k + p]));
    }
    const float scale_a = maxabs > 0.0f ? maxabs / 63.0f : 1.0f;
    for (int64_t o = 0; o < n; ++o) {
      const float scale_w = qw->scales[o];
      double bound = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        bound += std::fabs(a.data()[r * k + p]) * scale_w * 0.5 +
                 std::fabs(w.data()[o * k + p]) * scale_a * 0.5 +
                 scale_a * scale_w * 0.25;
      }
      bound += 1e-4;  // fp32 reference rounding slack
      EXPECT_LE(std::fabs(deq->At(r, o) - ref->At(r, o)), bound)
          << "r=" << r << " o=" << o;
    }
  }
}

TEST(Int8GemmTest, QuantizeModeOverrideRoundTrips) {
  ScopedQuantizeMode pin(QuantizeMode::kInt8);
  EXPECT_EQ(kernels::ActiveQuantizeMode(), QuantizeMode::kInt8);
  EXPECT_STREQ(kernels::QuantizeModeName(QuantizeMode::kInt8), "int8");
  EXPECT_STREQ(kernels::QuantizeModeName(QuantizeMode::kOff), "off");
  EXPECT_STREQ(kernels::QuantizeModeName(QuantizeMode::kAuto), "auto");
}

// ---------------------------------------------------------------------
// Sparse CSR kernel
// ---------------------------------------------------------------------

// Drops ~`permille`/1000 of entries deterministically.
void Sparsify(Tensor* w, int permille, uint64_t seed) {
  uint64_t state = seed;
  for (int64_t i = 0; i < w->NumElements(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    if (static_cast<int>((state >> 33) % 1000) < permille) {
      w->data()[i] = 0.0f;
    }
  }
}

TEST(SparseGemmTest, BitIdenticalToNaiveAscendingDot) {
  const int64_t m = 9, n = 41, k = 67;
  Tensor a = RandomTensor(Shape{m, k}, 31);
  Tensor w = RandomTensor(Shape{n, k}, 32);
  Sparsify(&w, 900, 33);
  auto d = kernels::MeasureWeightDensity(w);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(*d, 0.25);
  auto csr = kernels::BuildCsrWeight(w);
  ASSERT_TRUE(csr.ok());
  EXPECT_DOUBLE_EQ(csr->density(), *d);
  auto out = Tensor::Create(Shape{m, n});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(kernels::SparseGemmTransBInto(a, *csr, &*out).ok());
  // Naive ascending-k dense reference: adding an exact 0.0f term is a
  // no-op, so the CSR chain must produce the same bits.
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t o = 0; o < n; ++o) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.data()[r * k + p] * w.data()[o * k + p];
      }
      ASSERT_EQ(out->At(r, o), acc) << "r=" << r << " o=" << o;
    }
  }
  // And thread-count invariant.
  ThreadPool pool(4);
  auto out2 = Tensor::Create(Shape{m, n});
  ASSERT_TRUE(out2.ok());
  ASSERT_TRUE(kernels::SparseGemmTransBInto(a, *csr, &*out2, &pool).ok());
  EXPECT_EQ(
      std::memcmp(out->data(), out2->data(), m * n * sizeof(float)), 0);
}

// ---------------------------------------------------------------------
// Fused top-k epilogue
// ---------------------------------------------------------------------

// Reference: full logits + epilogue, then select under the kernel's
// total order (value desc, index asc).
std::vector<std::pair<float, int64_t>> ReferenceTopK(
    const Tensor& logits, int64_t row, int64_t kk, const Tensor* bias,
    bool relu) {
  const int64_t n = logits.shape().dim(1);
  std::vector<std::pair<float, int64_t>> all(n);
  for (int64_t c = 0; c < n; ++c) {
    float v = logits.At(row, c);
    if (bias != nullptr) v += bias->data()[c];
    if (relu && v < 0.0f) v = 0.0f;
    all[c] = {v, c};
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  all.resize(kk);
  return all;
}

TEST(TopKTest, DenseArmMatchesFullMatMulSelection) {
  const int64_t m = 13, n = 301, k = 47, kk = 7;
  Tensor a = RandomTensor(Shape{m, k}, 41);
  Tensor w = RandomTensor(Shape{n, k}, 42);
  Tensor bias = RandomTensor(Shape{n}, 43);
  kernels::TopKOptions opts;
  opts.k = kk;
  opts.bias = &bias;
  opts.relu = true;
  auto out = Tensor::Create(Shape{m, 2 * kk});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(
      kernels::MatMulTopKInto(a, &w, nullptr, nullptr, opts, &*out)
          .ok());
  auto logits = kernels::MatMul(a, w, /*transpose_b=*/true);
  ASSERT_TRUE(logits.ok());
  for (int64_t r = 0; r < m; ++r) {
    const auto ref = ReferenceTopK(*logits, r, kk, &bias, true);
    for (int64_t i = 0; i < kk; ++i) {
      EXPECT_EQ(static_cast<int64_t>(out->At(r, kk + i)),
                ref[i].second)
          << "r=" << r << " i=" << i;
      EXPECT_FLOAT_EQ(out->At(r, i), ref[i].first);
    }
  }
}

TEST(TopKTest, TiesAndDuplicatesDeterministicAtAnyThreadCount) {
  // Values drawn from a tiny set force massive duplication: every
  // selection boundary is a tie, decided only by the (value desc,
  // index asc) total order.
  const int64_t m = 24, n = 4097, k = 8, kk = 10;
  auto a = Tensor::Create(Shape{m, k});
  auto w = Tensor::Create(Shape{n, k});
  ASSERT_TRUE(a.ok() && w.ok());
  uint64_t state = 99;
  for (int64_t i = 0; i < m * k; ++i) {
    state = state * 6364136223846793005ULL + 1;
    a->data()[i] = static_cast<float>((state >> 33) % 3) * 0.5f;
  }
  for (int64_t i = 0; i < n * k; ++i) {
    state = state * 6364136223846793005ULL + 1;
    w->data()[i] = static_cast<float>((state >> 33) % 2);
  }
  kernels::TopKOptions opts;
  opts.k = kk;
  opts.softmax = true;

  auto run = [&](const Tensor* dense, const Int8Weight* int8,
                 const CsrWeight* sparse, ThreadPool* pool) {
    auto out = Tensor::Create(Shape{m, 2 * kk});
    EXPECT_TRUE(out.ok());
    EXPECT_TRUE(kernels::MatMulTopKInto(*a, dense, int8, sparse, opts,
                                        &*out, pool)
                    .ok());
    return *std::move(out);
  };

  auto qw = kernels::QuantizeWeightPerChannel(*w);
  auto csr = kernels::BuildCsrWeight(*w);
  ASSERT_TRUE(qw.ok() && csr.ok());
  ThreadPool pool1(1), pool4(4), pool8(8);
  const std::vector<ThreadPool*> pools = {nullptr, &pool1, &pool4,
                                          &pool8};
  for (int arm = 0; arm < 3; ++arm) {
    const Tensor* dense = arm == 0 ? &*w : nullptr;
    const Int8Weight* int8 = arm == 1 ? &*qw : nullptr;
    const CsrWeight* sparse = arm == 2 ? &*csr : nullptr;
    Tensor baseline = run(dense, int8, sparse, nullptr);
    // Indices must be unique within each row.
    for (int64_t r = 0; r < m; ++r) {
      std::vector<int64_t> idx;
      for (int64_t i = 0; i < kk; ++i) {
        idx.push_back(static_cast<int64_t>(baseline.At(r, kk + i)));
      }
      std::sort(idx.begin(), idx.end());
      EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) ==
                  idx.end())
          << "duplicate index in arm " << arm << " row " << r;
    }
    for (ThreadPool* pool : pools) {
      Tensor got = run(dense, int8, sparse, pool);
      EXPECT_EQ(std::memcmp(baseline.data(), got.data(),
                            m * 2 * kk * sizeof(float)),
                0)
          << "arm " << arm;
    }
  }
}

TEST(TopKTest, RejectsBadArguments) {
  Tensor a = RandomTensor(Shape{2, 4}, 51);
  Tensor w = RandomTensor(Shape{8, 4}, 52);
  kernels::TopKOptions opts;
  opts.k = 3;
  auto out = Tensor::Create(Shape{2, 6});
  ASSERT_TRUE(out.ok());
  // No arm / two arms.
  EXPECT_TRUE(kernels::MatMulTopKInto(a, nullptr, nullptr, nullptr,
                                      opts, &*out)
                  .IsInvalidArgument());
  auto qw = kernels::QuantizeWeightPerChannel(w);
  ASSERT_TRUE(qw.ok());
  EXPECT_TRUE(
      kernels::MatMulTopKInto(a, &w, &*qw, nullptr, opts, &*out)
          .IsInvalidArgument());
  // k out of range.
  opts.k = 9;
  EXPECT_TRUE(
      kernels::MatMulTopKInto(a, &w, nullptr, nullptr, opts, &*out)
          .IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Optimizer / plan / serving integration
// ---------------------------------------------------------------------

TEST(KernelArmPlanTest, OptimizerPicksArmsAndRendersThem) {
  // Pin kAuto: an ambient RELSERVE_QUANTIZE override would (by
  // design) hijack the per-node decisions this test asserts.
  ScopedQuantizeMode mode(kernels::QuantizeMode::kAuto);
  auto model = BuildFFNN("xc", {32, 64, 200}, /*seed=*/7);
  ASSERT_TRUE(model.ok());
  auto* w1 = model->GetMutableWeight("w1").ValueOrDie();
  Sparsify(w1, 920, 77);
  OptimizerTuning tuning;
  tuning.enable_int8 = true;
  tuning.enable_sparse = true;
  tuning.topk = 5;
  RuleBasedOptimizer optimizer(1LL << 40, nullptr, tuning);
  auto plan = optimizer.Optimize(*model, 16);
  ASSERT_TRUE(plan.ok());
  // Node 1 = first matmul (dense weight -> int8 arm); node 4 = head
  // matmul (sparsified -> sparse arm, carries the top-k request).
  EXPECT_EQ(plan->decisions[1].arm, KernelArm::kInt8);
  EXPECT_EQ(plan->decisions[4].arm, KernelArm::kSparse);
  EXPECT_LT(plan->decisions[4].weight_density, 0.25);
  EXPECT_EQ(plan->decisions[4].topk, 5);
  EXPECT_EQ(plan->decisions[1].topk, 0);
  const std::string text = plan->ToString(*model);
  EXPECT_NE(text.find("[int8]"), std::string::npos);
  EXPECT_NE(text.find("[sparse d=0."), std::string::npos);
  EXPECT_NE(text.find("+topk(5)"), std::string::npos);
  // RELSERVE_QUANTIZE=off force-disables the int8 arm.
  {
    ScopedQuantizeMode off(QuantizeMode::kOff);
    auto plan_off = optimizer.Optimize(*model, 16);
    ASSERT_TRUE(plan_off.ok());
    EXPECT_EQ(plan_off->decisions[1].arm, KernelArm::kDense);
    EXPECT_EQ(plan_off->decisions[4].arm, KernelArm::kSparse);
  }
  // RELSERVE_QUANTIZE=int8 force-enables it without any tuning.
  {
    ScopedQuantizeMode on(QuantizeMode::kInt8);
    RuleBasedOptimizer plain(1LL << 40);
    auto plan_on = plain.Optimize(*model, 16);
    ASSERT_TRUE(plan_on.ok());
    EXPECT_EQ(plan_on->decisions[1].arm, KernelArm::kInt8);
    EXPECT_EQ(plan_on->decisions[4].arm, KernelArm::kInt8);
  }
  // Defaults leave every arm off — the golden-plan contract.
  {
    RuleBasedOptimizer plain(1LL << 40);
    auto plan_plain = plain.Optimize(*model, 16);
    ASSERT_TRUE(plan_plain.ok());
    for (const NodeDecision& d : plan_plain->decisions) {
      EXPECT_EQ(d.arm, KernelArm::kDense);
      EXPECT_EQ(d.topk, 0);
    }
  }
}

// The acceptance invariant: a deployed top-k head emits [batch, 2k]
// and its stage-level byte accounting proves the 200-wide logits
// tensor was never materialized as stage output.
TEST(KernelArmServingTest, TopKHeadServesWithoutMaterializingLogits) {
  // Pin kAuto: an ambient RELSERVE_QUANTIZE override would (by
  // design) replace the sparse head this test asserts with int8.
  ScopedQuantizeMode mode(kernels::QuantizeMode::kAuto);
  const int64_t batch = 64, classes = 200, kk = 5;
  auto build = [] {
    auto model = BuildFFNN("xc", {32, 64, 200}, /*seed=*/7);
    EXPECT_TRUE(model.ok());
    auto* w1 = model->GetMutableWeight("w1").ValueOrDie();
    Sparsify(w1, 920, 77);
    return *std::move(model);
  };

  ServingConfig fused_config;
  fused_config.optimizer_tuning.enable_sparse = true;
  fused_config.optimizer_tuning.topk = kk;
  ServingSession fused(fused_config);
  ASSERT_TRUE(fused.RegisterModel(build()).ok());
  ASSERT_TRUE(
      fused.Deploy("xc", ServingMode::kAdaptive, batch).ok());

  ServingSession plain((ServingConfig()));
  ASSERT_TRUE(plain.RegisterModel(build()).ok());
  ASSERT_TRUE(
      plain.Deploy("xc", ServingMode::kAdaptive, batch).ok());

  Tensor input = RandomTensor(Shape{batch, 32}, 123);
  auto fused_out = fused.PredictBatch("xc", input);
  auto plain_out = plain.PredictBatch("xc", input);
  ASSERT_TRUE(fused_out.ok()) << fused_out.status().ToString();
  ASSERT_TRUE(plain_out.ok());
  ASSERT_EQ(fused_out->tensor.shape(), (Shape{batch, 2 * kk}));
  ASSERT_EQ(plain_out->tensor.shape(), (Shape{batch, classes}));

  // Stage accounting: the head stage produced 2k floats per row — not
  // `classes` — so the full logits matrix never existed as stage
  // output.
  auto pp = fused.DeployedPhysicalPlan("xc");
  ASSERT_TRUE(pp.ok());
  const PhysicalStage& head = *(*pp)->stages().back();
  EXPECT_EQ(head.kind, StageKind::kMatMulTopK);
  EXPECT_NE(head.label.find("sparse-matmul"), std::string::npos);
  EXPECT_NE(head.label.find("+topk(5)"), std::string::npos);
  EXPECT_EQ(head.stats.bytes.load(),
            batch * 2 * kk * static_cast<int64_t>(sizeof(float)));
  const std::string text = (*pp)->ToString(/*analyze=*/true);
  EXPECT_NE(text.find("sparse-matmul"), std::string::npos);

  // Top-k agreement vs the fp32 full-softmax path: indices must match
  // (value order may differ only on FMA-rounding near-ties).
  int64_t agree = 0;
  for (int64_t r = 0; r < batch; ++r) {
    const auto ref = ReferenceTopK(plain_out->tensor, r, kk,
                                   /*bias=*/nullptr, /*relu=*/false);
    std::vector<int64_t> ref_idx, got_idx;
    for (int64_t i = 0; i < kk; ++i) {
      ref_idx.push_back(ref[i].second);
      got_idx.push_back(
          static_cast<int64_t>(fused_out->tensor.At(r, kk + i)));
    }
    std::sort(ref_idx.begin(), ref_idx.end());
    std::sort(got_idx.begin(), got_idx.end());
    for (int64_t i = 0; i < kk; ++i) {
      agree += ref_idx[i] == got_idx[i];
    }
    // Fused softmax renormalizes over the k survivors: probabilities
    // are positive and descending.
    float prev = 1.0f;
    float sum = 0.0f;
    for (int64_t i = 0; i < kk; ++i) {
      const float p = fused_out->tensor.At(r, i);
      EXPECT_GT(p, 0.0f);
      EXPECT_LE(p, prev + 1e-6f);
      prev = p;
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
  EXPECT_GE(static_cast<double>(agree),
            0.99 * static_cast<double>(batch * kk));
}

TEST(KernelArmServingTest, Int8ArmServesCloseToFp32) {
  // Pin kAuto: an ambient RELSERVE_QUANTIZE=off would (by design)
  // demote the int8 arm this test deploys.
  ScopedQuantizeMode mode(kernels::QuantizeMode::kAuto);
  const int64_t batch = 32;
  auto build = [] {
    auto model = BuildFFNN("q", {24, 48, 10}, /*seed=*/9);
    EXPECT_TRUE(model.ok());
    return *std::move(model);
  };
  ServingConfig qconfig;
  qconfig.optimizer_tuning.enable_int8 = true;
  ServingSession quant(qconfig);
  ASSERT_TRUE(quant.RegisterModel(build()).ok());
  auto plan = quant.Deploy("q", ServingMode::kAdaptive, batch);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->decisions[1].arm, KernelArm::kInt8);

  ServingSession plain((ServingConfig()));
  ASSERT_TRUE(plain.RegisterModel(build()).ok());
  ASSERT_TRUE(plain.Deploy("q", ServingMode::kAdaptive, batch).ok());

  Tensor input = RandomTensor(Shape{batch, 24}, 321);
  auto q_out = quant.PredictBatch("q", input);
  auto f_out = plain.PredictBatch("q", input);
  ASSERT_TRUE(q_out.ok() && f_out.ok());
  // Top-1 agreement across the batch.
  int64_t agree = 0;
  for (int64_t r = 0; r < batch; ++r) {
    auto argmax = [&](const Tensor& t) {
      int64_t best = 0;
      for (int64_t c = 1; c < 10; ++c) {
        if (t.At(r, c) > t.At(r, best)) best = c;
      }
      return best;
    };
    agree += argmax(q_out->tensor) == argmax(f_out->tensor);
  }
  EXPECT_GE(agree, batch - 3);  // ~90%+ top-1 agreement
  const auto pp = quant.DeployedPhysicalPlan("q");
  ASSERT_TRUE(pp.ok());
  EXPECT_NE((*pp)->ToString().find("int8-matmul"), std::string::npos);
}

// ---------------------------------------------------------------------
// Runtime GEMM calibration
// ---------------------------------------------------------------------

TEST(DeviceCalibrationTest, ProbeIsPositiveAndCached) {
  const double first = CalibratedCpuGemmFlops();
  EXPECT_GT(first, 1e8);   // any real CPU beats 0.1 GFLOP/s
  EXPECT_LT(first, 1e13);  // and no CPU sustains 10 TFLOP/s scalar
  EXPECT_EQ(CalibratedCpuGemmFlops(), first);  // one-shot, cached
  DeviceSpec spec;
  EXPECT_EQ(spec.flops_per_second, first);
}

}  // namespace
}  // namespace relserve
