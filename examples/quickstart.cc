// Quickstart: load a table, register a model, deploy, predict.
//
//   $ ./build/examples/quickstart
//
// Walks the minimal relserve workflow: an RDBMS session owns the
// data; a deep-learning model is loaded *into* the database; the
// adaptive optimizer picks an in-database representation; inference
// runs directly on the stored rows.

#include <cstdio>

#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

using relserve::BuildFFNN;
using relserve::ExecOutput;
using relserve::InferencePlan;
using relserve::Model;
using relserve::ServingConfig;
using relserve::ServingMode;
using relserve::ServingSession;
using relserve::Shape;
using relserve::TableInfo;
using relserve::Tensor;

int main() {
  // 1. A session: buffer pool + catalog + working-memory arena +
  //    optimizer configuration.
  ServingSession session(ServingConfig{});

  // 2. A table of 1,000 rows with a 28-wide feature vector each
  //    (synthetic stand-in for a transactions table).
  auto table = session.CreateTable(
      "transactions", relserve::workloads::FeatureTableSchema());
  if (!table.ok()) {
    std::fprintf(stderr, "create table: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  if (auto s = relserve::workloads::FillFeatureTable(*table, 1000, 28,
                                                     /*seed=*/42);
      !s.ok()) {
    std::fprintf(stderr, "load rows: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld rows into 'transactions'\n",
              static_cast<long long>((*table)->heap->num_records()));

  // 3. Register a model (the paper's Fraud-FC-256: 28 -> 256 -> 2).
  auto model = BuildFFNN("fraud-detector", {28, 256, 2}, /*seed=*/7);
  if (!model.ok() ||
      !session.RegisterModel(std::move(*model)).ok()) {
    std::fprintf(stderr, "model registration failed\n");
    return 1;
  }

  // 4. Deploy: the rule-based optimizer estimates every operator's
  //    memory and picks udf-centric vs relation-centric per node.
  auto plan = session.Deploy("fraud-detector", ServingMode::kAdaptive,
                             /*batch_size=*/1000);
  if (!plan.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n",
              (*plan)->ToString(**session.GetModel("fraud-detector"))
                  .c_str());

  // 5. Predict over the whole table, in the database.
  auto out = session.Predict("fraud-detector", "transactions");
  if (!out.ok()) {
    std::fprintf(stderr, "predict: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  auto scores = out->ToTensor(session.exec_context());
  if (!scores.ok()) {
    std::fprintf(stderr, "materialize: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }
  std::printf("predictions: %s; first row = [%.4f, %.4f]\n",
              scores->shape().ToString().c_str(), scores->At(0, 0),
              scores->At(0, 1));
  std::printf("working-memory in use after query: %lld bytes "
              "(outputs only)\n",
              static_cast<long long>(
                  session.working_memory()->used_bytes()));
  return 0;
}
