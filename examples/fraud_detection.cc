// Fraud detection, the paper's flagship latency-critical workload:
// transactions live in the RDBMS; a fraud model scores them. This
// example contrasts the two deployment styles the paper compares:
//   (a) in-database serving (our architecture), and
//   (b) DL-centric offload to an external runtime over a connector,
// and prints the latency of each plus the cross-system bytes moved.

#include <cstdio>

#include "common/timer.h"
#include "engine/external_runtime.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

using namespace relserve;  // example code; library code never does this

int main() {
  ServingSession session(ServingConfig{});

  // A day of card transactions: 50k rows x 28 features.
  auto table = session.CreateTable(
      "card_tx", workloads::FeatureTableSchema());
  if (!table.ok()) return 1;
  if (!workloads::FillFeatureTable(*table, 50000, 28, 1).ok()) return 1;

  auto model = BuildFFNN("fraud", {28, 256, 2}, 3);
  if (!model.ok() || !session.RegisterModel(std::move(*model)).ok()) {
    return 1;
  }
  if (!session.Deploy("fraud", ServingMode::kAdaptive, 50000).ok()) {
    return 1;
  }

  // (a) In-database serving.
  Timer in_db;
  auto scores = session.Predict("fraud", "card_tx");
  if (!scores.ok()) {
    std::fprintf(stderr, "in-db predict: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }
  auto in_db_scores = scores->ToTensor(session.exec_context());
  if (!in_db_scores.ok()) return 1;
  const double in_db_seconds = in_db.ElapsedSeconds();

  // (b) DL-centric offload: features exported through the connector,
  // scored in the external runtime, predictions imported back.
  ExternalRuntime runtime("external-dl", 4LL << 30,
                          session.thread_pool());
  if (!session.OffloadModel("fraud", &runtime).ok()) return 1;
  Timer dl;
  auto remote = session.PredictViaRuntime("fraud", "card_tx");
  if (!remote.ok()) {
    std::fprintf(stderr, "dl-centric predict: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  const double dl_seconds = dl.ElapsedSeconds();

  // Same predictions either way (same kernels) — the difference is
  // purely where the data had to travel.
  const float diff = in_db_scores->MaxAbsDiff(*remote);

  std::printf("scored %lld transactions\n",
              static_cast<long long>(in_db_scores->shape().dim(0)));
  std::printf("  in-database          : %.4f s\n", in_db_seconds);
  std::printf("  dl-centric (offload) : %.4f s  (%.2fx slower)\n",
              dl_seconds, dl_seconds / in_db_seconds);
  std::printf("  cross-system traffic : %lld bytes out, %lld bytes "
              "back\n",
              static_cast<long long>(runtime.stats().bytes_received),
              static_cast<long long>(runtime.stats().bytes_sent));
  std::printf("  max prediction diff  : %.2e\n",
              static_cast<double>(diff));

  // Count suspicious transactions (class 1 more likely than class 0).
  int64_t flagged = 0;
  for (int64_t r = 0; r < in_db_scores->shape().dim(0); ++r) {
    flagged += in_db_scores->At(r, 1) > in_db_scores->At(r, 0);
  }
  std::printf("  flagged as fraud     : %lld\n",
              static_cast<long long>(flagged));
  return 0;
}
