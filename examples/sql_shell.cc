// Interactive SQL shell over a relserve session, pre-loaded with the
// fraud workload. Supports SELECT / EXPLAIN SELECT / CREATE TABLE /
// INSERT INTO, including PREDICT(...) items and GROUP BY over
// inference results.
//
//   $ ./build/examples/sql_shell
//   relserve> SELECT PREDICT_CLASS(fraud) AS c, COUNT(*) FROM tx
//             GROUP BY c
//
// Also works non-interactively:
//   $ echo "SELECT COUNT(*) FROM tx" | ./build/examples/sql_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "graph/model.h"
#include "serving/serving_session.h"
#include "sql/query_executor.h"
#include "workloads/datasets.h"

using namespace relserve;  // example code; library code never does this

int main() {
  ServingSession session(ServingConfig{});

  // Pre-load a demo table and model so queries work immediately.
  auto table =
      session.CreateTable("tx", workloads::FeatureTableSchema());
  if (!table.ok()) return 1;
  if (!workloads::FillFeatureTable(*table, 5000, 28, 11).ok()) return 1;
  auto model = BuildFFNN("fraud", {28, 256, 2}, 3);
  if (!model.ok() || !session.RegisterModel(std::move(*model)).ok()) {
    return 1;
  }
  std::printf(
      "relserve SQL shell — table 'tx' (5000 rows: id, features[28]) "
      "and model 'fraud' are loaded.\nStatements: SELECT / EXPLAIN "
      "SELECT / CREATE TABLE / INSERT INTO. Ctrl-D to exit.\n");

  std::string line;
  while (true) {
    std::printf("relserve> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    auto result = sql::ExecuteStatement(&session, line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->has_rows) {
      std::printf("%s", result->query.ToString(25).c_str());
    } else {
      std::printf("%s\n", result->message.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
