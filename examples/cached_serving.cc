// Inference-result caching with an SLA gate (paper Sec. 5 / 7.2.2):
// repeated, similar requests (a chatbot / recommender pattern) are
// answered from an HNSW-indexed cache of past predictions; a Monte
// Carlo estimate decides whether the accuracy cost fits the SLA.

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

using namespace relserve;  // example code; library code never does this

int main() {
  ServingSession session(ServingConfig{});

  auto model = BuildFFNN("recommender", {64, 512, 1024, 16}, 9);
  if (!model.ok() || !session.RegisterModel(std::move(*model)).ok()) {
    return 1;
  }
  if (!session.Deploy("recommender", ServingMode::kAdaptive, 4000)
           .ok()) {
    return 1;
  }

  // Clustered request stream: users repeat near-identical contexts.
  auto requests = workloads::GenClusteredData(4000, 64, 25, 0.02f, 31);
  if (!requests.ok()) return 1;

  // Serve once uncached for the baseline latency.
  Timer cold;
  auto baseline = session.PredictBatch("recommender",
                                       requests->features);
  if (!baseline.ok()) return 1;
  auto baseline_t = baseline->ToTensor(session.exec_context());
  if (!baseline_t.ok()) return 1;
  const double cold_seconds = cold.ElapsedSeconds();

  // Enable the approximate cache and warm it with the same stream.
  ApproxResultCache::Config cache_config;
  cache_config.max_distance = 0.6f;
  if (!session.EnableApproxCache("recommender", 64, cache_config)
           .ok()) {
    return 1;
  }
  auto warm = session.PredictWithCache("recommender",
                                       requests->features);
  if (!warm.ok()) return 1;

  // SLA gate: estimate cached-vs-true agreement on a sample.
  auto cache = session.GetApproxCache("recommender");
  if (!cache.ok()) return 1;
  std::vector<std::vector<float>> sample;
  for (int i = 0; i < 64; ++i) {
    const float* row = requests->features.data() + i * 64;
    sample.emplace_back(row, row + 64);
  }
  auto infer = [&](const std::vector<float>& x)
      -> Result<std::vector<float>> {
    auto t = Tensor::FromData(Shape{1, 64}, x);
    RELSERVE_RETURN_NOT_OK(t.status());
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session.PredictBatch("recommender", *t));
    RELSERVE_ASSIGN_OR_RETURN(Tensor pred,
                              out.ToTensor(session.exec_context()));
    return std::vector<float>(pred.data(),
                              pred.data() + pred.NumElements());
  };
  auto decision = MonteCarloCachePolicy(*cache, sample, infer,
                                        /*sla_min_accuracy=*/0.9);
  if (!decision.ok()) return 1;
  std::printf("SLA gate: estimated accuracy %.2f%% over %lld samples "
              "-> cache %s\n",
              100.0 * decision->estimated_accuracy,
              static_cast<long long>(decision->sample_size),
              decision->enable_cache ? "ENABLED" : "DISABLED");

  if (decision->enable_cache) {
    Timer hot;
    auto served = session.PredictWithCache("recommender",
                                           requests->features);
    if (!served.ok()) return 1;
    const double hot_seconds = hot.ElapsedSeconds();
    std::printf("uncached: %.4f s, cached: %.4f s  (%.1fx speedup, "
                "hit rate %.0f%%)\n",
                cold_seconds, hot_seconds, cold_seconds / hot_seconds,
                100.0 * (*cache)->stats().HitRate());
    std::printf("max served-vs-model diff: %.3f (bounded by the SLA "
                "policy)\n",
                static_cast<double>(baseline_t->MaxAbsDiff(*served)));
  }
  return 0;
}
