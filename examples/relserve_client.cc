// relserve_client: CLI for the relserve wire protocol.
//
//   $ ./build/examples/relserve_client [port] ping
//   $ ./build/examples/relserve_client [port] predict [rows]
//   $ ./build/examples/relserve_client [port] stats
//
// (port defaults to 7543 — pass it first when the server picked a
// different one.) `predict` ships a [rows, 28] float batch to the
// fraud-detector model the server deploys at boot and prints the
// first prediction row.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.h"
#include "tensor/tensor.h"

using relserve::Shape;
using relserve::Tensor;
using relserve::net::NetClient;

int main(int argc, char** argv) {
  int arg = 1;
  uint16_t port = 7543;
  if (arg < argc && std::atoi(argv[arg]) > 0) {
    port = static_cast<uint16_t>(std::atoi(argv[arg++]));
  }
  const std::string cmd = arg < argc ? argv[arg++] : "ping";

  auto client = NetClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (cmd == "ping") {
    if (auto s = (*client)->Ping(); !s.ok()) {
      std::fprintf(stderr, "ping: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "stats") {
    auto json = (*client)->Stats();
    if (!json.ok()) {
      std::fprintf(stderr, "stats: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cmd == "predict") {
    const int64_t rows = arg < argc ? std::atoll(argv[arg]) : 4;
    auto input = Tensor::Zeros(Shape({rows, 28}));
    if (!input.ok()) {
      std::fprintf(stderr, "alloc: %s\n",
                   input.status().ToString().c_str());
      return 1;
    }
    float* data = input->data();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < 28; ++c) {
        data[r * 28 + c] = 0.01f * static_cast<float>(r + c);
      }
    }
    auto out = (*client)->Predict("fraud-detector", *input);
    if (!out.ok()) {
      std::fprintf(stderr, "predict: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    std::printf("predictions %s; row 0 = [%.4f, %.4f]\n",
                out->shape().ToString().c_str(), out->At(0, 0),
                out->At(0, 1));
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s' "
               "(ping | predict [rows] | stats)\n", cmd.c_str());
  return 1;
}
