// Larger-than-memory inference: the paper's Table 3 scenario as a
// runnable example. A model whose first-layer operator exceeds the
// working arena is served anyway — the adaptive optimizer lowers the
// big multiplication to a join + aggregation over tensor blocks, and
// the buffer pool spills cold blocks to disk.

#include <cstdio>

#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

using namespace relserve;  // example code; library code never does this

int main() {
  ServingConfig config;
  config.working_memory_bytes = 24LL << 20;  // 24 MiB arena — tiny!
  config.memory_threshold_bytes = 16LL << 20;
  config.buffer_pool_pages = 512;  // 32 MiB pool, also undersized
  config.block_rows = 256;
  config.block_cols = 256;
  ServingSession session(config);

  // Weight 2048 x 6000 = 49 MiB: twice the whole arena.
  auto model = BuildFFNN("wide-classifier", {6000, 2048, 32}, 5);
  if (!model.ok()) return 1;
  const int64_t weight_bytes = model->TotalWeightBytes();
  if (!session.RegisterModel(std::move(*model)).ok()) return 1;

  auto table =
      session.CreateTable("events", workloads::FeatureTableSchema());
  if (!table.ok()) return 1;
  if (!workloads::FillFeatureTable(*table, 512, 6000, 2).ok()) return 1;

  std::printf("arena: %lld MiB, weights: %lld MiB, batch input: "
              "%lld MiB\n",
              static_cast<long long>(config.working_memory_bytes >> 20),
              static_cast<long long>(weight_bytes >> 20),
              static_cast<long long>((512LL * 6000 * 4) >> 20));

  // Whole-tensor (UDF-centric) deployment cannot even load the model.
  auto udf = session.Deploy("wide-classifier", ServingMode::kForceUdf,
                            512);
  std::printf("udf-centric deploy : %s\n",
              udf.ok() ? "ok (unexpected!)"
                       : udf.status().ToString().c_str());

  // Adaptive deployment lowers the oversized operator.
  auto plan = session.Deploy("wide-classifier", ServingMode::kAdaptive,
                             512);
  if (!plan.ok()) {
    std::fprintf(stderr, "adaptive deploy: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nadaptive plan:\n%s\n",
              (*plan)->ToString(**session.GetModel("wide-classifier"))
                  .c_str());

  auto out = session.Predict("wide-classifier", "events");
  if (!out.ok()) {
    std::fprintf(stderr, "predict: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  auto scores = out->ToTensor(session.exec_context());
  if (!scores.ok()) return 1;

  const BufferPoolStats pool_stats = session.catalog()->pool()->stats();
  std::printf("predictions: %s\n",
              scores->shape().ToString().c_str());
  std::printf("peak arena use     : %lld MiB (never held the whole "
              "weight)\n",
              static_cast<long long>(
                  session.working_memory()->peak_bytes() >> 20));
  std::printf("buffer pool        : %s\n",
              pool_stats.ToString().c_str());
  std::printf("spill file traffic : %lld page reads, %lld page "
              "writes\n",
              static_cast<long long>(
                  session.catalog()->pool()->disk()->num_reads()),
              static_cast<long long>(
                  session.catalog()->pool()->disk()->num_writes()));
  return 0;
}
