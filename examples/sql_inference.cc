// SQL inference queries — the paper's motivating interface: SQL
// nested with deep-learning inference, executed entirely inside the
// database.

#include <cstdio>

#include "common/random.h"
#include "graph/model.h"
#include "relational/row.h"
#include "serving/serving_session.h"
#include "sql/query_executor.h"
#include "workloads/datasets.h"

using namespace relserve;  // example code; library code never does this

int main() {
  ServingSession session(ServingConfig{});

  // A transactions table: (id, amount, features).
  auto table = session.CreateTable(
      "transactions", Schema({{"id", ValueType::kInt64},
                              {"amount", ValueType::kFloat64},
                              {"features", ValueType::kFloatVector}}));
  if (!table.ok()) return 1;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::vector<float> features(28);
    for (float& f : features) f = rng.Uniform();
    Row row({Value(int64_t{i}),
             Value(static_cast<double>(rng.Uniform(1.0f, 5000.0f))),
             Value(std::move(features))});
    std::string bytes;
    row.SerializeTo(&bytes);
    if (!(*table)->heap->Append(bytes).ok()) return 1;
  }

  // The fraud model from the paper's Table 1.
  auto model = BuildFFNN("fraud", {28, 256, 2}, 3);
  if (!model.ok() || !session.RegisterModel(std::move(*model)).ok()) {
    return 1;
  }

  const char* queries[] = {
      // Score only the large transactions, return the top rows.
      "SELECT id, amount, PREDICT(fraud) AS risk "
      "FROM transactions WHERE amount > 4000 LIMIT 5",
      // Hard classification nested under a compound predicate.
      "SELECT id, PREDICT_CLASS(fraud) AS flagged "
      "FROM transactions WHERE amount > 1000 AND amount <= 1200",
      // Group the table by the model's decision — inference feeding
      // relational aggregation in one statement.
      "SELECT PREDICT_CLASS(fraud) AS flagged, COUNT(*) AS n, "
      "AVG(amount) AS avg_amount FROM transactions GROUP BY flagged",
  };
  for (const char* query : queries) {
    std::printf("sql> %s\n", query);
    auto result = sql::ExecuteQuery(&session, query);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", result->ToString(8).c_str());
  }
  return 0;
}
