// relserve_server: the network serving front-end as a standalone
// process.
//
//   $ ./build/examples/relserve_server [port]        (default 7543)
//
// Boots a ServingSession with the paper's Fraud-FC-256 model
// (28 -> 256 -> 2) pre-registered and deployed, wraps it in the
// micro-batching RequestScheduler, and serves the relserve wire
// protocol over TCP. Predict requests from *different* connections
// coalesce into shared GEMM micro-batches. Ctrl-C drains in-flight
// requests, prints the stats JSON, and exits.
//
// Talk to it with ./build/examples/relserve_client.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "graph/model.h"
#include "net/server.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"

using relserve::BuildFFNN;
using relserve::RequestScheduler;
using relserve::SchedulerConfig;
using relserve::ServingConfig;
using relserve::ServingMode;
using relserve::ServingSession;
using relserve::net::NetServer;
using relserve::net::NetServerConfig;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 7543;

  ServingSession session(ServingConfig{});
  auto model = BuildFFNN("fraud-detector", {28, 256, 2}, /*seed=*/7);
  if (!model.ok() || !session.RegisterModel(std::move(*model)).ok()) {
    std::fprintf(stderr, "model registration failed\n");
    return 1;
  }
  if (auto plan = session.Deploy("fraud-detector",
                                 ServingMode::kAdaptive,
                                 /*batch_size=*/256);
      !plan.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  SchedulerConfig sched_config;
  sched_config.max_batch_rows = 256;
  sched_config.max_delay_us = 200;
  RequestScheduler scheduler(&session, sched_config);

  NetServerConfig net_config;
  net_config.port = port;
  auto server = NetServer::Start(&session, &scheduler, net_config);
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("relserve_server listening on 127.0.0.1:%u\n",
              (*server)->port());
  std::printf("model 'fraud-detector' deployed (28 -> 256 -> 2); "
              "Ctrl-C to drain and exit\n");

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\ndraining...\n%s\n", (*server)->StatsJson().c_str());
  (*server)->Shutdown();
  scheduler.Shutdown();
  return 0;
}
