// In-database training (paper Sec. 6.1 "Extension to Deep Learning
// Training"): the same UDF kernels that serve inference run the
// backward pass, so a model can be fitted to RDBMS-resident data and
// then served — all without the data leaving the database.

#include <cstdio>
#include <vector>

#include "engine/trainer.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

using namespace relserve;  // example code; library code never does this

int main() {
  ServingSession session(ServingConfig{});

  // Labeled training data: 4 latent classes in 32 dims.
  auto data = workloads::GenClusteredData(2000, 32, 4, 0.05f, 17);
  if (!data.ok()) return 1;

  auto model = BuildFFNN("classifier", {32, 64, 4}, 5);
  if (!model.ok()) return 1;
  ExecContext* ctx = session.exec_context();

  auto acc0 = SgdTrainer::Evaluate(*model, data->features,
                                   data->labels, ctx);
  if (!acc0.ok()) return 1;
  std::printf("accuracy before training : %5.1f%% (random init)\n",
              100.0 * *acc0);

  // Fit with plain SGD, mini-batches of 128.
  auto loss = SgdTrainer::Fit(&*model, data->features, data->labels,
                              /*learning_rate=*/0.5f, /*epochs=*/25,
                              /*batch_size=*/128, ctx);
  if (!loss.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 loss.status().ToString().c_str());
    return 1;
  }
  auto acc1 = SgdTrainer::Evaluate(*model, data->features,
                                   data->labels, ctx);
  if (!acc1.ok()) return 1;
  std::printf("accuracy after training  : %5.1f%% (final epoch loss "
              "%.4f)\n",
              100.0 * *acc1, *loss);

  // The trained model registers and serves like any other.
  if (!session.RegisterModel(std::move(*model)).ok()) return 1;
  if (!session.Deploy("classifier", ServingMode::kAdaptive, 100).ok()) {
    return 1;
  }
  auto probe = workloads::GenClusteredData(100, 32, 4, 0.05f, 18,
                                           nullptr, /*centers_seed=*/17);
  if (!probe.ok()) return 1;
  auto out = session.PredictBatch("classifier", probe->features);
  if (!out.ok()) return 1;
  auto scores = out->ToTensor(ctx);
  if (!scores.ok()) return 1;
  std::printf("served %lld fresh rows through the trained model\n",
              static_cast<long long>(scores->shape().dim(0)));
  return 0;
}
