#include "engine/block_ops.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "kernels/kernels.h"

namespace relserve {
namespace blockops {

namespace {

// (row_block, col_block) -> entry index for O(1) join probes.
using BlockIndex = std::unordered_map<int64_t, int64_t>;

BlockIndex IndexEntries(const BlockStore& store) {
  const int64_t num_cb = store.geometry().NumColBlocks();
  BlockIndex index;
  index.reserve(store.entries().size());
  for (int64_t i = 0; i < static_cast<int64_t>(store.entries().size());
       ++i) {
    const BlockStore::BlockEntry& e = store.entries()[i];
    index[e.row_block * num_cb + e.col_block] = i;
  }
  return index;
}

Result<std::unique_ptr<BlockStore>> NewStore(ExecContext* ctx,
                                             BlockedShape geometry) {
  if (ctx->buffer_pool == nullptr) {
    return Status::InvalidArgument(
        "relation-centric execution needs a buffer pool");
  }
  return std::make_unique<BlockStore>(ctx->buffer_pool, geometry);
}

// Runs body(i) for each i in [0, n) as ParallelFor morsels (serial
// when the pool is absent or there is a single task). On error the
// remaining morsels are skipped and one of the failing statuses is
// returned; blocks already written to the output store are recycled
// with it.
Status ParallelBlockTasks(ThreadPool* pool, int64_t n,
                          const std::function<Status(int64_t)>& body) {
  if (pool == nullptr || n <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      RELSERVE_RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }
  std::mutex mu;
  Status first;
  std::atomic<bool> failed{false};
  pool->ParallelFor(
      0, n,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          if (failed.load(std::memory_order_relaxed)) return;
          Status s = body(i);
          if (!s.ok()) {
            failed.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            if (first.ok()) first = std::move(s);
          }
        }
      },
      /*grain=*/1);
  return first;
}

}  // namespace

Result<std::unique_ptr<BlockStore>> ChunkMatrix(const Tensor& m,
                                                ExecContext* ctx,
                                                bool share_weights) {
  if (m.shape().ndim() != 2) {
    return Status::InvalidArgument("ChunkMatrix expects a matrix");
  }
  BlockedShape geometry{m.shape().dim(0), m.shape().dim(1),
                        ctx->block_rows, ctx->block_cols};
  std::unique_ptr<BlockStore> store;
  if (share_weights && ctx->block_index != nullptr) {
    store = std::make_unique<BlockStore>(
        ctx->block_index, geometry, ctx->dedup_tolerance);
  } else {
    RELSERVE_ASSIGN_OR_RETURN(store, NewStore(ctx, geometry));
  }
  RELSERVE_RETURN_NOT_OK(store->PutMatrix(m, ctx->tracker));
  ctx->stats.chunkings += 1;
  ctx->stats.blocks_written +=
      static_cast<int64_t>(store->entries().size());
  return store;
}

Result<Tensor> Assemble(const BlockStore& store, ExecContext* ctx) {
  ctx->stats.assembles += 1;
  ctx->stats.blocks_read +=
      static_cast<int64_t>(store.entries().size());
  return store.ToMatrix(ctx->tracker);
}

Result<std::unique_ptr<BlockStore>> BlockMatMul(
    const BlockStore& x, const BlockStore& w, ExecContext* ctx,
    const BlockFn* epilogue) {
  const BlockedShape& xg = x.geometry();
  const BlockedShape& wg = w.geometry();
  if (xg.cols != wg.cols) {
    return Status::InvalidArgument(
        "BlockMatMul inner dimension mismatch: x cols " +
        std::to_string(xg.cols) + " vs w cols " +
        std::to_string(wg.cols));
  }
  if (xg.block_cols != wg.block_cols) {
    return Status::InvalidArgument(
        "BlockMatMul inner block width mismatch");
  }
  BlockedShape cg{xg.rows, wg.rows, xg.block_rows, wg.block_rows};
  RELSERVE_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> c,
                            NewStore(ctx, cg));

  const BlockIndex x_index = IndexEntries(x);
  const BlockIndex w_index = IndexEntries(w);
  const int64_t inner_blocks = xg.NumColBlocks();
  const int64_t x_num_cb = inner_blocks;
  const int64_t w_num_cb = wg.NumColBlocks();
  const int64_t num_rb = xg.NumRowBlocks();
  const int64_t num_jb = wg.NumRowBlocks();
  const int64_t out_blocks = num_rb * num_jb;

  // Morsel = one output block (rb, jb): the probe side of the join.
  // Each morsel owns its accumulator and aggregates partials over kb
  // in ascending order, so float results are bit-identical to the
  // serial plan no matter how morsels land on threads. Intra-GEMM
  // parallelism is only worth adding when there are too few output
  // blocks to occupy the pool; it partitions the packed macro-tiles
  // (row ranges of C), which also preserves each element's
  // accumulation order.
  ThreadPool* inner_pool =
      (ctx->pool != nullptr && out_blocks < ctx->pool->num_threads())
          ? ctx->pool
          : nullptr;
  auto compute_block = [&](int64_t t) -> Status {
    const int64_t rb = t / num_jb;
    const int64_t jb = t % num_jb;
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor acc,
        Tensor::Zeros(Shape{cg.RowsInBlock(rb), cg.ColsInBlock(jb)},
                      ctx->tracker));
    // The join on the inner block index kb, aggregating partial
    // products into `acc`.
    for (int64_t kb = 0; kb < inner_blocks; ++kb) {
      const auto x_it = x_index.find(rb * x_num_cb + kb);
      const auto w_it = w_index.find(jb * w_num_cb + kb);
      if (x_it == x_index.end() || w_it == w_index.end()) {
        continue;  // absent block == all-zero contribution
      }
      int64_t prefetch_hits = 0;
      RELSERVE_ASSIGN_OR_RETURN(
          TensorBlock xb, x.Get(x.entries()[x_it->second], ctx->tracker,
                                &prefetch_hits));
      RELSERVE_ASSIGN_OR_RETURN(
          TensorBlock wb, w.Get(w.entries()[w_it->second], ctx->tracker,
                                &prefetch_hits));
      ctx->stats.blocks_read += 2;
      ctx->stats.prefetch_useful += prefetch_hits;
      // Overlap I/O with compute: schedule the next join probe's
      // pages while this partial product runs on the CPU.
      if (kb + 1 < inner_blocks) {
        const auto xn = x_index.find(rb * x_num_cb + kb + 1);
        const auto wn = w_index.find(jb * w_num_cb + kb + 1);
        int64_t issued = 0;
        if (xn != x_index.end()) {
          issued += x.PrefetchEntry(x.entries()[xn->second]);
        }
        if (wn != w_index.end()) {
          issued += w.PrefetchEntry(w.entries()[wn->second]);
        }
        ctx->stats.prefetch_issued += issued;
      }
      RELSERVE_RETURN_NOT_OK(kernels::GemmInto(
          xb.data, wb.data, /*transpose_b=*/true,
          /*accumulate=*/true, &acc, inner_pool));
    }
    if (epilogue != nullptr) {
      RELSERVE_RETURN_NOT_OK((*epilogue)(rb, jb, &acc));
    }
    RELSERVE_RETURN_NOT_OK(c->Put(TensorBlock{rb, jb, std::move(acc)}));
    ctx->stats.blocks_written += 1;
    return Status::OK();
  };
  RELSERVE_RETURN_NOT_OK(
      ParallelBlockTasks(ctx->pool, out_blocks, compute_block));
  return c;
}

Result<std::unique_ptr<BlockStore>> MapBlocks(
    const BlockStore& input,
    const std::function<Status(int64_t, int64_t, Tensor*)>& fn,
    ExecContext* ctx) {
  RELSERVE_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> out,
                            NewStore(ctx, input.geometry()));
  const int64_t n = static_cast<int64_t>(input.entries().size());
  RELSERVE_RETURN_NOT_OK(ParallelBlockTasks(
      ctx->pool, n, [&](int64_t i) -> Status {
        const BlockStore::BlockEntry& entry = input.entries()[i];
        int64_t prefetch_hits = 0;
        RELSERVE_ASSIGN_OR_RETURN(
            TensorBlock block,
            input.Get(entry, ctx->tracker, &prefetch_hits));
        ctx->stats.blocks_read += 1;
        ctx->stats.prefetch_useful += prefetch_hits;
        // Pipeline the scan: the next entry's pages load while this
        // block's transform computes.
        if (i + 1 < n) {
          ctx->stats.prefetch_issued +=
              input.PrefetchEntry(input.entries()[i + 1]);
        }
        RELSERVE_RETURN_NOT_OK(
            fn(block.row_block, block.col_block, &block.data));
        RELSERVE_RETURN_NOT_OK(out->Put(block));
        ctx->stats.blocks_written += 1;
        return Status::OK();
      }));
  return out;
}

Result<std::unique_ptr<BlockStore>> BlockBiasAdd(const BlockStore& input,
                                                 const Tensor& bias,
                                                 ExecContext* ctx) {
  if (bias.shape().ndim() != 1 ||
      bias.shape().dim(0) != input.geometry().cols) {
    return Status::InvalidArgument("BlockBiasAdd bias width mismatch");
  }
  const int64_t block_cols = input.geometry().block_cols;
  return MapBlocks(
      input,
      [&bias, block_cols](int64_t, int64_t cb, Tensor* payload) {
        const int64_t col0 = cb * block_cols;
        const int64_t width = payload->shape().dim(1);
        // Slice of the bias covering this column block.
        RELSERVE_ASSIGN_OR_RETURN(Tensor slice,
                                  Tensor::Create(Shape{width}, nullptr));
        std::memcpy(slice.data(), bias.data() + col0,
                    width * sizeof(float));
        return kernels::BiasAddInPlace(payload, slice);
      },
      ctx);
}

Result<std::unique_ptr<BlockStore>> BlockRelu(const BlockStore& input,
                                              ExecContext* ctx) {
  return MapBlocks(
      input,
      [](int64_t, int64_t, Tensor* payload) {
        kernels::ReluInPlace(payload);
        return Status::OK();
      },
      ctx);
}

Result<std::unique_ptr<BlockStore>> BlockSoftmaxRows(
    const BlockStore& input, ExecContext* ctx) {
  const BlockedShape& g = input.geometry();
  RELSERVE_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> out,
                            NewStore(ctx, g));
  const BlockIndex index = IndexEntries(input);
  const int64_t num_cb = g.NumColBlocks();
  // Morsel = one row-block strip: softmax normalizes within a row, so
  // strips are independent.
  RELSERVE_RETURN_NOT_OK(ParallelBlockTasks(
      ctx->pool, g.NumRowBlocks(), [&](int64_t rb) -> Status {
    const int64_t br = g.RowsInBlock(rb);
    // Assemble one row strip: needs whole rows for the normalization.
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor strip, Tensor::Zeros(Shape{br, g.cols}, ctx->tracker));
    for (int64_t cb = 0; cb < num_cb; ++cb) {
      const auto it = index.find(rb * num_cb + cb);
      if (it == index.end()) continue;
      int64_t prefetch_hits = 0;
      RELSERVE_ASSIGN_OR_RETURN(
          TensorBlock block,
          input.Get(input.entries()[it->second], ctx->tracker,
                    &prefetch_hits));
      ctx->stats.blocks_read += 1;
      ctx->stats.prefetch_useful += prefetch_hits;
      if (cb + 1 < num_cb) {
        const auto next = index.find(rb * num_cb + cb + 1);
        if (next != index.end()) {
          ctx->stats.prefetch_issued +=
              input.PrefetchEntry(input.entries()[next->second]);
        }
      }
      const int64_t col0 = cb * g.block_cols;
      const int64_t bc = block.data.shape().dim(1);
      for (int64_t r = 0; r < br; ++r) {
        std::memcpy(strip.data() + r * g.cols + col0,
                    block.data.data() + r * bc, bc * sizeof(float));
      }
    }
    RELSERVE_RETURN_NOT_OK(kernels::SoftmaxRowsInPlace(&strip));
    for (int64_t cb = 0; cb < num_cb; ++cb) {
      const int64_t bc = g.ColsInBlock(cb);
      const int64_t col0 = cb * g.block_cols;
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor payload, Tensor::Create(Shape{br, bc}, ctx->tracker));
      for (int64_t r = 0; r < br; ++r) {
        std::memcpy(payload.data() + r * bc,
                    strip.data() + r * g.cols + col0,
                    bc * sizeof(float));
      }
      RELSERVE_RETURN_NOT_OK(
          out->Put(TensorBlock{rb, cb, std::move(payload)}));
      ctx->stats.blocks_written += 1;
    }
    return Status::OK();
  }));
  return out;
}

Result<BlockedRowAppender> BlockedRowAppender::Create(int64_t num_rows,
                                                      int64_t row_width,
                                                      ExecContext* ctx) {
  BlockedRowAppender appender;
  appender.ctx_ = ctx;
  appender.num_rows_ = num_rows;
  appender.row_width_ = row_width;
  // Keep each row-strip block the same element count as a regular
  // block so working-set accounting is uniform.
  appender.block_width_ =
      std::min(row_width, ctx->block_rows * ctx->block_cols);
  BlockedShape geometry{num_rows, row_width, 1, appender.block_width_};
  RELSERVE_ASSIGN_OR_RETURN(appender.store_, NewStore(ctx, geometry));
  return appender;
}

Status BlockedRowAppender::Append(const float* values, int64_t n) {
  while (n > 0) {
    if (current_col_ >= row_width_) {
      return Status::InvalidArgument("row overflow in appender");
    }
    const int64_t cb = current_col_ / block_width_;
    const int64_t block_cols =
        store_->geometry().ColsInBlock(cb);
    const int64_t offset_in_block = current_col_ % block_width_;
    if (!pending_.is_valid()) {
      RELSERVE_ASSIGN_OR_RETURN(
          pending_, Tensor::Zeros(Shape{1, block_cols}, ctx_->tracker));
    }
    const int64_t take = std::min(n, block_cols - offset_in_block);
    std::memcpy(pending_.data() + offset_in_block, values,
                take * sizeof(float));
    values += take;
    n -= take;
    current_col_ += take;
    if (current_col_ % block_width_ == 0 ||
        current_col_ == row_width_) {
      RELSERVE_RETURN_NOT_OK(
          store_->Put(TensorBlock{current_row_, cb, std::move(pending_)}));
      ctx_->stats.blocks_written += 1;
      pending_ = Tensor();
    }
  }
  return Status::OK();
}

Status BlockedRowAppender::EndRow() {
  if (current_col_ != row_width_) {
    return Status::InvalidArgument(
        "EndRow with " + std::to_string(current_col_) + "/" +
        std::to_string(row_width_) + " values written");
  }
  current_col_ = 0;
  ++current_row_;
  return Status::OK();
}

Result<std::unique_ptr<BlockStore>> BlockedRowAppender::Finish() {
  if (current_row_ != num_rows_) {
    return Status::InvalidArgument(
        "Finish with " + std::to_string(current_row_) + "/" +
        std::to_string(num_rows_) + " rows written");
  }
  return std::move(store_);
}

Result<MatrixStreamWriter> MatrixStreamWriter::Create(int64_t rows,
                                                      int64_t cols,
                                                      ExecContext* ctx) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("empty matrix stream");
  }
  MatrixStreamWriter writer;
  writer.ctx_ = ctx;
  writer.rows_ = rows;
  writer.cols_ = cols;
  const int64_t block_elems = ctx->block_rows * ctx->block_cols;
  writer.strip_rows_ = std::max<int64_t>(
      1, std::min(rows, block_elems / std::max<int64_t>(1, cols)));
  BlockedShape geometry{rows, cols, writer.strip_rows_,
                        ctx->block_cols};
  RELSERVE_ASSIGN_OR_RETURN(writer.store_, NewStore(ctx, geometry));
  RELSERVE_ASSIGN_OR_RETURN(
      writer.strip_,
      Tensor::Create(Shape{writer.strip_rows_, cols}, ctx->tracker));
  return writer;
}

Status MatrixStreamWriter::FlushStrip() {
  if (in_strip_ == 0) return Status::OK();
  const int64_t rb = (next_row_ - in_strip_) / strip_rows_;
  const BlockedShape& g = store_->geometry();
  for (int64_t cb = 0; cb < g.NumColBlocks(); ++cb) {
    const int64_t bc = g.ColsInBlock(cb);
    const int64_t col0 = cb * g.block_cols;
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor payload,
        Tensor::Create(Shape{in_strip_, bc}, ctx_->tracker));
    for (int64_t r = 0; r < in_strip_; ++r) {
      std::memcpy(payload.data() + r * bc,
                  strip_.data() + r * cols_ + col0, bc * sizeof(float));
    }
    RELSERVE_RETURN_NOT_OK(
        store_->Put(TensorBlock{rb, cb, std::move(payload)}));
    ctx_->stats.blocks_written += 1;
  }
  in_strip_ = 0;
  return Status::OK();
}

Status MatrixStreamWriter::AppendRow(const float* row) {
  if (next_row_ >= rows_) {
    return Status::InvalidArgument("matrix stream overflow");
  }
  std::memcpy(strip_.data() + in_strip_ * cols_, row,
              cols_ * sizeof(float));
  ++in_strip_;
  ++next_row_;
  if (in_strip_ == strip_rows_) {
    RELSERVE_RETURN_NOT_OK(FlushStrip());
  }
  return Status::OK();
}

Result<std::unique_ptr<BlockStore>> MatrixStreamWriter::Finish() {
  if (next_row_ != rows_) {
    return Status::InvalidArgument(
        "matrix stream finished with " + std::to_string(next_row_) +
        "/" + std::to_string(rows_) + " rows");
  }
  RELSERVE_RETURN_NOT_OK(FlushStrip());
  return std::move(store_);
}

Result<Tensor> LoadRow(const BlockStore& store, int64_t row,
                       ExecContext* ctx) {
  const BlockedShape& g = store.geometry();
  if (row < 0 || row >= g.rows) {
    return Status::InvalidArgument("row out of range");
  }
  RELSERVE_ASSIGN_OR_RETURN(Tensor out,
                            Tensor::Zeros(Shape{g.cols}, ctx->tracker));
  const BlockIndex index = IndexEntries(store);
  const int64_t rb = row / g.block_rows;
  const int64_t offset = row % g.block_rows;
  const int64_t num_cb = g.NumColBlocks();
  for (int64_t cb = 0; cb < num_cb; ++cb) {
    const auto it = index.find(rb * num_cb + cb);
    if (it == index.end()) continue;
    RELSERVE_ASSIGN_OR_RETURN(
        TensorBlock block,
        store.Get(store.entries()[it->second], ctx->tracker));
    ctx->stats.blocks_read += 1;
    const int64_t bc = block.data.shape().dim(1);
    std::memcpy(out.data() + cb * g.block_cols,
                block.data.data() + offset * bc, bc * sizeof(float));
  }
  return out;
}

}  // namespace blockops
}  // namespace relserve
