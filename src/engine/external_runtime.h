// ExternalRuntime: the simulated decoupled DL framework of the
// DL-centric architecture (stands in for the paper's TensorFlow /
// PyTorch baselines).
//
// It is a separate "system" in the precise senses the evaluation
// cares about:
//  - it only accepts requests over the Connector wire format, so
//    every query pays encode + transmit + decode on both directions;
//  - it executes whole-tensor (no blocking, no spilling) against its
//    own bounded memory arena, so an operator that does not fit
//    returns OutOfMemory;
//  - registered models are resident in its arena, like a framework
//    that has loaded the model onto the device.
// The compute kernels are the same ones the in-database executors
// use, so latency differences between architectures reflect data
// movement and memory management, not kernel quality.

#ifndef RELSERVE_ENGINE_EXTERNAL_RUNTIME_H_
#define RELSERVE_ENGINE_EXTERNAL_RUNTIME_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/prepared_model.h"
#include "graph/model.h"
#include "resource/memory_tracker.h"
#include "resource/thread_pool.h"

namespace relserve {

class ExternalRuntime {
 public:
  ExternalRuntime(std::string name, int64_t memory_limit_bytes,
                  ThreadPool* pool = nullptr);

  ExternalRuntime(const ExternalRuntime&) = delete;
  ExternalRuntime& operator=(const ExternalRuntime&) = delete;

  // Copies the model's weights into the runtime arena (may OOM).
  // `model` must outlive the runtime.
  Status RegisterModel(const Model* model);

  // One inference round trip: decode the feature stream, run the whole
  // model on whole tensors, encode the prediction tensor.
  // `request_bytes` must already be on the runtime side (see
  // Connector::Transmit).
  Result<std::string> Infer(const std::string& model_name,
                            const std::string& request_bytes);

  MemoryTracker* tracker() { return &tracker_; }

  struct Stats {
    int64_t requests = 0;
    int64_t bytes_received = 0;
    int64_t bytes_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct LoadedModel {
    const Model* model = nullptr;
    std::unique_ptr<PreparedModel> prepared;
  };

  MemoryTracker tracker_;
  ThreadPool* pool_;
  // Whole-tensor execution context over the runtime arena (no buffer
  // pool: a DL framework has no disk spilling).
  ExecContext ctx_;
  std::map<std::string, LoadedModel> models_;
  Stats stats_;
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_EXTERNAL_RUNTIME_H_
