// SgdTrainer: the paper's Sec. 6.1 extension — training inside the
// RDBMS under the UDF-centric architecture.
//
// For an FFNN chain (Input, then repeated MatMul/BiasAdd/Relu, ending
// MatMul/BiasAdd/Softmax) the trainer runs a forward pass that retains
// activations, computes softmax + cross-entropy gradients, and
// backpropagates with the same GEMM kernels the inference UDFs use —
// the backward operators are "a set of separated fine-grained UDFs
// corresponding to each of the forward UDFs", exactly the structure
// the paper sketches. Weight updates are plain SGD, in place.

#ifndef RELSERVE_ENGINE_TRAINER_H_
#define RELSERVE_ENGINE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "graph/model.h"

namespace relserve {

class SgdTrainer {
 public:
  // True iff the model is a trainable FFNN chain as described above.
  static bool IsTrainable(const Model& model);

  // One SGD step on (x [batch, features], labels [batch]); mutates the
  // model's weights in place. Returns the mean cross-entropy loss
  // *before* the update. Allocation is charged to ctx->tracker.
  static Result<double> TrainStep(Model* model, const Tensor& x,
                                  const std::vector<int64_t>& labels,
                                  float learning_rate,
                                  ExecContext* ctx);

  // Runs `epochs` full passes in `batch_size` chunks; returns the mean
  // loss of the final epoch.
  static Result<double> Fit(Model* model, const Tensor& x,
                            const std::vector<int64_t>& labels,
                            float learning_rate, int epochs,
                            int64_t batch_size, ExecContext* ctx);

  // Classification accuracy of the model on (x, labels) in [0, 1].
  static Result<double> Evaluate(const Model& model, const Tensor& x,
                                 const std::vector<int64_t>& labels,
                                 ExecContext* ctx);
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_TRAINER_H_
