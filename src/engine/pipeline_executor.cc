#include "engine/pipeline_executor.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "kernels/kernels.h"
#include "resource/bounded_queue.h"

namespace relserve {

namespace {

struct Chunk {
  int64_t row_offset = 0;
  Tensor data;  // [rows, sample dims of the producing node]
};

using ChunkQueue = BoundedQueue<Chunk>;

// First error wins; later errors are dropped.
class ErrorSlot {
 public:
  void Set(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok()) first_ = std::move(status);
  }
  Status Get() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  std::mutex mu_;
  Status first_;
};

// Applies one operator to a micro-batch (whole-tensor, in place where
// the op allows). `rows` is the chunk's batch dimension. `pool` adds
// intra-chunk parallelism to the heavy kernels; null keeps the stage
// serial.
Result<Tensor> ApplyNode(const Model& model,
                         const PreparedModel& prepared, const Node& node,
                         Tensor chunk, int64_t rows,
                         MemoryTracker* tracker, ThreadPool* pool) {
  // Per-chunk shapes: cheap (O(nodes)) and exact for ragged tails.
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                            model.InferShapes(rows));
  RELSERVE_ASSIGN_OR_RETURN(Tensor in,
                            chunk.Reshape(shapes[node.input]));
  switch (node.kind) {
    case OpKind::kInput:
      return Status::Internal("input node has no stage");
    case OpKind::kMatMul: {
      RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                prepared.ResidentWeight(node.weight_name));
      return kernels::MatMul(in, *w, /*transpose_b=*/true, tracker,
                             pool);
    }
    case OpKind::kBiasAdd: {
      RELSERVE_ASSIGN_OR_RETURN(const Tensor* bias,
                                prepared.ResidentWeight(node.weight_name));
      RELSERVE_RETURN_NOT_OK(kernels::BiasAddInPlace(&in, *bias));
      return in;
    }
    case OpKind::kRelu:
      kernels::ReluInPlace(&in);
      return in;
    case OpKind::kSoftmax:
      RELSERVE_RETURN_NOT_OK(kernels::SoftmaxRowsInPlace(&in));
      return in;
    case OpKind::kConv2D: {
      RELSERVE_ASSIGN_OR_RETURN(const Tensor* kernel,
                                prepared.ResidentWeight(node.weight_name));
      return kernels::Conv2D(in, *kernel, node.stride, tracker, pool);
    }
    case OpKind::kMaxPool:
      return kernels::MaxPool2x2(in, tracker);
    case OpKind::kFlatten:
      return in.Reshape(shapes[node.id]);
  }
  return Status::Internal("unhandled op kind");
}

}  // namespace

Result<Tensor> PipelineExecutor::Run(const PreparedModel& prepared,
                                     const Tensor& input,
                                     ExecContext* ctx,
                                     PipelineConfig config) {
  const Model& model = prepared.model();
  if (input.shape().ndim() < 1) {
    return Status::InvalidArgument("input must have a batch dimension");
  }
  if (config.micro_batch_rows <= 0 || config.queue_capacity <= 0) {
    return Status::InvalidArgument("bad pipeline configuration");
  }
  for (const NodeDecision& d : prepared.plan().decisions) {
    if (d.repr != Repr::kUdf) {
      return Status::InvalidArgument(
          "pipeline stages execute whole micro-batches; prepare the "
          "model with the UDF representation");
    }
  }
  const int64_t batch = input.shape().dim(0);
  const int64_t sample_width = input.NumElements() / batch;
  const int num_stages = static_cast<int>(model.nodes().size()) - 1;
  if (num_stages < 1) {
    return Status::InvalidArgument("model has no operators");
  }
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> out_shapes,
                            model.InferShapes(batch));
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor output,
      Tensor::Create(out_shapes[model.output_node()], ctx->tracker));
  const int64_t out_width = output.NumElements() / batch;

  // Route kernel calls through the shared pool only when the pipeline
  // itself leaves pool workers idle (fewer stages than threads);
  // otherwise inter-stage parallelism already saturates the pool and
  // intra-chunk morsels would only add dispatch overhead. The packed
  // GEMM layer forks one morsel per mc-row macro-tile, so a chunk
  // only fans out when micro_batch_rows spans several tiles —
  // sub-tile chunks run inline on the stage thread regardless of this
  // routing. ParallelFor task groups are per-call, so concurrent
  // stages sharing the pool stay isolated.
  ThreadPool* stage_pool = nullptr;
  if (ctx->pool != nullptr &&
      num_stages < ctx->pool->num_threads()) {
    stage_pool = ctx->pool;
  }

  // One queue feeding each stage plus one carrying the final output.
  std::vector<std::unique_ptr<ChunkQueue>> queues;
  queues.reserve(num_stages + 1);
  for (int i = 0; i <= num_stages; ++i) {
    queues.push_back(std::make_unique<ChunkQueue>(
        static_cast<size_t>(config.queue_capacity)));
  }
  ErrorSlot error;
  auto abort_all = [&queues]() {
    for (auto& q : queues) q->Close();
  };

  std::vector<std::thread> workers;
  workers.reserve(num_stages + 1);

  // Producer: slices the input into micro-batches.
  workers.emplace_back([&, batch, sample_width]() {
    for (int64_t row = 0; row < batch;
         row += config.micro_batch_rows) {
      const int64_t rows =
          std::min(config.micro_batch_rows, batch - row);
      auto chunk = Tensor::Create(Shape{rows, sample_width},
                                  ctx->tracker);
      if (!chunk.ok()) {
        error.Set(chunk.status());
        abort_all();
        return;
      }
      std::memcpy(chunk->data(),
                  input.data() + row * sample_width,
                  rows * sample_width * sizeof(float));
      if (!queues[0]->Push(Chunk{row, std::move(*chunk)})) return;
    }
    queues[0]->Close();
  });

  // One worker per operator stage.
  for (int stage = 0; stage < num_stages; ++stage) {
    workers.emplace_back([&, stage]() {
      const Node& node = model.node(stage + 1);
      while (true) {
        std::optional<Chunk> chunk = queues[stage]->Pop();
        if (!chunk.has_value()) break;  // upstream done or aborted
        const int64_t rows = chunk->data.shape().dim(0);
        Result<Tensor> out =
            ApplyNode(model, prepared, node, std::move(chunk->data),
                      rows, ctx->tracker, stage_pool);
        if (!out.ok()) {
          error.Set(out.status());
          abort_all();
          return;
        }
        if (!queues[stage + 1]->Push(
                Chunk{chunk->row_offset, std::move(*out)})) {
          return;
        }
      }
      queues[stage + 1]->Close();
    });
  }

  // Collector (this thread): scatter finished chunks into the output.
  while (true) {
    std::optional<Chunk> chunk = queues[num_stages]->Pop();
    if (!chunk.has_value()) break;
    const int64_t rows = chunk->data.NumElements() / out_width;
    std::memcpy(output.data() + chunk->row_offset * out_width,
                chunk->data.data(),
                rows * out_width * sizeof(float));
  }
  for (std::thread& w : workers) w.join();

  RELSERVE_RETURN_NOT_OK(error.Get());
  return output;
}

}  // namespace relserve
