#include "engine/hybrid_executor.h"

#include <algorithm>

#include "engine/block_ops.h"
#include "kernels/kernels.h"

namespace relserve {

namespace {

// The executor's rolling activation: exactly one of tensor/store set.
struct Activation {
  Tensor tensor;
  std::unique_ptr<BlockStore> store;
  // Whether `tensor` is writable (false while it aliases the caller's
  // input buffer).
  bool owned = false;

  bool blocked() const { return store != nullptr; }
};

// Blocked -> whole (or reshape a whole tensor to the expected shape).
Status EnsureWhole(Activation* act, const Shape& expected,
                   ExecContext* ctx) {
  if (act->blocked()) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor assembled,
                              blockops::Assemble(*act->store, ctx));
    RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                              assembled.Reshape(expected));
    act->store.reset();
    act->owned = true;
    return Status::OK();
  }
  if (act->tensor.shape() != expected) {
    RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                              act->tensor.Reshape(expected));
  }
  return Status::OK();
}

// Whole -> blocked matrix [batch, width].
Status EnsureBlocked(Activation* act, int64_t batch, ExecContext* ctx) {
  if (act->blocked()) return Status::OK();
  const int64_t width = act->tensor.NumElements() / batch;
  RELSERVE_ASSIGN_OR_RETURN(Tensor flat,
                            act->tensor.Reshape(Shape{batch, width}));
  RELSERVE_ASSIGN_OR_RETURN(act->store,
                            blockops::ChunkMatrix(flat, ctx));
  act->tensor = Tensor();
  act->owned = false;
  return Status::OK();
}

// Makes the whole tensor writable for in-place ops.
Status EnsureOwned(Activation* act, ExecContext* ctx) {
  if (act->owned) return Status::OK();
  RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                            act->tensor.Clone(ctx->tracker));
  act->owned = true;
  return Status::OK();
}

// Relation-centric convolution: streams each image through the
// im2col ("spatial rewriting") relation and a broadcast join with the
// kernel relation, appending output feature-map rows into the next
// activation relation. Working set: one image + one im2col block +
// one output strip.
Status RelationalConv(const Node& node, const PreparedModel& prepared,
                      const Shape& in_shape, const Shape& out_shape,
                      Activation* act, ExecContext* ctx) {
  RELSERVE_ASSIGN_OR_RETURN(const Tensor* kernel,
                            prepared.ResidentWeight(node.weight_name));
  const int64_t batch = in_shape.dim(0);
  const int64_t h = in_shape.dim(1);
  const int64_t w = in_shape.dim(2);
  const int64_t c = in_shape.dim(3);
  const int64_t out_c = kernel->shape().dim(0);
  const int64_t kh = kernel->shape().dim(1);
  const int64_t kw = kernel->shape().dim(2);
  const int64_t patch = kh * kw * c;
  const int64_t out_pixels = out_shape.dim(1) * out_shape.dim(2);
  RELSERVE_ASSIGN_OR_RETURN(Tensor kernel_mat,
                            kernel->Reshape(Shape{out_c, patch}));

  // Pixel rows per chunk, sized so both the im2col block and the
  // output strip stay near one nominal block.
  const int64_t block_elems = ctx->block_rows * ctx->block_cols;
  const int64_t rows_per_chunk = std::max<int64_t>(
      1, block_elems / std::max<int64_t>(patch, out_c));

  RELSERVE_ASSIGN_OR_RETURN(
      blockops::BlockedRowAppender appender,
      blockops::BlockedRowAppender::Create(batch, out_pixels * out_c,
                                           ctx));
  for (int64_t img = 0; img < batch; ++img) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor row,
                              blockops::LoadRow(*act->store, img, ctx));
    RELSERVE_ASSIGN_OR_RETURN(Tensor image,
                              row.Reshape(Shape{h, w, c}));
    for (int64_t p0 = 0; p0 < out_pixels; p0 += rows_per_chunk) {
      const int64_t p1 = std::min(out_pixels, p0 + rows_per_chunk);
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor cols,
          Tensor::Create(Shape{p1 - p0, patch}, ctx->tracker));
      RELSERVE_RETURN_NOT_OK(
          kernels::Im2ColRowsInto(image, kh, kw, node.stride, p0, p1,
                                  &cols));
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor strip,
          kernels::MatMul(cols, kernel_mat, /*transpose_b=*/true,
                          ctx->tracker, ctx->pool));
      RELSERVE_RETURN_NOT_OK(
          appender.Append(strip.data(), strip.NumElements()));
    }
    RELSERVE_RETURN_NOT_OK(appender.EndRow());
  }
  RELSERVE_ASSIGN_OR_RETURN(act->store, appender.Finish());
  act->tensor = Tensor();
  act->owned = false;
  return Status::OK();
}

}  // namespace

Result<Tensor> ExecOutput::ToTensor(ExecContext* ctx) const {
  if (!blocked()) return tensor;
  return blockops::Assemble(*store, ctx);
}

namespace {

// Executes one node in the given representation, transforming `act`
// in place. On failure the activation is untouched (every mutation
// goes through RELSERVE_ASSIGN_OR_RETURN, which assigns only on
// success), which is what makes the representation fallback in
// RunImpl sound: the node can be re-executed under the other repr.
Status ExecNode(const Node& node, Repr repr,
                const PreparedModel& prepared,
                const std::vector<Shape>& shapes, int64_t batch,
                Activation* act, ExecContext* ctx) {
  switch (node.kind) {
    case OpKind::kInput: {
      if (!act->blocked() && repr == Repr::kRelational) {
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
      }
      break;
    }
    case OpKind::kMatMul: {
      if (repr == Repr::kUdf) {
        RELSERVE_RETURN_NOT_OK(
            EnsureWhole(act, shapes[node.input], ctx));
        // Under a relational plan only the blocked copy of this
        // weight exists; assemble it whole so the UDF fallback can
        // still execute the node (its pages are typically hot in the
        // pool even when fresh storage I/O is failing).
        Tensor weight_whole;
        Result<const Tensor*> resident =
            prepared.ResidentWeight(node.weight_name);
        if (resident.ok()) {
          weight_whole = **resident;
        } else {
          RELSERVE_ASSIGN_OR_RETURN(
              const BlockStore* blocked,
              prepared.BlockedWeight(node.weight_name));
          RELSERVE_ASSIGN_OR_RETURN(weight_whole,
                                    blockops::Assemble(*blocked, ctx));
        }
        RELSERVE_ASSIGN_OR_RETURN(
            act->tensor,
            kernels::MatMul(act->tensor, weight_whole,
                            /*transpose_b=*/true, ctx->tracker,
                            ctx->pool));
        act->owned = true;
      } else {
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
        RELSERVE_ASSIGN_OR_RETURN(
            const BlockStore* weight,
            prepared.BlockedWeight(node.weight_name));
        RELSERVE_ASSIGN_OR_RETURN(
            act->store,
            blockops::BlockMatMul(*act->store, *weight, ctx));
      }
      break;
    }
    case OpKind::kBiasAdd: {
      RELSERVE_ASSIGN_OR_RETURN(
          const Tensor* bias,
          prepared.ResidentWeight(node.weight_name));
      if (repr == Repr::kUdf) {
        RELSERVE_RETURN_NOT_OK(
            EnsureWhole(act, shapes[node.input], ctx));
        RELSERVE_RETURN_NOT_OK(EnsureOwned(act, ctx));
        RELSERVE_RETURN_NOT_OK(
            kernels::BiasAddInPlace(&act->tensor, *bias));
      } else {
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
        RELSERVE_ASSIGN_OR_RETURN(
            act->store,
            blockops::BlockBiasAdd(*act->store, *bias, ctx));
      }
      break;
    }
    case OpKind::kRelu: {
      if (repr == Repr::kUdf) {
        RELSERVE_RETURN_NOT_OK(
            EnsureWhole(act, shapes[node.input], ctx));
        RELSERVE_RETURN_NOT_OK(EnsureOwned(act, ctx));
        kernels::ReluInPlace(&act->tensor);
      } else {
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
        RELSERVE_ASSIGN_OR_RETURN(
            act->store, blockops::BlockRelu(*act->store, ctx));
      }
      break;
    }
    case OpKind::kSoftmax: {
      if (repr == Repr::kUdf) {
        RELSERVE_RETURN_NOT_OK(
            EnsureWhole(act, shapes[node.input], ctx));
        RELSERVE_RETURN_NOT_OK(EnsureOwned(act, ctx));
        RELSERVE_RETURN_NOT_OK(
            kernels::SoftmaxRowsInPlace(&act->tensor));
      } else {
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
        RELSERVE_ASSIGN_OR_RETURN(
            act->store, blockops::BlockSoftmaxRows(*act->store, ctx));
      }
      break;
    }
    case OpKind::kConv2D: {
      if (repr == Repr::kUdf) {
        RELSERVE_RETURN_NOT_OK(
            EnsureWhole(act, shapes[node.input], ctx));
        RELSERVE_ASSIGN_OR_RETURN(
            const Tensor* kernel,
            prepared.ResidentWeight(node.weight_name));
        RELSERVE_ASSIGN_OR_RETURN(
            act->tensor,
            kernels::Conv2D(act->tensor, *kernel, node.stride,
                            ctx->tracker, ctx->pool));
        act->owned = true;
      } else {
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
        RELSERVE_RETURN_NOT_OK(
            RelationalConv(node, prepared, shapes[node.input],
                           shapes[node.id], act, ctx));
      }
      break;
    }
    case OpKind::kMaxPool: {
      // No block-relation pooling kernel: pooling windows straddle
      // block boundaries and the op only appears in small CNNs, so
      // both representations execute it whole-tensor.
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, shapes[node.input], ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          act->tensor, kernels::MaxPool2x2(act->tensor, ctx->tracker));
      act->owned = true;
      break;
    }
    case OpKind::kFlatten: {
      if (act->blocked()) {
        // A blocked activation is already a [batch, width] relation.
        break;
      }
      RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                                act->tensor.Reshape(shapes[node.id]));
      break;
    }
  }
  return Status::OK();
}

// Storage-tier failures that representation fallback can route
// around. OutOfMemory is excluded deliberately: the UDF path uses
// MORE memory than the relational one, so falling back would make an
// OOM worse, not better.
bool IsStorageFailure(const Status& status) {
  return status.IsIOError() || status.IsUnavailable() ||
         status.IsDataLoss();
}

Result<ExecOutput> RunImpl(const PreparedModel& prepared,
                           Activation act, int64_t batch,
                           ExecContext* ctx) {
  const Model& model = prepared.model();
  const InferencePlan& plan = prepared.plan();
  // The plan's representation choices are reused across batch sizes
  // (the paper's AoT idea: plans compiled at load time, picked at run
  // time); shapes are re-inferred for the actual batch.
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                            model.InferShapes(batch));

  for (const Node& node : model.nodes()) {
    const Repr planned = plan.decisions[node.id].repr;
    Status s = ExecNode(node, planned, prepared, shapes, batch, &act,
                        ctx);
    if (!s.ok() && planned == Repr::kRelational &&
        IsStorageFailure(s)) {
      // Graceful degradation: the relation-centric op hit the
      // (failing) storage tier; the whole-tensor path may not need it
      // at all. ExecNode left `act` intact, so re-execute UDF-centric
      // — same math, same bits, different physical plan.
      s = ExecNode(node, Repr::kUdf, prepared, shapes, batch, &act,
                   ctx);
      if (s.ok()) {
        ctx->stats.repr_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    RELSERVE_RETURN_NOT_OK(s);
  }

  ExecOutput out;
  if (act.blocked()) {
    out.store = std::move(act.store);
  } else {
    // Final shape as inferred (e.g. [batch, classes]).
    RELSERVE_ASSIGN_OR_RETURN(
        out.tensor, act.tensor.Reshape(shapes[model.output_node()]));
  }
  return out;
}

}  // namespace

Result<ExecOutput> HybridExecutor::Run(const PreparedModel& prepared,
                                       const Tensor& input,
                                       ExecContext* ctx) {
  if (input.shape().ndim() < 1) {
    return Status::InvalidArgument("input must have a batch dimension");
  }
  Activation act;
  act.tensor = input;
  act.owned = false;
  return RunImpl(prepared, std::move(act), input.shape().dim(0), ctx);
}

Result<ExecOutput> HybridExecutor::RunOnStore(
    const PreparedModel& prepared,
    std::unique_ptr<BlockStore> input_store, ExecContext* ctx) {
  if (input_store == nullptr) {
    return Status::InvalidArgument("null input store");
  }
  const int64_t batch = input_store->geometry().rows;
  Activation act;
  act.store = std::move(input_store);
  return RunImpl(prepared, std::move(act), batch, ctx);
}

}  // namespace relserve
