#include "engine/hybrid_executor.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "engine/block_ops.h"
#include "kernels/kernels.h"
#include "kernels/topk.h"

namespace relserve {

namespace {

// The runner's rolling activation: exactly one of tensor/store set.
struct Activation {
  Tensor tensor;
  std::unique_ptr<BlockStore> store;
  // Whether `tensor` is writable (false while it aliases the caller's
  // input buffer).
  bool owned = false;

  bool blocked() const { return store != nullptr; }
};

// Blocked -> whole (or reshape a whole tensor to the expected shape).
// Idempotent: compiled ReprTransition stages and the per-stage entry
// guards both funnel through here, so a runtime representation drift
// (a fallback left the activation whole where the plan expects
// blocked, or vice versa) self-corrects at the next stage.
Status EnsureWhole(Activation* act, const Shape& expected,
                   ExecContext* ctx) {
  if (act->blocked()) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor assembled,
                              blockops::Assemble(*act->store, ctx));
    RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                              assembled.Reshape(expected));
    act->store.reset();
    act->owned = true;
    return Status::OK();
  }
  if (act->tensor.shape() != expected) {
    RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                              act->tensor.Reshape(expected));
  }
  return Status::OK();
}

// Whole -> blocked matrix [batch, width].
Status EnsureBlocked(Activation* act, int64_t batch, ExecContext* ctx) {
  if (act->blocked()) return Status::OK();
  const int64_t width = act->tensor.NumElements() / batch;
  RELSERVE_ASSIGN_OR_RETURN(Tensor flat,
                            act->tensor.Reshape(Shape{batch, width}));
  RELSERVE_ASSIGN_OR_RETURN(act->store,
                            blockops::ChunkMatrix(flat, ctx));
  act->tensor = Tensor();
  act->owned = false;
  return Status::OK();
}

// Makes the whole tensor writable for in-place ops.
Status EnsureOwned(Activation* act, ExecContext* ctx) {
  if (act->owned) return Status::OK();
  RELSERVE_ASSIGN_OR_RETURN(act->tensor,
                            act->tensor.Clone(ctx->tracker));
  act->owned = true;
  return Status::OK();
}

// Applies a stage's fused elementwise chain to the whole activation,
// in plan order — the same kernel calls the unfused path makes, on
// the same buffer, so results are bit-identical.
Status ApplyWholeEpilogue(const std::vector<EpilogueOp>& ops,
                          Activation* act, ExecContext* ctx) {
  if (ops.empty()) return Status::OK();
  RELSERVE_RETURN_NOT_OK(EnsureOwned(act, ctx));
  for (const EpilogueOp& op : ops) {
    switch (op.op) {
      case OpKind::kBiasAdd:
        RELSERVE_RETURN_NOT_OK(
            kernels::BiasAddInPlace(&act->tensor, *op.bias));
        break;
      case OpKind::kRelu:
        kernels::ReluInPlace(&act->tensor);
        break;
      case OpKind::kSoftmax:
        RELSERVE_RETURN_NOT_OK(
            kernels::SoftmaxRowsInPlace(&act->tensor));
        break;
      default:
        return Status::InvalidArgument("bad epilogue op");
    }
  }
  return Status::OK();
}

// The blockwise counterpart: a per-block pass applying the chain to
// one output block. `nominal_block_cols` is the producing store's
// column blocking, needed to slice the bias. Each element sees the
// same operations in the same order as a separate blockwise pass.
blockops::BlockFn MakeBlockEpilogue(const std::vector<EpilogueOp>& ops,
                                    int64_t nominal_block_cols) {
  return [&ops, nominal_block_cols](int64_t, int64_t cb,
                                    Tensor* payload) -> Status {
    for (const EpilogueOp& op : ops) {
      switch (op.op) {
        case OpKind::kBiasAdd: {
          const int64_t col0 = cb * nominal_block_cols;
          const int64_t width = payload->shape().dim(1);
          // Slice of the bias covering this column block.
          RELSERVE_ASSIGN_OR_RETURN(
              Tensor slice, Tensor::Create(Shape{width}, nullptr));
          std::memcpy(slice.data(), op.bias->data() + col0,
                      width * sizeof(float));
          RELSERVE_RETURN_NOT_OK(
              kernels::BiasAddInPlace(payload, slice));
          break;
        }
        case OpKind::kRelu:
          kernels::ReluInPlace(payload);
          break;
        default:
          return Status::InvalidArgument("bad block epilogue op");
      }
    }
    return Status::OK();
  };
}

// Relation-centric convolution: streams each image through the
// im2col ("spatial rewriting") relation and a broadcast join with the
// kernel relation, appending output feature-map rows into the next
// activation relation. Working set: one image + one im2col block +
// one output strip. A fused relu applies to each strip as it is
// produced.
Status RelationalConv(const PhysicalStage& stage, int64_t batch,
                      Activation* act, ExecContext* ctx) {
  const Tensor* kernel = stage.weight;
  const Shape in_shape = stage.InShape(batch);
  const Shape out_shape = stage.OutShape(batch);
  const int64_t h = in_shape.dim(1);
  const int64_t w = in_shape.dim(2);
  const int64_t c = in_shape.dim(3);
  const int64_t out_c = kernel->shape().dim(0);
  const int64_t kh = kernel->shape().dim(1);
  const int64_t kw = kernel->shape().dim(2);
  const int64_t patch = kh * kw * c;
  const int64_t out_pixels = out_shape.dim(1) * out_shape.dim(2);
  const bool fuse_relu = !stage.epilogue.empty();
  RELSERVE_ASSIGN_OR_RETURN(Tensor kernel_mat,
                            kernel->Reshape(Shape{out_c, patch}));

  // Pixel rows per chunk, sized so both the im2col block and the
  // output strip stay near one nominal block.
  const int64_t block_elems = ctx->block_rows * ctx->block_cols;
  const int64_t rows_per_chunk = std::max<int64_t>(
      1, block_elems / std::max<int64_t>(patch, out_c));

  RELSERVE_ASSIGN_OR_RETURN(
      blockops::BlockedRowAppender appender,
      blockops::BlockedRowAppender::Create(batch, out_pixels * out_c,
                                           ctx));
  for (int64_t img = 0; img < batch; ++img) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor row,
                              blockops::LoadRow(*act->store, img, ctx));
    RELSERVE_ASSIGN_OR_RETURN(Tensor image,
                              row.Reshape(Shape{h, w, c}));
    for (int64_t p0 = 0; p0 < out_pixels; p0 += rows_per_chunk) {
      const int64_t p1 = std::min(out_pixels, p0 + rows_per_chunk);
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor cols,
          Tensor::Create(Shape{p1 - p0, patch}, ctx->tracker));
      RELSERVE_RETURN_NOT_OK(
          kernels::Im2ColRowsInto(image, kh, kw, stage.stride, p0, p1,
                                  &cols));
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor strip,
          kernels::MatMul(cols, kernel_mat, /*transpose_b=*/true,
                          ctx->tracker, ctx->pool));
      if (fuse_relu) kernels::ReluInPlace(&strip);
      RELSERVE_RETURN_NOT_OK(
          appender.Append(strip.data(), strip.NumElements()));
    }
    RELSERVE_RETURN_NOT_OK(appender.EndRow());
  }
  RELSERVE_ASSIGN_OR_RETURN(act->store, appender.Finish());
  act->tensor = Tensor();
  act->owned = false;
  return Status::OK();
}

}  // namespace

Result<Tensor> ExecOutput::ToTensor(ExecContext* ctx) const {
  if (!blocked()) return tensor;
  return blockops::Assemble(*store, ctx);
}

namespace {

// Executes one compiled stage, transforming `act` in place. On
// failure the activation's logical value is untouched (mutations go
// through RELSERVE_ASSIGN_OR_RETURN, which assigns only on success;
// the Ensure* helpers at most change its representation), which is
// what makes the per-stage representation fallback sound: the stage
// can be re-executed UDF-centric.
Status RunStage(const PhysicalStage& stage, int64_t batch,
                Activation* act, ExecContext* ctx) {
  switch (stage.kind) {
    case StageKind::kInputChunk:
      return EnsureBlocked(act, batch, ctx);
    case StageKind::kReprTransition:
      if (stage.to_blocked) return EnsureBlocked(act, batch, ctx);
      return EnsureWhole(act, stage.InShape(batch), ctx);
    case StageKind::kMatMul: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      if (stage.int8_weight != nullptr) {
        RELSERVE_ASSIGN_OR_RETURN(
            Tensor out,
            Tensor::Create(Shape{batch, stage.int8_weight->out},
                           ctx->tracker));
        RELSERVE_RETURN_NOT_OK(kernels::Int8GemmTransBInto(
            act->tensor, *stage.int8_weight, &out, ctx->pool));
        act->tensor = std::move(out);
      } else if (stage.sparse_weight != nullptr) {
        RELSERVE_ASSIGN_OR_RETURN(
            Tensor out,
            Tensor::Create(Shape{batch, stage.sparse_weight->out},
                           ctx->tracker));
        RELSERVE_RETURN_NOT_OK(kernels::SparseGemmTransBInto(
            act->tensor, *stage.sparse_weight, &out, ctx->pool));
        act->tensor = std::move(out);
      } else {
        RELSERVE_ASSIGN_OR_RETURN(
            act->tensor,
            kernels::MatMul(act->tensor, *stage.weight,
                            /*transpose_b=*/true, ctx->tracker,
                            ctx->pool));
      }
      act->owned = true;
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kMatMulTopK: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      kernels::TopKOptions opts;
      opts.k = stage.topk;
      // The fused epilogue compiles into the kernel's options: bias
      // and relu apply pre-selection, softmax to the k survivors.
      for (const EpilogueOp& op : stage.epilogue) {
        switch (op.op) {
          case OpKind::kBiasAdd:
            opts.bias = op.bias;
            break;
          case OpKind::kRelu:
            opts.relu = true;
            break;
          case OpKind::kSoftmax:
            opts.softmax = true;
            break;
          default:
            return Status::InvalidArgument("bad top-k epilogue op");
        }
      }
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor out, Tensor::Create(Shape{batch, 2 * stage.topk},
                                     ctx->tracker));
      RELSERVE_RETURN_NOT_OK(kernels::MatMulTopKInto(
          act->tensor, stage.weight, stage.int8_weight,
          stage.sparse_weight, opts, &out, ctx->pool));
      act->tensor = std::move(out);
      act->owned = true;
      return Status::OK();
    }
    case StageKind::kBlockMatMul: {
      RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
      if (act->store->geometry().block_cols !=
          stage.blocked_weight->geometry().block_cols) {
        // Upstream row-strip stores (e.g. relational conv output) use
        // a wider strip blocking than the chunked weight; re-chunk the
        // activation to the join geometry.
        RELSERVE_RETURN_NOT_OK(
            EnsureWhole(act, stage.InShape(batch), ctx));
        RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
      }
      blockops::BlockFn fused;
      const blockops::BlockFn* epilogue = nullptr;
      if (!stage.epilogue.empty()) {
        // Output blocking of the join: C's column blocks follow W's
        // row blocks.
        fused = MakeBlockEpilogue(
            stage.epilogue, stage.blocked_weight->geometry().block_rows);
        epilogue = &fused;
      }
      RELSERVE_ASSIGN_OR_RETURN(
          act->store,
          blockops::BlockMatMul(*act->store, *stage.blocked_weight, ctx,
                                epilogue));
      return Status::OK();
    }
    case StageKind::kConv2D: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          act->tensor,
          kernels::Conv2D(act->tensor, *stage.weight, stage.stride,
                          ctx->tracker, ctx->pool));
      act->owned = true;
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kRelationalConv: {
      RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
      return RelationalConv(stage, batch, act, ctx);
    }
    case StageKind::kMaxPool: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          act->tensor, kernels::MaxPool2x2(act->tensor, ctx->tracker));
      act->owned = true;
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kFlatten: {
      // A blocked activation is already a [batch, width] relation.
      if (act->blocked()) return Status::OK();
      RELSERVE_ASSIGN_OR_RETURN(
          act->tensor, act->tensor.Reshape(stage.OutShape(batch)));
      return Status::OK();
    }
    case StageKind::kElementwise: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kBlockElementwise: {
      RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
      blockops::BlockFn fn = MakeBlockEpilogue(
          stage.epilogue, act->store->geometry().block_cols);
      RELSERVE_ASSIGN_OR_RETURN(
          act->store, blockops::MapBlocks(*act->store, fn, ctx));
      return Status::OK();
    }
    case StageKind::kBlockSoftmax: {
      RELSERVE_RETURN_NOT_OK(EnsureBlocked(act, batch, ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          act->store, blockops::BlockSoftmaxRows(*act->store, ctx));
      return Status::OK();
    }
    case StageKind::kColumnarScan:
    case StageKind::kColumnarGather:
      // Relational input stages; they run before the model pipeline
      // (ColumnarScan / ExecuteColumnarGather) and never compile into
      // a PhysicalPlan.
      return Status::Internal("columnar stage inside a model plan");
  }
  return Status::InvalidArgument("bad stage kind");
}

// Re-executes a relation-centric stage UDF-centric after a
// storage-tier failure — same math on whole tensors, so the result is
// bit-identical; only the physical plan differs. The blocked weight's
// pages are typically still hot in the pool even when fresh storage
// I/O is failing.
Status RunStageUdfFallback(const PhysicalStage& stage, int64_t batch,
                           Activation* act, ExecContext* ctx) {
  switch (stage.kind) {
    case StageKind::kInputChunk:
    case StageKind::kReprTransition:
      // The whole-tensor path simply does not need the blocked form;
      // downstream stages re-block (or fall back themselves).
      return Status::OK();
    case StageKind::kBlockMatMul: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor weight, blockops::Assemble(*stage.blocked_weight, ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          act->tensor,
          kernels::MatMul(act->tensor, weight, /*transpose_b=*/true,
                          ctx->tracker, ctx->pool));
      act->owned = true;
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kRelationalConv: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      RELSERVE_ASSIGN_OR_RETURN(
          act->tensor,
          kernels::Conv2D(act->tensor, *stage.weight, stage.stride,
                          ctx->tracker, ctx->pool));
      act->owned = true;
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kBlockElementwise: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      return ApplyWholeEpilogue(stage.epilogue, act, ctx);
    }
    case StageKind::kBlockSoftmax: {
      RELSERVE_RETURN_NOT_OK(
          EnsureWhole(act, stage.InShape(batch), ctx));
      RELSERVE_RETURN_NOT_OK(EnsureOwned(act, ctx));
      return kernels::SoftmaxRowsInPlace(&act->tensor);
    }
    default:
      // Stages that already execute whole-tensor (maxpool under a
      // relational decision): retry the same path.
      return RunStage(stage, batch, act, ctx);
  }
}

// Storage-tier failures that representation fallback can route
// around. OutOfMemory is excluded deliberately: the UDF path uses
// MORE memory than the relational one, so falling back would make an
// OOM worse, not better.
bool IsStorageFailure(const Status& status) {
  return status.IsIOError() || status.IsUnavailable() ||
         status.IsDataLoss();
}

Result<ExecOutput> RunPlan(const PhysicalPlan& plan, Activation act,
                           int64_t batch, ExecContext* ctx) {
  using Clock = std::chrono::steady_clock;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  for (const std::unique_ptr<PhysicalStage>& sp : plan.stages()) {
    const PhysicalStage& stage = *sp;
    const Clock::time_point start = Clock::now();
    Status s = RunStage(stage, batch, &act, ctx);
    if (!s.ok() && stage.repr == Repr::kRelational &&
        IsStorageFailure(s)) {
      // Graceful degradation: the relation-centric stage hit the
      // (failing) storage tier; re-execute just this stage
      // UDF-centric — same math, same bits, different physical plan.
      s = RunStageUdfFallback(stage, batch, &act, ctx);
      if (s.ok()) {
        ctx->stats.repr_fallbacks.fetch_add(1, kRelaxed);
        stage.stats.fallbacks.fetch_add(1, kRelaxed);
      }
    }
    RELSERVE_RETURN_NOT_OK(s);
    const int64_t nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start)
            .count();
    stage.stats.invocations.fetch_add(1, kRelaxed);
    stage.stats.nanos.fetch_add(nanos, kRelaxed);
    stage.stats.rows.fetch_add(batch, kRelaxed);
    stage.stats.bytes.fetch_add(
        batch * stage.OutElemsPerRow() *
            static_cast<int64_t>(sizeof(float)),
        kRelaxed);
    ctx->stats.stages_executed.fetch_add(1, kRelaxed);
    ctx->stats.stage_nanos.fetch_add(nanos, kRelaxed);
  }

  ExecOutput out;
  if (act.blocked()) {
    out.store = std::move(act.store);
  } else {
    // Final shape as compiled (e.g. [batch, classes]).
    std::vector<int64_t> dims;
    dims.reserve(plan.output_sample().size() + 1);
    dims.push_back(batch);
    for (int64_t d : plan.output_sample()) dims.push_back(d);
    RELSERVE_ASSIGN_OR_RETURN(
        out.tensor, act.tensor.Reshape(Shape(std::move(dims))));
  }
  return out;
}

}  // namespace

Result<ExecOutput> HybridExecutor::Run(const PhysicalPlan& plan,
                                       const Tensor& input,
                                       ExecContext* ctx) {
  if (input.shape().ndim() < 1) {
    return Status::InvalidArgument("input must have a batch dimension");
  }
  Activation act;
  act.tensor = input;
  act.owned = false;
  return RunPlan(plan, std::move(act), input.shape().dim(0), ctx);
}

Result<ExecOutput> HybridExecutor::Run(const PreparedModel& prepared,
                                       const Tensor& input,
                                       ExecContext* ctx) {
  return Run(prepared.physical(), input, ctx);
}

Result<ExecOutput> HybridExecutor::RunOnStore(
    const PhysicalPlan& plan, std::unique_ptr<BlockStore> input_store,
    ExecContext* ctx) {
  if (input_store == nullptr) {
    return Status::InvalidArgument("null input store");
  }
  const int64_t batch = input_store->geometry().rows;
  Activation act;
  act.store = std::move(input_store);
  return RunPlan(plan, std::move(act), batch, ctx);
}

Result<ExecOutput> HybridExecutor::RunOnStore(
    const PreparedModel& prepared,
    std::unique_ptr<BlockStore> input_store, ExecContext* ctx) {
  return RunOnStore(prepared.physical(), std::move(input_store), ctx);
}

}  // namespace relserve
