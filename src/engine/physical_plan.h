// PhysicalPlan: the deploy-time-compiled execution pipeline.
//
// The adaptive optimizer's InferencePlan is a *logical* annotation —
// one representation decision per model-graph node. Compiling it once
// at deploy time produces this physical IR: a flat sequence of typed
// stages with every run-time-invariant decision already taken:
//
//   - weights are bound (resident tensors / chunked block relations —
//     the residency policy lives here, not in the executor),
//   - representations are frozen and explicit ReprTransition stages
//     mark every compile-time blocked<->whole boundary,
//   - fusible elementwise chains (bias add / relu / softmax) are
//     collapsed into the preceding matmul/conv stage as an epilogue
//     that rides the kernel layer's vectorized elementwise strips in
//     the same pass over the output — the relation-centric win is one
//     materialized block relation per fused group instead of one per
//     operator,
//   - per-sample shapes, cost and footprint annotations are
//     precomputed, so serving a request is a single loop over stages
//     with zero graph walking, zero re-optimization and zero
//     shape inference.
//
// The executor (HybridExecutor) is a small runner over this IR; the
// SQL layer's EXPLAIN / EXPLAIN ANALYZE renders it; per-stage wall
// time, row and byte counters accumulate in the plan itself (atomics —
// many requests execute one plan concurrently). A future GPU or
// remote backend targets the same IR by implementing its stage kinds.
//
// Plans are batch-invariant: every node shape is [batch, fixed...] so
// stages store per-sample dims and rebuild concrete shapes from the
// request's batch size — one compiled plan serves every batch size
// that maps to the same representation signature (the AoT story).

#ifndef RELSERVE_ENGINE_PHYSICAL_PLAN_H_
#define RELSERVE_ENGINE_PHYSICAL_PLAN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "graph/model.h"
#include "kernels/int8_gemm.h"
#include "kernels/sparse_gemm.h"
#include "optimizer/plan.h"
#include "relational/column_batch.h"
#include "storage/block_store.h"
#include "tensor/tensor.h"

namespace relserve {

enum class StageKind {
  kInputChunk,        // stream/chunk the input batch into a block relation
  kReprTransition,    // explicit blocked <-> whole boundary
  kMatMul,            // whole-tensor GEMM (+ fused epilogue)
  kMatMulTopK,        // matmul + fused top-k epilogue; emits [batch, 2k]
  kBlockMatMul,       // block join + aggregation (+ fused epilogue)
  kConv2D,            // whole-tensor im2col conv (+ fused epilogue)
  kRelationalConv,    // streamed per-image im2col conv (+ fused relu)
  kMaxPool,           // whole-tensor 2x2 pool (both representations)
  kFlatten,           // logical reshape; no data movement when blocked
  kElementwise,       // standalone whole-tensor elementwise chain
  kBlockElementwise,  // standalone blockwise elementwise chain
  kBlockSoftmax,      // row-strip softmax over a block relation
  kColumnarScan,      // vectorized fragment-parallel table scan
  kColumnarGather,    // column chunks -> packed GEMM input tile
};

const char* StageKindName(StageKind kind);

// One elementwise operator fused into a stage epilogue (or into a
// standalone elementwise stage). The bias tensor is bound at compile
// time for kBiasAdd.
struct EpilogueOp {
  OpKind op = OpKind::kRelu;  // kBiasAdd | kRelu | kSoftmax
  const Tensor* bias = nullptr;
  int node_id = -1;
};

// Run-time counters of one stage, accumulated across every execution
// of the owning plan. Atomics: concurrent requests share the plan.
// EXPLAIN ANALYZE renders these.
struct StageStats {
  std::atomic<int64_t> invocations{0};
  std::atomic<int64_t> nanos{0};
  std::atomic<int64_t> rows{0};
  std::atomic<int64_t> bytes{0};      // activation bytes produced
  std::atomic<int64_t> fallbacks{0};  // UDF re-executions (storage
                                      // failure on the relational path)
};

struct PhysicalStage {
  StageKind kind = StageKind::kFlatten;
  // The primary graph node this stage executes (the transition before
  // a node carries that consumer's id).
  int node_id = -1;
  Repr repr = Repr::kUdf;
  // Rendered name, e.g. "matmul(w0)+bias+relu".
  std::string label;

  // Pre-bound operands; pointers into the owning plan's weight maps.
  // Matmul stages bind exactly one of weight / blocked_weight /
  // int8_weight / sparse_weight — the optimizer's kernel arm, frozen.
  const Tensor* weight = nullptr;
  const BlockStore* blocked_weight = nullptr;
  const kernels::Int8Weight* int8_weight = nullptr;
  const kernels::CsrWeight* sparse_weight = nullptr;
  int64_t stride = 1;
  // kMatMulTopK: classes kept per row; out_sample is [2 * topk].
  int64_t topk = 0;
  // Measured weight density of the sparse arm (EXPLAIN annotation).
  double weight_density = 1.0;
  std::vector<EpilogueOp> epilogue;

  // Per-sample geometry (batch dim excluded), frozen at compile time.
  std::vector<int64_t> in_sample;
  std::vector<int64_t> out_sample;
  // kReprTransition: true = whole -> blocked, false = blocked -> whole.
  bool to_blocked = false;

  // Optimizer annotations (summed over fused nodes).
  int64_t estimated_bytes = 0;
  double estimated_flops = 0;
  DeviceKind device = DeviceKind::kCpu;

  mutable StageStats stats;

  // Concrete shapes for a request's batch size.
  Shape InShape(int64_t batch) const;
  Shape OutShape(int64_t batch) const;
  int64_t OutElemsPerRow() const;
};

// EXPLAIN-style one-line rendering of a stage that lives outside a
// compiled model plan (the relational scan/gather stages a serving
// session keeps per table). With `analyze`, appends the same
// calls/rows/avg_us/bytes counters PhysicalPlan::ToString renders.
std::string RenderStandaloneStage(const PhysicalStage& stage,
                                  bool analyze);

// The columnar -> tensor pivot: gathers a float-vector feature chunk
// (slot `chunk_index` of each batch) straight into a packed
// [total_rows, width] GEMM input tile — contiguous memcpys from the
// chunks' flattened payloads, no Row/Value materialization.
// InvalidArgument when a row's vector is not exactly `width` wide;
// trips the "columnar.pivot" failpoint. Stats (invocations, nanos,
// rows, bytes) accumulate into `stage`.
Result<Tensor> ExecuteColumnarGather(
    const PhysicalStage& stage,
    const std::vector<ColumnBatch>& batches, int chunk_index,
    int64_t width, const std::string& column_name,
    MemoryTracker* tracker);

// Deploy-time weight accounting of one compiled plan. Logical bytes
// are what naive per-model storage would hold; physical bytes are
// what this plan actually allocated after resolving blocks through
// the shared PhysicalBlockIndex (equal when no index is configured).
// SHOW MODELS and bench_multitenant render these.
struct WeightFootprint {
  int64_t logical_bytes = 0;
  int64_t physical_bytes = 0;
  // Weight blocks resolved to a physical block another deployment
  // (or an earlier weight of this one) already owns, out of all
  // weight blocks the plan bound.
  int64_t shared_blocks = 0;
  int64_t total_blocks = 0;
};

class PhysicalPlan {
 public:
  struct Options {
    // Collapse elementwise chains into the producing matmul/conv
    // stage. Off = one stage per node (the bench ablation switch).
    bool fuse_elementwise = true;
  };

  // Compiles the annotated logical plan: binds weights (resident /
  // chunked per the representation decisions — may OOM exactly where
  // PreparedModel::Prepare used to), lowers nodes to fused stages,
  // and precomputes shapes and footprints. The model must outlive the
  // plan.
  static Result<std::unique_ptr<PhysicalPlan>> Compile(
      const Model* model, InferencePlan plan, ExecContext* ctx,
      Options options);
  static Result<std::unique_ptr<PhysicalPlan>> Compile(
      const Model* model, InferencePlan plan, ExecContext* ctx) {
    return Compile(model, std::move(plan), ctx, Options());
  }

  const Model& model() const { return *model_; }
  const InferencePlan& logical_plan() const { return plan_; }
  const Options& options() const { return options_; }
  const std::vector<std::unique_ptr<PhysicalStage>>& stages() const {
    return stages_;
  }
  // Elementwise ops riding another stage's epilogue (dispatches saved
  // per request).
  int num_fused_ops() const { return num_fused_ops_; }
  // Sample dims of the model output node.
  const std::vector<int64_t>& output_sample() const {
    return output_sample_;
  }

  // Whole-tensor weight bound for UDF-centric stages.
  Result<const Tensor*> ResidentWeight(const std::string& name) const;
  // Block relation of a relation-centric matmul weight.
  Result<const BlockStore*> BlockedWeight(const std::string& name) const;

  // Deploy-time weight accounting (stable after Compile).
  const WeightFootprint& weight_footprint() const { return footprint_; }

  // EXPLAIN rendering of the stage pipeline. With `analyze`, appends
  // the accumulated per-stage wall times, rows, bytes and fallback
  // counts (relaxed reads — safe while requests execute).
  std::string ToString(bool analyze = false) const;

  // Releases the plan's references on shared resident weight blocks
  // (blocked weights release theirs through their BlockStores).
  ~PhysicalPlan();

 private:
  PhysicalPlan() = default;

  const Model* model_ = nullptr;
  InferencePlan plan_;
  Options options_;
  int num_fused_ops_ = 0;
  std::vector<int64_t> output_sample_;
  // Weight residency (moved here from PreparedModel): whole tensors
  // for UDF-centric consumers, block relations for relation-centric
  // matmuls. Node-based maps: stage pointers stay valid across moves.
  std::map<std::string, Tensor> resident_;
  std::map<std::string, std::unique_ptr<BlockStore>> blocked_;
  // Deploy-time-compressed weight arms (the fp32 copy is NOT kept for
  // these consumers — the quantized/sparse form replaces it).
  std::map<std::string, kernels::Int8Weight> int8_weights_;
  std::map<std::string, kernels::CsrWeight> sparse_weights_;
  // Ref-counted handles on shared resident weights (the index the
  // session owns outlives every plan compiled against it).
  PhysicalBlockIndex* block_index_ = nullptr;
  std::vector<PhysicalBlockId> interned_resident_;
  WeightFootprint footprint_;
  std::vector<std::unique_ptr<PhysicalStage>> stages_;
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_PHYSICAL_PLAN_H_
