// PreparedModel: a model bound to an execution plan and an
// ExecContext — the artifact produced when a model is "loaded into the
// RDBMS".
//
// Weights used by UDF-centric nodes are made resident in the working
// arena (whole tensors); weights of relation-centric matmul nodes are
// chunked into buffer-pool-backed block stores and the whole-tensor
// copy is not charged. If even making the resident weights fit fails,
// Prepare reports OutOfMemory — mirroring the paper's observation that
// "simply the weight matrix exceeds the threshold" for Amazon-14k.

#ifndef RELSERVE_ENGINE_PREPARED_MODEL_H_
#define RELSERVE_ENGINE_PREPARED_MODEL_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "engine/exec_context.h"
#include "graph/model.h"
#include "optimizer/plan.h"
#include "storage/block_store.h"

namespace relserve {

class PreparedModel {
 public:
  static Result<PreparedModel> Prepare(const Model* model,
                                       InferencePlan plan,
                                       ExecContext* ctx);

  PreparedModel(PreparedModel&&) = default;
  PreparedModel& operator=(PreparedModel&&) = default;

  const Model& model() const { return *model_; }
  const InferencePlan& plan() const { return plan_; }

  // Whole-tensor weight for a UDF-centric node (resident in the
  // working arena). For Conv2D the kernel is stored in its original
  // rank-4 layout.
  Result<const Tensor*> ResidentWeight(const std::string& name) const;

  // Block store of a relation-centric matmul weight ([out, in]
  // layout).
  Result<const BlockStore*> BlockedWeight(const std::string& name) const;

 private:
  PreparedModel() = default;

  const Model* model_ = nullptr;
  InferencePlan plan_;
  std::map<std::string, Tensor> resident_;
  std::map<std::string, std::unique_ptr<BlockStore>> blocked_;
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_PREPARED_MODEL_H_
