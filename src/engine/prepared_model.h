// PreparedModel: a model compiled against an execution plan and an
// ExecContext — the artifact produced when a model is "loaded into the
// RDBMS".
//
// Since the physical-plan refactor this is a thin owner of a
// PhysicalPlan: Prepare runs PhysicalPlan::Compile, which binds the
// weights (whole tensors made resident in the working arena for
// UDF-centric nodes, relation-centric matmul weights chunked into
// buffer-pool-backed block stores) and lowers the node graph to fused
// stages. If even making the resident weights fit fails, Prepare
// reports OutOfMemory — mirroring the paper's observation that
// "simply the weight matrix exceeds the threshold" for Amazon-14k.

#ifndef RELSERVE_ENGINE_PREPARED_MODEL_H_
#define RELSERVE_ENGINE_PREPARED_MODEL_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/physical_plan.h"
#include "graph/model.h"
#include "optimizer/plan.h"
#include "storage/block_store.h"

namespace relserve {

class PreparedModel {
 public:
  static Result<PreparedModel> Prepare(
      const Model* model, InferencePlan plan, ExecContext* ctx,
      PhysicalPlan::Options options = PhysicalPlan::Options());

  PreparedModel(PreparedModel&&) = default;
  PreparedModel& operator=(PreparedModel&&) = default;

  const Model& model() const { return physical_->model(); }
  const InferencePlan& plan() const {
    return physical_->logical_plan();
  }

  // The compiled stage pipeline (stable address for the lifetime of
  // this PreparedModel — stages hold pointers into it).
  const PhysicalPlan& physical() const { return *physical_; }

  // Whole-tensor weight for a UDF-centric node (resident in the
  // working arena). For Conv2D the kernel is stored in its original
  // rank-4 layout.
  Result<const Tensor*> ResidentWeight(const std::string& name) const {
    return physical_->ResidentWeight(name);
  }

  // Block store of a relation-centric matmul weight ([out, in]
  // layout).
  Result<const BlockStore*> BlockedWeight(
      const std::string& name) const {
    return physical_->BlockedWeight(name);
  }

 private:
  PreparedModel() = default;

  std::unique_ptr<PhysicalPlan> physical_;
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_PREPARED_MODEL_H_
