#include "engine/physical_plan.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "engine/block_ops.h"

namespace relserve {

const char* StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kInputChunk:
      return "input-chunk";
    case StageKind::kReprTransition:
      return "repr-transition";
    case StageKind::kMatMul:
      return "matmul";
    case StageKind::kMatMulTopK:
      return "matmul-topk";
    case StageKind::kBlockMatMul:
      return "block-matmul";
    case StageKind::kConv2D:
      return "conv2d";
    case StageKind::kRelationalConv:
      return "rel-conv";
    case StageKind::kMaxPool:
      return "maxpool";
    case StageKind::kFlatten:
      return "flatten";
    case StageKind::kElementwise:
      return "elementwise";
    case StageKind::kBlockElementwise:
      return "block-elementwise";
    case StageKind::kBlockSoftmax:
      return "block-softmax";
    case StageKind::kColumnarScan:
      return "columnar-scan";
    case StageKind::kColumnarGather:
      return "columnar-gather";
  }
  return "?";
}

namespace {

// " | calls=... rows=... avg_us=... bytes=..." (relaxed reads — safe
// while requests execute). Shared by plan and standalone renderings.
void AppendStageStats(const StageStats& stats, std::string* out) {
  const int64_t calls =
      stats.invocations.load(std::memory_order_relaxed);
  const int64_t nanos = stats.nanos.load(std::memory_order_relaxed);
  const int64_t rows = stats.rows.load(std::memory_order_relaxed);
  const int64_t bytes = stats.bytes.load(std::memory_order_relaxed);
  const int64_t fallbacks =
      stats.fallbacks.load(std::memory_order_relaxed);
  char avg[32];
  std::snprintf(avg, sizeof(avg), "%.1f",
                calls > 0 ? static_cast<double>(nanos) / 1e3 /
                                static_cast<double>(calls)
                          : 0.0);
  *out += " | calls=" + std::to_string(calls) + " rows=" +
          std::to_string(rows) + " avg_us=" + avg + " bytes=" +
          std::to_string(bytes);
  if (fallbacks > 0) {
    *out += " fallbacks=" + std::to_string(fallbacks);
  }
}

Shape WithBatch(int64_t batch, const std::vector<int64_t>& sample) {
  std::vector<int64_t> dims;
  dims.reserve(sample.size() + 1);
  dims.push_back(batch);
  for (int64_t d : sample) dims.push_back(d);
  return Shape(std::move(dims));
}

int64_t SampleElems(const std::vector<int64_t>& sample) {
  int64_t n = 1;
  for (int64_t d : sample) n *= d;
  return n;
}

std::string EpilogueSuffix(const EpilogueOp& op) {
  switch (op.op) {
    case OpKind::kBiasAdd:
      return "+bias";
    case OpKind::kRelu:
      return "+relu";
    case OpKind::kSoftmax:
      return "+softmax";
    default:
      return "+?";
  }
}

std::string SampleString(const std::vector<int64_t>& sample) {
  std::string out = "[batch";
  for (int64_t d : sample) out += ", " + std::to_string(d);
  return out + "]";
}

bool IsElementwise(OpKind kind) {
  return kind == OpKind::kBiasAdd || kind == OpKind::kRelu ||
         kind == OpKind::kSoftmax;
}

// May `node` (an elementwise op with representation `rel`) ride
// `open`'s epilogue? Requires a representation match, a stage kind
// that produces a freshly writable activation, and — for softmax —
// matrix-shaped output (row normalization needs rank-2).
bool CanAttach(const PhysicalStage& open, OpKind op, bool rel) {
  if (rel != (open.repr == Repr::kRelational)) return false;
  switch (open.kind) {
    case StageKind::kMatMul:
    case StageKind::kConv2D:
    case StageKind::kMaxPool:
    case StageKind::kElementwise:
      if (op == OpKind::kSoftmax) return open.out_sample.size() == 1;
      return op == OpKind::kBiasAdd || op == OpKind::kRelu;
    case StageKind::kMatMulTopK:
      // The fused top-k kernel owns the whole epilogue contract: bias
      // and relu apply per channel block before selection, softmax
      // renormalizes the k survivors after it.
      return op == OpKind::kBiasAdd || op == OpKind::kRelu ||
             op == OpKind::kSoftmax;
    case StageKind::kBlockMatMul:
    case StageKind::kBlockElementwise:
      // Softmax needs whole rows; it gets its own row-strip stage.
      return op == OpKind::kBiasAdd || op == OpKind::kRelu;
    case StageKind::kRelationalConv:
      // The streamed conv strips are [pixels, out_c] slices of one
      // image row; only position-independent ops fuse.
      return op == OpKind::kRelu;
    default:
      return false;
  }
}

}  // namespace

Shape PhysicalStage::InShape(int64_t batch) const {
  return WithBatch(batch, in_sample);
}

Shape PhysicalStage::OutShape(int64_t batch) const {
  return WithBatch(batch, out_sample);
}

int64_t PhysicalStage::OutElemsPerRow() const {
  return SampleElems(out_sample);
}

PhysicalPlan::~PhysicalPlan() {
  // Drop the plan's references on shared resident weights. The
  // canonical buffers themselves are refcounted Tensors, so the order
  // against resident_'s destruction is immaterial; the index entry
  // (and its accounting) dies at the last referencing plan.
  if (block_index_ == nullptr) return;
  for (const PhysicalBlockId id : interned_resident_) {
    block_index_->Release(id);
  }
}

Result<std::unique_ptr<PhysicalPlan>> PhysicalPlan::Compile(
    const Model* model, InferencePlan plan, ExecContext* ctx,
    Options options) {
  if (plan.decisions.size() != model->nodes().size()) {
    return Status::InvalidArgument("plan does not cover the model");
  }
  std::unique_ptr<PhysicalPlan> pp(new PhysicalPlan());
  pp->model_ = model;
  pp->plan_ = std::move(plan);
  pp->options_ = options;

  // --- Weight residency --------------------------------------------
  // Weights of relation-centric matmuls are chunked into block
  // relations (only O(block) scratch charged); everything else is
  // made resident whole in the working arena. If even the resident
  // set does not fit, compilation reports OutOfMemory — the paper's
  // Amazon-14k outcome.
  for (const Node& node : model->nodes()) {
    if (node.weight_name.empty()) continue;
    const NodeDecision& nd = pp->plan_.decisions[node.id];
    const Repr repr = nd.repr;
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* weight,
                              model->GetWeight(node.weight_name));
    const bool chunkable =
        node.kind == OpKind::kMatMul && repr == Repr::kRelational;
    if (chunkable) {
      if (pp->blocked_.count(node.weight_name) > 0) continue;
      // Weight chunks route through the shared block index when the
      // context carries one: N fine-tuned variants resolve identical
      // blocks to the same ref-counted pages.
      RELSERVE_ASSIGN_OR_RETURN(
          std::unique_ptr<BlockStore> store,
          blockops::ChunkMatrix(*weight, ctx, /*share_weights=*/true));
      pp->footprint_.logical_bytes += store->TotalBytes();
      pp->footprint_.physical_bytes +=
          store->TotalBytes() - store->shared_bytes();
      pp->footprint_.shared_blocks += store->shared_blocks();
      pp->footprint_.total_blocks +=
          static_cast<int64_t>(store->entries().size());
      pp->blocked_.emplace(node.weight_name, std::move(store));
    } else if (node.kind == OpKind::kMatMul &&
               nd.arm == KernelArm::kInt8) {
      // Quantize once at deploy time; the int8 pack + scales replace
      // the fp32 resident copy for this consumer (a 4x memory win).
      if (pp->int8_weights_.count(node.weight_name) > 0) continue;
      RELSERVE_ASSIGN_OR_RETURN(
          kernels::Int8Weight qw,
          kernels::QuantizeWeightPerChannel(*weight));
      pp->footprint_.logical_bytes += qw.ByteSize();
      pp->footprint_.physical_bytes += qw.ByteSize();
      pp->footprint_.total_blocks += 1;
      pp->int8_weights_.emplace(node.weight_name, std::move(qw));
    } else if (node.kind == OpKind::kMatMul &&
               nd.arm == KernelArm::kSparse) {
      if (pp->sparse_weights_.count(node.weight_name) > 0) continue;
      RELSERVE_ASSIGN_OR_RETURN(kernels::CsrWeight csr,
                                kernels::BuildCsrWeight(*weight));
      pp->footprint_.logical_bytes += csr.ByteSize();
      pp->footprint_.physical_bytes += csr.ByteSize();
      pp->footprint_.total_blocks += 1;
      pp->sparse_weights_.emplace(node.weight_name, std::move(csr));
    } else {
      if (pp->resident_.count(node.weight_name) > 0) continue;
      // Conv2D kernels are small even for the paper's large conv
      // workloads (the feature maps explode, not the kernels), so
      // they stay resident in both representations; biases likewise.
      pp->footprint_.logical_bytes += weight->ByteSize();
      pp->footprint_.total_blocks += 1;
      if (ctx->block_index != nullptr) {
        // Resident dedup shares the canonical Tensor buffer: the
        // first deployment charges the arena, later ones charge
        // nothing and hold a reference.
        RELSERVE_ASSIGN_OR_RETURN(
            PhysicalBlockIndex::Interned interned,
            ctx->block_index->InternResident(
                *weight, ctx->dedup_tolerance, ctx->tracker));
        pp->block_index_ = ctx->block_index;
        pp->interned_resident_.push_back(interned.id);
        if (interned.deduped) {
          pp->footprint_.shared_blocks += 1;
        } else {
          pp->footprint_.physical_bytes += weight->ByteSize();
        }
        pp->resident_.emplace(node.weight_name,
                              std::move(interned.payload));
      } else {
        RELSERVE_ASSIGN_OR_RETURN(Tensor copy,
                                  weight->Clone(ctx->tracker));
        pp->footprint_.physical_bytes += weight->ByteSize();
        pp->resident_.emplace(node.weight_name, std::move(copy));
      }
    }
  }

  // --- Shape precomputation ----------------------------------------
  // Every node shape is [batch, fixed...]; compiling at batch 1
  // yields the batch-invariant sample dims.
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                            model->InferShapes(1));
  auto sample_dims = [&shapes](int id) {
    const std::vector<int64_t>& dims = shapes[id].dims();
    return std::vector<int64_t>(dims.begin() + 1, dims.end());
  };
  pp->output_sample_ = sample_dims(model->output_node());

  // --- Lowering -----------------------------------------------------
  auto annotate = [&](PhysicalStage* s, int node_id) {
    const NodeDecision& d = pp->plan_.decisions[node_id];
    s->estimated_bytes = d.estimated_bytes;
    s->estimated_flops = d.estimated_flops;
    s->device = d.device;
  };
  auto new_stage = [&](StageKind kind, const Node& node,
                       Repr repr) -> PhysicalStage* {
    auto s = std::make_unique<PhysicalStage>();
    s->kind = kind;
    s->node_id = node.id;
    s->repr = repr;
    s->stride = node.stride;
    s->in_sample =
        node.input >= 0 ? sample_dims(node.input) : sample_dims(node.id);
    s->out_sample = sample_dims(node.id);
    annotate(s.get(), node.id);
    pp->stages_.push_back(std::move(s));
    return pp->stages_.back().get();
  };
  // An explicit compile-time representation boundary ahead of
  // `consumer`. At run time it is "ensure" semantics (idempotent), so
  // a fallback that already changed the activation's representation
  // passes through unharmed.
  auto emit_transition = [&](bool to_blocked, const Node& consumer) {
    PhysicalStage* t = new_stage(StageKind::kReprTransition, consumer,
                                 to_blocked ? Repr::kRelational
                                            : Repr::kUdf);
    t->to_blocked = to_blocked;
    t->out_sample = t->in_sample;  // transitions move, not compute
    t->label = to_blocked ? "to-blocked" : "to-whole";
    t->estimated_flops = 0;
    t->estimated_bytes = SampleElems(t->in_sample) *
                         static_cast<int64_t>(sizeof(float));
  };

  enum class Form { kWhole, kBlocked };
  Form cur = Form::kWhole;
  PhysicalStage* open = nullptr;  // fusion candidate
  int open_node = -1;             // last node lowered so far

  for (const Node& node : model->nodes()) {
    const NodeDecision& d = pp->plan_.decisions[node.id];
    const bool rel = d.repr == Repr::kRelational;
    switch (node.kind) {
      case OpKind::kInput: {
        if (rel) {
          PhysicalStage* s =
              new_stage(StageKind::kInputChunk, node, Repr::kRelational);
          s->label = "input-chunk";
          cur = Form::kBlocked;
        } else {
          cur = Form::kWhole;
        }
        open = nullptr;
        break;
      }
      case OpKind::kMatMul: {
        if (rel && cur != Form::kBlocked) {
          emit_transition(/*to_blocked=*/true, node);
          cur = Form::kBlocked;
        }
        if (!rel && cur != Form::kWhole) {
          emit_transition(/*to_blocked=*/false, node);
          cur = Form::kWhole;
        }
        const bool topk_head = !rel && d.topk > 0;
        PhysicalStage* s = new_stage(
            rel ? StageKind::kBlockMatMul
                : (topk_head ? StageKind::kMatMulTopK
                             : StageKind::kMatMul),
            node, d.repr);
        if (rel) {
          s->blocked_weight = pp->blocked_.at(node.weight_name).get();
          s->label = "block-matmul(" + node.weight_name + ")";
        } else if (d.arm == KernelArm::kInt8) {
          s->int8_weight = &pp->int8_weights_.at(node.weight_name);
          s->label = "int8-matmul(" + node.weight_name + ")";
        } else if (d.arm == KernelArm::kSparse) {
          s->sparse_weight = &pp->sparse_weights_.at(node.weight_name);
          s->weight_density = d.weight_density;
          char dens[32];
          std::snprintf(dens, sizeof(dens), "d=%.3f",
                        d.weight_density);
          s->label =
              "sparse-matmul(" + node.weight_name + "," + dens + ")";
        } else {
          s->weight = &pp->resident_.at(node.weight_name);
          s->label = "matmul(" + node.weight_name + ")";
        }
        if (topk_head) {
          // The stage emits the packed [k values, k indices] row, not
          // the full logits row — frozen here so every downstream
          // shape (and the stats byte accounting) reflects the
          // never-materialized head.
          s->topk = d.topk;
          s->label += "+topk(" + std::to_string(d.topk) + ")";
          s->out_sample = {2 * d.topk};
        }
        cur = rel ? Form::kBlocked : Form::kWhole;
        open = s;
        break;
      }
      case OpKind::kConv2D: {
        if (rel && cur != Form::kBlocked) {
          emit_transition(/*to_blocked=*/true, node);
          cur = Form::kBlocked;
        }
        if (!rel && cur != Form::kWhole) {
          emit_transition(/*to_blocked=*/false, node);
          cur = Form::kWhole;
        }
        PhysicalStage* s = new_stage(
            rel ? StageKind::kRelationalConv : StageKind::kConv2D, node,
            d.repr);
        s->weight = &pp->resident_.at(node.weight_name);
        s->label = (rel ? "rel-conv(" : "conv2d(") + node.weight_name +
                   ")";
        cur = rel ? Form::kBlocked : Form::kWhole;
        open = s;
        break;
      }
      case OpKind::kMaxPool: {
        // No block-relation pooling kernel: windows straddle block
        // boundaries and the op only appears in small CNNs, so both
        // representations execute it whole-tensor.
        if (cur != Form::kWhole) {
          emit_transition(/*to_blocked=*/false, node);
          cur = Form::kWhole;
        }
        PhysicalStage* s = new_stage(StageKind::kMaxPool, node, d.repr);
        s->label = "maxpool";
        open = s;
        break;
      }
      case OpKind::kFlatten: {
        // A blocked activation is already a [batch, width] relation;
        // whole tensors reshape for free. Kept as a stage so EXPLAIN
        // shows the logical boundary.
        PhysicalStage* s = new_stage(StageKind::kFlatten, node, d.repr);
        s->label = "flatten";
        open = nullptr;
        break;
      }
      case OpKind::kBiasAdd:
      case OpKind::kRelu:
      case OpKind::kSoftmax: {
        EpilogueOp op;
        op.op = node.kind;
        op.node_id = node.id;
        if (node.kind == OpKind::kBiasAdd) {
          op.bias = &pp->resident_.at(node.weight_name);
        }
        // A top-k head MUST absorb its elementwise consumers even with
        // fusion disabled: the epilogue is part of the stage's kernel
        // contract (a standalone softmax over the packed [values,
        // indices] row would be nonsense), not an optimization.
        const bool topk_open =
            open != nullptr && open->kind == StageKind::kMatMulTopK;
        const bool attachable =
            (options.fuse_elementwise || topk_open) && open != nullptr &&
            node.input == open_node && CanAttach(*open, node.kind, rel);
        if (attachable) {
          open->label += EpilogueSuffix(op);
          open->epilogue.push_back(op);
          if (!topk_open) {
            // Top-k stages keep their frozen [2k] sample — the fused
            // ops don't change the packed output row.
            open->out_sample = sample_dims(node.id);
          }
          open->estimated_flops += d.estimated_flops;
          pp->num_fused_ops_ += 1;
          break;
        }
        if (rel && node.kind == OpKind::kSoftmax) {
          if (cur != Form::kBlocked) {
            emit_transition(/*to_blocked=*/true, node);
            cur = Form::kBlocked;
          }
          PhysicalStage* s =
              new_stage(StageKind::kBlockSoftmax, node, d.repr);
          s->label = "block-softmax";
          open = nullptr;  // nothing fuses across a row-strip pass
          break;
        }
        if (rel) {
          if (cur != Form::kBlocked) {
            emit_transition(/*to_blocked=*/true, node);
            cur = Form::kBlocked;
          }
          PhysicalStage* s =
              new_stage(StageKind::kBlockElementwise, node, d.repr);
          s->label = "block-elementwise" + EpilogueSuffix(op);
          s->epilogue.push_back(op);
          open = s;
          break;
        }
        if (cur != Form::kWhole) {
          emit_transition(/*to_blocked=*/false, node);
          cur = Form::kWhole;
        }
        PhysicalStage* s =
            new_stage(StageKind::kElementwise, node, d.repr);
        s->label = "elementwise" + EpilogueSuffix(op);
        s->epilogue.push_back(op);
        open = s;
        break;
      }
    }
    open_node = node.id;
  }
  // A fused top-k head changes the plan's output contract: the model
  // output is the packed [batch, 2k] top-k relation, not the full
  // logits matrix.
  if (!pp->stages_.empty() &&
      pp->stages_.back()->kind == StageKind::kMatMulTopK) {
    pp->output_sample_ = pp->stages_.back()->out_sample;
  }
  return pp;
}

Result<const Tensor*> PhysicalPlan::ResidentWeight(
    const std::string& name) const {
  auto it = resident_.find(name);
  if (it == resident_.end()) {
    return Status::NotFound("resident weight '" + name + "'");
  }
  return &it->second;
}

Result<const BlockStore*> PhysicalPlan::BlockedWeight(
    const std::string& name) const {
  auto it = blocked_.find(name);
  if (it == blocked_.end()) {
    return Status::NotFound("blocked weight '" + name + "'");
  }
  return it->second.get();
}

std::string PhysicalPlan::ToString(bool analyze) const {
  std::string out = "PhysicalPlan " + model_->name() + ": " +
                    std::to_string(stages_.size()) + " stages, " +
                    std::to_string(num_fused_ops_) + " fused op" +
                    (num_fused_ops_ == 1 ? "" : "s") +
                    (options_.fuse_elementwise ? ""
                                               : " (fusion disabled)") +
                    "\n";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const PhysicalStage& s = *stages_[i];
    char flops[32];
    std::snprintf(flops, sizeof(flops), "%.4g", s.estimated_flops);
    out += "  [" + std::to_string(i) + "] " + s.label + " " +
           ReprName(s.repr) + " out=" + SampleString(s.out_sample) +
           " est=" + std::to_string(s.estimated_bytes) + "B flops=" +
           flops;
    if (s.device != DeviceKind::kCpu) {
      out += " @";
      out += DeviceKindName(s.device);
    }
    if (analyze) AppendStageStats(s.stats, &out);
    out += "\n";
  }
  return out;
}

std::string RenderStandaloneStage(const PhysicalStage& stage,
                                  bool analyze) {
  std::string out = "[" + std::string(StageKindName(stage.kind)) +
                    "] " + stage.label;
  if (analyze) AppendStageStats(stage.stats, &out);
  return out;
}

Result<Tensor> ExecuteColumnarGather(
    const PhysicalStage& stage,
    const std::vector<ColumnBatch>& batches, int chunk_index,
    int64_t width, const std::string& column_name,
    MemoryTracker* tracker) {
  RELSERVE_RETURN_NOT_OK(failpoint::InjectedStatus("columnar.pivot"));
  const auto t0 = std::chrono::steady_clock::now();
  int64_t total_rows = 0;
  for (const ColumnBatch& batch : batches) {
    total_rows += batch.num_rows;
  }
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor tile, Tensor::Create(Shape{total_rows, width}, tracker));
  float* dst = tile.data();
  for (const ColumnBatch& batch : batches) {
    if (batch.num_rows == 0) continue;
    const ColumnChunk& chunk = batch.columns[chunk_index];
    if (chunk.type != ValueType::kFloatVector) {
      return Status::InvalidArgument("column '" + column_name +
                                     "' is not a feature vector");
    }
    for (int64_t r = 0; r < chunk.length; ++r) {
      const int64_t n = chunk.vec_offsets[r + 1] - chunk.vec_offsets[r];
      if (n != width) {
        return Status::InvalidArgument(
            "column '" + column_name + "' row has width " +
            std::to_string(n) + ", model expects " +
            std::to_string(width));
      }
    }
    // Widths validated uniform, so the chunk's flattened payload
    // already *is* the row-major tile slice — one memcpy per chunk.
    const int64_t elems = chunk.vec_offsets[chunk.length];
    std::memcpy(dst, chunk.vec_data.data(), elems * sizeof(float));
    dst += elems;
  }
  const int64_t nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  stage.stats.invocations.fetch_add(1, std::memory_order_relaxed);
  stage.stats.nanos.fetch_add(nanos, std::memory_order_relaxed);
  stage.stats.rows.fetch_add(total_rows, std::memory_order_relaxed);
  stage.stats.bytes.fetch_add(total_rows * width * sizeof(float),
                              std::memory_order_relaxed);
  return tile;
}

}  // namespace relserve
