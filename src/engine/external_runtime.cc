#include "engine/external_runtime.h"

#include "engine/connector.h"
#include "engine/hybrid_executor.h"

namespace relserve {

namespace {

// Every node whole-tensor: the only mode a decoupled framework has
// here.
InferencePlan AllUdfPlan(const Model& model) {
  InferencePlan plan;
  plan.batch_size = 0;
  plan.memory_threshold_bytes = 0;
  plan.decisions.reserve(model.nodes().size());
  for (const Node& node : model.nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, Repr::kUdf, 0});
  }
  return plan;
}

}  // namespace

ExternalRuntime::ExternalRuntime(std::string name,
                                 int64_t memory_limit_bytes,
                                 ThreadPool* pool)
    : tracker_(std::move(name), memory_limit_bytes), pool_(pool) {
  ctx_.tracker = &tracker_;
  ctx_.pool = pool_;
  ctx_.buffer_pool = nullptr;
}

Status ExternalRuntime::RegisterModel(const Model* model) {
  if (models_.count(model->name()) > 0) {
    return Status::AlreadyExists("model '" + model->name() +
                                 "' already registered");
  }
  LoadedModel loaded;
  loaded.model = model;
  RELSERVE_ASSIGN_OR_RETURN(
      PreparedModel prepared,
      PreparedModel::Prepare(model, AllUdfPlan(*model), &ctx_));
  loaded.prepared = std::make_unique<PreparedModel>(std::move(prepared));
  models_.emplace(model->name(), std::move(loaded));
  return Status::OK();
}

Result<std::string> ExternalRuntime::Infer(
    const std::string& model_name, const std::string& request_bytes) {
  auto it = models_.find(model_name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + model_name +
                            "' not registered in runtime");
  }
  stats_.requests += 1;
  stats_.bytes_received += static_cast<int64_t>(request_bytes.size());

  // The received buffer occupies runtime memory until decode finishes.
  const int64_t wire_bytes = static_cast<int64_t>(request_bytes.size());
  RELSERVE_RETURN_NOT_OK(tracker_.Allocate(wire_bytes));
  Result<Tensor> input =
      Connector::DecodeFeatureStream(request_bytes, &tracker_);
  tracker_.Release(wire_bytes);
  RELSERVE_RETURN_NOT_OK(input.status());

  // A framework feeds the model in the sample shape it expects.
  const Model& model = *it->second.model;
  std::vector<int64_t> dims = {input->shape().dim(0)};
  for (int64_t d : model.sample_shape().dims()) dims.push_back(d);
  RELSERVE_ASSIGN_OR_RETURN(Tensor shaped,
                            input->Reshape(Shape(std::move(dims))));

  RELSERVE_ASSIGN_OR_RETURN(
      ExecOutput out,
      HybridExecutor::Run(*it->second.prepared, shaped, &ctx_));
  RELSERVE_ASSIGN_OR_RETURN(Tensor prediction, out.ToTensor(&ctx_));
  RELSERVE_ASSIGN_OR_RETURN(std::string response,
                            Connector::EncodeTensor(prediction));
  stats_.bytes_sent += static_cast<int64_t>(response.size());
  return response;
}

}  // namespace relserve
