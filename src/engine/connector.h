// Connector: the cross-system boundary of the DL-centric architecture.
//
// Models the ConnectorX-style export path of the paper's baselines:
// features leave the RDBMS as a length-framed row-oriented byte
// stream, are copied ("transmitted") into the external runtime's
// memory, and are decoded into a batch tensor there; predictions make
// the reverse trip. All of this is real work (encode + copy + decode),
// not injected sleeps — the latency penalty the paper attributes to
// cross-system transfer emerges from the extra data movement itself.

#ifndef RELSERVE_ENGINE_CONNECTOR_H_
#define RELSERVE_ENGINE_CONNECTOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relational/operator.h"
#include "resource/memory_tracker.h"
#include "tensor/tensor.h"

namespace relserve {

// Cost model of the RDBMS <-> DL-runtime hop. In the paper's
// baselines this hop is a real one — PostgreSQL -> ConnectorX ->
// Python/TensorFlow in another process — which a single-process
// reproduction cannot exhibit, so the link is *simulated*: each
// message pays a fixed per-message latency (connection/query/
// client-library overhead) plus payload/bandwidth. Defaults are
// loopback-client magnitudes; set both to zero for a free link.
// This is the only injected (non-measured) cost in relserve and is
// called out in DESIGN.md's substitution table.
struct TransferLink {
  double bandwidth_bytes_per_sec = 200e6;  // ~loopback client thrpt
  double fixed_latency_seconds = 0.02;     // per-message overhead

  double SecondsFor(int64_t bytes) const {
    double seconds = fixed_latency_seconds;
    if (bandwidth_bytes_per_sec > 0) {
      seconds += static_cast<double>(bytes) / bandwidth_bytes_per_sec;
    }
    return seconds;
  }
};

class Connector {
 public:
  // Encodes the float-vector feature column `feature_col` of every row
  // into the wire format: [u32 n_features][floats] per row.
  static Result<std::string> EncodeFeatureStream(RowIterator* rows,
                                                 int feature_col);

  // Encodes an in-memory [batch, features] tensor the same way.
  static Result<std::string> EncodeFeatureStream(const Tensor& batch);

  // Decodes a feature stream into a [batch, features] tensor charged
  // to `tracker` (the receiver's arena).
  static Result<Tensor> DecodeFeatureStream(const std::string& bytes,
                                            MemoryTracker* tracker);

  // Tensor wire format: [u32 ndim][i64 dims...][floats].
  static Result<std::string> EncodeTensor(const Tensor& t);
  static Result<Tensor> DecodeTensor(const std::string& bytes,
                                     MemoryTracker* tracker);

  // The "network": copies the payload into a receiver-side buffer.
  // The receiver (ExternalRuntime) charges the buffer to its own
  // arena for as long as it holds it. The zero-argument-link overload
  // is a pure in-process copy (used in unit tests); production
  // DL-centric paths pass a TransferLink.
  static std::string Transmit(const std::string& payload);
  static std::string Transmit(const std::string& payload,
                              const struct TransferLink& link);
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_CONNECTOR_H_
