// Block-level tensor operators over BlockStores — the physical
// implementation of the relation-centric representation.
//
// BlockMatMul is literally the paper's "join followed by aggregation"
// (Sec. 2, Sec. 7.1): the X relation {(i, k, payload)} joins the W
// relation {(j, k, payload)} on the inner block index k, each matched
// pair contributes a partial product, and partials aggregate by output
// coordinate (i, j). The physical plan here is an index-nested-loop
// join ordered so each output block's partials aggregate in registers
// before a single write — never more than three blocks are resident
// per worker.
//
// Execution is morsel-parallel over ctx->pool (serial when null): one
// morsel per independent output block / block entry / row strip. Every
// morsel owns its accumulator and aggregates in the same order as the
// serial plan, so results are bit-identical to serial execution; the
// working set grows to ~three blocks per active worker.

#ifndef RELSERVE_ENGINE_BLOCK_OPS_H_
#define RELSERVE_ENGINE_BLOCK_OPS_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "engine/exec_context.h"
#include "storage/block_store.h"
#include "tensor/tensor.h"

namespace relserve {
namespace blockops {

// Chunks an in-memory matrix into a new buffer-pool-backed store with
// the context's block geometry, using O(block) scratch memory. With
// `share_weights` set and a block index on the context, blocks are
// resolved through the content-addressed index (at the context's
// dedup tolerance) so identical blocks across deployed models share
// pages — the deploy-time weight path. Activation chunking leaves it
// false: transient stores are write-once/drop and dedup there is pure
// hashing overhead.
Result<std::unique_ptr<BlockStore>> ChunkMatrix(
    const Tensor& m, ExecContext* ctx, bool share_weights = false);

// Assembles a store back into a whole tensor charged to the context
// arena (may OOM — that is the point of the experiment).
Result<Tensor> Assemble(const BlockStore& store, ExecContext* ctx);

// A fused elementwise pass over one freshly computed output block
// (row_block, col_block, payload), applied before the block is written
// to the store — how matmul epilogues (bias add / relu) ride the block
// join in the same pass over the data instead of re-scanning the
// relation per operator. May run from several pool workers at once; it
// must be thread-safe (pure per-block transforms are).
using BlockFn = std::function<Status(int64_t, int64_t, Tensor*)>;

// C = X * W^T as block join + aggregation.
//   x: [rows, inner] blocked; w: [out, inner] blocked (weight layout).
// Result store has shape [rows, out]. When `epilogue` is non-null it
// is applied to each output block's accumulator before the single
// write — bit-identical to a separate blockwise pass, minus one full
// read/write of the relation.
Result<std::unique_ptr<BlockStore>> BlockMatMul(
    const BlockStore& x, const BlockStore& w, ExecContext* ctx,
    const BlockFn* epilogue = nullptr);

// Applies `fn` to every block payload, producing a new store with the
// same geometry. `fn` receives the block's (row_block, col_block) and
// may be invoked from several pool workers concurrently — it must be
// thread-safe (pure per-block transforms are).
Result<std::unique_ptr<BlockStore>> MapBlocks(
    const BlockStore& input,
    const std::function<Status(int64_t, int64_t, Tensor*)>& fn,
    ExecContext* ctx);

// x[r, c] += bias[c], blockwise (bias sliced per column block).
Result<std::unique_ptr<BlockStore>> BlockBiasAdd(const BlockStore& input,
                                                 const Tensor& bias,
                                                 ExecContext* ctx);

// Elementwise relu, blockwise.
Result<std::unique_ptr<BlockStore>> BlockRelu(const BlockStore& input,
                                              ExecContext* ctx);

// Row-wise softmax. Needs whole rows, so it assembles one row-block
// strip (block_rows x total_cols) at a time.
Result<std::unique_ptr<BlockStore>> BlockSoftmaxRows(
    const BlockStore& input, ExecContext* ctx);

// Appends logical rows of a fixed-width matrix into a block store in
// sequential chunks — used by the relation-centric convolution to
// stream each image's output feature map into the next activation
// relation without materializing it.
class BlockedRowAppender {
 public:
  // Creates a store of shape [num_rows, row_width] with row-strip
  // blocks (block_rows=1, block_cols=ctx block area) and positions the
  // cursor at (0, 0).
  static Result<BlockedRowAppender> Create(int64_t num_rows,
                                           int64_t row_width,
                                           ExecContext* ctx);

  // Appends `n` values to the current row. Must not overflow the row.
  Status Append(const float* values, int64_t n);

  // Finishes the current row (it must be exactly full) and moves to
  // the next.
  Status EndRow();

  // Releases the completed store (all rows must be ended).
  Result<std::unique_ptr<BlockStore>> Finish();

 private:
  BlockedRowAppender() = default;

  ExecContext* ctx_ = nullptr;
  std::unique_ptr<BlockStore> store_;
  int64_t num_rows_ = 0;
  int64_t row_width_ = 0;
  int64_t block_width_ = 0;
  int64_t current_row_ = 0;
  int64_t current_col_ = 0;
  Tensor pending_;  // current partial block
};

// Loads one logical row [width] of a store as a tensor (used to pull a
// single image out of an activation relation).
Result<Tensor> LoadRow(const BlockStore& store, int64_t row,
                       ExecContext* ctx);

// Streams a [rows, cols] matrix into a block relation one row at a
// time — how a table scan feeds a batch too large to materialize.
// The emitted geometry keeps the context's column blocking (so the
// store joins correctly against chunked weights in BlockMatMul) but
// shrinks the row-strip height so the internal buffer stays at one
// nominal block:  strip_rows = max(1, block_rows*block_cols / cols).
class MatrixStreamWriter {
 public:
  static Result<MatrixStreamWriter> Create(int64_t rows, int64_t cols,
                                           ExecContext* ctx);

  // Appends one full row (`cols` floats).
  Status AppendRow(const float* row);

  // All rows must have been appended.
  Result<std::unique_ptr<BlockStore>> Finish();

 private:
  MatrixStreamWriter() = default;

  Status FlushStrip();

  ExecContext* ctx_ = nullptr;
  std::unique_ptr<BlockStore> store_;
  Tensor strip_;            // [strip_rows, cols] staging buffer
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t strip_rows_ = 0;  // nominal strip height
  int64_t next_row_ = 0;    // rows appended so far
  int64_t in_strip_ = 0;    // rows buffered in the current strip
};

}  // namespace blockops
}  // namespace relserve

#endif  // RELSERVE_ENGINE_BLOCK_OPS_H_
