// HybridExecutor: the stage runner over compiled physical plans.
//
// This is the paper's "middle ground": any subgraph may execute
// UDF-centric (whole tensors in the working arena) or
// relation-centric (block relations through the buffer pool), with
// transitions between the two. A plan of all-UDF nodes is the pure
// UDF-centric architecture; all-relational is the pure
// relation-centric architecture; the adaptive optimizer emits mixes.
//
// All of those decisions are taken once, at deploy time, by
// PhysicalPlan::Compile. Serving a request is a flat loop over the
// compiled stages — no graph walking, no per-request dispatch on
// op kind x representation, elementwise chains fused into their
// producer — that records per-stage wall time, rows and bytes into
// the plan's StageStats (rendered by EXPLAIN ANALYZE) and totals
// into ExecStats.
//
// Every allocation on the UDF path is charged to the context arena, so
// an operator whose whole-tensor footprint exceeds the arena comes
// back as Status::OutOfMemory — the Table 3 outcome. A storage-tier
// failure inside a relation-centric stage re-executes just that stage
// UDF-centric (same math, same bits), preserving PR-4's graceful
// degradation.

#ifndef RELSERVE_ENGINE_HYBRID_EXECUTOR_H_
#define RELSERVE_ENGINE_HYBRID_EXECUTOR_H_

#include <memory>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/physical_plan.h"
#include "engine/prepared_model.h"
#include "storage/block_store.h"
#include "tensor/tensor.h"

namespace relserve {

// The result of an inference: whole tensor if the final stage ran
// UDF-centric, block relation if it ran relation-centric (a
// larger-than-memory output stays blocked, as LandCover's feature map
// must).
struct ExecOutput {
  Tensor tensor;
  std::unique_ptr<BlockStore> store;

  bool blocked() const { return store != nullptr; }

  // Materializes the output as a whole tensor (assembling a blocked
  // result through the arena, which may OOM if it truly does not fit).
  Result<Tensor> ToTensor(ExecContext* ctx) const;
};

class HybridExecutor {
 public:
  // `input` is the batched feature tensor, batch on dim 0, sample
  // dims matching the model's sample shape.
  static Result<ExecOutput> Run(const PreparedModel& prepared,
                                const Tensor& input, ExecContext* ctx);
  static Result<ExecOutput> Run(const PhysicalPlan& plan,
                                const Tensor& input, ExecContext* ctx);

  // Runs on an input that is already a block relation
  // ([batch, sample_width]) — used when the batch itself exceeds the
  // working arena and was streamed into the store straight from a
  // table scan, never materialized whole.
  static Result<ExecOutput> RunOnStore(
      const PreparedModel& prepared,
      std::unique_ptr<BlockStore> input_store, ExecContext* ctx);
  static Result<ExecOutput> RunOnStore(
      const PhysicalPlan& plan, std::unique_ptr<BlockStore> input_store,
      ExecContext* ctx);
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_HYBRID_EXECUTOR_H_
