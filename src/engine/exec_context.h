// ExecContext: the resources one inference query executes against.

#ifndef RELSERVE_ENGINE_EXEC_CONTEXT_H_
#define RELSERVE_ENGINE_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "resource/memory_tracker.h"
#include "resource/thread_pool.h"
#include "storage/buffer_pool.h"

namespace relserve {

class PhysicalBlockIndex;

// Counters are atomics because relation-centric operators update them
// from inside ParallelFor morsels; totals stay exact under any
// interleaving.
struct ExecStats {
  std::atomic<int64_t> blocks_read{0};  // tensor blocks loaded
  std::atomic<int64_t> blocks_written{0};  // tensor blocks stored
  std::atomic<int64_t> assembles{0};  // blocked -> whole transitions
  std::atomic<int64_t> chunkings{0};  // whole -> blocked transitions
  // Block-scan prefetch pipeline: page prefetches issued for the next
  // block while the current one computes, and page pins that found
  // the page already loaded by that prefetch.
  std::atomic<int64_t> prefetch_issued{0};
  std::atomic<int64_t> prefetch_useful{0};
  // Nodes planned relation-centric that a storage-tier failure forced
  // to re-execute UDF-centric (DESIGN.md "Fault model & recovery").
  std::atomic<int64_t> repr_fallbacks{0};
  // Compiled-plan execution: physical stages run and wall time spent
  // inside them (the stage runner's per-request attribution; the
  // per-stage breakdown lives in PhysicalPlan's StageStats).
  std::atomic<int64_t> stages_executed{0};
  std::atomic<int64_t> stage_nanos{0};
  // Relational scan volume: rows decoded from table storage (either
  // layout) and the payload bytes those rows carried. Bumped from
  // inside fragment-parallel morsels; EXPLAIN ANALYZE renders both.
  std::atomic<int64_t> rows_scanned{0};
  std::atomic<int64_t> bytes_scanned{0};

  ExecStats() = default;
  ExecStats(const ExecStats& other) { *this = other; }
  // Snapshot with relaxed loads/stores: readers copy stats while
  // workers are still bumping them; each counter is independently
  // coherent and no ordering between counters is implied (or needed).
  ExecStats& operator=(const ExecStats& other) {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    blocks_read.store(other.blocks_read.load(kRelaxed), kRelaxed);
    blocks_written.store(other.blocks_written.load(kRelaxed), kRelaxed);
    assembles.store(other.assembles.load(kRelaxed), kRelaxed);
    chunkings.store(other.chunkings.load(kRelaxed), kRelaxed);
    prefetch_issued.store(other.prefetch_issued.load(kRelaxed),
                          kRelaxed);
    prefetch_useful.store(other.prefetch_useful.load(kRelaxed),
                          kRelaxed);
    repr_fallbacks.store(other.repr_fallbacks.load(kRelaxed), kRelaxed);
    stages_executed.store(other.stages_executed.load(kRelaxed),
                          kRelaxed);
    stage_nanos.store(other.stage_nanos.load(kRelaxed), kRelaxed);
    rows_scanned.store(other.rows_scanned.load(kRelaxed), kRelaxed);
    bytes_scanned.store(other.bytes_scanned.load(kRelaxed), kRelaxed);
    return *this;
  }

  std::string ToString() const {
    return "blocks_read=" + std::to_string(blocks_read.load()) +
           " blocks_written=" + std::to_string(blocks_written.load()) +
           " assembles=" + std::to_string(assembles.load()) +
           " chunkings=" + std::to_string(chunkings.load()) +
           " prefetch_issued=" + std::to_string(prefetch_issued.load()) +
           " prefetch_useful=" + std::to_string(prefetch_useful.load()) +
           " repr_fallbacks=" + std::to_string(repr_fallbacks.load()) +
           " stages_executed=" + std::to_string(stages_executed.load()) +
           " rows_scanned=" + std::to_string(rows_scanned.load()) +
           " bytes_scanned=" + std::to_string(bytes_scanned.load());
  }
};

struct ExecContext {
  // Working-memory arena: whole tensors in UDF-centric mode, and the
  // few in-flight blocks in relation-centric mode, are charged here.
  MemoryTracker* tracker = nullptr;
  // Intra-operator parallelism (may be null for serial execution).
  ThreadPool* pool = nullptr;
  // Page cache backing relation-centric block stores (required for
  // relation-centric / hybrid plans).
  BufferPool* buffer_pool = nullptr;
  // Nominal tensor block geometry for relation-centric chunking.
  int64_t block_rows = 512;
  int64_t block_cols = 512;
  // Content-addressed physical block index for deploy-time weight
  // binding (null = every store owns private pages). Transient
  // activation stores never route through it regardless.
  PhysicalBlockIndex* block_index = nullptr;
  // Elementwise tolerance for weight dedup (0 = byte-exact; the
  // paper's accuracy-aware mode accepts a bounded L-infinity error).
  float dedup_tolerance = 0.0f;

  ExecStats stats;
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_EXEC_CONTEXT_H_
