// ExecContext: the resources one inference query executes against.

#ifndef RELSERVE_ENGINE_EXEC_CONTEXT_H_
#define RELSERVE_ENGINE_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "resource/memory_tracker.h"
#include "resource/thread_pool.h"
#include "storage/buffer_pool.h"

namespace relserve {

// Counters are atomics because relation-centric operators update them
// from inside ParallelFor morsels; totals stay exact under any
// interleaving.
struct ExecStats {
  std::atomic<int64_t> blocks_read{0};  // tensor blocks loaded
  std::atomic<int64_t> blocks_written{0};  // tensor blocks stored
  std::atomic<int64_t> assembles{0};  // blocked -> whole transitions
  std::atomic<int64_t> chunkings{0};  // whole -> blocked transitions
  // Block-scan prefetch pipeline: page prefetches issued for the next
  // block while the current one computes, and page pins that found
  // the page already loaded by that prefetch.
  std::atomic<int64_t> prefetch_issued{0};
  std::atomic<int64_t> prefetch_useful{0};
  // Nodes planned relation-centric that a storage-tier failure forced
  // to re-execute UDF-centric (DESIGN.md "Fault model & recovery").
  std::atomic<int64_t> repr_fallbacks{0};

  ExecStats() = default;
  ExecStats(const ExecStats& other) { *this = other; }
  ExecStats& operator=(const ExecStats& other) {
    blocks_read = other.blocks_read.load();
    blocks_written = other.blocks_written.load();
    assembles = other.assembles.load();
    chunkings = other.chunkings.load();
    prefetch_issued = other.prefetch_issued.load();
    prefetch_useful = other.prefetch_useful.load();
    repr_fallbacks = other.repr_fallbacks.load();
    return *this;
  }

  std::string ToString() const {
    return "blocks_read=" + std::to_string(blocks_read.load()) +
           " blocks_written=" + std::to_string(blocks_written.load()) +
           " assembles=" + std::to_string(assembles.load()) +
           " chunkings=" + std::to_string(chunkings.load()) +
           " prefetch_issued=" + std::to_string(prefetch_issued.load()) +
           " prefetch_useful=" + std::to_string(prefetch_useful.load()) +
           " repr_fallbacks=" + std::to_string(repr_fallbacks.load());
  }
};

struct ExecContext {
  // Working-memory arena: whole tensors in UDF-centric mode, and the
  // few in-flight blocks in relation-centric mode, are charged here.
  MemoryTracker* tracker = nullptr;
  // Intra-operator parallelism (may be null for serial execution).
  ThreadPool* pool = nullptr;
  // Page cache backing relation-centric block stores (required for
  // relation-centric / hybrid plans).
  BufferPool* buffer_pool = nullptr;
  // Nominal tensor block geometry for relation-centric chunking.
  int64_t block_rows = 512;
  int64_t block_cols = 512;

  ExecStats stats;
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_EXEC_CONTEXT_H_
