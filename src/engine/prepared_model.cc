#include "engine/prepared_model.h"

#include "engine/block_ops.h"

namespace relserve {

Result<PreparedModel> PreparedModel::Prepare(const Model* model,
                                             InferencePlan plan,
                                             ExecContext* ctx) {
  if (plan.decisions.size() != model->nodes().size()) {
    return Status::InvalidArgument("plan does not cover the model");
  }
  PreparedModel pm;
  pm.model_ = model;
  pm.plan_ = std::move(plan);

  for (const Node& node : model->nodes()) {
    if (node.weight_name.empty()) continue;
    const Repr repr = pm.plan_.decisions[node.id].repr;
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* weight,
                              model->GetWeight(node.weight_name));
    const bool chunkable =
        node.kind == OpKind::kMatMul && repr == Repr::kRelational;
    if (chunkable) {
      if (pm.blocked_.count(node.weight_name) > 0) continue;
      // Chunk [out, in] weight into a block relation; only O(block)
      // scratch is charged to the working arena.
      RELSERVE_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> store,
                                blockops::ChunkMatrix(*weight, ctx));
      pm.blocked_.emplace(node.weight_name, std::move(store));
    } else {
      if (pm.resident_.count(node.weight_name) > 0) continue;
      // Whole-tensor weight resident in the working arena. A Conv2D
      // kernel is small even for the paper's large conv workloads
      // (the *feature maps* are what explode), so kernels stay
      // resident in both representations.
      RELSERVE_ASSIGN_OR_RETURN(Tensor copy,
                                weight->Clone(ctx->tracker));
      pm.resident_.emplace(node.weight_name, std::move(copy));
    }
  }
  return pm;
}

Result<const Tensor*> PreparedModel::ResidentWeight(
    const std::string& name) const {
  auto it = resident_.find(name);
  if (it == resident_.end()) {
    return Status::NotFound("resident weight '" + name + "'");
  }
  return &it->second;
}

Result<const BlockStore*> PreparedModel::BlockedWeight(
    const std::string& name) const {
  auto it = blocked_.find(name);
  if (it == blocked_.end()) {
    return Status::NotFound("blocked weight '" + name + "'");
  }
  return it->second.get();
}

}  // namespace relserve
