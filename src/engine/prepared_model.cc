#include "engine/prepared_model.h"

namespace relserve {

Result<PreparedModel> PreparedModel::Prepare(
    const Model* model, InferencePlan plan, ExecContext* ctx,
    PhysicalPlan::Options options) {
  PreparedModel pm;
  RELSERVE_ASSIGN_OR_RETURN(
      pm.physical_,
      PhysicalPlan::Compile(model, std::move(plan), ctx, options));
  return pm;
}

}  // namespace relserve
