// PipelineExecutor: the paper's Sec. 5(2) — DL-style pipelining inside
// the RDBMS. The model UDF is broken into fine-grained operator UDFs,
// one pipeline stage per operator, connected by bounded queues of
// micro-batches and executed by concurrent stage workers in streaming
// fashion.
//
// This is the *other* parallelism regime the paper contrasts with the
// RDBMS's data parallelism: peak memory is bounded by
//   stages x queue_capacity x micro-batch activation size
// instead of whole-batch activations, and no global shuffle is needed
// between operators. (With one worker per stage it also overlaps
// operator compute across micro-batches on multicore hosts.)

#ifndef RELSERVE_ENGINE_PIPELINE_EXECUTOR_H_
#define RELSERVE_ENGINE_PIPELINE_EXECUTOR_H_

#include <cstdint>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/prepared_model.h"
#include "tensor/tensor.h"

namespace relserve {

struct PipelineConfig {
  // Rows per in-flight micro-batch.
  int64_t micro_batch_rows = 64;
  // Bounded queue depth between adjacent stages (backpressure).
  int64_t queue_capacity = 2;
};

class PipelineExecutor {
 public:
  // Runs the model as a stage-per-operator stream pipeline over
  // `input` ([batch, sample...]). Every node must have been prepared
  // with the UDF representation (stages execute whole micro-batch
  // tensors). Returns the assembled [batch, out...] prediction.
  static Result<Tensor> Run(const PreparedModel& prepared,
                            const Tensor& input, ExecContext* ctx,
                            PipelineConfig config = PipelineConfig());
};

}  // namespace relserve

#endif  // RELSERVE_ENGINE_PIPELINE_EXECUTOR_H_
