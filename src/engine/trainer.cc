#include "engine/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/kernels.h"

namespace relserve {

namespace {

struct Layer {
  std::string w_name;
  std::string b_name;
  bool relu = false;  // hidden layers; the last layer is softmax
};

// Parses the FFNN chain or fails.
Result<std::vector<Layer>> ExtractLayers(const Model& model) {
  const auto& nodes = model.nodes();
  if (nodes.empty() || nodes[0].kind != OpKind::kInput) {
    return Status::InvalidArgument("model does not start with Input");
  }
  std::vector<Layer> layers;
  size_t i = 1;
  while (i < nodes.size()) {
    if (i + 2 >= nodes.size() + 1 || nodes[i].kind != OpKind::kMatMul ||
        i + 1 >= nodes.size() ||
        nodes[i + 1].kind != OpKind::kBiasAdd ||
        i + 2 >= nodes.size()) {
      return Status::InvalidArgument(
          "not a trainable FFNN chain (MatMul/BiasAdd/activation)");
    }
    Layer layer;
    layer.w_name = nodes[i].weight_name;
    layer.b_name = nodes[i + 1].weight_name;
    const OpKind act = nodes[i + 2].kind;
    if (act == OpKind::kRelu) {
      layer.relu = true;
    } else if (act == OpKind::kSoftmax) {
      layer.relu = false;
      if (i + 3 != nodes.size()) {
        return Status::InvalidArgument(
            "softmax must be the final operator");
      }
    } else {
      return Status::InvalidArgument("unsupported activation in chain");
    }
    layers.push_back(std::move(layer));
    i += 3;
  }
  if (layers.empty() || layers.back().relu) {
    return Status::InvalidArgument("chain must end in softmax");
  }
  return layers;
}

}  // namespace

bool SgdTrainer::IsTrainable(const Model& model) {
  return ExtractLayers(model).ok();
}

Result<double> SgdTrainer::TrainStep(Model* model, const Tensor& x,
                                     const std::vector<int64_t>& labels,
                                     float learning_rate,
                                     ExecContext* ctx) {
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Layer> layers,
                            ExtractLayers(*model));
  const int64_t batch = x.shape().dim(0);
  if (static_cast<int64_t>(labels.size()) != batch) {
    return Status::InvalidArgument("labels/batch mismatch");
  }
  const size_t num_layers = layers.size();

  // Forward, retaining pre-activation inputs per layer.
  // inputs[l] = activation feeding layer l; z[l] = its pre-activation
  // output (post-bias, pre-relu).
  std::vector<Tensor> inputs(num_layers);
  std::vector<Tensor> z(num_layers);
  Tensor a = x;
  for (size_t l = 0; l < num_layers; ++l) {
    inputs[l] = a;
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                              model->GetWeight(layers[l].w_name));
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* b,
                              model->GetWeight(layers[l].b_name));
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor out, kernels::MatMul(a, *w, /*transpose_b=*/true,
                                    ctx->tracker, ctx->pool));
    RELSERVE_RETURN_NOT_OK(kernels::BiasAddInPlace(&out, *b));
    z[l] = out;
    if (layers[l].relu) {
      RELSERVE_ASSIGN_OR_RETURN(a, out.Clone(ctx->tracker));
      kernels::ReluInPlace(&a);
    } else {
      a = out;
    }
  }

  // Softmax probabilities + mean cross-entropy.
  RELSERVE_ASSIGN_OR_RETURN(Tensor probs,
                            z.back().Clone(ctx->tracker));
  RELSERVE_RETURN_NOT_OK(kernels::SoftmaxRowsInPlace(&probs));
  const int64_t classes = probs.shape().dim(1);
  double loss = 0.0;
  for (int64_t i = 0; i < batch; ++i) {
    if (labels[i] < 0 || labels[i] >= classes) {
      return Status::InvalidArgument("label out of range");
    }
    loss -= std::log(
        std::max(probs.At(i, labels[i]), 1e-12f));
  }
  loss /= static_cast<double>(batch);

  // Backward: dz for the softmax + cross-entropy head.
  RELSERVE_ASSIGN_OR_RETURN(Tensor dz, probs.Clone(ctx->tracker));
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t i = 0; i < batch; ++i) {
    dz.At(i, labels[i]) -= 1.0f;
  }
  for (int64_t i = 0; i < dz.NumElements(); ++i) {
    dz.data()[i] *= inv_batch;
  }

  for (size_t l = num_layers; l-- > 0;) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor * w,
                              model->GetMutableWeight(layers[l].w_name));
    RELSERVE_ASSIGN_OR_RETURN(Tensor * b,
                              model->GetMutableWeight(layers[l].b_name));
    // dW[out, in] = dz^T * input; db = colsum(dz).
    RELSERVE_ASSIGN_OR_RETURN(Tensor dw,
                              Tensor::Create(w->shape(), ctx->tracker));
    RELSERVE_RETURN_NOT_OK(
        kernels::GemmTransAInto(dz, inputs[l], /*accumulate=*/false,
                                &dw, ctx->pool));
    RELSERVE_ASSIGN_OR_RETURN(Tensor db,
                              Tensor::Create(b->shape(), ctx->tracker));
    RELSERVE_RETURN_NOT_OK(kernels::ColumnSumInto(dz, &db));

    if (l > 0) {
      // da_prev = dz * W; then through the previous relu's mask.
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor da, kernels::MatMul(dz, *w, /*transpose_b=*/false,
                                     ctx->tracker, ctx->pool));
      const Tensor& prev_z = z[l - 1];
      for (int64_t i = 0; i < da.NumElements(); ++i) {
        if (prev_z.data()[i] <= 0.0f) da.data()[i] = 0.0f;
      }
      dz = std::move(da);
    }

    // SGD update, in place.
    for (int64_t i = 0; i < w->NumElements(); ++i) {
      w->data()[i] -= learning_rate * dw.data()[i];
    }
    for (int64_t i = 0; i < b->NumElements(); ++i) {
      b->data()[i] -= learning_rate * db.data()[i];
    }
  }
  return loss;
}

Result<double> SgdTrainer::Fit(Model* model, const Tensor& x,
                               const std::vector<int64_t>& labels,
                               float learning_rate, int epochs,
                               int64_t batch_size, ExecContext* ctx) {
  const int64_t n = x.shape().dim(0);
  const int64_t width = x.shape().dim(1);
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    epoch_loss = 0.0;
    int64_t steps = 0;
    for (int64_t row = 0; row < n; row += batch_size) {
      const int64_t rows = std::min(batch_size, n - row);
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor chunk, Tensor::Create(Shape{rows, width},
                                       ctx->tracker));
      std::memcpy(chunk.data(), x.data() + row * width,
                  rows * width * sizeof(float));
      std::vector<int64_t> chunk_labels(labels.begin() + row,
                                        labels.begin() + row + rows);
      RELSERVE_ASSIGN_OR_RETURN(
          double loss, TrainStep(model, chunk, chunk_labels,
                                 learning_rate, ctx));
      epoch_loss += loss;
      ++steps;
    }
    epoch_loss /= std::max<int64_t>(1, steps);
  }
  return epoch_loss;
}

Result<double> SgdTrainer::Evaluate(const Model& model, const Tensor& x,
                                    const std::vector<int64_t>& labels,
                                    ExecContext* ctx) {
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Layer> layers,
                            ExtractLayers(model));
  Tensor a = x;
  for (const Layer& layer : layers) {
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                              model.GetWeight(layer.w_name));
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* b,
                              model.GetWeight(layer.b_name));
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor out, kernels::MatMul(a, *w, /*transpose_b=*/true,
                                    ctx->tracker, ctx->pool));
    RELSERVE_RETURN_NOT_OK(kernels::BiasAddInPlace(&out, *b));
    if (layer.relu) kernels::ReluInPlace(&out);
    a = std::move(out);
  }
  const std::vector<int64_t> pred = kernels::ArgMaxRows(a);
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == labels[i];
  }
  return static_cast<double>(correct) / pred.size();
}

}  // namespace relserve
