#include "engine/connector.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace relserve {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const char*& cursor, const char* end, T* v) {
  if (cursor + sizeof(T) > end) return false;
  std::memcpy(v, cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

}  // namespace

Result<std::string> Connector::EncodeFeatureStream(RowIterator* rows,
                                                   int feature_col) {
  RELSERVE_RETURN_NOT_OK(rows->Open());
  std::string out;
  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, rows->Next(&row));
    if (!has) break;
    const Value& v = row.value(feature_col);
    if (v.type() != ValueType::kFloatVector) {
      return Status::InvalidArgument(
          "feature column must be FLOAT_VECTOR, got " +
          std::string(ValueTypeName(v.type())));
    }
    const std::vector<float>& features = v.AsFloatVector();
    AppendPod<uint32_t>(&out, static_cast<uint32_t>(features.size()));
    out.append(reinterpret_cast<const char*>(features.data()),
               features.size() * sizeof(float));
  }
  return out;
}

Result<std::string> Connector::EncodeFeatureStream(const Tensor& batch) {
  if (batch.shape().ndim() != 2) {
    return Status::InvalidArgument(
        "feature batch must be [batch, features]");
  }
  const int64_t n = batch.shape().dim(0);
  const int64_t width = batch.shape().dim(1);
  std::string out;
  out.reserve(n * (sizeof(uint32_t) + width * sizeof(float)));
  for (int64_t r = 0; r < n; ++r) {
    AppendPod<uint32_t>(&out, static_cast<uint32_t>(width));
    out.append(reinterpret_cast<const char*>(batch.data() + r * width),
               width * sizeof(float));
  }
  return out;
}

Result<Tensor> Connector::DecodeFeatureStream(const std::string& bytes,
                                              MemoryTracker* tracker) {
  // First pass: count rows and validate framing.
  const char* cursor = bytes.data();
  const char* end = cursor + bytes.size();
  int64_t rows = 0;
  int64_t width = -1;
  while (cursor < end) {
    uint32_t n;
    if (!ReadPod(cursor, end, &n) || cursor + n * sizeof(float) > end) {
      return Status::Internal("feature stream framing error");
    }
    if (width < 0) {
      width = n;
    } else if (width != n) {
      return Status::InvalidArgument("ragged feature stream");
    }
    cursor += n * sizeof(float);
    ++rows;
  }
  if (rows == 0) {
    return Status::InvalidArgument("empty feature stream");
  }
  RELSERVE_ASSIGN_OR_RETURN(Tensor out,
                            Tensor::Create(Shape{rows, width}, tracker));
  cursor = bytes.data();
  float* dst = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    cursor += sizeof(uint32_t);
    std::memcpy(dst + r * width, cursor, width * sizeof(float));
    cursor += width * sizeof(float);
  }
  return out;
}

Result<std::string> Connector::EncodeTensor(const Tensor& t) {
  if (!t.is_valid()) {
    return Status::InvalidArgument("encode of empty tensor");
  }
  std::string out;
  AppendPod<uint32_t>(&out, static_cast<uint32_t>(t.shape().ndim()));
  for (int64_t d : t.shape().dims()) AppendPod<int64_t>(&out, d);
  out.append(reinterpret_cast<const char*>(t.data()), t.ByteSize());
  return out;
}

Result<Tensor> Connector::DecodeTensor(const std::string& bytes,
                                       MemoryTracker* tracker) {
  const char* cursor = bytes.data();
  const char* end = cursor + bytes.size();
  uint32_t ndim;
  if (!ReadPod(cursor, end, &ndim) || ndim > 8) {
    return Status::Internal("tensor wire: bad rank");
  }
  std::vector<int64_t> dims(ndim);
  for (uint32_t i = 0; i < ndim; ++i) {
    if (!ReadPod(cursor, end, &dims[i])) {
      return Status::Internal("tensor wire: truncated dims");
    }
  }
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Create(Shape(std::move(dims)), tracker));
  if (cursor + out.ByteSize() != end) {
    return Status::Internal("tensor wire: payload size mismatch");
  }
  std::memcpy(out.data(), cursor, out.ByteSize());
  return out;
}

std::string Connector::Transmit(const std::string& payload) {
  return std::string(payload.data(), payload.size());
}

std::string Connector::Transmit(const std::string& payload,
                                const TransferLink& link) {
  const double seconds =
      link.SecondsFor(static_cast<int64_t>(payload.size()));
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  return std::string(payload.data(), payload.size());
}

}  // namespace relserve
