// Deterministic pseudo-random helpers for synthetic workloads and tests.

#ifndef RELSERVE_COMMON_RANDOM_H_
#define RELSERVE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace relserve {

// A seeded engine wrapper so workloads are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  int64_t UniformInt(int64_t lo, int64_t hi) {  // inclusive bounds
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace relserve

#endif  // RELSERVE_COMMON_RANDOM_H_
