#include "common/crc32c.h"

#include <atomic>

namespace relserve {
namespace crc32c {

namespace {

// Slice-by-8: eight 256-entry tables, one table lookup per input byte
// with eight bytes in flight per iteration. Generated once at first
// use from the reflected Castagnoli polynomial.
struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

bool HardwareCrcSupported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

ExtendFn ResolveBackend() {
  return HardwareCrcSupported() ? internal::ExtendSse42
                                : internal::ExtendScalar;
}

std::atomic<ExtendFn>& BackendStorage() {
  static std::atomic<ExtendFn> backend{ResolveBackend()};
  return backend;
}

}  // namespace

namespace internal {

uint32_t ExtendScalar(uint32_t crc, const char* data, size_t n) {
  const Tables& tables = GetTables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (n >= 8) {
    // Little-endian assemble; the bytewise tail below is the portable
    // reference, and this path matches it bit-for-bit.
    const uint64_t word = static_cast<uint64_t>(p[0]) |
                          (static_cast<uint64_t>(p[1]) << 8) |
                          (static_cast<uint64_t>(p[2]) << 16) |
                          (static_cast<uint64_t>(p[3]) << 24) |
                          (static_cast<uint64_t>(p[4]) << 32) |
                          (static_cast<uint64_t>(p[5]) << 40) |
                          (static_cast<uint64_t>(p[6]) << 48) |
                          (static_cast<uint64_t>(p[7]) << 56);
    const uint64_t x = word ^ c;
    c = tables.t[7][x & 0xFF] ^ tables.t[6][(x >> 8) & 0xFF] ^
        tables.t[5][(x >> 16) & 0xFF] ^ tables.t[4][(x >> 24) & 0xFF] ^
        tables.t[3][(x >> 32) & 0xFF] ^ tables.t[2][(x >> 40) & 0xFF] ^
        tables.t[1][(x >> 48) & 0xFF] ^ tables.t[0][(x >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = (c >> 8) ^ tables.t[0][(c ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~c;
}

}  // namespace internal

uint32_t Extend(uint32_t crc, const char* data, size_t n) {
  return BackendStorage().load(std::memory_order_relaxed)(crc, data, n);
}

bool UsingHardware() {
  return BackendStorage().load(std::memory_order_relaxed) ==
         internal::ExtendSse42;
}

}  // namespace crc32c
}  // namespace relserve
