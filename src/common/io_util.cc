#include "common/io_util.h"

#include <unistd.h>

#include <algorithm>
#include <string>

#include "common/failpoint.h"

namespace relserve {
namespace io {

namespace {

// Evaluates the per-attempt failpoints shared by every full-transfer
// loop: returns true when the attempt must report EINTR; otherwise
// caps *req when the short-transfer site fired.
bool InjectEintrOrShort(const char* eintr_site, const char* short_site,
                        int64_t* req) {
  if (!failpoint::AnyActive()) return false;
  if (eintr_site != nullptr &&
      failpoint::Evaluate(eintr_site).fired) {
    errno = EINTR;
    return true;
  }
  if (short_site != nullptr &&
      failpoint::Evaluate(short_site).fired) {
    *req = std::max<int64_t>(1, *req / 2);
  }
  return false;
}

}  // namespace

Status PreadFull(int fd, char* buf, int64_t len, int64_t offset,
                 const char* eintr_site, const char* short_site,
                 int64_t* out_done) {
  int64_t done = 0;
  while (done < len) {
    int64_t req = len - done;
    ssize_t n;
    if (InjectEintrOrShort(eintr_site, short_site, &req)) {
      n = -1;
    } else {
      n = ::pread(fd, buf + done, static_cast<size_t>(req),
                  offset + done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread at offset " +
                             std::to_string(offset + done));
    }
    if (n == 0) break;  // past EOF
    done += n;
  }
  *out_done = done;
  return Status::OK();
}

Status PwriteFull(int fd, const char* buf, int64_t len, int64_t offset,
                  const char* eintr_site, const char* short_site) {
  int64_t done = 0;
  while (done < len) {
    int64_t req = len - done;
    ssize_t n;
    if (InjectEintrOrShort(eintr_site, short_site, &req)) {
      n = -1;
    } else {
      n = ::pwrite(fd, buf + done, static_cast<size_t>(req),
                   offset + done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite at offset " +
                             std::to_string(offset + done));
    }
    done += n;
  }
  return Status::OK();
}

ssize_t ReadSome(int fd, char* buf, size_t len,
                 const char* short_site) {
  if (short_site != nullptr && failpoint::AnyActive() &&
      failpoint::Evaluate(short_site).fired) {
    // Deliver the stream a few bytes at a time: every frame boundary
    // lands mid-header or mid-payload, forcing the reassembly path.
    len = std::min<size_t>(len, 3);
  }
  return RetryEintr([&] { return ::read(fd, buf, len); });
}

ssize_t WriteSome(int fd, const char* buf, size_t len) {
  return RetryEintr([&] { return ::write(fd, buf, len); });
}

}  // namespace io
}  // namespace relserve
