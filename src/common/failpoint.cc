#include "common/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <thread>

namespace relserve {
namespace failpoint {

namespace {

// FNV-1a, used to derive a per-site seed from the global seed so two
// sites armed with the same schedule draw independent streams.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct SiteState {
  Spec spec;
  int64_t hits = 0;
  int64_t fires = 0;
  std::mt19937_64 rng;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
  uint64_t global_seed = 42;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

void EnableLocked(Registry& registry, const std::string& site,
                  Spec spec) {
  auto [it, inserted] = registry.sites.try_emplace(site);
  SiteState& state = it->second;
  state.spec = spec;
  state.hits = 0;
  state.fires = 0;
  const uint64_t seed = spec.seed != 0
                            ? spec.seed
                            : registry.global_seed ^ HashName(site);
  state.rng.seed(seed);
  if (inserted) {
    ArmedCount().fetch_add(1, std::memory_order_relaxed);
  }
}

// --- RELSERVE_FAILPOINTS grammar -------------------------------------
//
//   sites  := site (';' site)*
//   site   := NAME '=' field (',' field)*
//   field  := 'error' ['(' CODE ')'] | 'delay' '(' USEC ')'
//           | 'torn' | 'bitflip' | 'p=' FLOAT | 'skip=' INT
//           | 'limit=' INT | 'once' | 'seed=' INT

bool ParseCode(const std::string& name, StatusCode* out) {
  static const std::map<std::string, StatusCode> kCodes = {
      {"IOError", StatusCode::kIOError},
      {"Unavailable", StatusCode::kUnavailable},
      {"DataLoss", StatusCode::kDataLoss},
      {"Internal", StatusCode::kInternal},
      {"OutOfMemory", StatusCode::kOutOfMemory},
      {"DeadlineExceeded", StatusCode::kDeadlineExceeded},
      {"NotFound", StatusCode::kNotFound},
      {"ProtocolError", StatusCode::kProtocolError},
  };
  auto it = kCodes.find(name);
  if (it == kCodes.end()) return false;
  *out = it->second;
  return true;
}

Status ParseField(const std::string& field, Spec* spec) {
  auto arg_of = [&field](size_t open) {
    const size_t close = field.rfind(')');
    if (close == std::string::npos || close <= open + 1) {
      return std::string();
    }
    return field.substr(open + 1, close - open - 1);
  };
  if (field == "error") {
    spec->action = Action::kError;
    return Status::OK();
  }
  if (field.rfind("error(", 0) == 0) {
    spec->action = Action::kError;
    const std::string code = arg_of(5);
    if (!ParseCode(code, &spec->error_code)) {
      return Status::InvalidArgument("failpoint: unknown status code '" +
                                     code + "'");
    }
    return Status::OK();
  }
  if (field.rfind("delay(", 0) == 0) {
    spec->action = Action::kDelayUs;
    const std::string usec = arg_of(5);
    char* end = nullptr;
    spec->delay_us = std::strtoll(usec.c_str(), &end, 10);
    if (usec.empty() || *end != '\0' || spec->delay_us < 0) {
      return Status::InvalidArgument("failpoint: bad delay '" + usec +
                                     "'");
    }
    return Status::OK();
  }
  if (field == "torn") {
    spec->action = Action::kTornWrite;
    return Status::OK();
  }
  if (field == "bitflip") {
    spec->action = Action::kBitflip;
    return Status::OK();
  }
  if (field == "once") {
    spec->limit = 1;
    return Status::OK();
  }
  const size_t eq = field.find('=');
  if (eq != std::string::npos) {
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    char* end = nullptr;
    if (key == "p") {
      spec->probability = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || spec->probability < 0.0 ||
          spec->probability > 1.0) {
        return Status::InvalidArgument("failpoint: bad probability '" +
                                       value + "'");
      }
      return Status::OK();
    }
    if (key == "skip" || key == "limit" || key == "seed") {
      const int64_t n = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || n < 0) {
        return Status::InvalidArgument("failpoint: bad " + key + " '" +
                                       value + "'");
      }
      if (key == "skip") spec->skip = n;
      if (key == "limit") spec->limit = n;
      if (key == "seed") spec->seed = static_cast<uint64_t>(n);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("failpoint: unknown field '" + field +
                                 "'");
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

// Parses RELSERVE_FAILPOINTS exactly once, before the first site
// evaluation or registry touch. Malformed entries are skipped with the
// rest still armed (an operator typo must not take serving down).
void ParseEnvOnce() {
  static const bool parsed = [] {
    const char* env = std::getenv("RELSERVE_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      EnableFromString(env);  // best effort; errors skip the entry
    }
    return true;
  }();
  (void)parsed;
}

}  // namespace

bool AnyActive() {
  ParseEnvOnce();
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

Eval Evaluate(const char* site) {
  Eval eval;
  if (!AnyActive()) return eval;
  int64_t delay_us = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return eval;
    SiteState& state = it->second;
    ++state.hits;
    if (state.hits <= state.spec.skip) return eval;
    if (state.spec.limit >= 0 && state.fires >= state.spec.limit) {
      return eval;
    }
    if (state.spec.probability < 1.0) {
      const double draw = std::uniform_real_distribution<double>(
          0.0, 1.0)(state.rng);
      if (draw >= state.spec.probability) return eval;
    }
    ++state.fires;
    eval.fired = true;
    eval.action = state.spec.action;
    eval.error_code = state.spec.error_code;
    eval.delay_us = state.spec.delay_us;
    eval.payload = state.rng();
    if (eval.action == Action::kDelayUs) delay_us = eval.delay_us;
  }
  // Sleep outside the registry lock so a delaying site never blocks
  // evaluation (or arming) of other sites.
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return eval;
}

Status InjectedStatus(const char* site) {
  if (!AnyActive()) return Status::OK();
  const Eval eval = Evaluate(site);
  if (eval.fired && eval.action == Action::kError) {
    return Status(eval.error_code,
                  std::string("injected fault at ") + site);
  }
  return Status::OK();
}

Status InjectedIo(const char* site, char* buf, int64_t len,
                  int64_t* io_len) {
  if (!AnyActive()) return Status::OK();
  const Eval eval = Evaluate(site);
  if (!eval.fired) return Status::OK();
  switch (eval.action) {
    case Action::kError:
      return Status(eval.error_code,
                    std::string("injected fault at ") + site);
    case Action::kDelayUs:
      return Status::OK();  // Evaluate already slept
    case Action::kTornWrite:
      if (io_len != nullptr && len > 0) {
        *io_len = static_cast<int64_t>(eval.payload %
                                       static_cast<uint64_t>(len));
      }
      return Status::OK();
    case Action::kBitflip:
      ApplyBitflip(eval, buf, len);
      return Status::OK();
  }
  return Status::OK();
}

void ApplyBitflip(const Eval& eval, char* buf, int64_t len) {
  if (!eval.fired || eval.action != Action::kBitflip ||
      buf == nullptr || len <= 0) {
    return;
  }
  const uint64_t bit = eval.payload % (static_cast<uint64_t>(len) * 8);
  buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));
}

void Enable(const std::string& site, Spec spec) {
  ParseEnvOnce();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  EnableLocked(registry, site, spec);
}

void Disable(const std::string& site) {
  ParseEnvOnce();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.sites.erase(site) > 0) {
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  ParseEnvOnce();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  ArmedCount().fetch_sub(static_cast<int>(registry.sites.size()),
                         std::memory_order_relaxed);
  registry.sites.clear();
}

void SetGlobalSeed(uint64_t seed) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.global_seed = seed;
}

int64_t HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

int64_t FireCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> ActiveSites() {
  ParseEnvOnce();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, state] : registry.sites) {
    names.push_back(name);
  }
  return names;
}

Status EnableFromString(const std::string& config) {
  Registry& registry = GetRegistry();
  Status first_error = Status::OK();
  for (const std::string& entry : Split(config, ';')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (first_error.ok()) {
        first_error = Status::InvalidArgument(
            "failpoint: entry '" + entry + "' is not NAME=SPEC");
      }
      continue;
    }
    const std::string name = entry.substr(0, eq);
    Spec spec;
    Status entry_status = Status::OK();
    for (const std::string& field : Split(entry.substr(eq + 1), ',')) {
      if (field.empty()) continue;
      entry_status = ParseField(field, &spec);
      if (!entry_status.ok()) break;
    }
    if (!entry_status.ok()) {
      if (first_error.ok()) first_error = entry_status;
      continue;
    }
    std::lock_guard<std::mutex> lock(registry.mu);
    EnableLocked(registry, name, spec);
  }
  return first_error;
}

}  // namespace failpoint
}  // namespace relserve
