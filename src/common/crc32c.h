// CRC32C (Castagnoli) for page checksums.
//
// Same runtime-dispatch policy as the GEMM micro-kernels (DESIGN.md
// "Kernel micro-architecture"): the default build carries no ISA
// flags; the one SSE4.2 translation unit (crc32c_sse42.cc, built with
// -msse4.2) is only entered after a cpuid probe says the hardware
// executes the crc32 instruction. Everything else uses the
// slice-by-8 table fallback, correct on any target.
//
// The Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) is the
// one iSCSI/ext4/RocksDB/LevelDB use — and the one x86 implements in
// silicon, which is why checksummed pages cost ~no throughput.

#ifndef RELSERVE_COMMON_CRC32C_H_
#define RELSERVE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace relserve {
namespace crc32c {

// Extends `crc` (the running checksum of everything before `data`)
// over data[0..n). Dispatches once on first use.
uint32_t Extend(uint32_t crc, const char* data, size_t n);

// Checksum of a standalone buffer.
inline uint32_t Value(const char* data, size_t n) {
  return Extend(0, data, n);
}

// True when the hardware crc32 instruction path is active.
bool UsingHardware();

namespace internal {
// Backends, exposed so tests can assert both produce identical bits.
uint32_t ExtendScalar(uint32_t crc, const char* data, size_t n);
// Falls back to ExtendScalar on hardware without SSE4.2 (callers must
// consult the cpuid probe before relying on the fast path).
uint32_t ExtendSse42(uint32_t crc, const char* data, size_t n);
}  // namespace internal

}  // namespace crc32c
}  // namespace relserve

#endif  // RELSERVE_COMMON_CRC32C_H_
