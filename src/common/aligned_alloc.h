// Cache-line-aligned allocation helpers.
//
// Tensor buffers and the GEMM packing panels are allocated on 64-byte
// boundaries so that (a) a packed micro-panel never straddles a cache
// line and (b) aligned vector loads in the SIMD micro-kernels are
// always legal on the panel base address. 64 bytes also covers any
// future AVX-512 path (one full zmm register per line).

#ifndef RELSERVE_COMMON_ALIGNED_ALLOC_H_
#define RELSERVE_COMMON_ALIGNED_ALLOC_H_

#include <cstdint>
#include <new>

namespace relserve {

// One x86 cache line; every float buffer in the system starts on one.
inline constexpr int64_t kCacheLineBytes = 64;
static_assert((kCacheLineBytes & (kCacheLineBytes - 1)) == 0,
              "alignment must be a power of two");
static_assert(kCacheLineBytes % alignof(float) == 0,
              "alignment must hold float");

// Allocates `count` floats on a kCacheLineBytes boundary; returns
// nullptr on exhaustion (never throws). Free with FreeAlignedFloats.
inline float* AllocateAlignedFloats(int64_t count) {
  if (count < 0) return nullptr;
  const size_t bytes = static_cast<size_t>(count) * sizeof(float);
  return static_cast<float*>(::operator new(
      bytes, std::align_val_t{kCacheLineBytes}, std::nothrow));
}

inline void FreeAlignedFloats(float* ptr) {
  ::operator delete(ptr, std::align_val_t{kCacheLineBytes});
}

// RAII scratch buffer for kernel-internal packing panels. Not charged
// to a MemoryTracker: panel sizes are bounded compile-time constants
// (see kernels/micro_kernel.h), the same O(block) scratch class as the
// stack temporaries the kernels already use.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(int64_t count)
      : data_(AllocateAlignedFloats(count)) {}
  ~AlignedBuffer() { FreeAlignedFloats(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept : data_(other.data_) {
    other.data_ = nullptr;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      FreeAlignedFloats(data_);
      data_ = other.data_;
      other.data_ = nullptr;
    }
    return *this;
  }

  bool ok() const { return data_ != nullptr; }
  float* data() { return data_; }
  const float* data() const { return data_; }

 private:
  float* data_ = nullptr;
};

}  // namespace relserve

#endif  // RELSERVE_COMMON_ALIGNED_ALLOC_H_
