// Minimal leveled logging and fatal-check macros.

#ifndef RELSERVE_COMMON_LOGGING_H_
#define RELSERVE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace relserve {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define RELSERVE_LOG(level)                                              \
  if (::relserve::LogLevel::k##level >= ::relserve::GetLogLevel())       \
  ::relserve::internal::LogMessage(::relserve::LogLevel::k##level,       \
                                   __FILE__, __LINE__)                   \
      .stream()

// Invariant check: aborts with a message on violation. Use only for
// programmer errors (broken invariants), never for reachable runtime
// failures — those return Status.
#define RELSERVE_CHECK(cond)                                             \
  if (!(cond))                                                           \
  ::relserve::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define RELSERVE_DCHECK(cond) RELSERVE_CHECK(cond)

}  // namespace relserve

#endif  // RELSERVE_COMMON_LOGGING_H_
