// Result<T>: a value or a Status, never both (arrow::Result idiom).

#ifndef RELSERVE_COMMON_RESULT_H_
#define RELSERVE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace relserve {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites terse: `return tensor;` / `return Status::OutOfMemory(...)`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not hold an OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

// Assign the value of a Result expression to `lhs`, or propagate its
// error Status to the caller.
#define RELSERVE_CONCAT_IMPL(a, b) a##b
#define RELSERVE_CONCAT(a, b) RELSERVE_CONCAT_IMPL(a, b)

#define RELSERVE_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto RELSERVE_CONCAT(_res_, __LINE__) = (expr);                 \
  if (!RELSERVE_CONCAT(_res_, __LINE__).ok())                     \
    return RELSERVE_CONCAT(_res_, __LINE__).status();             \
  lhs = std::move(RELSERVE_CONCAT(_res_, __LINE__)).ValueOrDie()

}  // namespace relserve

#endif  // RELSERVE_COMMON_RESULT_H_
