#include "common/status.h"

namespace relserve {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kProtocolError:
      return "ProtocolError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace relserve
