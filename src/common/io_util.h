// Shared EINTR-resume I/O loops (DESIGN.md "Fault model & recovery",
// "Network serving front-end").
//
// Every raw syscall this codebase performs — positioned file I/O in
// DiskManager, socket accept/read/write and epoll_wait in src/net/ —
// can be interrupted by a signal and return EINTR, or transfer fewer
// bytes than requested. The resume loops live here, in one place, so
// the storage and network paths share a single audited implementation
// instead of each growing its own subtly different copy.
//
// The positioned full-transfer loops carry optional failpoint sites
// ("<site>.eintr" forces an EINTR return, "<site>.short" caps one
// transfer) so tests drive both resume branches deterministically —
// the same instrumentation DiskManager has had since PR 4, now reused
// by the socket layer.

#ifndef RELSERVE_COMMON_IO_UTIL_H_
#define RELSERVE_COMMON_IO_UTIL_H_

#include <sys/types.h>

#include <cerrno>
#include <cstdint>

#include "common/status.h"

namespace relserve {
namespace io {

// Calls `fn` (a syscall returning ssize_t/int with errno semantics)
// until it returns >= 0 or fails with an errno other than EINTR.
// The canonical wrapper for accept4 / read / write / epoll_wait.
template <typename Fn>
inline auto RetryEintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) n;
  do {
    n = fn();
  } while (n < 0 && errno == EINTR);
  return n;
}

// Full positioned read with EINTR resume. Returns the bytes actually
// read in *out_done — short only at EOF. `eintr_site` / `short_site`
// are failpoint names driving the resume branches in tests; either
// may be null to skip instrumentation.
Status PreadFull(int fd, char* buf, int64_t len, int64_t offset,
                 const char* eintr_site, const char* short_site,
                 int64_t* out_done);

// Full positioned write with EINTR resume and short-write
// continuation, failpoint-instrumented like PreadFull.
Status PwriteFull(int fd, const char* buf, int64_t len, int64_t offset,
                  const char* eintr_site, const char* short_site);

// One read() with EINTR resume. Returns the syscall result: > 0 bytes
// read, 0 at EOF/half-close, or -1 with errno (EAGAIN/EWOULDBLOCK on
// a drained non-blocking socket). `short_site`, when armed, caps the
// requested length to a few bytes so frame-reassembly paths see
// maximally fragmented input deterministically.
ssize_t ReadSome(int fd, char* buf, size_t len,
                 const char* short_site = nullptr);

// One write() with EINTR resume; same contract as ReadSome.
ssize_t WriteSome(int fd, const char* buf, size_t len);

}  // namespace io
}  // namespace relserve

#endif  // RELSERVE_COMMON_IO_UTIL_H_
