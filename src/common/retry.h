// RetryPolicy: bounded, jittered exponential backoff for transient
// faults (DESIGN.md "Fault model & recovery").
//
// Only *transient* status codes retry — IOError (a syscall failed; the
// next attempt may not) and Unavailable (a resource was momentarily
// saturated: admission queue, eviction capacity, open circuit).
// DataLoss never retries here: the disk manager already performed its
// bounded re-reads, and the bytes on disk are wrong until rewritten.
// Client errors (InvalidArgument, NotFound) obviously never retry.
//
// Backoff is budgeted twice over: `max_attempts` caps the calls and
// `total_backoff_budget_us` caps the time spent sleeping, so a retry
// storm under real overload degrades into fast failure instead of
// piling latency onto a sinking engine.

#ifndef RELSERVE_COMMON_RETRY_H_
#define RELSERVE_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace relserve {

struct RetryPolicy {
  int max_attempts = 3;               // total calls, first one included
  int64_t initial_backoff_us = 100;   // before the first retry
  double backoff_multiplier = 2.0;
  int64_t max_backoff_us = 5'000;     // per-sleep cap
  // Jitter: each sleep is drawn uniformly from
  // [(1 - jitter) * backoff, backoff] so synchronized retriers spread
  // out instead of thundering together.
  double jitter_fraction = 0.5;
  int64_t total_backoff_budget_us = 20'000;  // across all retries

  static bool IsTransient(const Status& status) {
    return status.IsIOError() || status.IsUnavailable();
  }
};

namespace retry_internal {

inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
Status StatusOf(const Result<T>& result) {
  return result.status();
}

// splitmix64: cheap, seedable jitter source — no global RNG state, so
// concurrent retriers never contend and a pinned seed replays exactly.
inline uint64_t NextRand(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace retry_internal

// Calls `fn` (returning Status or Result<T>) up to
// `policy.max_attempts` times, sleeping a jittered exponential backoff
// between attempts, while the outcome is transient and backoff budget
// remains. Returns the last outcome; `retries_out`, when non-null,
// receives the number of re-attempts performed.
template <typename Fn>
auto CallWithRetry(const RetryPolicy& policy, uint64_t jitter_seed,
                   Fn&& fn, int64_t* retries_out = nullptr)
    -> decltype(fn()) {
  auto outcome = fn();
  int64_t retries = 0;
  int64_t backoff_us = policy.initial_backoff_us;
  int64_t slept_us = 0;
  uint64_t rng = jitter_seed;
  while (retries + 1 < policy.max_attempts) {
    const Status status = retry_internal::StatusOf(outcome);
    if (status.ok() || !RetryPolicy::IsTransient(status)) break;
    int64_t sleep_us = std::min(backoff_us, policy.max_backoff_us);
    if (policy.jitter_fraction > 0.0 && sleep_us > 0) {
      const double scale =
          1.0 - policy.jitter_fraction *
                    (static_cast<double>(retry_internal::NextRand(rng) %
                                         1000) /
                     1000.0);
      sleep_us = static_cast<int64_t>(sleep_us * scale);
    }
    if (slept_us + sleep_us > policy.total_backoff_budget_us) break;
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      slept_us += sleep_us;
    }
    backoff_us = static_cast<int64_t>(backoff_us *
                                      policy.backoff_multiplier);
    outcome = fn();
    ++retries;
  }
  if (retries_out != nullptr) *retries_out = retries;
  return outcome;
}

}  // namespace relserve

#endif  // RELSERVE_COMMON_RETRY_H_
