// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef RELSERVE_COMMON_TIMER_H_
#define RELSERVE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace relserve {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace relserve

#endif  // RELSERVE_COMMON_TIMER_H_
