// Hardware CRC32C backend: the single translation unit built with
// -msse4.2 (see src/CMakeLists.txt). Entered only after the cpuid
// probe in crc32c.cc reports SSE4.2, mirroring how the AVX2 GEMM
// micro-kernel TU is gated.

#include "common/crc32c.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>

#include <cstring>

namespace relserve {
namespace crc32c {
namespace internal {

uint32_t ExtendSse42(uint32_t crc, const char* data, size_t n) {
  uint32_t c = ~crc;
#if defined(__x86_64__)
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, data, 8);
    c64 = _mm_crc32_u64(c64, word);
    data += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
#endif
  while (n > 0) {
    c = _mm_crc32_u8(c, static_cast<unsigned char>(*data));
    ++data;
    --n;
  }
  return ~c;
}

}  // namespace internal
}  // namespace crc32c
}  // namespace relserve

#else  // non-x86: never dispatched to; satisfy the symbol.

namespace relserve {
namespace crc32c {
namespace internal {

uint32_t ExtendSse42(uint32_t crc, const char* data, size_t n) {
  return ExtendScalar(crc, data, n);
}

}  // namespace internal
}  // namespace crc32c
}  // namespace relserve

#endif
