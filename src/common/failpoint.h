// Failpoint registry: named fault-injection sites for chaos testing.
//
// The storage engine, buffer pool, caches, and serving front-end each
// declare sites ("disk.read", "bufferpool.evict", ...) at the exact
// code locations where real hardware and software faults strike. A
// site is free when disarmed — one relaxed atomic load — so failpoints
// stay compiled into release binaries and chaos schedules can be
// applied to the same bits that serve traffic.
//
// A site is armed programmatically:
//
//   failpoint::Enable("disk.write",
//                     failpoint::Spec::Error(StatusCode::kIOError)
//                         .Probability(0.1).Limit(3).Seed(7));
//
// or from the environment, before any site is evaluated:
//
//   RELSERVE_FAILPOINTS="disk.write=error(IOError),p=0.1,limit=3;
//                        disk.read=delay(500)"   (one line in practice)
//
// Triggers compose: `skip` ignores the first N evaluations, `limit`
// caps total firings (`once` == limit 1), `p` draws from a per-site
// RNG seeded explicitly (or from the global seed), so a schedule is
// bit-reproducible run-to-run — the property the chaos harness leans
// on to replay a failing seed.
//
// Actions:
//   error(CODE)  — the site returns Status(CODE)
//   delay(USEC)  — the site stalls, then proceeds normally
//   torn         — write sites persist only a prefix of the buffer
//                  (simulated crash mid-write; still reports success)
//   bitflip      — one deterministic bit of the I/O buffer flips
//                  (silent corruption the checksum layer must catch)

#ifndef RELSERVE_COMMON_FAILPOINT_H_
#define RELSERVE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace relserve {
namespace failpoint {

enum class Action {
  kError,
  kDelayUs,
  kTornWrite,
  kBitflip,
};

// How an armed site behaves. Built fluently; every knob has a safe
// default (fire every evaluation, forever, with IOError).
struct Spec {
  Action action = Action::kError;
  StatusCode error_code = StatusCode::kIOError;
  int64_t delay_us = 0;
  double probability = 1.0;  // per-evaluation chance once past `skip`
  int64_t skip = 0;          // pass through the first N evaluations
  int64_t limit = -1;        // fire at most N times; -1 = unlimited
  uint64_t seed = 0;         // 0 = derive from global seed + site name

  static Spec Error(StatusCode code) {
    Spec spec;
    spec.action = Action::kError;
    spec.error_code = code;
    return spec;
  }
  static Spec Delay(int64_t usec) {
    Spec spec;
    spec.action = Action::kDelayUs;
    spec.delay_us = usec;
    return spec;
  }
  static Spec Torn() {
    Spec spec;
    spec.action = Action::kTornWrite;
    return spec;
  }
  static Spec Bitflip() {
    Spec spec;
    spec.action = Action::kBitflip;
    return spec;
  }

  Spec& Probability(double p) {
    probability = p;
    return *this;
  }
  Spec& Skip(int64_t n) {
    skip = n;
    return *this;
  }
  Spec& Limit(int64_t n) {
    limit = n;
    return *this;
  }
  Spec& Once() {
    limit = 1;
    return *this;
  }
  Spec& Seed(uint64_t s) {
    seed = s;
    return *this;
  }
};

// The outcome of evaluating a site.
struct Eval {
  bool fired = false;
  Action action = Action::kError;
  StatusCode error_code = StatusCode::kIOError;
  int64_t delay_us = 0;
  // Deterministic per-firing randomness for corruption actions (which
  // bit to flip, where to tear).
  uint64_t payload = 0;
};

// --- Site evaluation (hot path) -------------------------------------

// True iff any site anywhere is armed. One relaxed atomic load; the
// inline fast path every instrumented callsite takes when the process
// runs fault-free.
bool AnyActive();

// Full evaluation of one site: counts the hit, rolls the trigger dice,
// consumes limit budget. Delay actions sleep here.
Eval Evaluate(const char* site);

// Convenience for status-only sites: kError evaluations come back as
// the configured Status, delays sleep, corruption actions are ignored
// (they are meaningless without a buffer). OK when disarmed.
Status InjectedStatus(const char* site);

// Convenience for buffer I/O sites. kBitflip flips one deterministic
// bit of buf[0..len). kTornWrite truncates *io_len (callers persist
// only that prefix). kError returns the configured Status; delays
// sleep. `io_len` may be null when the caller cannot tear.
Status InjectedIo(const char* site, char* buf, int64_t len,
                  int64_t* io_len);

// Applies a fired kBitflip evaluation to a buffer (for sites that
// must separate trigger evaluation from the moment the buffer
// exists). No-op unless eval fired with Action::kBitflip.
void ApplyBitflip(const Eval& eval, char* buf, int64_t len);

// --- Registry control ------------------------------------------------

// Arms `site` with `spec` (replacing any previous arming).
void Enable(const std::string& site, Spec spec);

// Disarms one site / every site. Counters for the site are dropped.
void Disable(const std::string& site);
void DisableAll();

// Seed mixed into every site whose spec did not pin one. Applies to
// sites armed after the call.
void SetGlobalSeed(uint64_t seed);

// Evaluations / firings since the site was armed (0 if not armed).
int64_t HitCount(const std::string& site);
int64_t FireCount(const std::string& site);

// Names of currently armed sites (sorted).
std::vector<std::string> ActiveSites();

// Parses a RELSERVE_FAILPOINTS-grammar string and arms every site in
// it. Returns InvalidArgument on a malformed entry (already-parsed
// entries stay armed). The environment variable itself is parsed
// lazily on the first registry touch.
Status EnableFromString(const std::string& config);

// RAII arming for tests: enables on construction, disables on exit.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Spec spec) : site_(std::move(site)) {
    Enable(site_, spec);
  }
  ~ScopedFailpoint() { Disable(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace failpoint
}  // namespace relserve

#endif  // RELSERVE_COMMON_FAILPOINT_H_
