// Status: error propagation without exceptions (RocksDB/Arrow idiom).
//
// Library code in relserve never throws on reachable failure paths.
// Out-of-memory in particular is a *value* here — the paper's Table 3
// reports OOM as an experimental outcome, so it must surface as data,
// not as process death.

#ifndef RELSERVE_COMMON_STATUS_H_
#define RELSERVE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace relserve {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kNotImplemented,
  kInternal,
  // Serving front-end outcomes (DESIGN.md "Serving front-end"): a
  // request whose deadline passed before execution, and load shed by
  // a full admission queue. Both are data the client acts on (retry,
  // back off), never a crash.
  kDeadlineExceeded,
  kUnavailable,
  // Storage detected corruption it could not repair (checksum
  // mismatch surviving the bounded re-read retry). Unlike kIOError
  // this is NOT retryable: the bytes on disk are wrong, and the page
  // is quarantined until rewritten (DESIGN.md "Fault model &
  // recovery").
  kDataLoss,
  // The network front-end received bytes that violate the wire
  // protocol: bad magic/version, a malformed frame body, or a frame
  // whose declared length exceeds the server's cap (oversized frames
  // close the connection instead of allocating unbounded buffers).
  // Maps onto the wire status byte (DESIGN.md "Network serving
  // front-end").
  kProtocolError,
};

// Human-readable name for a status code, e.g. "OutOfMemory".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const {
    return code_ == StatusCode::kUnavailable;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsProtocolError() const {
    return code_ == StatusCode::kProtocolError;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagate a non-OK Status to the caller.
#define RELSERVE_RETURN_NOT_OK(expr)             \
  do {                                           \
    ::relserve::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace relserve

#endif  // RELSERVE_COMMON_STATUS_H_
