#include "workloads/datasets.h"

#include "common/random.h"
#include "relational/row.h"

namespace relserve {
namespace workloads {

Schema FeatureTableSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"features", ValueType::kFloatVector}});
}

Status FillFeatureTable(TableInfo* table, int64_t n, int64_t d,
                        uint64_t seed) {
  return AppendFeatureRows(table, n, d, seed);
}

Status AppendFeatureRows(TableInfo* table, int64_t n, int64_t d,
                         uint64_t seed) {
  Rng rng(seed);
  std::string record;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<float> features(d);
    for (int64_t j = 0; j < d; ++j) features[j] = rng.Uniform();
    Row row({Value(int64_t{i}), Value(std::move(features))});
    record.clear();
    row.SerializeTo(&record);
    RELSERVE_RETURN_NOT_OK(table->heap->Append(record));
  }
  return Status::OK();
}

Schema PartitionedTableSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"sim_key", ValueType::kFloat64},
                 {"features", ValueType::kFloatVector}});
}

Status FillBoschPartitions(TableInfo* d1, TableInfo* d2, int64_t n,
                           int64_t features_each, double key_spread,
                           uint64_t seed) {
  Rng rng(seed);
  std::string record;
  for (int64_t i = 0; i < n; ++i) {
    // A shared latent measurement both partitions observed with
    // jitter: this is what makes the two columns "highly correlated"
    // (the paper picks the most-correlated column pair to join on).
    const double latent = rng.Uniform(0.0f, 1000.0f);
    for (TableInfo* table : {d1, d2}) {
      std::vector<float> features(features_each);
      for (int64_t j = 0; j < features_each; ++j) {
        features[j] = rng.Uniform();
      }
      const double key =
          latent + rng.Normal(0.0f, static_cast<float>(key_spread));
      Row row({Value(int64_t{i}), Value(key), Value(std::move(features))});
      record.clear();
      row.SerializeTo(&record);
      RELSERVE_RETURN_NOT_OK(table->heap->Append(record));
    }
  }
  return Status::OK();
}

Result<LabeledData> GenClusteredData(int64_t n, int64_t dim,
                                     int num_classes, float noise,
                                     uint64_t seed,
                                     MemoryTracker* tracker,
                                     uint64_t centers_seed) {
  Rng center_rng(centers_seed != 0 ? centers_seed : seed);
  LabeledData data;
  RELSERVE_ASSIGN_OR_RETURN(
      data.centers, Tensor::Create(Shape{num_classes, dim}, tracker));
  for (int64_t i = 0; i < data.centers.NumElements(); ++i) {
    data.centers.data()[i] = center_rng.Uniform();
  }
  Rng rng(seed);
  RELSERVE_ASSIGN_OR_RETURN(data.features,
                            Tensor::Create(Shape{n, dim}, tracker));
  data.labels.resize(n);
  float* dst = data.features.data();
  for (int64_t i = 0; i < n; ++i) {
    const int label =
        static_cast<int>(rng.UniformInt(0, num_classes - 1));
    data.labels[i] = label;
    const float* center = data.centers.data() + label * dim;
    for (int64_t j = 0; j < dim; ++j) {
      dst[i * dim + j] = center[j] + rng.Normal(0.0f, noise);
    }
  }
  return data;
}

Result<Tensor> GenBatch(int64_t batch, const Shape& sample_shape,
                        uint64_t seed, MemoryTracker* tracker) {
  std::vector<int64_t> dims = {batch};
  for (int64_t d : sample_shape.dims()) dims.push_back(d);
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor t, Tensor::Create(Shape(std::move(dims)), tracker));
  Rng rng(seed);
  float* data = t.data();
  for (int64_t i = 0; i < t.NumElements(); ++i) data[i] = rng.Uniform();
  return t;
}

}  // namespace workloads
}  // namespace relserve
