// Synthetic stand-ins for the paper's datasets (see DESIGN.md,
// "Substitutions"): generators that match each dataset's *shape* —
// row counts, feature widths, join-key correlation, label/cluster
// structure — which is what the latency/memory experiments exercise.

#ifndef RELSERVE_WORKLOADS_DATASETS_H_
#define RELSERVE_WORKLOADS_DATASETS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"
#include "tensor/tensor.h"

namespace relserve {
namespace workloads {

// Schema (id: INT64, features: FLOAT_VECTOR) — the generic inference
// input table (Fraud, Encoder, Amazon rows all use it).
Schema FeatureTableSchema();

// Fills `table` with n rows of d uniform features each.
Status FillFeatureTable(TableInfo* table, int64_t n, int64_t d,
                        uint64_t seed);

// Schema (id: INT64, sim_key: FLOAT64, features: FLOAT_VECTOR) — one
// vertical partition of the Bosch-like dataset (Sec. 7.2.1).
Schema PartitionedTableSchema();

// Fills the two vertical partitions. sim_key values are drawn from a
// shared latent key plus small jitter, so a band join
// |d1.sim_key - d2.sim_key| <= epsilon reconstructs related rows with
// an average fan-out controlled by `key_spread` (smaller spread =>
// denser matches).
Status FillBoschPartitions(TableInfo* d1, TableInfo* d2, int64_t n,
                           int64_t features_each, double key_spread,
                           uint64_t seed);

// MNIST-like clustered data: `num_classes` random centers in
// [0, 1]^dim, each sample = center + N(0, noise), label = its center.
// Nearby samples share labels, which is exactly the structure the
// approximate result cache exploits (and mis-predicts across cluster
// boundaries, producing the paper's accuracy drop).
struct LabeledData {
  Tensor features;              // [n, dim]
  std::vector<int64_t> labels;  // n entries in [0, num_classes)
  Tensor centers;               // [num_classes, dim] cluster centers
};
// `centers_seed` fixes the cluster centers independently of the
// sample draw, so multiple datasets (warm/serve splits) can share the
// same latent clusters; 0 derives it from `seed`.
Result<LabeledData> GenClusteredData(int64_t n, int64_t dim,
                                     int num_classes, float noise,
                                     uint64_t seed,
                                     MemoryTracker* tracker = nullptr,
                                     uint64_t centers_seed = 0);

// A uniform random batch shaped [batch, sample...].
Result<Tensor> GenBatch(int64_t batch, const Shape& sample_shape,
                        uint64_t seed,
                        MemoryTracker* tracker = nullptr);

// Streams `n` feature rows of width `d` directly into a table without
// ever holding more than one row in memory.
Status AppendFeatureRows(TableInfo* table, int64_t n, int64_t d,
                         uint64_t seed);

}  // namespace workloads
}  // namespace relserve

#endif  // RELSERVE_WORKLOADS_DATASETS_H_
