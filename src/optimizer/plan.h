// InferencePlan: the optimizer's per-operator representation choice.

#ifndef RELSERVE_OPTIMIZER_PLAN_H_
#define RELSERVE_OPTIMIZER_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/model.h"
#include "resource/device_model.h"

namespace relserve {

// The in-database representations the adaptive optimizer chooses
// between per operator (paper Sec. 7.1). DL-centric offload is a
// whole-query decision made above this level (ServingSession).
enum class Repr {
  kUdf,         // whole-tensor execution inside the RDBMS process
  kRelational,  // tensor-as-block-relation execution
};

const char* ReprName(Repr repr);

struct NodeDecision {
  int node_id = -1;
  Repr repr = Repr::kUdf;
  // The optimizer's memory estimate for the operator (inputs + weights
  // + outputs), in bytes.
  int64_t estimated_bytes = 0;
  // Arithmetic cost estimate; physical-plan compilation sums this over
  // fused stages so EXPLAIN can show per-stage work.
  double estimated_flops = 0;
  // Device placement from the producer-transfer-consumer cost model
  // (paper Sec. 3(2)); annotated when the optimizer is given a
  // DeviceAllocator, advisory otherwise.
  DeviceKind device = DeviceKind::kCpu;
};

struct InferencePlan {
  int64_t batch_size = 0;
  int64_t memory_threshold_bytes = 0;
  std::vector<NodeDecision> decisions;  // index == node id

  bool AllUdf() const {
    for (const NodeDecision& d : decisions) {
      if (d.repr != Repr::kUdf) return false;
    }
    return true;
  }

  bool AnyRelational() const { return !AllUdf(); }

  // Human-readable EXPLAIN-style rendering.
  std::string ToString(const Model& model) const;
};

// A plan that pins every node to one representation — the pure
// UDF-centric / pure relation-centric architectures the paper
// compares against (ServingMode::kForceUdf / kForceRelational).
// Estimates stay zero: forced plans bypass the cost model by design.
InferencePlan MakeForcedPlan(const Model& model, Repr repr,
                             int64_t batch_size);

}  // namespace relserve

#endif  // RELSERVE_OPTIMIZER_PLAN_H_
