// InferencePlan: the optimizer's per-operator representation choice.

#ifndef RELSERVE_OPTIMIZER_PLAN_H_
#define RELSERVE_OPTIMIZER_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/model.h"
#include "resource/device_model.h"

namespace relserve {

// The in-database representations the adaptive optimizer chooses
// between per operator (paper Sec. 7.1). DL-centric offload is a
// whole-query decision made above this level (ServingSession).
enum class Repr {
  kUdf,         // whole-tensor execution inside the RDBMS process
  kRelational,  // tensor-as-block-relation execution
};

const char* ReprName(Repr repr);

// Per-matmul kernel backend choice. Orthogonal to Repr: the arm picks
// HOW a UDF-centric matmul multiplies, not where its tensors live.
enum class KernelArm {
  kDense,   // fp32 packed GEMM (the default)
  kInt8,    // deploy-time-quantized int8 weights, dynamic activations
  kSparse,  // CSR weight kernel for mostly-zero layers
};

const char* KernelArmName(KernelArm arm);

struct NodeDecision {
  int node_id = -1;
  Repr repr = Repr::kUdf;
  // The optimizer's memory estimate for the operator (inputs + weights
  // + outputs), in bytes.
  int64_t estimated_bytes = 0;
  // Arithmetic cost estimate; physical-plan compilation sums this over
  // fused stages so EXPLAIN can show per-stage work.
  double estimated_flops = 0;
  // Device placement from the producer-transfer-consumer cost model
  // (paper Sec. 3(2)); annotated when the optimizer is given a
  // DeviceAllocator, advisory otherwise.
  DeviceKind device = DeviceKind::kCpu;
  // Kernel backend for matmul nodes (dense fp32 unless the optimizer
  // picked the quantized or sparse arm).
  KernelArm arm = KernelArm::kDense;
  // Measured fraction of nonzero weight entries; 1.0 when not measured.
  // Drives the sparse-arm decision and is shown by EXPLAIN.
  double weight_density = 1.0;
  // > 0 requests the fused matmul + top-k epilogue on this node (the
  // extreme-classification head); the stage then emits [batch, 2k]
  // instead of the full logits row.
  int64_t topk = 0;
};

struct InferencePlan {
  int64_t batch_size = 0;
  int64_t memory_threshold_bytes = 0;
  std::vector<NodeDecision> decisions;  // index == node id

  bool AllUdf() const {
    for (const NodeDecision& d : decisions) {
      if (d.repr != Repr::kUdf) return false;
    }
    return true;
  }

  bool AnyRelational() const { return !AllUdf(); }

  // Human-readable EXPLAIN-style rendering.
  std::string ToString(const Model& model) const;
};

// A plan that pins every node to one representation — the pure
// UDF-centric / pure relation-centric architectures the paper
// compares against (ServingMode::kForceUdf / kForceRelational).
// Estimates stay zero: forced plans bypass the cost model by design.
InferencePlan MakeForcedPlan(const Model& model, Repr repr,
                             int64_t batch_size);

}  // namespace relserve

#endif  // RELSERVE_OPTIMIZER_PLAN_H_
