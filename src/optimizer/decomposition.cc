#include "optimizer/decomposition.h"

#include <cstring>

namespace relserve {

namespace {

// The first non-input node, or -1.
int FirstOperatorId(const Model& model) {
  return model.nodes().size() > 1 ? 1 : -1;
}

}  // namespace

bool CanDecomposeFirstLayer(const Model& model) {
  const int first = FirstOperatorId(model);
  if (first < 0) return false;
  const Node& node = model.node(first);
  if (node.kind != OpKind::kMatMul) return false;
  auto weight = model.GetWeight(node.weight_name);
  if (!weight.ok()) return false;
  // [out, in]: reduction means out < in.
  return (*weight)->shape().dim(0) < (*weight)->shape().dim(1);
}

Result<SplitWeights> SplitFirstLayerWeights(const Model& model,
                                            int64_t d1_width,
                                            MemoryTracker* tracker) {
  const int first = FirstOperatorId(model);
  if (first < 0 || model.node(first).kind != OpKind::kMatMul) {
    return Status::InvalidArgument(
        "model's first operator is not a MatMul");
  }
  RELSERVE_ASSIGN_OR_RETURN(
      const Tensor* w, model.GetWeight(model.node(first).weight_name));
  const int64_t out = w->shape().dim(0);
  const int64_t in = w->shape().dim(1);
  if (d1_width <= 0 || d1_width >= in) {
    return Status::InvalidArgument(
        "split width " + std::to_string(d1_width) +
        " out of range for input width " + std::to_string(in));
  }
  SplitWeights split;
  RELSERVE_ASSIGN_OR_RETURN(
      split.w1, Tensor::Create(Shape{out, d1_width}, tracker));
  RELSERVE_ASSIGN_OR_RETURN(
      split.w2, Tensor::Create(Shape{out, in - d1_width}, tracker));
  for (int64_t r = 0; r < out; ++r) {
    std::memcpy(split.w1.data() + r * d1_width, w->data() + r * in,
                d1_width * sizeof(float));
    std::memcpy(split.w2.data() + r * (in - d1_width),
                w->data() + r * in + d1_width,
                (in - d1_width) * sizeof(float));
  }
  return split;
}

Result<Model> BuildTailModel(const Model& model) {
  const int first = FirstOperatorId(model);
  if (first < 0 || model.node(first).kind != OpKind::kMatMul) {
    return Status::InvalidArgument(
        "model's first operator is not a MatMul");
  }
  RELSERVE_ASSIGN_OR_RETURN(
      const Tensor* w, model.GetWeight(model.node(first).weight_name));
  const int64_t hidden = w->shape().dim(0);

  Model tail(model.name() + "-tail", Shape{hidden});
  tail.AddNode(OpKind::kInput);
  for (size_t i = first + 1; i < model.nodes().size(); ++i) {
    const Node& node = model.node(static_cast<int>(i));
    tail.AddNode(node.kind, node.weight_name, node.stride);
    if (!node.weight_name.empty() &&
        !tail.GetWeight(node.weight_name).ok()) {
      RELSERVE_ASSIGN_OR_RETURN(const Tensor* weight,
                                model.GetWeight(node.weight_name));
      // Tensors share buffers; this is a reference, not a copy.
      RELSERVE_RETURN_NOT_OK(tail.AddWeight(node.weight_name, *weight));
    }
  }
  return tail;
}

}  // namespace relserve
