// Model decomposition and push-down (paper Sec. 2, validated in
// Sec. 7.2.1).
//
// For a pipeline  join(D1, D2) |> FFNN  whose first layer W reduces
// dimensionality, the multiplication distributes over the
// concatenation produced by the join:
//     W x (D1 |><| D2) = (W1 x D1) |><| (W2 x D2)
// where W = [W1 | W2] split by the columns each input contributes.
// Pushing the two sub-multiplications below the join shrinks the
// joined tuples from the raw feature width to the hidden width, and —
// when the join fans out — avoids recomputing the first layer on
// duplicated features.

#ifndef RELSERVE_OPTIMIZER_DECOMPOSITION_H_
#define RELSERVE_OPTIMIZER_DECOMPOSITION_H_

#include <cstdint>

#include "common/result.h"
#include "graph/model.h"

namespace relserve {

// True iff the rewrite applies: the first operator is a MatMul and its
// output width is smaller than its input width (the "reduces feature
// dimensions significantly" precondition; we require any reduction and
// leave profitability to the caller's cost model).
bool CanDecomposeFirstLayer(const Model& model);

struct SplitWeights {
  Tensor w1;  // [out, d1_width]
  Tensor w2;  // [out, in - d1_width]
};

// Splits the first MatMul weight [out, in] by input columns at
// `d1_width`.
Result<SplitWeights> SplitFirstLayerWeights(const Model& model,
                                            int64_t d1_width,
                                            MemoryTracker* tracker);

// The model that remains after the first MatMul: its input is the
// [hidden] pre-bias activation, its nodes are everything downstream
// (BiasAdd, Relu, later layers...). Weights are shared by reference.
Result<Model> BuildTailModel(const Model& model);

}  // namespace relserve

#endif  // RELSERVE_OPTIMIZER_DECOMPOSITION_H_
