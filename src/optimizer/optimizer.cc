#include "optimizer/optimizer.h"

#include <cstdio>

#include "kernels/int8_gemm.h"
#include "kernels/sparse_gemm.h"

namespace relserve {

const char* ReprName(Repr repr) {
  switch (repr) {
    case Repr::kUdf:
      return "udf";
    case Repr::kRelational:
      return "relational";
  }
  return "?";
}

const char* KernelArmName(KernelArm arm) {
  switch (arm) {
    case KernelArm::kDense:
      return "dense";
    case KernelArm::kInt8:
      return "int8";
    case KernelArm::kSparse:
      return "sparse";
  }
  return "?";
}

std::string InferencePlan::ToString(const Model& model) const {
  std::string out = "Plan for " + model.name() + " @ batch " +
                    std::to_string(batch_size) + " (threshold " +
                    std::to_string(memory_threshold_bytes) + " B)\n";
  for (const NodeDecision& d : decisions) {
    const Node& node = model.node(d.node_id);
    out += "  #" + std::to_string(d.node_id) + " " +
           OpKindName(node.kind) + " est=" +
           std::to_string(d.estimated_bytes) + "B -> " +
           ReprName(d.repr);
    if (d.device != DeviceKind::kCpu) {
      out += " @";
      out += DeviceKindName(d.device);
    }
    // Kernel-arm annotations render only when non-default so plans
    // without the quantized/sparse arms keep their historical text.
    if (d.arm == KernelArm::kInt8) {
      out += " [int8]";
    } else if (d.arm == KernelArm::kSparse) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " [sparse d=%.3f]",
                    d.weight_density);
      out += buf;
    }
    if (d.topk > 0) {
      out += " +topk(" + std::to_string(d.topk) + ")";
    }
    out += "\n";
  }
  return out;
}

InferencePlan MakeForcedPlan(const Model& model, Repr repr,
                             int64_t batch_size) {
  InferencePlan plan;
  plan.batch_size = batch_size;
  plan.memory_threshold_bytes = 0;
  plan.decisions.reserve(model.nodes().size());
  for (const Node& node : model.nodes()) {
    NodeDecision decision;
    decision.node_id = node.id;
    decision.repr = repr;
    plan.decisions.push_back(decision);
  }
  return plan;
}

Result<int64_t> EstimateNodeBytes(const Model& model, int node_id,
                                  int64_t batch_size) {
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                            model.InferShapes(batch_size));
  const Node& node = model.node(node_id);
  constexpr int64_t kFloat = sizeof(float);
  int64_t bytes = shapes[node_id].NumElements() * kFloat;  // output
  if (node.input >= 0) {
    bytes += shapes[node.input].NumElements() * kFloat;  // input
  }
  if (!node.weight_name.empty()) {
    RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                              model.GetWeight(node.weight_name));
    bytes += w->ByteSize();
  }
  return bytes;
}

Result<InferencePlan> RuleBasedOptimizer::Optimize(
    const Model& model, int64_t batch_size) const {
  InferencePlan plan;
  plan.batch_size = batch_size;
  plan.memory_threshold_bytes = memory_threshold_bytes_;
  plan.decisions.reserve(model.nodes().size());
  for (const Node& node : model.nodes()) {
    NodeDecision decision;
    decision.node_id = node.id;
    RELSERVE_ASSIGN_OR_RETURN(
        decision.estimated_bytes,
        EstimateNodeBytes(model, node.id, batch_size));
    decision.repr = (decision.estimated_bytes > memory_threshold_bytes_)
                        ? Repr::kRelational
                        : Repr::kUdf;
    if (node.kind != OpKind::kInput) {
      RELSERVE_ASSIGN_OR_RETURN(
          decision.estimated_flops,
          model.EstimateNodeFlops(node.id, batch_size));
    }
    if (devices_ != nullptr && decision.repr == Repr::kUdf &&
        node.kind != OpKind::kInput) {
      RELSERVE_ASSIGN_OR_RETURN(
          std::vector<Shape> shapes, model.InferShapes(batch_size));
      OperatorProfile profile;
      profile.flops = decision.estimated_flops;
      profile.input_bytes =
          node.input >= 0
              ? shapes[node.input].NumElements() * 4
              : 0;
      profile.output_bytes = shapes[node.id].NumElements() * 4;
      decision.device = devices_->Choose(profile).kind;
    }
    if (node.kind == OpKind::kMatMul && !node.weight_name.empty() &&
        decision.repr == Repr::kUdf &&
        decision.device == DeviceKind::kCpu) {
      if (tuning_.enable_sparse) {
        RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                  model.GetWeight(node.weight_name));
        RELSERVE_ASSIGN_OR_RETURN(decision.weight_density,
                                  kernels::MeasureWeightDensity(*w));
        if (decision.weight_density < tuning_.sparse_density_threshold) {
          decision.arm = KernelArm::kSparse;
        }
      }
      if (tuning_.enable_int8 && decision.arm == KernelArm::kDense) {
        decision.arm = KernelArm::kInt8;
      }
      // RELSERVE_QUANTIZE is the operator's kill switch / force switch
      // for the quantized arm; it outranks the per-node decision.
      const kernels::QuantizeMode qmode = kernels::ActiveQuantizeMode();
      if (qmode == kernels::QuantizeMode::kInt8) {
        decision.arm = KernelArm::kInt8;
      } else if (qmode == kernels::QuantizeMode::kOff &&
                 decision.arm == KernelArm::kInt8) {
        decision.arm = KernelArm::kDense;
      }
    }
    plan.decisions.push_back(decision);
  }
  if (tuning_.topk > 0) {
    // The fused top-k epilogue targets the classification head: the
    // LAST matmul of the graph, provided it runs UDF-centric on the
    // CPU (whole-tensor stages are where the fusion hooks live).
    for (auto it = plan.decisions.rbegin(); it != plan.decisions.rend();
         ++it) {
      if (model.node(it->node_id).kind != OpKind::kMatMul) continue;
      if (it->repr == Repr::kUdf && it->device == DeviceKind::kCpu) {
        it->topk = tuning_.topk;
      }
      break;
    }
  }
  return plan;
}

}  // namespace relserve
