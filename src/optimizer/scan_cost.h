// ScanCostModel: learned per-row scan costs driving fragment-parallel
// grain decisions.
//
// The optimizer's representation decisions (optimizer.h) pick *where*
// tensors live; this model picks *how hard* to parallelize relational
// scans. It keeps an EWMA of measured nanoseconds per (row, column)
// for the row-at-a-time and columnar paths, seeded with calibration
// constants and updated by every scan that reports its wall time — so
// the work hints handed to ThreadPool::ParallelFor track the machine
// the server actually runs on, and EXPLAIN can show the cost basis of
// its parallelism decisions.

#ifndef RELSERVE_OPTIMIZER_SCAN_COST_H_
#define RELSERVE_OPTIMIZER_SCAN_COST_H_

#include <cstdint>
#include <string>

namespace relserve {

class ScanCostModel {
 public:
  // Calibration seeds (ns per row-cell) before any observation lands:
  // the row path deserializes tagged records into boxed Values; the
  // columnar path memcpys contiguous arrays.
  static constexpr double kSeedRowNsPerCell = 60.0;
  static constexpr double kSeedColumnarNsPerCell = 2.0;

  // Current EWMA estimates, ns per (row, column) touched.
  static double RowNsPerCell();
  static double ColumnarNsPerCell();

  // Feeds a measured scan back into the model. `cells` is
  // rows * columns touched; observations with cells <= 0 are ignored.
  static void ObserveRowScan(int64_t cells, int64_t nanos);
  static void ObserveColumnarScan(int64_t cells, int64_t nanos);

  // ParallelFor work hint for one fragment-scan item (arbitrary units
  // comparable to the pool's kMinWorkPerMorsel).
  static int64_t FragmentWorkHint(int64_t rows_per_fragment,
                                  int64_t num_columns);

  // Whether a columnar scan of `total_rows` x `num_columns` is worth
  // fanning out across the pool at all (tiny tables stay serial: the
  // dispatch costs more than the scan).
  static bool ShouldParallelize(int64_t total_rows, int64_t num_columns,
                                int num_threads);

  // One-line rendering for EXPLAIN ("cost: row=... columnar=...").
  static std::string ToString();

  // Test hook: forget every observation, back to the seeds.
  static void ResetForTest();
};

}  // namespace relserve

#endif  // RELSERVE_OPTIMIZER_SCAN_COST_H_
