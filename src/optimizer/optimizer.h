// The rule-based adaptive optimizer of the paper's Sec. 7.1.
//
// For every operator it estimates the memory requirement as the sum of
// the operator's input, weight, and output sizes (for a matmul with
// inputs m x k and k x n this is exactly the paper's
// m*k + k*n + m*n rule) and selects the relation-centric
// representation when the estimate exceeds a configurable threshold,
// the UDF-centric representation otherwise.

#ifndef RELSERVE_OPTIMIZER_OPTIMIZER_H_
#define RELSERVE_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>

#include "common/result.h"
#include "graph/model.h"
#include "optimizer/plan.h"

namespace relserve {

// Estimated working-set bytes of one operator at `batch_size`:
// input activation + weight + output activation (float32).
Result<int64_t> EstimateNodeBytes(const Model& model, int node_id,
                                  int64_t batch_size);

class RuleBasedOptimizer {
 public:
  // `memory_threshold_bytes` mirrors the paper's 2 GB constant.
  // `devices` (optional, not owned) enables per-operator device
  // placement via the producer-transfer-consumer latency estimate
  // (Sec. 3(2)): an operator goes to the accelerator only when the
  // compute saving beats the host<->device transfer of its inputs and
  // outputs. Only UDF-centric operators are eligible — tensor blocks
  // flowing through the buffer pool stay on the CPU.
  explicit RuleBasedOptimizer(int64_t memory_threshold_bytes,
                              const DeviceAllocator* devices = nullptr)
      : memory_threshold_bytes_(memory_threshold_bytes),
        devices_(devices) {}

  // Chooses a representation per node. Input nodes follow their own
  // footprint (a batch too large to materialize is chunked on entry).
  Result<InferencePlan> Optimize(const Model& model,
                                 int64_t batch_size) const;

  int64_t memory_threshold_bytes() const {
    return memory_threshold_bytes_;
  }

 private:
  int64_t memory_threshold_bytes_;
  const DeviceAllocator* devices_;
};

}  // namespace relserve

#endif  // RELSERVE_OPTIMIZER_OPTIMIZER_H_
