// The rule-based adaptive optimizer of the paper's Sec. 7.1.
//
// For every operator it estimates the memory requirement as the sum of
// the operator's input, weight, and output sizes (for a matmul with
// inputs m x k and k x n this is exactly the paper's
// m*k + k*n + m*n rule) and selects the relation-centric
// representation when the estimate exceeds a configurable threshold,
// the UDF-centric representation otherwise.

#ifndef RELSERVE_OPTIMIZER_OPTIMIZER_H_
#define RELSERVE_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>

#include "common/result.h"
#include "graph/model.h"
#include "optimizer/plan.h"

namespace relserve {

// Estimated working-set bytes of one operator at `batch_size`:
// input activation + weight + output activation (float32).
Result<int64_t> EstimateNodeBytes(const Model& model, int node_id,
                                  int64_t batch_size);

// Kernel-arm knobs for the optimizer. Defaults leave every arm off so
// existing deployments (and golden plan texts) are unchanged; serving
// configs opt in per deployment.
struct OptimizerTuning {
  // Consider the deploy-time int8 quantized arm for UDF-centric CPU
  // matmuls. RELSERVE_QUANTIZE overrides this in both directions
  // ("int8" forces it on, "off" forces it off).
  bool enable_int8 = false;
  // Consider the CSR sparse arm when the measured weight density falls
  // below `sparse_density_threshold`.
  bool enable_sparse = false;
  // Break-even density calibrated from the kernels' measured
  // throughput ratio: the CSR chain sustains roughly 1/4 of the packed
  // fp32 GEMM's effective FLOP rate (indexed gathers vs contiguous
  // FMA), so sparse wins once >75% of the multiplies are skippable.
  double sparse_density_threshold = 0.25;
  // > 0 fuses a top-k epilogue into the model's final matmul (the
  // classification head) so the full logits row is never materialized.
  int64_t topk = 0;
};

class RuleBasedOptimizer {
 public:
  // `memory_threshold_bytes` mirrors the paper's 2 GB constant.
  // `devices` (optional, not owned) enables per-operator device
  // placement via the producer-transfer-consumer latency estimate
  // (Sec. 3(2)): an operator goes to the accelerator only when the
  // compute saving beats the host<->device transfer of its inputs and
  // outputs. Only UDF-centric operators are eligible — tensor blocks
  // flowing through the buffer pool stay on the CPU.
  explicit RuleBasedOptimizer(int64_t memory_threshold_bytes,
                              const DeviceAllocator* devices = nullptr,
                              OptimizerTuning tuning = OptimizerTuning())
      : memory_threshold_bytes_(memory_threshold_bytes),
        devices_(devices),
        tuning_(tuning) {}

  // Chooses a representation per node. Input nodes follow their own
  // footprint (a batch too large to materialize is chunked on entry).
  Result<InferencePlan> Optimize(const Model& model,
                                 int64_t batch_size) const;

  int64_t memory_threshold_bytes() const {
    return memory_threshold_bytes_;
  }

  const OptimizerTuning& tuning() const { return tuning_; }

 private:
  int64_t memory_threshold_bytes_;
  const DeviceAllocator* devices_;
  OptimizerTuning tuning_;
};

}  // namespace relserve

#endif  // RELSERVE_OPTIMIZER_OPTIMIZER_H_
