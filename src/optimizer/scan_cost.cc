#include "optimizer/scan_cost.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "resource/thread_pool.h"

namespace relserve {

namespace {

// EWMA state stored as femtoseconds-per-cell in an atomic int64 so
// updates from concurrent scans stay lock-free and torn-free.
constexpr double kFsPerNs = 1e6;
constexpr double kAlpha = 0.2;  // EWMA weight of a new observation

std::atomic<int64_t> g_row_fs_per_cell{
    static_cast<int64_t>(ScanCostModel::kSeedRowNsPerCell * kFsPerNs)};
std::atomic<int64_t> g_columnar_fs_per_cell{static_cast<int64_t>(
    ScanCostModel::kSeedColumnarNsPerCell * kFsPerNs)};

void Observe(std::atomic<int64_t>* state, int64_t cells,
             int64_t nanos) {
  if (cells <= 0 || nanos <= 0) return;
  const double sample_fs =
      static_cast<double>(nanos) / static_cast<double>(cells) * kFsPerNs;
  int64_t cur = state->load(std::memory_order_relaxed);
  while (true) {
    const double next =
        (1.0 - kAlpha) * static_cast<double>(cur) + kAlpha * sample_fs;
    const int64_t next_i =
        std::max<int64_t>(1, static_cast<int64_t>(next));
    if (state->compare_exchange_weak(cur, next_i,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

double ScanCostModel::RowNsPerCell() {
  return static_cast<double>(
             g_row_fs_per_cell.load(std::memory_order_relaxed)) /
         kFsPerNs;
}

double ScanCostModel::ColumnarNsPerCell() {
  return static_cast<double>(
             g_columnar_fs_per_cell.load(std::memory_order_relaxed)) /
         kFsPerNs;
}

void ScanCostModel::ObserveRowScan(int64_t cells, int64_t nanos) {
  Observe(&g_row_fs_per_cell, cells, nanos);
}

void ScanCostModel::ObserveColumnarScan(int64_t cells, int64_t nanos) {
  Observe(&g_columnar_fs_per_cell, cells, nanos);
}

int64_t ScanCostModel::FragmentWorkHint(int64_t rows_per_fragment,
                                        int64_t num_columns) {
  // Work units are ~ns of estimated scan cost for one fragment, so a
  // fragment that decodes in less than kMinWorkPerMorsel ns gets
  // batched with its neighbors by ParallelFor's grain logic.
  const double ns = ColumnarNsPerCell() *
                    static_cast<double>(rows_per_fragment) *
                    static_cast<double>(std::max<int64_t>(1, num_columns));
  return std::max<int64_t>(1, static_cast<int64_t>(ns));
}

bool ScanCostModel::ShouldParallelize(int64_t total_rows,
                                      int64_t num_columns,
                                      int num_threads) {
  if (num_threads <= 1) return false;
  const double total_ns = ColumnarNsPerCell() *
                          static_cast<double>(total_rows) *
                          static_cast<double>(std::max<int64_t>(1, num_columns));
  // Fan out only when there is at least ~2 morsels' worth of work.
  return total_ns >= 2.0 * ThreadPool::kMinWorkPerMorsel;
}

std::string ScanCostModel::ToString() {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "scan cost: row=%.1fns/cell columnar=%.2fns/cell",
                RowNsPerCell(), ColumnarNsPerCell());
  return buf;
}

void ScanCostModel::ResetForTest() {
  g_row_fs_per_cell.store(
      static_cast<int64_t>(kSeedRowNsPerCell * kFsPerNs),
      std::memory_order_relaxed);
  g_columnar_fs_per_cell.store(
      static_cast<int64_t>(kSeedColumnarNsPerCell * kFsPerNs),
      std::memory_order_relaxed);
}

}  // namespace relserve
