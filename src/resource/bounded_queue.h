// BoundedQueue<T>: blocking bounded FIFO connecting pipeline stages
// (paper Sec. 5(2): operator UDFs deployed as a stream pipeline).
//
// Producers block when the queue is full (backpressure bounds the
// number of in-flight micro-batches, and with it the pipeline's peak
// memory); consumers block until an item arrives or the queue is
// closed and drained.

#ifndef RELSERVE_RESOURCE_BOUNDED_QUEUE_H_
#define RELSERVE_RESOURCE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace relserve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room. Returns false if the queue was closed
  // (the item is dropped — the pipeline is shutting down).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: fails immediately (false) when the queue is
  // full or closed instead of waiting for room. This is the admission
  // path of the serving scheduler — a full queue sheds load with a
  // typed Status rather than stalling the client thread. On failure
  // `item` is left untouched so the caller can still resolve any
  // promise it carries.
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking pop: nullopt when nothing is immediately available.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Pops, waiting at most until `deadline` for an item. Returns
  // nullopt on timeout or when the queue is closed and drained — the
  // primitive behind the scheduler's max-delay batching window.
  std::optional<T> PopUntil(
      std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline, [this] {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  // Blocks until an item is available or the queue is closed and
  // empty (returns nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After Close, Push fails and Pop drains the remaining items then
  // reports end-of-stream.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace relserve

#endif  // RELSERVE_RESOURCE_BOUNDED_QUEUE_H_
