// MemoryTracker: a named, bounded memory arena (Sec. 3 of the paper,
// "Unified Resource Management").
//
// Every tensor allocation in relserve is charged against a tracker.
// Each execution architecture gets its own arena with a hard limit:
//  - the RDBMS working-memory arena bounds UDF-centric execution,
//  - the external DL runtime's arena bounds DL-centric execution,
//  - relation-centric execution only charges a few blocks at a time and
//    relies on the buffer pool for the rest.
// Exceeding the limit is reported as Status::OutOfMemory — the
// experimental outcome Table 3 of the paper records — never as a crash.

#ifndef RELSERVE_RESOURCE_MEMORY_TRACKER_H_
#define RELSERVE_RESOURCE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace relserve {

class MemoryTracker {
 public:
  static constexpr int64_t kUnlimited =
      std::numeric_limits<int64_t>::max();

  // `limit_bytes` is a hard cap; kUnlimited disables enforcement.
  explicit MemoryTracker(std::string name,
                         int64_t limit_bytes = kUnlimited)
      : name_(std::move(name)), limit_bytes_(limit_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // Charges `bytes` against the arena; OutOfMemory if it would exceed
  // the limit (in which case nothing is charged).
  Status Allocate(int64_t bytes);

  // Returns `bytes` to the arena. Must match prior successful
  // Allocate() charges.
  void Release(int64_t bytes);

  int64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t limit_bytes() const { return limit_bytes_; }
  const std::string& name() const { return name_; }

  // Number of allocation attempts rejected with OutOfMemory.
  int64_t oom_count() const {
    return oom_count_.load(std::memory_order_relaxed);
  }

  void ResetPeak() { peak_bytes_.store(used_bytes()); }

 private:
  const std::string name_;
  const int64_t limit_bytes_;
  std::atomic<int64_t> used_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> oom_count_{0};
};

}  // namespace relserve

#endif  // RELSERVE_RESOURCE_MEMORY_TRACKER_H_
