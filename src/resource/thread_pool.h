// Fixed-size thread pool with a ParallelFor primitive.
//
// The paper's Sec. 3 calls out coordinating RDBMS worker threads with
// the threads used inside linear-algebra UDFs (OpenMP in OpenBLAS).
// relserve routes *all* intra-operator parallelism through one shared
// pool so the two never oversubscribe each other.

#ifndef RELSERVE_RESOURCE_THREAD_POOL_H_
#define RELSERVE_RESOURCE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relserve {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed.
  void Wait();

  // Splits [begin, end) into contiguous chunks and runs `body(lo, hi)`
  // for each chunk across the pool, blocking until all complete.
  // Executes inline when the range is small or the pool has 1 thread.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutting_down_ = false;
};

}  // namespace relserve

#endif  // RELSERVE_RESOURCE_THREAD_POOL_H_
