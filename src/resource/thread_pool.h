// Fixed-size thread pool with a morsel-driven ParallelFor primitive.
//
// The paper's Sec. 3 calls out coordinating RDBMS worker threads with
// the threads used inside linear-algebra UDFs (OpenMP in OpenBLAS).
// relserve routes *all* intra-operator parallelism through one shared
// pool so the two never oversubscribe each other.
//
// ParallelFor is built on per-call task groups: every call owns its
// completion state, the calling thread claims and executes morsels
// itself instead of blocking idle, and only sleeps for morsels still
// in flight on other workers. That makes the primitive
//  - reentrant: a worker (or any thread) may call ParallelFor from
//    inside a ParallelFor body — the nested call drains its own
//    morsels on the calling thread plus any free workers;
//  - isolated: concurrent ParallelFor calls from different threads
//    never observe each other's completion state (no shared pending
//    counter), so an RDBMS worker per query and intra-kernel morsels
//    compose without cross-talk.

#ifndef RELSERVE_RESOURCE_THREAD_POOL_H_
#define RELSERVE_RESOURCE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relserve {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed.
  void Wait();

  // Splits [begin, end) into contiguous morsels of at least `grain`
  // items and runs `body(lo, hi)` for each across the pool, blocking
  // until all complete. Safe to call from inside a worker or from
  // several threads concurrently (see file comment).
  //
  // `grain` is the minimum items per morsel; 0 picks a cost-based
  // default of ceil(kMinWorkPerMorsel / work_hint) so that each morsel
  // carries enough work to amortize dispatch. `work_hint` estimates
  // the cost of one item in arbitrary units (~flops); callers doing
  // heavy per-item work (a GEMM row, a tensor block) should pass it so
  // small-looking ranges still parallelize.
  //
  // Morsel boundaries depend only on (begin, end, grain, work_hint,
  // num_threads) — never on timing — so any body whose per-item result
  // is independent of the partitioning produces identical output on
  // every run.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body,
                   int64_t grain = 0, int64_t work_hint = 1);

  // Target work units per morsel used when `grain` is 0.
  static constexpr int64_t kMinWorkPerMorsel = 16384;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;  // queued + running tasks (Submit/Wait only)
  bool shutting_down_ = false;
};

}  // namespace relserve

#endif  // RELSERVE_RESOURCE_THREAD_POOL_H_
