#include "resource/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace relserve {

ThreadPool::ThreadPool(int num_threads) {
  RELSERVE_CHECK(num_threads >= 1) << "pool needs at least one thread";
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RELSERVE_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int threads = num_threads();
  // Below this size the dispatch overhead outweighs the parallelism.
  constexpr int64_t kMinChunk = 256;
  if (threads == 1 || n < 2 * kMinChunk) {
    body(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(threads, (n + kMinChunk - 1) /
                                                        kMinChunk);
  const int64_t chunk_size = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = begin + c * chunk_size;
    const int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Submit([&body, lo, hi] { body(lo, hi); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace relserve
