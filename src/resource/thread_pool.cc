#include "resource/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"

namespace relserve {

namespace {

// One ParallelFor call's private state. Kept alive by shared_ptr so a
// helper task that is dequeued after the call already finished (all
// morsels claimed by other threads) can still touch the group safely;
// such a stale helper claims nothing and exits without invoking the
// body.
struct TaskGroup {
  std::function<void(int64_t, int64_t)> body;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;        // items per morsel
  int64_t num_morsels = 0;
  std::atomic<int64_t> next{0};  // next unclaimed morsel

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t completed = 0;  // guarded by mu
};

// Claims and runs morsels until the group is drained. Runs on the
// calling thread and on any helper workers concurrently.
void RunMorsels(TaskGroup* group) {
  while (true) {
    const int64_t m = group->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= group->num_morsels) return;
    const int64_t lo = group->begin + m * group->chunk;
    const int64_t hi = std::min(group->end, lo + group->chunk);
    group->body(lo, hi);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(group->mu);
      last = (++group->completed == group->num_morsels);
    }
    if (last) group->done_cv.notify_all();
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  RELSERVE_CHECK(num_threads >= 1) << "pool needs at least one thread";
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RELSERVE_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body, int64_t grain,
    int64_t work_hint) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain <= 0) {
    grain = std::max<int64_t>(
        1, kMinWorkPerMorsel / std::max<int64_t>(work_hint, 1));
  }
  const int64_t threads = num_threads();
  // More morsels than threads so fast workers steal the tail from slow
  // ones (morsel-driven scheduling), capped to bound dispatch overhead.
  const int64_t max_morsels = threads * 4;
  int64_t num_morsels =
      std::min((n + grain - 1) / grain, max_morsels);
  if (threads == 1 || num_morsels <= 1) {
    body(begin, end);
    return;
  }
  auto group = std::make_shared<TaskGroup>();
  group->body = body;
  group->begin = begin;
  group->end = end;
  group->chunk = (n + num_morsels - 1) / num_morsels;
  group->num_morsels = (n + group->chunk - 1) / group->chunk;

  // Enough helpers that every worker could join, but never more than
  // the morsels left over after the calling thread takes one.
  const int64_t helpers =
      std::min<int64_t>(threads, group->num_morsels - 1);
  for (int64_t i = 0; i < helpers; ++i) {
    Submit([group] { RunMorsels(group.get()); });
  }
  // The calling thread works instead of blocking — this is what makes
  // nested calls from inside a worker deadlock-free: the innermost
  // caller can always drain its own group by itself.
  RunMorsels(group.get());
  std::unique_lock<std::mutex> lock(group->mu);
  group->done_cv.wait(
      lock, [&] { return group->completed == group->num_morsels; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace relserve
