#include "resource/device_model.h"

#include <chrono>

#include "common/logging.h"
#include "kernels/kernels.h"

namespace relserve {

double CalibratedCpuGemmFlops() {
  // One-shot probe, cached for the process: a 256^3 GEMM through the
  // same dispatched micro-kernels serving uses (single thread — the
  // cost model wants per-core throughput), best of 3 to shed cold
  // caches and first-touch faults. Thread-safe via static-local init.
  static const double calibrated = [] {
    constexpr int64_t kDim = 256;
    auto a = Tensor::Create(Shape{kDim, kDim}, nullptr);
    auto b = Tensor::Create(Shape{kDim, kDim}, nullptr);
    auto c = Tensor::Create(Shape{kDim, kDim}, nullptr);
    if (!a.ok() || !b.ok() || !c.ok()) return kFallbackCpuGemmFlops;
    float* pa = a->data();
    float* pb = b->data();
    // Deterministic non-trivial fill; values are irrelevant to timing
    // but denormals would not be, so keep them O(1).
    for (int64_t i = 0; i < kDim * kDim; ++i) {
      pa[i] = 0.25f + static_cast<float>(i % 7) * 0.125f;
      pb[i] = 0.5f - static_cast<float>(i % 5) * 0.0625f;
    }
    using Clock = std::chrono::steady_clock;
    double best_seconds = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const Clock::time_point t0 = Clock::now();
      const Status s = kernels::GemmInto(*a, *b, /*transpose_b=*/true,
                                         /*accumulate=*/false, &*c,
                                         /*pool=*/nullptr);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!s.ok()) return kFallbackCpuGemmFlops;
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    if (best_seconds <= 0.0) return kFallbackCpuGemmFlops;
    return 2.0 * static_cast<double>(kDim) * static_cast<double>(kDim) *
           static_cast<double>(kDim) / best_seconds;
  }();
  return calibrated;
}

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu:
      return "cpu";
    case DeviceKind::kAccelerator:
      return "accelerator";
  }
  return "?";
}

double EstimateLatencySeconds(const OperatorProfile& op,
                              const DeviceSpec& device) {
  double seconds = device.launch_latency_seconds;
  if (device.transfer_bytes_per_second > 0.0) {
    seconds += static_cast<double>(op.input_bytes + op.output_bytes) /
               device.transfer_bytes_per_second;
  }
  if (device.flops_per_second > 0.0) {
    seconds += op.flops / device.flops_per_second;
  }
  return seconds;
}

const DeviceSpec& DeviceAllocator::Choose(
    const OperatorProfile& op) const {
  RELSERVE_CHECK(!devices_.empty()) << "no devices registered";
  const DeviceSpec* best = &devices_[0];
  double best_latency = EstimateLatencySeconds(op, *best);
  for (size_t i = 1; i < devices_.size(); ++i) {
    const double latency = EstimateLatencySeconds(op, devices_[i]);
    if (latency < best_latency) {
      best_latency = latency;
      best = &devices_[i];
    }
  }
  return *best;
}

}  // namespace relserve
