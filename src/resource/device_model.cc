#include "resource/device_model.h"

#include "common/logging.h"

namespace relserve {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu:
      return "cpu";
    case DeviceKind::kAccelerator:
      return "accelerator";
  }
  return "?";
}

double EstimateLatencySeconds(const OperatorProfile& op,
                              const DeviceSpec& device) {
  double seconds = device.launch_latency_seconds;
  if (device.transfer_bytes_per_second > 0.0) {
    seconds += static_cast<double>(op.input_bytes + op.output_bytes) /
               device.transfer_bytes_per_second;
  }
  if (device.flops_per_second > 0.0) {
    seconds += op.flops / device.flops_per_second;
  }
  return seconds;
}

const DeviceSpec& DeviceAllocator::Choose(
    const OperatorProfile& op) const {
  RELSERVE_CHECK(!devices_.empty()) << "no devices registered";
  const DeviceSpec* best = &devices_[0];
  double best_latency = EstimateLatencySeconds(op, *best);
  for (size_t i = 1; i < devices_.size(); ++i) {
    const double latency = EstimateLatencySeconds(op, devices_[i]);
    if (latency < best_latency) {
      best_latency = latency;
      best = &devices_[i];
    }
  }
  return *best;
}

}  // namespace relserve
