#include "resource/memory_tracker.h"

#include <string>

#include "common/logging.h"

namespace relserve {

Status MemoryTracker::Allocate(int64_t bytes) {
  RELSERVE_CHECK(bytes >= 0) << "negative allocation of " << bytes;
  int64_t current = used_bytes_.load(std::memory_order_relaxed);
  while (true) {
    if (limit_bytes_ != kUnlimited && current + bytes > limit_bytes_) {
      oom_count_.fetch_add(1, std::memory_order_relaxed);
      return Status::OutOfMemory(
          "arena '" + name_ + "': requested " + std::to_string(bytes) +
          " bytes with " + std::to_string(current) + "/" +
          std::to_string(limit_bytes_) + " in use");
    }
    if (used_bytes_.compare_exchange_weak(current, current + bytes,
                                          std::memory_order_relaxed)) {
      break;
    }
  }
  // Best-effort peak update; races can only under-report transiently.
  int64_t now = current + bytes;
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryTracker::Release(int64_t bytes) {
  RELSERVE_CHECK(bytes >= 0) << "negative release of " << bytes;
  int64_t prev = used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  RELSERVE_CHECK(prev >= bytes)
      << "arena '" << name_ << "' released " << bytes << " with only "
      << prev << " in use";
}

}  // namespace relserve
