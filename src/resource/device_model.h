// Device allocation cost model (Sec. 3(2) of the paper).
//
// The paper observes that whether an inference benefits from an
// accelerator depends on whether the host→device transfer outweighs
// the compute speedup, and proposes modeling each UDF as a
// producer-transfer-consumer process. relserve has no physical GPU in
// this environment, so the accelerator is *simulated*: a device with a
// configurable compute speedup, transfer bandwidth, and fixed launch
// latency. The allocator picks the device with the lower estimated
// end-to-end latency — exactly the decision procedure the paper
// motivates with its decision-forest study.

#ifndef RELSERVE_RESOURCE_DEVICE_MODEL_H_
#define RELSERVE_RESOURCE_DEVICE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace relserve {

enum class DeviceKind { kCpu, kAccelerator };

const char* DeviceKindName(DeviceKind kind);

// Fallback CPU throughput for the cost model when the runtime probe
// below cannot run (e.g. the timed GEMM itself fails): ~75 GFLOP/s was
// measured on the original dev container (`bench_kernels`, 512^3 fp32,
// single thread, AVX2+FMA).
inline constexpr double kFallbackCpuGemmFlops = 75e9;

// Measured CPU GEMM throughput in FLOP/s: a small timed GEMM runs
// through the dispatched micro-kernels ONCE on first use (best of a
// few repetitions, single thread) and the result is cached for the
// process. A faster or slower CPU substrate shifts the
// producer-transfer-consumer balance, so probing the actual machine —
// instead of trusting a constant calibrated on someone else's dev box
// — keeps the optimizer's device decisions honest.
double CalibratedCpuGemmFlops();

struct DeviceSpec {
  DeviceKind kind = DeviceKind::kCpu;
  std::string name = "cpu";
  // Sustained compute throughput in FLOP/s for dense linear algebra.
  // Defaults to the one-shot runtime calibration.
  double flops_per_second = CalibratedCpuGemmFlops();
  // Host<->device link; irrelevant (infinite) for the host CPU.
  double transfer_bytes_per_second = 0.0;  // 0 => no transfer needed
  // Fixed per-kernel launch overhead in seconds.
  double launch_latency_seconds = 0.0;
};

struct OperatorProfile {
  double flops = 0.0;           // arithmetic work
  int64_t input_bytes = 0;      // moved host->device before compute
  int64_t output_bytes = 0;     // moved device->host after compute
};

// Estimated end-to-end seconds for running `op` on `device`,
// producer-transfer-consumer style: transfer-in + compute + transfer-out
// (+ launch overhead). Transfers overlap nothing in this simple model,
// matching the pessimistic bound the paper's estimator uses.
double EstimateLatencySeconds(const OperatorProfile& op,
                              const DeviceSpec& device);

// Picks the device with the lowest estimated latency. Ties go to the
// first (CPU-first ordering is conventional).
class DeviceAllocator {
 public:
  explicit DeviceAllocator(std::vector<DeviceSpec> devices)
      : devices_(std::move(devices)) {}

  const DeviceSpec& Choose(const OperatorProfile& op) const;

  const std::vector<DeviceSpec>& devices() const { return devices_; }

 private:
  std::vector<DeviceSpec> devices_;
};

}  // namespace relserve

#endif  // RELSERVE_RESOURCE_DEVICE_MODEL_H_
