// Shape: dimensions of a dense row-major tensor.

#ifndef RELSERVE_TENSOR_SHAPE_H_
#define RELSERVE_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace relserve {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int ndim() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_[i]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all dimensions; 1 for a scalar (rank-0) shape.
  int64_t NumElements() const;

  // e.g. "[128, 1024]".
  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace relserve

#endif  // RELSERVE_TENSOR_SHAPE_H_
