#include "tensor/shape.h"

namespace relserve {

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace relserve
