// TensorBlock: the unit of the relation-centric representation.
//
// The paper views a large tensor as a *relation of tensor blocks*
// (Sec. 1, Fig. 1c; Sec. 7.1). A matrix of shape R x C chunked with
// block size (br, bc) becomes a set of tuples
//   (row_block, col_block, payload[br' x bc'])
// where edge blocks may be ragged. Matmul over two such relations is a
// join on the inner block index followed by a sum-aggregation on the
// output block coordinates.

#ifndef RELSERVE_TENSOR_TENSOR_BLOCK_H_
#define RELSERVE_TENSOR_TENSOR_BLOCK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace relserve {

struct TensorBlock {
  int64_t row_block = 0;  // block-row coordinate
  int64_t col_block = 0;  // block-column coordinate
  Tensor data;            // payload; shape [rows, cols] of this block
};

// Geometry of a matrix chunked into blocks.
struct BlockedShape {
  int64_t rows = 0;        // full matrix rows
  int64_t cols = 0;        // full matrix cols
  int64_t block_rows = 0;  // nominal block height
  int64_t block_cols = 0;  // nominal block width

  int64_t NumRowBlocks() const {
    return (rows + block_rows - 1) / block_rows;
  }
  int64_t NumColBlocks() const {
    return (cols + block_cols - 1) / block_cols;
  }
  // Actual height/width of the block at a coordinate (ragged edges).
  int64_t RowsInBlock(int64_t row_block) const;
  int64_t ColsInBlock(int64_t col_block) const;
};

// Chunks matrix `m` into blocks of (block_rows x block_cols); edge
// blocks are smaller. Payloads are charged to `tracker`.
Result<std::vector<TensorBlock>> SplitMatrix(
    const Tensor& m, int64_t block_rows, int64_t block_cols,
    MemoryTracker* tracker = nullptr);

// Reassembles a full matrix from blocks produced with `geometry`.
Result<Tensor> AssembleMatrix(const std::vector<TensorBlock>& blocks,
                              const BlockedShape& geometry,
                              MemoryTracker* tracker = nullptr);

// Extracts a single block of `m` without materializing the rest —
// used when streaming a large matrix into the block store one block at
// a time so only O(block) memory is ever charged.
Result<TensorBlock> ExtractBlock(const Tensor& m,
                                 const BlockedShape& geometry,
                                 int64_t row_block, int64_t col_block,
                                 MemoryTracker* tracker = nullptr);

}  // namespace relserve

#endif  // RELSERVE_TENSOR_TENSOR_BLOCK_H_
