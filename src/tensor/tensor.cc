#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <new>

namespace relserve {

Result<Tensor> Tensor::Create(Shape shape, MemoryTracker* tracker) {
  const int64_t n = shape.NumElements();
  if (n < 0) {
    return Status::InvalidArgument("negative-sized shape " +
                                   shape.ToString());
  }
  const int64_t bytes = n * static_cast<int64_t>(sizeof(float));
  if (tracker != nullptr) {
    RELSERVE_RETURN_NOT_OK(tracker->Allocate(bytes));
  }
  float* data = AllocateAlignedFloats(n);
  if (data == nullptr) {
    if (tracker != nullptr) tracker->Release(bytes);
    return Status::OutOfMemory("physical allocation of " +
                               std::to_string(bytes) + " bytes failed");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.buffer_ = std::make_shared<Buffer>();
  t.buffer_->data = data;
  t.buffer_->bytes = bytes;
  t.buffer_->tracker = tracker;
  return t;
}

Result<Tensor> Tensor::Zeros(Shape shape, MemoryTracker* tracker) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor t, Create(std::move(shape), tracker));
  std::memset(t.data(), 0, t.ByteSize());
  return t;
}

Result<Tensor> Tensor::Full(Shape shape, float value,
                            MemoryTracker* tracker) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor t, Create(std::move(shape), tracker));
  std::fill_n(t.data(), t.NumElements(), value);
  return t;
}

Result<Tensor> Tensor::FromData(Shape shape,
                                const std::vector<float>& values,
                                MemoryTracker* tracker) {
  if (static_cast<int64_t>(values.size()) != shape.NumElements()) {
    return Status::InvalidArgument(
        "FromData: " + std::to_string(values.size()) +
        " values for shape " + shape.ToString());
  }
  RELSERVE_ASSIGN_OR_RETURN(Tensor t, Create(std::move(shape), tracker));
  std::memcpy(t.data(), values.data(), t.ByteSize());
  return t;
}

Result<Tensor> Tensor::Clone(MemoryTracker* tracker) const {
  if (!is_valid()) return Status::InvalidArgument("Clone of empty tensor");
  RELSERVE_ASSIGN_OR_RETURN(Tensor t, Create(shape_, tracker));
  std::memcpy(t.data(), data(), ByteSize());
  return t;
}

Result<Tensor> Tensor::Reshape(Shape new_shape) const {
  if (!is_valid()) {
    return Status::InvalidArgument("Reshape of empty tensor");
  }
  if (new_shape.NumElements() != NumElements()) {
    return Status::InvalidArgument(
        "Reshape " + shape_.ToString() + " -> " + new_shape.ToString() +
        " changes element count");
  }
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  RELSERVE_CHECK(is_valid() && other.is_valid());
  RELSERVE_CHECK(shape_ == other.shape_)
      << shape_.ToString() << " vs " << other.shape_.ToString();
  float max_diff = 0.0f;
  const float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < NumElements(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace relserve
