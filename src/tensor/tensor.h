// Tensor: dense row-major float32 array with shared ownership.
//
// All element data lives in a refcounted Buffer that is charged
// against a MemoryTracker arena at allocation and released at the last
// reference drop. Creation is fallible (Result<Tensor>) because an
// arena may be at its limit — this is how the UDF-centric and
// DL-centric architectures hit the OOM outcomes of the paper's
// Table 3.

#ifndef RELSERVE_TENSOR_TENSOR_H_
#define RELSERVE_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_alloc.h"
#include "common/logging.h"
#include "common/result.h"
#include "resource/memory_tracker.h"
#include "tensor/shape.h"

namespace relserve {

// Alignment contract: every Tensor buffer starts on a 64-byte (cache
// line) boundary, so GEMM packing panels copied from tensor data and
// SIMD loads on row starts of 16-float-multiple widths never straddle
// a line. tensor_test asserts this on freshly created tensors.
inline constexpr int64_t kTensorAlignmentBytes = kCacheLineBytes;
static_assert(kTensorAlignmentBytes >= 32,
              "tensor buffers must admit full-width AVX loads");

class Tensor {
 public:
  // An empty (invalid) tensor; useful as a placeholder.
  Tensor() = default;

  // Allocates uninitialized storage charged to `tracker` (may be null
  // for untracked scratch memory).
  static Result<Tensor> Create(Shape shape,
                               MemoryTracker* tracker = nullptr);

  // Allocates and zero-fills.
  static Result<Tensor> Zeros(Shape shape,
                              MemoryTracker* tracker = nullptr);

  // Allocates and fills with `value`.
  static Result<Tensor> Full(Shape shape, float value,
                             MemoryTracker* tracker = nullptr);

  // Copies `values` (must match shape.NumElements()).
  static Result<Tensor> FromData(Shape shape,
                                 const std::vector<float>& values,
                                 MemoryTracker* tracker = nullptr);

  bool is_valid() const { return buffer_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return shape_.NumElements(); }
  int64_t ByteSize() const {
    return NumElements() * static_cast<int64_t>(sizeof(float));
  }

  float* data() {
    RELSERVE_DCHECK(is_valid());
    return buffer_->data;
  }
  const float* data() const {
    RELSERVE_DCHECK(is_valid());
    return buffer_->data;
  }

  // 2-D element accessors (row-major). Only valid for matrices.
  float& At(int64_t row, int64_t col) {
    RELSERVE_DCHECK(shape_.ndim() == 2);
    return buffer_->data[row * shape_.dim(1) + col];
  }
  float At(int64_t row, int64_t col) const {
    RELSERVE_DCHECK(shape_.ndim() == 2);
    return buffer_->data[row * shape_.dim(1) + col];
  }

  // Deep copy into (possibly) another arena.
  Result<Tensor> Clone(MemoryTracker* tracker = nullptr) const;

  // Same-storage view with a different shape (element count must
  // match). Cheap: shares the buffer.
  Result<Tensor> Reshape(Shape new_shape) const;

  // Max absolute elementwise difference; both must share a shape.
  float MaxAbsDiff(const Tensor& other) const;

 private:
  struct Buffer {
    float* data = nullptr;  // kTensorAlignmentBytes-aligned
    int64_t bytes = 0;
    MemoryTracker* tracker = nullptr;
    ~Buffer() {
      FreeAlignedFloats(data);
      if (tracker != nullptr) tracker->Release(bytes);
    }
  };

  Shape shape_;
  std::shared_ptr<Buffer> buffer_;
};

}  // namespace relserve

#endif  // RELSERVE_TENSOR_TENSOR_H_
