#include "tensor/tensor_block.h"

#include <algorithm>
#include <cstring>

namespace relserve {

int64_t BlockedShape::RowsInBlock(int64_t row_block) const {
  return std::min(block_rows, rows - row_block * block_rows);
}

int64_t BlockedShape::ColsInBlock(int64_t col_block) const {
  return std::min(block_cols, cols - col_block * block_cols);
}

Result<TensorBlock> ExtractBlock(const Tensor& m,
                                 const BlockedShape& geometry,
                                 int64_t row_block, int64_t col_block,
                                 MemoryTracker* tracker) {
  if (m.shape().ndim() != 2) {
    return Status::InvalidArgument("ExtractBlock expects a matrix, got " +
                                   m.shape().ToString());
  }
  const int64_t br = geometry.RowsInBlock(row_block);
  const int64_t bc = geometry.ColsInBlock(col_block);
  if (br <= 0 || bc <= 0) {
    return Status::InvalidArgument("block coordinate out of range");
  }
  RELSERVE_ASSIGN_OR_RETURN(Tensor payload,
                            Tensor::Create(Shape{br, bc}, tracker));
  const int64_t row0 = row_block * geometry.block_rows;
  const int64_t col0 = col_block * geometry.block_cols;
  const int64_t src_stride = m.shape().dim(1);
  const float* src = m.data() + row0 * src_stride + col0;
  float* dst = payload.data();
  for (int64_t r = 0; r < br; ++r) {
    std::memcpy(dst + r * bc, src + r * src_stride,
                bc * sizeof(float));
  }
  return TensorBlock{row_block, col_block, std::move(payload)};
}

Result<std::vector<TensorBlock>> SplitMatrix(const Tensor& m,
                                             int64_t block_rows,
                                             int64_t block_cols,
                                             MemoryTracker* tracker) {
  if (m.shape().ndim() != 2) {
    return Status::InvalidArgument("SplitMatrix expects a matrix, got " +
                                   m.shape().ToString());
  }
  if (block_rows <= 0 || block_cols <= 0) {
    return Status::InvalidArgument("non-positive block size");
  }
  const BlockedShape geometry{m.shape().dim(0), m.shape().dim(1),
                              block_rows, block_cols};
  std::vector<TensorBlock> blocks;
  blocks.reserve(geometry.NumRowBlocks() * geometry.NumColBlocks());
  for (int64_t rb = 0; rb < geometry.NumRowBlocks(); ++rb) {
    for (int64_t cb = 0; cb < geometry.NumColBlocks(); ++cb) {
      RELSERVE_ASSIGN_OR_RETURN(TensorBlock block,
                                ExtractBlock(m, geometry, rb, cb, tracker));
      blocks.push_back(std::move(block));
    }
  }
  return blocks;
}

Result<Tensor> AssembleMatrix(const std::vector<TensorBlock>& blocks,
                              const BlockedShape& geometry,
                              MemoryTracker* tracker) {
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor out,
      Tensor::Zeros(Shape{geometry.rows, geometry.cols}, tracker));
  const int64_t dst_stride = geometry.cols;
  for (const TensorBlock& block : blocks) {
    const int64_t br = block.data.shape().dim(0);
    const int64_t bc = block.data.shape().dim(1);
    if (block.data.shape().ndim() != 2 ||
        br != geometry.RowsInBlock(block.row_block) ||
        bc != geometry.ColsInBlock(block.col_block)) {
      return Status::InvalidArgument(
          "block payload shape " + block.data.shape().ToString() +
          " inconsistent with geometry at (" +
          std::to_string(block.row_block) + ", " +
          std::to_string(block.col_block) + ")");
    }
    const int64_t row0 = block.row_block * geometry.block_rows;
    const int64_t col0 = block.col_block * geometry.block_cols;
    const float* src = block.data.data();
    float* dst = out.data() + row0 * dst_stride + col0;
    for (int64_t r = 0; r < br; ++r) {
      std::memcpy(dst + r * dst_stride, src + r * bc,
                  bc * sizeof(float));
    }
  }
  return out;
}

}  // namespace relserve
