#include "net/wire.h"

#include <cstring>
#include <limits>

namespace relserve {
namespace net {

namespace {

// --- Little-endian cursor primitives --------------------------------
//
// The hosts this protocol targets are little-endian x86; memcpy keeps
// every access alignment-safe (the frame decoder parses in place at
// arbitrary offsets of the connection buffer), and UBSan gates it.

class Reader {
 public:
  Reader(const char* p, size_t len) : p_(p), end_(p + len) {}

  bool U8(uint8_t* v) { return Fixed(v); }
  bool U16(uint16_t* v) { return Fixed(v); }
  bool U32(uint32_t* v) { return Fixed(v); }
  bool U64(uint64_t* v) { return Fixed(v); }
  bool I64(int64_t* v) { return Fixed(v); }

  bool Bytes(size_t n, const char** out) {
    if (Remaining() < n) return false;
    *out = p_;
    p_ += n;
    return true;
  }

  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }
  const char* Cursor() const { return p_; }

 private:
  template <typename T>
  bool Fixed(T* v) {
    if (Remaining() < sizeof(T)) return false;
    std::memcpy(v, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  const char* p_;
  const char* end_;
};

class Writer {
 public:
  explicit Writer(Buffer* out) : out_(out) {}

  void U8(uint8_t v) { Fixed(v); }
  void U16(uint16_t v) { Fixed(v); }
  void U32(uint32_t v) { Fixed(v); }
  void U64(uint64_t v) { Fixed(v); }
  void I64(int64_t v) { Fixed(v); }
  void Bytes(const void* p, size_t n) { out_->Append(p, n); }

 private:
  template <typename T>
  void Fixed(T v) {
    out_->Append(&v, sizeof(T));
  }

  Buffer* out_;
};

// Reserves the length prefix, writes the 16-byte header, and patches
// the prefix when destroyed — so encoders just append their body.
// `prefix_at_` is an offset into the buffer's readable span, which is
// stable across appends (growth/compaction never reorders readable
// bytes relative to data()).
class FrameWriter {
 public:
  FrameWriter(uint64_t request_id, Opcode opcode, uint8_t status,
              Buffer* out)
      : out_(out), writer_(out), prefix_at_(out->size()) {
    writer_.U32(0);  // patched by the destructor
    writer_.U32(kMagic);
    writer_.U8(kWireVersion);
    writer_.U8(static_cast<uint8_t>(opcode));
    writer_.U8(status);
    writer_.U8(0);  // flags
    writer_.U64(request_id);
  }

  ~FrameWriter() {
    const uint32_t frame_len = static_cast<uint32_t>(
        out_->size() - prefix_at_ - kLenPrefixBytes);
    std::memcpy(out_->mutable_data() + prefix_at_, &frame_len,
                sizeof(frame_len));
  }

  Writer& body() { return writer_; }

 private:
  Buffer* out_;
  Writer writer_;
  size_t prefix_at_;
};

constexpr size_t kMaxModelName = 4096;
constexpr int kMaxNdim = 8;

}  // namespace

uint8_t WireStatusByte(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kOutOfMemory: return 2;
    case StatusCode::kNotFound: return 3;
    case StatusCode::kAlreadyExists: return 4;
    case StatusCode::kIOError: return 5;
    case StatusCode::kNotImplemented: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kDeadlineExceeded: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kDataLoss: return 10;
    case StatusCode::kProtocolError: return 11;
  }
  return 7;  // Internal
}

StatusCode StatusCodeFromWire(uint8_t byte) {
  switch (byte) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kOutOfMemory;
    case 3: return StatusCode::kNotFound;
    case 4: return StatusCode::kAlreadyExists;
    case 5: return StatusCode::kIOError;
    case 6: return StatusCode::kNotImplemented;
    case 7: return StatusCode::kInternal;
    case 8: return StatusCode::kDeadlineExceeded;
    case 9: return StatusCode::kUnavailable;
    case 10: return StatusCode::kDataLoss;
    case 11: return StatusCode::kProtocolError;
    default: return StatusCode::kInternal;
  }
}

Result<FrameHeader> DecodeFrameHeader(const char* p, size_t len) {
  Reader reader(p, len);
  FrameHeader header;
  uint8_t opcode = 0;
  if (!reader.U32(&header.magic) || !reader.U8(&header.version) ||
      !reader.U8(&opcode) || !reader.U8(&header.status) ||
      !reader.U8(&header.flags) || !reader.U64(&header.request_id)) {
    return Status::ProtocolError("frame shorter than fixed header");
  }
  if (header.magic != kMagic) {
    return Status::ProtocolError("bad frame magic");
  }
  if (header.version != kWireVersion) {
    return Status::ProtocolError(
        "unsupported wire version " + std::to_string(header.version));
  }
  if (header.flags != 0) {
    return Status::ProtocolError("nonzero reserved flags");
  }
  if (opcode > static_cast<uint8_t>(Opcode::kStats)) {
    return Status::ProtocolError("unknown opcode " +
                                 std::to_string(opcode));
  }
  header.opcode = static_cast<Opcode>(opcode);
  return header;
}

namespace {

Status DecodeModelName(Reader* reader, std::string* model) {
  uint16_t model_len = 0;
  if (!reader->U16(&model_len)) {
    return Status::ProtocolError("truncated model-name length");
  }
  if (model_len > kMaxModelName) {
    return Status::ProtocolError("model name over 4096 bytes");
  }
  const char* name = nullptr;
  if (!reader->Bytes(model_len, &name)) {
    return Status::ProtocolError("truncated model name");
  }
  model->assign(name, model_len);
  return Status::OK();
}

}  // namespace

Result<PredictRequest> DecodePredictRequest(const char* body,
                                            size_t len) {
  Reader reader(body, len);
  PredictRequest request;
  RELSERVE_RETURN_NOT_OK(DecodeModelName(&reader, &request.model));
  uint8_t dtype = 0, ndim = 0;
  if (!reader.I64(&request.deadline_us) || !reader.U8(&dtype) ||
      !reader.U8(&ndim)) {
    return Status::ProtocolError("truncated predict header");
  }
  if (dtype != kDtypeFloat32) {
    return Status::ProtocolError("unsupported dtype " +
                                 std::to_string(dtype));
  }
  if (ndim == 0 || ndim > kMaxNdim) {
    return Status::ProtocolError("predict rank must be 1..8, got " +
                                 std::to_string(ndim));
  }
  int64_t elems = 1;
  request.dims.reserve(ndim);
  for (int i = 0; i < ndim; ++i) {
    int64_t dim = 0;
    if (!reader.I64(&dim)) {
      return Status::ProtocolError("truncated dims array");
    }
    if (dim <= 0 ||
        (elems != 0 &&
         dim > std::numeric_limits<int64_t>::max() / 4 / elems)) {
      return Status::ProtocolError("invalid tensor dimension");
    }
    elems *= dim;
    request.dims.push_back(dim);
  }
  request.payload_bytes = elems * static_cast<int64_t>(sizeof(float));
  if (reader.Remaining() !=
      static_cast<size_t>(request.payload_bytes)) {
    return Status::ProtocolError(
        "payload bytes do not match declared shape: have " +
        std::to_string(reader.Remaining()) + ", shape needs " +
        std::to_string(request.payload_bytes));
  }
  request.payload = reader.Cursor();
  return request;
}

Result<DeployRequest> DecodeDeployRequest(const char* body,
                                          size_t len) {
  Reader reader(body, len);
  DeployRequest request;
  RELSERVE_RETURN_NOT_OK(DecodeModelName(&reader, &request.model));
  if (!reader.U8(&request.mode) || !reader.I64(&request.batch_size)) {
    return Status::ProtocolError("truncated deploy body");
  }
  if (request.mode > 2) {
    return Status::ProtocolError("deploy mode must be 0..2");
  }
  if (request.batch_size <= 0) {
    return Status::ProtocolError("deploy batch_size must be positive");
  }
  if (reader.Remaining() != 0) {
    return Status::ProtocolError("trailing bytes after deploy body");
  }
  return request;
}

Result<Tensor> PredictInputTensor(const PredictRequest& request) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor tensor,
                            Tensor::Create(Shape(request.dims)));
  std::memcpy(tensor.data(), request.payload,
              static_cast<size_t>(request.payload_bytes));
  return tensor;
}

void AppendPingFrame(uint64_t request_id, bool is_reply, Buffer* out) {
  FrameWriter frame(request_id, Opcode::kPing,
                    is_reply ? WireStatusByte(StatusCode::kOk) : 0,
                    out);
  (void)frame;
}

void AppendPredictRequest(uint64_t request_id, const std::string& model,
                          const Tensor& input, int64_t deadline_us,
                          Buffer* out) {
  FrameWriter frame(request_id, Opcode::kPredict, 0, out);
  Writer& body = frame.body();
  body.U16(static_cast<uint16_t>(model.size()));
  body.Bytes(model.data(), model.size());
  body.I64(deadline_us);
  body.U8(kDtypeFloat32);
  body.U8(static_cast<uint8_t>(input.shape().ndim()));
  for (int64_t dim : input.shape().dims()) body.I64(dim);
  body.Bytes(input.data(), static_cast<size_t>(input.ByteSize()));
}

void AppendPredictOkReply(uint64_t request_id, const Tensor& output,
                          Buffer* out) {
  FrameWriter frame(request_id, Opcode::kPredict,
                    WireStatusByte(StatusCode::kOk), out);
  Writer& body = frame.body();
  body.U8(kDtypeFloat32);
  body.U8(static_cast<uint8_t>(output.shape().ndim()));
  for (int64_t dim : output.shape().dims()) body.I64(dim);
  body.Bytes(output.data(), static_cast<size_t>(output.ByteSize()));
}

void AppendDeployRequest(uint64_t request_id, const std::string& model,
                         uint8_t mode, int64_t batch_size,
                         Buffer* out) {
  FrameWriter frame(request_id, Opcode::kDeploy, 0, out);
  Writer& body = frame.body();
  body.U16(static_cast<uint16_t>(model.size()));
  body.Bytes(model.data(), model.size());
  body.U8(mode);
  body.I64(batch_size);
}

void AppendStatsRequest(uint64_t request_id, Buffer* out) {
  FrameWriter frame(request_id, Opcode::kStats, 0, out);
  (void)frame;
}

void AppendTextReply(uint64_t request_id, Opcode opcode,
                     const Status& status, const std::string& text,
                     Buffer* out) {
  FrameWriter frame(request_id, opcode, WireStatusByte(status.code()),
                    out);
  Writer& body = frame.body();
  const uint16_t len = static_cast<uint16_t>(
      std::min<size_t>(text.size(),
                       std::numeric_limits<uint16_t>::max()));
  body.U16(len);
  body.Bytes(text.data(), len);
}

void AppendErrorReply(uint64_t request_id, Opcode opcode,
                      const Status& status, Buffer* out) {
  AppendTextReply(request_id, opcode, status, status.message(), out);
}

Result<Reply> DecodeReply(const FrameHeader& header, const char* body,
                          size_t len) {
  Reply reply;
  reply.header = header;
  const StatusCode code = StatusCodeFromWire(header.status);

  if (code != StatusCode::kOk) {
    Reader reader(body, len);
    uint16_t msg_len = 0;
    std::string message = "(no message)";
    const char* msg = nullptr;
    if (reader.U16(&msg_len) && reader.Bytes(msg_len, &msg)) {
      message.assign(msg, msg_len);
    }
    reply.status = Status(code, std::move(message));
    return reply;
  }

  reply.status = Status::OK();
  switch (header.opcode) {
    case Opcode::kPing:
      return reply;
    case Opcode::kPredict: {
      PredictRequest dummy;
      Reader reader(body, len);
      uint8_t dtype = 0, ndim = 0;
      if (!reader.U8(&dtype) || !reader.U8(&ndim)) {
        return Status::ProtocolError("truncated predict reply header");
      }
      if (dtype != kDtypeFloat32 || ndim == 0 || ndim > kMaxNdim) {
        return Status::ProtocolError("bad predict reply dtype/rank");
      }
      int64_t elems = 1;
      dummy.dims.reserve(ndim);
      for (int i = 0; i < ndim; ++i) {
        int64_t dim = 0;
        if (!reader.I64(&dim)) {
          return Status::ProtocolError("truncated reply dims");
        }
        if (dim <= 0 ||
            dim > std::numeric_limits<int64_t>::max() / 4 /
                      std::max<int64_t>(elems, 1)) {
          return Status::ProtocolError("invalid reply dimension");
        }
        elems *= dim;
        dummy.dims.push_back(dim);
      }
      dummy.payload_bytes = elems * static_cast<int64_t>(sizeof(float));
      if (reader.Remaining() !=
          static_cast<size_t>(dummy.payload_bytes)) {
        return Status::ProtocolError("reply payload/shape mismatch");
      }
      dummy.payload = reader.Cursor();
      RELSERVE_ASSIGN_OR_RETURN(reply.tensor,
                                PredictInputTensor(dummy));
      return reply;
    }
    case Opcode::kDeploy:
    case Opcode::kStats: {
      Reader reader(body, len);
      uint16_t text_len = 0;
      const char* text = nullptr;
      if (!reader.U16(&text_len) || !reader.Bytes(text_len, &text)) {
        return Status::ProtocolError("truncated text reply body");
      }
      reply.text.assign(text, text_len);
      return reply;
    }
  }
  return Status::ProtocolError("unknown reply opcode");
}

}  // namespace net
}  // namespace relserve
