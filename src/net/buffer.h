// net::Buffer: the per-connection growable byte ring used on both
// sides of a socket (DESIGN.md "Network serving front-end").
//
// Layout is a single contiguous array with a moving read head —
// [ consumed | readable | writable ] — the classic network-buffer
// shape (muduo/netty): readable bytes stay contiguous so the frame
// decoder can parse headers in place and memcpy a predict payload
// straight into an aligned Tensor buffer, with no intermediate Row
// boxing and no two-segment stitching a true circular ring would
// force on every frame.
//
// The ring behavior comes from head recycling: consumed space at the
// front is reclaimed either when the buffer empties (free — pointers
// reset) or by one memmove when a reserve would otherwise grow the
// array while most of it is dead space. Growth is amortized-doubling
// and bounded by the server's frame cap — an oversized frame is
// rejected before any reserve happens.

#ifndef RELSERVE_NET_BUFFER_H_
#define RELSERVE_NET_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <vector>

namespace relserve {
namespace net {

class Buffer {
 public:
  // --- Read side -----------------------------------------------------

  const char* data() const { return storage_.data() + head_; }
  // Mutable view of the readable span — the frame encoder patches a
  // frame's length prefix in place after appending its body (offsets
  // relative to data() are stable across Append: compaction only
  // drops already-consumed bytes off the front).
  char* mutable_data() { return storage_.data() + head_; }
  size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }

  // Drops `n` readable bytes off the front (n <= size()).
  void Consume(size_t n) {
    head_ += n;
    if (head_ == tail_) {
      head_ = 0;
      tail_ = 0;
    }
  }

  void Clear() {
    head_ = 0;
    tail_ = 0;
  }

  // --- Write side ----------------------------------------------------

  // Contiguous uninitialized space for at least `n` more bytes;
  // commit what was actually produced with CommitWrite. Recycles the
  // consumed front span by memmove before growing the array.
  char* WritableSpan(size_t n) {
    if (storage_.size() - tail_ < n) {
      if (head_ > 0) {
        std::memmove(storage_.data(), storage_.data() + head_,
                     tail_ - head_);
        tail_ -= head_;
        head_ = 0;
      }
      if (storage_.size() - tail_ < n) {
        size_t grown = storage_.empty() ? 1024 : storage_.size();
        while (grown - tail_ < n) grown *= 2;
        storage_.resize(grown);
      }
    }
    return storage_.data() + tail_;
  }

  void CommitWrite(size_t n) { tail_ += n; }

  void Append(const void* p, size_t n) {
    std::memcpy(WritableSpan(n), p, n);
    CommitWrite(n);
  }

  // Bytes currently held by the backing array (telemetry).
  size_t capacity() const { return storage_.size(); }

 private:
  std::vector<char> storage_;
  size_t head_ = 0;  // first readable byte
  size_t tail_ = 0;  // one past last readable byte
};

}  // namespace net
}  // namespace relserve

#endif  // RELSERVE_NET_BUFFER_H_
