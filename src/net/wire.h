// Length-prefixed binary wire protocol of the network serving
// front-end (DESIGN.md "Network serving front-end").
//
// Every frame, request or reply, is
//
//   u32  frame_len    — bytes that follow this field (header + body)
//   u32  magic        — kMagic; rejects non-relserve peers
//   u8   version      — kWireVersion
//   u8   opcode       — Opcode below; replies echo the request's
//   u8   status       — wire status byte; 0 (OK) on requests
//   u8   flags        — reserved, must be 0
//   u64  request_id   — client-chosen; replies echo it, so a client
//                       may pipeline many requests per connection
//   ...body           — opcode-specific, layouts below
//
// all little-endian (the protocol targets loopback/rack peers on the
// same byte order; the version byte guards future changes). Bodies:
//
//   predict request:  u16 model_len, model bytes, i64 deadline_us,
//                     u8 dtype (0 = float32), u8 ndim,
//                     i64 dims[ndim], payload (row-major floats)
//   predict reply:    OK: u8 dtype, u8 ndim, i64 dims[ndim], payload
//                     error: u16 msg_len, message bytes
//   deploy request:   u16 model_len, model bytes, u8 mode
//                     (0 adaptive / 1 udf / 2 relational),
//                     i64 batch_size
//   deploy reply:     u16 msg_len, message bytes (empty on OK)
//   stats request:    empty
//   stats reply:      u16 len, JSON text (scheduler + server counters)
//   ping:             empty both ways
//
// A reply's `status` byte is the typed Status of the serving path:
// the scheduler's DeadlineExceeded/Unavailable sheds, the session's
// NotFound, storage's DataLoss — and ProtocolError for frames the
// server could parse enough to answer. Frames it cannot trust at all
// (bad magic/version, or a declared length over the server's cap)
// earn a best-effort ProtocolError reply with request_id 0 and a
// closed connection: past a framing error the stream has no reliable
// frame boundaries, and an oversized length must never drive buffer
// growth.

#ifndef RELSERVE_NET_WIRE_H_
#define RELSERVE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/buffer.h"
#include "tensor/tensor.h"

namespace relserve {
namespace net {

inline constexpr uint32_t kMagic = 0x564C5352;  // "RSLV" on the wire
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kLenPrefixBytes = 4;
inline constexpr size_t kFrameHeaderBytes = 16;  // after the prefix
inline constexpr uint8_t kDtypeFloat32 = 0;

enum class Opcode : uint8_t {
  kPing = 0,
  kPredict = 1,
  kDeploy = 2,
  kStats = 3,
};

// --- Wire status byte ------------------------------------------------
//
// Stable on-the-wire values; never renumber. Unknown bytes decode to
// kInternal rather than faking OK.

uint8_t WireStatusByte(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t byte);

// --- Frame header ----------------------------------------------------

struct FrameHeader {
  uint32_t magic = 0;
  uint8_t version = 0;
  Opcode opcode = Opcode::kPing;
  uint8_t status = 0;
  uint8_t flags = 0;
  uint64_t request_id = 0;
};

// Parses the 16 header bytes that follow the length prefix. Fails
// with ProtocolError on bad magic/version/flags (opcode is validated
// too — an unknown opcode cannot be dispatched).
Result<FrameHeader> DecodeFrameHeader(const char* p, size_t len);

// --- Decoded request bodies -----------------------------------------
//
// Decoders borrow from the connection's read buffer: `payload` points
// into the frame bytes, so the server copies it exactly once — into
// the aligned Tensor the GEMM tile path consumes — with no Row boxing
// or intermediate message object in between.

struct PredictRequest {
  std::string model;
  int64_t deadline_us = 0;
  std::vector<int64_t> dims;
  const char* payload = nullptr;
  int64_t payload_bytes = 0;
};

struct DeployRequest {
  std::string model;
  uint8_t mode = 0;  // 0 adaptive / 1 udf / 2 relational
  int64_t batch_size = 0;
};

Result<PredictRequest> DecodePredictRequest(const char* body,
                                            size_t len);
Result<DeployRequest> DecodeDeployRequest(const char* body, size_t len);

// Materializes a decoded predict payload as a Tensor (the single
// copy of the ingress path).
Result<Tensor> PredictInputTensor(const PredictRequest& request);

// --- Frame encoders --------------------------------------------------
//
// All append one complete frame (length prefix included) to `out`.

void AppendPingFrame(uint64_t request_id, bool is_reply, Buffer* out);
void AppendPredictRequest(uint64_t request_id, const std::string& model,
                          const Tensor& input, int64_t deadline_us,
                          Buffer* out);
void AppendPredictOkReply(uint64_t request_id, const Tensor& output,
                          Buffer* out);
void AppendDeployRequest(uint64_t request_id, const std::string& model,
                         uint8_t mode, int64_t batch_size, Buffer* out);
void AppendStatsRequest(uint64_t request_id, Buffer* out);
// Replies whose body is `u16 len + text`: deploy acks, stats JSON.
void AppendTextReply(uint64_t request_id, Opcode opcode,
                     const Status& status, const std::string& text,
                     Buffer* out);
// Any-opcode error reply: status byte + `u16 len + message` body.
void AppendErrorReply(uint64_t request_id, Opcode opcode,
                      const Status& status, Buffer* out);

// --- Reply decoding (client side) ------------------------------------

struct Reply {
  FrameHeader header;
  Status status;         // decoded from header.status (+ body message)
  Tensor tensor;         // predict OK replies
  std::string text;      // stats / deploy / error-message bodies
};

Result<Reply> DecodeReply(const FrameHeader& header, const char* body,
                          size_t len);

}  // namespace net
}  // namespace relserve

#endif  // RELSERVE_NET_WIRE_H_
