#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>

#include "common/failpoint.h"
#include "common/io_util.h"

namespace relserve {
namespace net {

namespace {

// Per-readiness-event read budget: level-triggered + re-arm means a
// firehose connection simply fires again, so capping one event keeps
// the loop fair across hundreds of sockets.
constexpr size_t kReadChunk = 64 * 1024;
constexpr int64_t kMaxReadPerEvent = 1 << 20;

// Bit-flips land in the magic/version bytes so an injected corrupt
// frame is always *detectably* corrupt (a payload flip would be
// silent wrong bits — the opposite of what the fuzz test asserts).
constexpr size_t kCorruptRegionBytes = 5;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<std::unique_ptr<NetServer>> NetServer::Start(
    ServingSession* session, RequestScheduler* scheduler,
    NetServerConfig config) {
  std::unique_ptr<NetServer> server(
      new NetServer(session, scheduler, config));
  RELSERVE_RETURN_NOT_OK(server->Listen());
  for (auto& loop : server->loops_) {
    loop->thread =
        std::thread(&NetServer::LoopThread, server.get(), loop.get());
  }
  if (config.use_completer_pool) {
    const int completers = std::max(1, config.num_completers);
    server->completers_.reserve(completers);
    for (int i = 0; i < completers; ++i) {
      server->completers_.emplace_back(&NetServer::CompleterThread,
                                       server.get());
    }
  }
  return server;
}

NetServer::NetServer(ServingSession* session,
                     RequestScheduler* scheduler, NetServerConfig config)
    : session_(session),
      scheduler_(scheduler),
      config_(config),
      // Large enough that completion handoff never blocks a loop in
      // practice: outstanding completions are bounded by the
      // scheduler's admission queue anyway.
      completions_(1 << 16) {}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                     SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address " +
                                   config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    return Status::IOError(std::string("listen: ") +
                           std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  int num_loops = config_.num_loops;
  if (num_loops <= 0) {
    // One shard per ~4 cores, capped: the loops only read, decode,
    // and re-arm (completers write replies), so a few go a long way —
    // and on a small machine extra shards are pure context-switch
    // overhead.
    const unsigned hw = std::thread::hardware_concurrency();
    num_loops = std::max(1, std::min(4, static_cast<int>(hw / 4)));
  }
  loops_.reserve(num_loops);
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) {
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    if (::pipe2(loop->wake_pipe, O_NONBLOCK | O_CLOEXEC) != 0) {
      return Status::IOError(std::string("pipe2: ") +
                             std::strerror(errno));
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    // EPOLLEXCLUSIVE: one shard wakes per pending accept, and the
    // kernel spreads connections across shards for us — no handoff
    // machinery between loops.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.u64 = 0;  // 0 = the listen socket
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) !=
        0) {
      return Status::IOError(std::string("epoll_ctl(listen): ") +
                             std::strerror(errno));
    }
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = 1;  // 1 = the wakeup pipe
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_pipe[0],
                    &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl(wake): ") +
                             std::strerror(errno));
    }
    loops_.push_back(std::move(loop));
  }
  return Status::OK();
}

void NetServer::WakeLoop(EventLoop* loop) {
  // Collapse bursts: the loop clears wake_pending before draining, so
  // exactly one byte is in flight per loop iteration no matter how
  // many completions land meanwhile.
  if (loop->wake_pending.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  const char byte = 1;
  // Nonblocking; a full pipe already guarantees a pending wakeup.
  (void)io::WriteSome(loop->wake_pipe[1], &byte, 1);
}

void NetServer::AcceptAll(EventLoop* loop) {
  while (true) {
    const int fd = static_cast<int>(io::RetryEintr([&] {
      return ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    }));
    if (fd < 0) return;  // EAGAIN (or transient accept failure)
    const int64_t live =
        live_conns_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (config_.max_connections > 0 &&
        live > config_.max_connections) {
      live_conns_.fetch_sub(1, std::memory_order_acq_rel);
      // Typed refusal so the client can distinguish "server full"
      // from a network failure. Best-effort single write: if the
      // socket won't take the bytes we close regardless.
      Buffer refusal;
      AppendErrorReply(
          0, Opcode::kPing,
          Status::Unavailable("connection limit reached (" +
                              std::to_string(config_.max_connections) +
                              ")"),
          &refusal);
      (void)io::WriteSome(fd, refusal.data(), refusal.size());
      ::close(fd);
      stats_.connections_refused.fetch_add(1,
                                           std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    // Replies are small frames on a request/response cycle; Nagle
    // would add 40ms to every closed-loop client.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->loop = loop;
    conn->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    loop->conns.emplace(conn->id, conn);
    stats_.connections_accepted.fetch_add(1,
                                          std::memory_order_relaxed);

    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.u64 = conn->id + 2;  // ids 0/1 are listen/wake
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseConnection(conn);
    }
  }
}

void NetServer::CloseConnection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->state == Connection::State::kClosed) return;
  ::epoll_ctl(conn->loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    // Under write_mu so the close can never race a completer's
    // direct write — after this, completers see kClosed and skip.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->state = Connection::State::kClosed;
    ::close(conn->fd);
  }
  conn->loop->conns.erase(conn->id);
  live_conns_.fetch_sub(1, std::memory_order_acq_rel);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

bool NetServer::FlushLocked(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = io::WriteSome(conn->fd, conn->out.data(),
                                    conn->out.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // peer reset mid-write
    }
    conn->out.Consume(static_cast<size_t>(n));
    stats_.bytes_out.fetch_add(n, std::memory_order_relaxed);
  }
  conn->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
  return true;
}

void NetServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  size_t backlog = 0;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->state == Connection::State::kClosed) return;
    if (!FlushLocked(conn.get())) {
      conn->broken = true;
    }
    if (!conn->broken) backlog = conn->out.size();
  }
  if (conn->broken) {
    // Unlocked first: CloseConnection retakes write_mu.
    CloseConnection(conn);
    return;
  }
  // Backpressure: a connection that won't drain its replies stops
  // being read until it does — the client can't run the server out
  // of reply memory by never reading.
  conn->reading_paused =
      static_cast<int64_t>(backlog) > config_.write_buffer_limit;
}

bool NetServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                              const char* frame, size_t len) {
  Result<FrameHeader> header_or = DecodeFrameHeader(frame, len);
  if (!header_or.ok()) {
    // Unframeable: the stream has no trustworthy boundaries past this
    // point. Best-effort typed reply (request id unknown — 0), close.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      AppendErrorReply(0, Opcode::kPing, header_or.status(),
                       &conn->out);
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      FlushLocked(conn.get());  // best-effort: we close either way
    }
    CloseConnection(conn);
    return false;
  }
  const FrameHeader header = *header_or;
  const char* body = frame + kFrameHeaderBytes;
  const size_t body_len = len - kFrameHeaderBytes;
  stats_.frames_in.fetch_add(1, std::memory_order_relaxed);

  switch (header.opcode) {
    case Opcode::kPing: {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      AppendPingFrame(header.request_id, /*is_reply=*/true,
                      &conn->out);
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case Opcode::kStats: {
      const std::string json = StatsJson();
      std::lock_guard<std::mutex> lock(conn->write_mu);
      AppendTextReply(header.request_id, Opcode::kStats, Status::OK(),
                      json, &conn->out);
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case Opcode::kDeploy: {
      Result<DeployRequest> req_or =
          DecodeDeployRequest(body, body_len);
      if (!req_or.ok()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conn->write_mu);
        AppendErrorReply(header.request_id, Opcode::kDeploy,
                         req_or.status(), &conn->out);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        return true;  // body-level error: framing is still sound
      }
      static constexpr ServingMode kModes[] = {
          ServingMode::kAdaptive, ServingMode::kForceUdf,
          ServingMode::kForceRelational};
      // Deploy compiles a plan (tens of microseconds) inline on the
      // loop thread; it is a control-plane rarity, not a hot path.
      const Status status =
          session_
              ->Deploy(req_or->model, kModes[req_or->mode],
                       req_or->batch_size)
              .status();
      std::lock_guard<std::mutex> lock(conn->write_mu);
      AppendTextReply(header.request_id, Opcode::kDeploy, status,
                      status.ok() ? "deployed" : status.message(),
                      &conn->out);
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case Opcode::kPredict: {
      Result<PredictRequest> req_or =
          DecodePredictRequest(body, body_len);
      if (!req_or.ok()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conn->write_mu);
        AppendErrorReply(header.request_id, Opcode::kPredict,
                         req_or.status(), &conn->out);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // The single ingress copy: payload bytes leave the read ring
      // straight into an aligned Tensor the coalescer/GEMM tile path
      // consumes — no Row boxing in between.
      Result<Tensor> input_or = PredictInputTensor(*req_or);
      if (!input_or.ok()) {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        AppendErrorReply(header.request_id, Opcode::kPredict,
                         input_or.status(), &conn->out);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      conn->inflight.fetch_add(1, std::memory_order_acq_rel);
      if (config_.use_completer_pool) {
        // Futures path: a completer pops the pair and blocks on the
        // future; admission control happens inside SubmitBatch (a
        // full queue resolves it immediately with Unavailable).
        Completion completion;
        completion.future =
            scheduler_
                ->SubmitBatch(req_or->model, std::move(*input_or),
                              req_or->deadline_us)
                .share();
        completion.conn = conn;
        completion.request_id = header.request_id;
        completions_.Push(std::move(completion));
        return true;
      }
      // Callback path: whichever scheduler thread resolves the
      // request (worker after the batch, dispatcher/submitter for
      // sheds) encodes and flushes the reply right there.
      const uint64_t request_id = header.request_id;
      callbacks_outstanding_.fetch_add(1, std::memory_order_acq_rel);
      scheduler_->SubmitBatchCallback(
          req_or->model, std::move(*input_or), req_or->deadline_us,
          [this, conn, request_id](Result<Tensor> result) {
            CompleteRequest(conn, request_id, std::move(result));
            if (callbacks_outstanding_.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
              std::lock_guard<std::mutex> lock(cb_mu_);
              cb_cv_.notify_all();
            }
          });
      return true;
    }
  }
  return true;
}

bool NetServer::DrainFrames(const std::shared_ptr<Connection>& conn) {
  while (conn->in.size() >= kLenPrefixBytes) {
    uint32_t frame_len = 0;
    std::memcpy(&frame_len, conn->in.data(), sizeof(frame_len));
    if (frame_len < kFrameHeaderBytes ||
        static_cast<int64_t>(frame_len) > config_.max_frame_bytes) {
      // The cap is enforced on the *declared* length, before any
      // buffer ever grows toward it.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        AppendErrorReply(
            0, Opcode::kPing,
            Status::ProtocolError(
                "declared frame length " + std::to_string(frame_len) +
                " outside [16, " +
                std::to_string(config_.max_frame_bytes) + "]"),
            &conn->out);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        FlushLocked(conn.get());  // best-effort: we close either way
      }
      CloseConnection(conn);
      return false;
    }
    if (conn->in.size() < kLenPrefixBytes + frame_len) {
      return true;  // partial frame: wait for more bytes
    }
    char* frame = conn->in.mutable_data() + kLenPrefixBytes;
    if (failpoint::AnyActive()) {
      const failpoint::Eval eval =
          failpoint::Evaluate("net.frame.corrupt");
      if (eval.fired) {
        const size_t bit =
            eval.payload % (kCorruptRegionBytes * 8);
        frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      }
    }
    const bool alive = DispatchFrame(conn, frame, frame_len);
    if (!alive) return false;
    conn->in.Consume(kLenPrefixBytes + frame_len);
  }
  return true;
}

void NetServer::HandleReadable(
    const std::shared_ptr<Connection>& conn) {
  int64_t read_this_event = 0;
  while (read_this_event < kMaxReadPerEvent) {
    char* span = conn->in.WritableSpan(kReadChunk);
    const ssize_t n =
        io::ReadSome(conn->fd, span, kReadChunk, "net.read.short");
    if (n > 0) {
      conn->in.CommitWrite(static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(n, std::memory_order_relaxed);
      read_this_event += n;
      conn->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
      // A short read means the kernel buffer is drained: skip the
      // would-be-EAGAIN syscall. Level-triggered epoll re-fires if
      // more bytes race in behind us.
      if (static_cast<size_t>(n) < kReadChunk) break;
      continue;
    }
    if (n == 0) {
      // Peer half-closed its write side: no more requests will
      // arrive, but every in-flight one still gets its reply. Under
      // write_mu: completions read `state` under it to decide whether
      // a draining connection needs the loop.
      std::lock_guard<std::mutex> lock(conn->write_mu);
      conn->state = Connection::State::kPeerHalfClosed;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  if (config_.max_conn_memory_bytes > 0) {
    int64_t total;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      total = static_cast<int64_t>(conn->in.size() + conn->out.size());
    }
    if (total > config_.max_conn_memory_bytes) {
      // One peer pinning more than its share of buffer memory (giant
      // partial frames plus unread replies) is closed outright — the
      // per-frame and write-buffer caps bound each side, this bounds
      // their sum.
      stats_.memory_closed.fetch_add(1, std::memory_order_relaxed);
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        AppendErrorReply(
            0, Opcode::kPing,
            Status::ProtocolError(
                "connection buffers (" + std::to_string(total) +
                " bytes) exceed max_conn_memory_bytes " +
                std::to_string(config_.max_conn_memory_bytes)),
            &conn->out);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        FlushLocked(conn.get());  // best-effort: we close either way
      }
      CloseConnection(conn);
      return;
    }
  }
  if (!DrainFrames(conn)) return;  // closed on protocol error
  FlushWrites(conn);
}

void NetServer::RearmOrClose(const std::shared_ptr<Connection>& conn) {
  if (conn->state == Connection::State::kClosed) return;
  // Order matters: a completer appends the reply *before* it drops
  // inflight, so inflight==0 observed first means every owed reply is
  // already in `out` (or flushed) by the time we check it.
  const int64_t inflight =
      conn->inflight.load(std::memory_order_acquire);
  bool out_empty;
  bool broken;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    out_empty = conn->out.empty();
    broken = conn->broken;
  }
  if (broken) {
    CloseConnection(conn);
    return;
  }
  // A half-closed (or draining) connection with nothing left to send
  // and nothing in flight is done.
  const bool draining =
      conn->state == Connection::State::kPeerHalfClosed ||
      stopping_.load(std::memory_order_acquire);
  if (draining && inflight == 0 && out_empty) {
    CloseConnection(conn);
    return;
  }
  uint32_t events = EPOLLRDHUP | EPOLLONESHOT;
  if (conn->state == Connection::State::kOpen &&
      !conn->reading_paused &&
      !stopping_.load(std::memory_order_acquire)) {
    events |= EPOLLIN;
  }
  if (!out_empty) events |= EPOLLOUT;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = conn->id + 2;
  if (::epoll_ctl(conn->loop->epoll_fd, EPOLL_CTL_MOD, conn->fd,
                  &ev) != 0) {
    CloseConnection(conn);
  }
}

void NetServer::HandleEvent(const std::shared_ptr<Connection>& conn,
                            uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    // Flush what we can (the peer may only have reset one side).
    FlushWrites(conn);
    CloseConnection(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushWrites(conn);
    if (conn->state == Connection::State::kClosed) return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0 &&
      conn->state == Connection::State::kOpen) {
    HandleReadable(conn);
    if (conn->state == Connection::State::kClosed) return;
  }
  RearmOrClose(conn);
}

void NetServer::SweepIdle(EventLoop* loop) {
  if (config_.idle_timeout_ms <= 0) return;
  const int64_t now = NowMs();
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [id, conn] : loop->conns) {
    if (conn->inflight.load(std::memory_order_acquire) != 0) continue;
    if (now - conn->last_activity_ms.load(std::memory_order_relaxed) <=
        config_.idle_timeout_ms) {
      continue;
    }
    bool out_empty;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      out_empty = conn->out.empty();
    }
    if (out_empty) idle.push_back(conn);
  }
  for (const auto& conn : idle) {
    stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
  }
}

void NetServer::LoopThread(EventLoop* loop) {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  int64_t drain_deadline_ms = 0;
  bool accepting = true;

  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && accepting) {
      // Drain phase: stop accepting, stop reading, flush what's owed.
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      accepting = false;
      drain_deadline_ms = NowMs() + config_.drain_timeout_ms;
    }
    if (stopping && !accepting) {
      // Completers flush fully-drained replies without waking the
      // loop, so drain progress (inflight hitting zero) is polled:
      // the 10ms epoll timeout below bounds the polling latency.
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(loop->conns.size());
      for (const auto& [id, conn] : loop->conns) all.push_back(conn);
      for (const auto& conn : all) {
        FlushWrites(conn);
        if (conn->state == Connection::State::kClosed) continue;
        RearmOrClose(conn);
      }
    }
    if (stopping &&
        (loop->conns.empty() || NowMs() >= drain_deadline_ms)) {
      break;
    }

    const int timeout_ms =
        stopping ? 10 : (config_.idle_timeout_ms > 0 ? 20 : 200);
    const int n = static_cast<int>(io::RetryEintr([&] {
      return ::epoll_wait(loop->epoll_fd, events, kMaxEvents,
                          timeout_ms);
    }));
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        if (accepting) AcceptAll(loop);
        continue;
      }
      if (tag == 1) {
        // Clear before draining: a completer nudging after this point
        // writes a fresh byte and the next iteration picks it up.
        loop->wake_pending.store(false, std::memory_order_release);
        char sink[256];
        while (io::ReadSome(loop->wake_pipe[0], sink, sizeof(sink)) >
               0) {
        }
        continue;
      }
      auto it = loop->conns.find(tag - 2);
      if (it == loop->conns.end()) continue;  // closed pre-dispatch
      // Copy out of the map: CloseConnection erases the entry while
      // HandleEvent is still running, which would leave a reference
      // into a destroyed map node.
      const std::shared_ptr<Connection> conn = it->second;
      HandleEvent(conn, events[i].events);
    }

    // Completer nudges: connections with backlogged, broken, or
    // drain-eligible write sides.
    std::vector<std::shared_ptr<Connection>> pending;
    {
      std::lock_guard<std::mutex> lock(loop->pending_mu);
      pending.swap(loop->pending_writes);
    }
    for (const auto& conn : pending) {
      // Cleared before the flush: a completer landing mid-flush
      // re-queues the connection for the next round.
      conn->pending.store(false, std::memory_order_release);
      if (conn->state == Connection::State::kClosed) continue;
      FlushWrites(conn);
      if (conn->state == Connection::State::kClosed) continue;
      RearmOrClose(conn);
    }

    SweepIdle(loop);
  }

  // Exit: anything still open is past the drain budget.
  std::vector<std::shared_ptr<Connection>> rest;
  rest.reserve(loop->conns.size());
  for (const auto& [id, conn] : loop->conns) rest.push_back(conn);
  for (const auto& conn : rest) CloseConnection(conn);
}

void NetServer::CompleteRequest(
    const std::shared_ptr<Connection>& conn, uint64_t request_id,
    Result<Tensor> result) {
  bool need_loop = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->state != Connection::State::kClosed) {
      if (result.ok()) {
        AppendPredictOkReply(request_id, *result, &conn->out);
      } else {
        AppendErrorReply(request_id, Opcode::kPredict,
                         result.status(), &conn->out);
      }
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      // The hot path: flush straight to the socket from right here.
      // The event loop is only involved when the socket pushes back
      // (EPOLLOUT arming), the write fails, or the connection is
      // winding down — a fully flushed reply on an open connection
      // costs zero loop work and zero wakeups.
      if (!FlushLocked(conn.get())) conn->broken = true;
      need_loop = conn->broken || !conn->out.empty() ||
                  conn->state != Connection::State::kOpen;
    }
  }
  conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
  if (need_loop &&
      !conn->pending.exchange(true, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(conn->loop->pending_mu);
      conn->loop->pending_writes.push_back(conn);
    }
    WakeLoop(conn->loop);
  }
}

void NetServer::CompleterThread() {
  while (std::optional<Completion> task = completions_.Pop()) {
    Result<Tensor> result = task->future.get();
    CompleteRequest(task->conn, task->request_id, std::move(result));
  }
}

std::string NetServer::StatsJson() const {
  const SchedulerStats sched = scheduler_->stats();
  const NetServerStats& s = stats_;
  auto n = [](int64_t v) { return std::to_string(v); };
  std::string json = "{\"scheduler\":{";
  json += "\"submitted\":" + n(sched.submitted.load()) + ",";
  json += "\"shed_queue_full\":" + n(sched.shed_queue_full.load()) +
          ",";
  json += "\"shed_deadline\":" + n(sched.shed_deadline.load()) + ",";
  json += "\"shed_breaker\":" + n(sched.shed_breaker.load()) + ",";
  json += "\"batches\":" + n(sched.batches.load()) + ",";
  json += "\"coalesced_requests\":" +
          n(sched.coalesced_requests.load()) + ",";
  json += "\"total_rows\":" + n(sched.total_rows.load()) + ",";
  char mean[32];
  std::snprintf(mean, sizeof(mean), "%.2f", sched.MeanBatchRows());
  json += std::string("\"mean_batch_rows\":") + mean + "},";
  json += "\"server\":{";
  json += "\"connections_accepted\":" +
          n(s.connections_accepted.load()) + ",";
  json += "\"connections_closed\":" + n(s.connections_closed.load()) +
          ",";
  json += "\"frames_in\":" + n(s.frames_in.load()) + ",";
  json += "\"frames_out\":" + n(s.frames_out.load()) + ",";
  json += "\"bytes_in\":" + n(s.bytes_in.load()) + ",";
  json += "\"bytes_out\":" + n(s.bytes_out.load()) + ",";
  json += "\"protocol_errors\":" + n(s.protocol_errors.load()) + ",";
  json += "\"idle_closed\":" + n(s.idle_closed.load()) + ",";
  json += "\"connections_refused\":" +
          n(s.connections_refused.load()) + ",";
  json += "\"memory_closed\":" + n(s.memory_closed.load()) + "},";
  // Cross-model weight dedup: live shared-block state of the
  // session's PhysicalBlockIndex (all zeros when dedup is off).
  PhysicalBlockStats dedup;
  if (session_->block_index() != nullptr) {
    dedup = session_->block_index()->stats();
  }
  json += "\"dedup\":{";
  json += "\"unique_blocks\":" + n(dedup.unique_blocks) + ",";
  json += "\"logical_refs\":" + n(dedup.logical_refs) + ",";
  json += "\"physical_bytes\":" + n(dedup.physical_bytes) + ",";
  json += "\"logical_bytes\":" + n(dedup.logical_bytes) + ",";
  json += "\"dedup_hits\":" + n(dedup.dedup_hits) + ",";
  json += "\"freed_blocks\":" + n(dedup.freed_blocks) + "}}";
  return json;
}

void NetServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) WakeLoop(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  completions_.Close();
  for (std::thread& t : completers_) {
    if (t.joinable()) t.join();
  }
  {
    // Callback path: wait out completions still running on scheduler
    // threads (the scheduler resolves every admitted request in
    // bounded time, shutdown or not). After this, no scheduler thread
    // holds a reference into the server.
    std::unique_lock<std::mutex> lock(cb_mu_);
    cb_cv_.wait(lock, [this] {
      return callbacks_outstanding_.load(std::memory_order_acquire) ==
             0;
    });
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& loop : loops_) {
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_pipe[0] >= 0) ::close(loop->wake_pipe[0]);
    if (loop->wake_pipe[1] >= 0) ::close(loop->wake_pipe[1]);
    loop->epoll_fd = loop->wake_pipe[0] = loop->wake_pipe[1] = -1;
  }
}

}  // namespace net
}  // namespace relserve
