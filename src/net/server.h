// NetServer: the epoll network serving front-end (DESIGN.md "Network
// serving front-end").
//
// A small shard of event-loop threads each owns a level-triggered
// epoll set with EPOLLONESHOT re-arm per connection: every readiness
// event disarms the fd until the owning loop finishes handling it and
// re-arms with exactly the interest set the connection's state machine
// wants (EPOLLIN while reading is allowed, EPOLLOUT only while bytes
// are pending — backpressure gating). The listen socket is registered
// in every shard with EPOLLEXCLUSIVE, so the kernel spreads accepts
// across shards and each connection lives its whole life on one loop
// thread. Requests decoded from a connection's read ring flow through
// admission control into the RequestScheduler, so cross-request
// micro-batching coalesces rows *across sockets*; completions come
// back from the scheduler's futures on a completer pool that encodes
// reply bytes and flushes the socket directly under the connection's
// write mutex — the event loop is only involved when the socket
// pushes back (EPOLLOUT) or the connection is winding down.
//
// Connection lifecycle is explicit state-machine code:
//
//   kOpen            reading frames, dispatching, writing replies
//   kPeerHalfClosed  read() hit EOF (client shutdown(SHUT_WR)); no
//                    more reads, but every in-flight request still
//                    gets its reply flushed before close
//   kClosed          fd closed (set under write_mu so a completer can
//                    never write to a recycled descriptor)
//
// and a connection dies immediately on: unframeable input (bad
// magic/version, or a declared frame length over max_frame_bytes —
// the cap is checked *before* any buffer growth, so a hostile length
// can never balloon memory), a write error, or idle timeout. Server
// shutdown drains: admission stops, in-flight replies flush, bounded
// by drain_timeout_ms.

#ifndef RELSERVE_NET_SERVER_H_
#define RELSERVE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/buffer.h"
#include "net/wire.h"
#include "resource/bounded_queue.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"

namespace relserve {
namespace net {

struct NetServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; NetServer::port() reports
  int backlog = 511;
  // Frames whose declared length exceeds this close the connection
  // (ProtocolError) instead of allocating unbounded buffers.
  int64_t max_frame_bytes = 64LL << 20;
  // Close connections with no traffic for this long; 0 = never.
  int64_t idle_timeout_ms = 0;
  // Stop reading from a connection whose outbound buffer exceeds this
  // (EPOLLOUT-gated backpressure); reading resumes once drained.
  int64_t write_buffer_limit = 8LL << 20;
  // Live-connection cap across all shards: an accept past the cap is
  // answered with a best-effort typed Unavailable frame and closed
  // immediately, so a well-behaved client can tell "server full" from
  // a network failure. 0 = unlimited.
  int64_t max_connections = 0;
  // Total buffered bytes (read ring + pending replies) one connection
  // may hold; past it the connection gets a typed ProtocolError reply
  // and is closed. Bounds what one abusive peer can pin regardless of
  // max_frame_bytes and write_buffer_limit. 0 = unlimited.
  int64_t max_conn_memory_bytes = 0;
  // Event-loop shards; connections are spread across them by
  // EPOLLEXCLUSIVE accept. 0 = pick from hardware_concurrency (extra
  // shards on a small machine just add context switches). Clamped to
  // >= 1.
  int num_loops = 0;
  // Completion path. Default (false): the scheduler thread that
  // resolves a predict invokes the server's completion callback
  // inline — the reply is encoded and flushed with zero extra thread
  // handoffs. True: predicts go through scheduler futures drained by
  // a completer pool (one more handoff, but completions never borrow
  // scheduler-thread time; useful when reply encode/flush is heavy).
  bool use_completer_pool = false;
  // Threads turning scheduler futures into flushed reply bytes
  // (use_completer_pool = true only).
  int num_completers = 2;
  // Shutdown drain budget: how long to keep flushing pending replies.
  int64_t drain_timeout_ms = 5000;
};

struct NetServerStats {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> connections_closed{0};
  std::atomic<int64_t> frames_in{0};
  std::atomic<int64_t> frames_out{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> idle_closed{0};
  // Accepts refused at max_connections.
  std::atomic<int64_t> connections_refused{0};
  // Connections closed for exceeding max_conn_memory_bytes.
  std::atomic<int64_t> memory_closed{0};

  NetServerStats() = default;
  NetServerStats(const NetServerStats& other) { *this = other; }
  // Relaxed snapshot, same contract as SchedulerStats.
  NetServerStats& operator=(const NetServerStats& other) {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    connections_accepted.store(
        other.connections_accepted.load(kRelaxed), kRelaxed);
    connections_closed.store(other.connections_closed.load(kRelaxed),
                             kRelaxed);
    frames_in.store(other.frames_in.load(kRelaxed), kRelaxed);
    frames_out.store(other.frames_out.load(kRelaxed), kRelaxed);
    bytes_in.store(other.bytes_in.load(kRelaxed), kRelaxed);
    bytes_out.store(other.bytes_out.load(kRelaxed), kRelaxed);
    protocol_errors.store(other.protocol_errors.load(kRelaxed),
                          kRelaxed);
    idle_closed.store(other.idle_closed.load(kRelaxed), kRelaxed);
    connections_refused.store(
        other.connections_refused.load(kRelaxed), kRelaxed);
    memory_closed.store(other.memory_closed.load(kRelaxed), kRelaxed);
    return *this;
  }
};

class NetServer {
 public:
  // Binds, listens, spawns the event-loop shards + completer pool.
  // `session` and `scheduler` must outlive the server.
  static Result<std::unique_ptr<NetServer>> Start(
      ServingSession* session, RequestScheduler* scheduler,
      NetServerConfig config);

  ~NetServer();  // implies Shutdown()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // The bound port (resolves config.port == 0).
  uint16_t port() const { return port_; }

  // Stops accepting, drains in-flight requests and pending reply
  // bytes (bounded by drain_timeout_ms), closes every connection,
  // joins all threads. Idempotent.
  void Shutdown();

  NetServerStats stats() const { return stats_; }

  // Renders scheduler + server counters as the stats-opcode JSON.
  std::string StatsJson() const;

 private:
  struct EventLoop;

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    EventLoop* loop = nullptr;  // owning shard, fixed at accept
    enum class State { kOpen, kPeerHalfClosed, kClosed };
    // Written by the owning loop thread (kClosed under write_mu, so
    // close never races a completer holding the lock); read freely by
    // the loop, under write_mu by completers.
    State state = State::kOpen;
    Buffer in;  // owning loop thread only
    // The write side is shared: completers encode replies into `out`
    // and flush the socket directly — the hot path never detours
    // through the event loop. write_mu serializes out/fd writes and
    // gates them against close (fd reuse is the hazard: a write after
    // ::close could land on a recycled descriptor).
    std::mutex write_mu;
    Buffer out;
    bool broken = false;  // fatal write error seen by a completer
    // Requests submitted to the scheduler whose replies are not yet
    // flushed; a connection can only drain-close at zero (completers
    // hold a shared_ptr anyway — this gates *drain*, not lifetime).
    std::atomic<int64_t> inflight{0};
    // True while the connection sits in its loop's pending list: one
    // entry per flush round no matter how many completions request one.
    std::atomic<bool> pending{false};
    bool reading_paused = false;  // backpressure: out over the limit
    std::atomic<int64_t> last_activity_ms{0};
  };

  // One epoll shard. Its conns map, accepting flag, and drain state
  // are touched only by its own thread; the pending list is the
  // completer → loop handoff.
  struct EventLoop {
    int epoll_fd = -1;
    int wake_pipe[2] = {-1, -1};
    std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns;
    // Connections a completer wants the loop to look at (backlogged,
    // broken, or drain-eligible writes).
    std::mutex pending_mu;
    std::vector<std::shared_ptr<Connection>> pending_writes;
    // Collapses completer wakeups: one self-pipe byte per loop
    // iteration, not one per completed request.
    std::atomic<bool> wake_pending{false};
    std::thread thread;
  };

  struct Completion {
    std::shared_future<Result<Tensor>> future;
    std::shared_ptr<Connection> conn;
    uint64_t request_id = 0;
  };

  NetServer(ServingSession* session, RequestScheduler* scheduler,
            NetServerConfig config);

  Status Listen();
  void LoopThread(EventLoop* loop);
  void CompleterThread();
  // Encodes `result` for `request_id`, flushes the socket directly
  // under conn->write_mu, and nudges the owning loop only when it has
  // work (backlog, broken socket, or a drain-eligible connection).
  // Called by completers (futures path) or straight from scheduler
  // threads (callback path).
  void CompleteRequest(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id, Result<Tensor> result);

  void AcceptAll(EventLoop* loop);
  // Handles one epoll event for `conn`; afterwards the fd is either
  // re-armed with the state machine's interest set or closed.
  void HandleEvent(const std::shared_ptr<Connection>& conn,
                   uint32_t events);
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  // Parses and dispatches every complete frame in conn->in. Returns
  // false when the connection must close (unframeable input).
  bool DrainFrames(const std::shared_ptr<Connection>& conn);
  // One frame (header already sliced off the length prefix).
  bool DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const char* frame, size_t len);
  // Flushes conn->out to the socket; write_mu must be held. Returns
  // false on a fatal write error (the caller closes / marks broken).
  bool FlushLocked(Connection* conn);
  // Lock-acquiring wrapper used by the event loop.
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void RearmOrClose(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void SweepIdle(EventLoop* loop);
  void WakeLoop(EventLoop* loop);

  ServingSession* session_;
  RequestScheduler* scheduler_;
  NetServerConfig config_;
  NetServerStats stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<uint64_t> next_conn_id_{1};
  // Live connections across all shards; the accept cap reserves a
  // slot (fetch_add) before admitting, so the cap is exact even with
  // EPOLLEXCLUSIVE spreading accepts across loops.
  std::atomic<int64_t> live_conns_{0};

  BoundedQueue<Completion> completions_;
  std::vector<std::thread> completers_;

  std::atomic<bool> stopping_{false};
  // Callback-path completions still running inside scheduler threads;
  // Shutdown waits for zero so a callback can never touch a freed
  // server (the scheduler may outlive us and fire late sheds).
  std::atomic<int64_t> callbacks_outstanding_{0};
  std::mutex cb_mu_;
  std::condition_variable cb_cv_;
  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace net
}  // namespace relserve

#endif  // RELSERVE_NET_SERVER_H_
