#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/io_util.h"

namespace relserve {
namespace net {

Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + host);
  }
  const int rc = static_cast<int>(io::RetryEintr([&] {
    return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  }));
  if (rc != 0) {
    const Status status = Status::IOError(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<NetClient>(new NetClient(fd));
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status NetClient::FlushOut() {
  while (!out_.empty()) {
    const ssize_t n = io::WriteSome(fd_, out_.data(), out_.size());
    if (n < 0) {
      // Blocking socket: only real errors land here.
      return Status::IOError(std::string("write: ") +
                             std::strerror(errno));
    }
    out_.Consume(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status NetClient::SendPredict(uint64_t request_id,
                              const std::string& model,
                              const Tensor& input,
                              int64_t deadline_us) {
  AppendPredictRequest(request_id, model, input, deadline_us, &out_);
  return FlushOut();
}

Status NetClient::SendPing(uint64_t request_id) {
  AppendPingFrame(request_id, /*is_reply=*/false, &out_);
  return FlushOut();
}

Result<Reply> NetClient::ReceiveReply() {
  while (true) {
    if (in_.size() >= kLenPrefixBytes) {
      uint32_t frame_len = 0;
      std::memcpy(&frame_len, in_.data(), sizeof(frame_len));
      if (frame_len < kFrameHeaderBytes) {
        return Status::ProtocolError(
            "reply frame length " + std::to_string(frame_len) +
            " below header size");
      }
      if (in_.size() >= kLenPrefixBytes + frame_len) {
        const char* frame = in_.data() + kLenPrefixBytes;
        RELSERVE_ASSIGN_OR_RETURN(
            FrameHeader header,
            DecodeFrameHeader(frame, frame_len));
        Result<Reply> reply =
            DecodeReply(header, frame + kFrameHeaderBytes,
                        frame_len - kFrameHeaderBytes);
        in_.Consume(kLenPrefixBytes + frame_len);
        return reply;
      }
    }
    char* span = in_.WritableSpan(64 * 1024);
    const ssize_t n = io::ReadSome(fd_, span, 64 * 1024);
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (n < 0) {
      return Status::IOError(std::string("read: ") +
                             std::strerror(errno));
    }
    in_.CommitWrite(static_cast<size_t>(n));
  }
}

Result<Tensor> NetClient::Predict(const std::string& model,
                                  const Tensor& input,
                                  int64_t deadline_us) {
  const uint64_t id = next_request_id_++;
  RELSERVE_RETURN_NOT_OK(SendPredict(id, model, input, deadline_us));
  RELSERVE_ASSIGN_OR_RETURN(Reply reply, ReceiveReply());
  if (reply.header.request_id != id) {
    return Status::ProtocolError(
        "reply id " + std::to_string(reply.header.request_id) +
        " does not match request id " + std::to_string(id));
  }
  RELSERVE_RETURN_NOT_OK(reply.status);
  return std::move(reply.tensor);
}

Status NetClient::Deploy(const std::string& model, uint8_t mode,
                         int64_t batch_size) {
  const uint64_t id = next_request_id_++;
  AppendDeployRequest(id, model, mode, batch_size, &out_);
  RELSERVE_RETURN_NOT_OK(FlushOut());
  RELSERVE_ASSIGN_OR_RETURN(Reply reply, ReceiveReply());
  return reply.status;
}

Result<std::string> NetClient::Stats() {
  const uint64_t id = next_request_id_++;
  AppendStatsRequest(id, &out_);
  RELSERVE_RETURN_NOT_OK(FlushOut());
  RELSERVE_ASSIGN_OR_RETURN(Reply reply, ReceiveReply());
  RELSERVE_RETURN_NOT_OK(reply.status);
  return reply.text;
}

Status NetClient::Ping() {
  const uint64_t id = next_request_id_++;
  RELSERVE_RETURN_NOT_OK(SendPing(id));
  RELSERVE_ASSIGN_OR_RETURN(Reply reply, ReceiveReply());
  return reply.status;
}

void NetClient::CloseWrite() { ::shutdown(fd_, SHUT_WR); }

}  // namespace net
}  // namespace relserve
