// NetClient: a blocking client for the relserve wire protocol.
//
// One connection, synchronous request/reply by default; the split
// Send*/ReceiveReply half is public so load generators can pipeline
// many outstanding requests on a single socket (replies carry the
// request id, so matching is the caller's choice of map or FIFO).
// The benchmark's epoll load generator uses the frame encoders from
// wire.h directly; this class is the simple path for examples, tests,
// and the CLI.

#ifndef RELSERVE_NET_CLIENT_H_
#define RELSERVE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/buffer.h"
#include "net/wire.h"
#include "tensor/tensor.h"

namespace relserve {
namespace net {

class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // --- Synchronous round trips ---------------------------------------

  // Ships `input` ([rows, dim] float32), returns the prediction
  // tensor. A typed non-OK reply status (DeadlineExceeded shed,
  // NotFound model, ...) comes back as that Status.
  Result<Tensor> Predict(const std::string& model, const Tensor& input,
                         int64_t deadline_us = 0);

  // mode: 0 adaptive / 1 force-udf / 2 force-relational.
  Status Deploy(const std::string& model, uint8_t mode,
                int64_t batch_size);

  // The server's stats JSON (scheduler + network counters).
  Result<std::string> Stats();

  Status Ping();

  // --- Pipelining half -----------------------------------------------
  //
  // Send* enqueue one frame and flush it; ReceiveReply blocks for the
  // next reply frame in stream order. Request ids are caller-chosen.

  Status SendPredict(uint64_t request_id, const std::string& model,
                     const Tensor& input, int64_t deadline_us = 0);
  Status SendPing(uint64_t request_id);
  Result<Reply> ReceiveReply();

  // Half-close: shutdown(SHUT_WR). The server answers everything in
  // flight, then closes; ReceiveReply still drains those replies.
  void CloseWrite();

  int fd() const { return fd_; }

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  Status FlushOut();

  int fd_ = -1;
  Buffer out_;
  Buffer in_;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace relserve

#endif  // RELSERVE_NET_CLIENT_H_
