#include "relational/operator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace relserve {

Result<std::vector<Row>> Collect(RowIterator* it) {
  RELSERVE_RETURN_NOT_OK(it->Open());
  std::vector<Row> rows;
  const int64_t hint = it->SizeHint();
  if (hint > 0) rows.reserve(hint);
  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, it->Next(&row));
    if (!has) break;
    rows.push_back(std::move(row));
    row = Row();
  }
  return rows;
}

// --- SeqScan --------------------------------------------------------

Status SeqScan::Open() {
  page_index_ = 0;
  page_records_.clear();
  record_index_ = 0;
  ordinal_ = 0;
  return Status::OK();
}

Result<bool> SeqScan::Next(Row* row) {
  while (true) {
    while (record_index_ >= page_records_.size()) {
      if (page_index_ >= heap_->num_pages()) return false;
      RELSERVE_RETURN_NOT_OK(
          heap_->ReadPageRecords(page_index_, &page_records_));
      ++page_index_;
      record_index_ = 0;
      if (rows_scanned_ != nullptr) {
        rows_scanned_->fetch_add(
            static_cast<int64_t>(page_records_.size()),
            std::memory_order_relaxed);
      }
      if (bytes_scanned_ != nullptr) {
        int64_t bytes = 0;
        for (const std::string& r : page_records_) {
          bytes += static_cast<int64_t>(r.size());
        }
        bytes_scanned_->fetch_add(bytes, std::memory_order_relaxed);
      }
    }
    const std::string& record = page_records_[record_index_++];
    const int64_t ordinal = ordinal_++;
    if (visibility_ != nullptr &&
        !visibility_->IsVisible(ordinal, snapshot_)) {
      continue;  // not in this reader's snapshot
    }
    RELSERVE_ASSIGN_OR_RETURN(
        *row, Row::Deserialize(record.data(),
                               static_cast<int64_t>(record.size())));
    return true;
  }
}

// --- MemScan --------------------------------------------------------

Result<bool> MemScan::Next(Row* row) {
  if (index_ >= rows_.size()) return false;
  *row = rows_[index_++];
  return true;
}

// --- Filter ---------------------------------------------------------

Result<bool> Filter::Next(Row* row) {
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    RELSERVE_ASSIGN_OR_RETURN(bool pass, predicate_->EvaluateBool(*row));
    if (pass) return true;
  }
}

// --- Project --------------------------------------------------------

Result<bool> Project::Next(Row* row) {
  Row input;
  RELSERVE_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
  if (!has) return false;
  std::vector<Value> values;
  values.reserve(indices_.size());
  for (int i : indices_) values.push_back(input.value(i));
  *row = Row(std::move(values));
  return true;
}

// --- Sort -----------------------------------------------------------

Status Sort::Open() {
  RELSERVE_ASSIGN_OR_RETURN(sorted_, Collect(child_.get()));
  const int key = key_;
  auto less = [key](const Row& a, const Row& b) {
    const Value& va = a.value(key);
    const Value& vb = b.value(key);
    if (va.type() == ValueType::kString &&
        vb.type() == ValueType::kString) {
      return va.AsString() < vb.AsString();
    }
    return va.AsNumeric() < vb.AsNumeric();
  };
  std::stable_sort(sorted_.begin(), sorted_.end(), less);
  if (descending_) std::reverse(sorted_.begin(), sorted_.end());
  index_ = 0;
  return Status::OK();
}

Result<bool> Sort::Next(Row* row) {
  if (index_ >= sorted_.size()) return false;
  *row = sorted_[index_++];
  return true;
}

// --- Limit ----------------------------------------------------------

Result<bool> Limit::Next(Row* row) {
  if (emitted_ >= limit_) return false;
  RELSERVE_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ++emitted_;
  return true;
}

// --- HashJoin -------------------------------------------------------

Status HashJoin::Open() {
  RELSERVE_RETURN_NOT_OK(left_->Open());
  RELSERVE_RETURN_NOT_OK(right_->Open());
  build_.clear();
  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    build_[row.value(right_key_)].push_back(row);
  }
  matches_ = nullptr;
  match_index_ = 0;
  left_valid_ = false;
  return Status::OK();
}

Result<bool> HashJoin::Next(Row* row) {
  while (true) {
    if (left_valid_ && matches_ != nullptr &&
        match_index_ < matches_->size()) {
      const Row& right_row = (*matches_)[match_index_++];
      std::vector<Value> values = current_left_.values();
      for (const Value& v : right_row.values()) values.push_back(v);
      *row = Row(std::move(values));
      return true;
    }
    RELSERVE_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
    if (!has) return false;
    left_valid_ = true;
    auto it = build_.find(current_left_.value(left_key_));
    matches_ = (it == build_.end()) ? nullptr : &it->second;
    match_index_ = 0;
  }
}

// --- SimilarityJoin -------------------------------------------------

Status SimilarityJoin::Open() {
  RELSERVE_RETURN_NOT_OK(left_->Open());
  RELSERVE_RETURN_NOT_OK(right_->Open());
  sorted_right_.clear();
  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    sorted_right_.emplace_back(row.value(right_key_).AsNumeric(), row);
  }
  std::sort(sorted_right_.begin(), sorted_right_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  left_valid_ = false;
  window_index_ = 0;
  window_end_ = 0;
  return Status::OK();
}

Result<bool> SimilarityJoin::Next(Row* row) {
  while (true) {
    if (left_valid_ && window_index_ < window_end_) {
      const Row& right_row = sorted_right_[window_index_++].second;
      std::vector<Value> values = current_left_.values();
      for (const Value& v : right_row.values()) values.push_back(v);
      *row = Row(std::move(values));
      return true;
    }
    RELSERVE_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
    if (!has) return false;
    left_valid_ = true;
    const double key = current_left_.value(left_key_).AsNumeric();
    const auto lo = std::lower_bound(
        sorted_right_.begin(), sorted_right_.end(), key - epsilon_,
        [](const auto& entry, double v) { return entry.first < v; });
    const auto hi = std::upper_bound(
        sorted_right_.begin(), sorted_right_.end(), key + epsilon_,
        [](double v, const auto& entry) { return v < entry.first; });
    window_index_ = static_cast<size_t>(lo - sorted_right_.begin());
    window_end_ = static_cast<size_t>(hi - sorted_right_.begin());
  }
}

// --- HashAggregate --------------------------------------------------

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

Value Finalize(const AggSpec& spec, const AggState& state) {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value(state.count);
    case AggFunc::kSum:
      return Value(state.sum);
    case AggFunc::kMin:
      return Value(state.min);
    case AggFunc::kMax:
      return Value(state.max);
    case AggFunc::kAvg:
      return Value(state.count == 0 ? 0.0 : state.sum / state.count);
  }
  return Value(int64_t{0});
}

}  // namespace

HashAggregate::HashAggregate(RowIteratorPtr child,
                             std::vector<int> group_keys,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      aggs_(std::move(aggs)) {
  std::vector<Column> cols;
  for (int k : group_keys_) cols.push_back(child_->schema().column(k));
  for (const AggSpec& spec : aggs_) {
    const ValueType type = (spec.func == AggFunc::kCount)
                               ? ValueType::kInt64
                               : ValueType::kFloat64;
    cols.push_back(Column{spec.output_name, type});
  }
  schema_ = Schema(std::move(cols));
}

Status HashAggregate::Open() {
  RELSERVE_RETURN_NOT_OK(child_->Open());
  results_.clear();
  result_index_ = 0;

  struct GroupHash {
    size_t operator()(const std::vector<Value>& key) const {
      size_t h = 0;
      for (const Value& v : key) h = h * 31 + v.Hash();
      return h;
    }
  };
  std::unordered_map<std::vector<Value>, std::vector<AggState>,
                     GroupHash>
      groups;

  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    std::vector<Value> key;
    key.reserve(group_keys_.size());
    for (int k : group_keys_) key.push_back(row.value(k));
    auto [it, inserted] =
        groups.try_emplace(std::move(key), aggs_.size());
    std::vector<AggState>& states = it->second;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      AggState& st = states[a];
      ++st.count;
      if (aggs_[a].func != AggFunc::kCount) {
        const double v = row.value(aggs_[a].column).AsNumeric();
        st.sum += v;
        st.min = std::min(st.min, v);
        st.max = std::max(st.max, v);
      }
    }
  }

  results_.reserve(groups.size());
  for (auto& [key, states] : groups) {
    std::vector<Value> values = key;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      values.push_back(Finalize(aggs_[a], states[a]));
    }
    results_.emplace_back(std::move(values));
  }
  return Status::OK();
}

Result<bool> HashAggregate::Next(Row* row) {
  if (result_index_ >= results_.size()) return false;
  *row = results_[result_index_++];
  return true;
}

}  // namespace relserve
