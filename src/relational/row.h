// Row: one tuple, plus the byte-level (de)serialization used both by
// the TableHeap record format and by the DL-centric Connector (which
// re-serializes rows across the system boundary).

#ifndef RELSERVE_RELATIONAL_ROW_H_
#define RELSERVE_RELATIONAL_ROW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace relserve {

class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  int num_values() const { return static_cast<int>(values_.size()); }
  const Value& value(int i) const { return values_[i]; }
  Value& value(int i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  bool operator==(const Row& other) const {
    return values_ == other.values_;
  }

  std::string ToString() const;

  // Appends this row's encoding to `out`. Format per value:
  // [u8 type][payload], payloads little-endian fixed width for
  // scalars, [u32 len][bytes] for strings, [u32 n][n floats] for
  // vectors.
  void SerializeTo(std::string* out) const;

  // Decodes a full row from `data`; `size` must be exactly consumed.
  static Result<Row> Deserialize(const char* data, int64_t size);

 private:
  std::vector<Value> values_;
};

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_ROW_H_
