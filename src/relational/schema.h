// Schema: ordered, named, typed columns of a relation.

#ifndef RELSERVE_RELATIONAL_SCHEMA_H_
#define RELSERVE_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace relserve {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the column named `name`, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;

  // Schema of a projection over column indices.
  Schema Project(const std::vector<int>& indices) const;

  // Concatenation (for join outputs); right-side duplicate names get a
  // suffix.
  Schema Concat(const Schema& right) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_SCHEMA_H_
