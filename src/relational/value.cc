#include "relational/value.h"

#include <functional>

namespace relserve {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kFloat64:
      return "FLOAT64";
    case ValueType::kString:
      return "STRING";
    case ValueType::kFloatVector:
      return "FLOAT_VECTOR";
  }
  return "?";
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(std::get<int64_t>(repr_));
    case ValueType::kFloat64:
      return std::get<double>(repr_);
    default:
      RELSERVE_CHECK(false) << "AsNumeric on " << ValueTypeName(type());
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kFloat64:
      return std::to_string(AsFloat64());
    case ValueType::kString:
      return AsString();
    case ValueType::kFloatVector:
      return "<vec[" + std::to_string(AsFloatVector().size()) + "]>";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::hash<int64_t>{}(AsInt64());
    case ValueType::kFloat64:
      return std::hash<double>{}(AsFloat64());
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
    case ValueType::kFloatVector: {
      size_t h = 14695981039346656037ULL;
      for (float f : AsFloatVector()) {
        h ^= std::hash<float>{}(f);
        h *= 1099511628211ULL;
      }
      return h;
    }
  }
  return 0;
}

}  // namespace relserve
