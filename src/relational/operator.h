// Pull-based (Volcano-style) relational operators.
//
// Every operator implements RowIterator: Open once, Next until it
// reports exhaustion, Close implicitly on destruction. SeqScan pulls
// pages one at a time through the buffer pool, so pipelines over
// spilled tables run in O(page) memory — the property the
// relation-centric architecture builds on.

#ifndef RELSERVE_RELATIONAL_OPERATOR_H_
#define RELSERVE_RELATIONAL_OPERATOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/expression.h"
#include "relational/row.h"
#include "relational/schema.h"
#include "storage/mvcc.h"
#include "storage/table_heap.h"

namespace relserve {

class RowIterator {
 public:
  virtual ~RowIterator() = default;

  virtual Status Open() = 0;

  // Fills `row` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;

  virtual const Schema& schema() const = 0;

  // Expected (or upper-bound) output row count, valid after Open();
  // -1 when unknown. Consumers use it to reserve() result buffers.
  virtual int64_t SizeHint() const { return -1; }
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

// Drains an iterator into a vector (test/bench convenience).
Result<std::vector<Row>> Collect(RowIterator* it);

// --- Leaf operators -------------------------------------------------

// Scans a TableHeap page by page.
class SeqScan : public RowIterator {
 public:
  SeqScan(const TableHeap* heap, Schema schema)
      : heap_(heap), schema_(std::move(schema)) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }
  int64_t SizeHint() const override { return heap_->num_records(); }

  // Optional relaxed-atomic sinks bumped as pages are decoded, so
  // EXPLAIN ANALYZE reports what the row path actually touched.
  void set_telemetry(std::atomic<int64_t>* rows_scanned,
                     std::atomic<int64_t>* bytes_scanned) {
    rows_scanned_ = rows_scanned;
    bytes_scanned_ = bytes_scanned;
  }

  // MVCC snapshot read: rows whose version interval does not contain
  // `snapshot` are skipped. Row ordinals follow insertion order —
  // exactly the VisibilityMap's row index.
  void set_visibility(const VisibilityMap* visibility,
                      Version snapshot) {
    visibility_ = visibility;
    snapshot_ = snapshot;
  }

 private:
  const TableHeap* heap_;
  Schema schema_;
  int64_t page_index_ = 0;
  std::vector<std::string> page_records_;
  size_t record_index_ = 0;
  int64_t ordinal_ = 0;
  std::atomic<int64_t>* rows_scanned_ = nullptr;
  std::atomic<int64_t>* bytes_scanned_ = nullptr;
  const VisibilityMap* visibility_ = nullptr;
  Version snapshot_ = 0;
};

// Scans an in-memory row vector (for intermediate results).
class MemScan : public RowIterator {
 public:
  MemScan(std::vector<Row> rows, Schema schema)
      : rows_(std::move(rows)), schema_(std::move(schema)) {}

  Status Open() override {
    index_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }
  int64_t SizeHint() const override {
    return static_cast<int64_t>(rows_.size());
  }

 private:
  std::vector<Row> rows_;
  Schema schema_;
  size_t index_ = 0;
};

// --- Unary operators ------------------------------------------------

class Filter : public RowIterator {
 public:
  Filter(RowIteratorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  RowIteratorPtr child_;
  ExprPtr predicate_;
};

class Project : public RowIterator {
 public:
  Project(RowIteratorPtr child, std::vector<int> indices)
      : child_(std::move(child)),
        indices_(std::move(indices)),
        schema_(child_->schema().Project(indices_)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }
  int64_t SizeHint() const override { return child_->SizeHint(); }

 private:
  RowIteratorPtr child_;
  std::vector<int> indices_;
  Schema schema_;
};

// Full materializing sort on one numeric/string column.
class Sort : public RowIterator {
 public:
  Sort(RowIteratorPtr child, int key, bool descending)
      : child_(std::move(child)), key_(key), descending_(descending) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return child_->schema(); }
  int64_t SizeHint() const override {
    return static_cast<int64_t>(sorted_.size());
  }

 private:
  RowIteratorPtr child_;
  int key_;
  bool descending_;
  std::vector<Row> sorted_;
  size_t index_ = 0;
};

class Limit : public RowIterator {
 public:
  Limit(RowIteratorPtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return child_->schema(); }
  int64_t SizeHint() const override {
    const int64_t child_hint = child_->SizeHint();
    if (child_hint < 0) return limit_;
    return std::min(child_hint, limit_);
  }

 private:
  RowIteratorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

// --- Joins ----------------------------------------------------------

// In-memory hash equi-join: builds on the right child, probes with the
// left.
class HashJoin : public RowIterator {
 public:
  HashJoin(RowIteratorPtr left, RowIteratorPtr right, int left_key,
           int right_key)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key),
        schema_(left_->schema().Concat(right_->schema())) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  RowIteratorPtr left_;
  RowIteratorPtr right_;
  int left_key_;
  int right_key_;
  Schema schema_;
  std::unordered_map<Value, std::vector<Row>, ValueHash> build_;
  Row current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool left_valid_ = false;
};

// Band similarity join: emits (l, r) pairs with
// |l[left_key] - r[right_key]| <= epsilon, implemented by sorting the
// right side and range-scanning a window per left row. This is the
// join of the paper's Sec. 7.2.1 pipeline.
class SimilarityJoin : public RowIterator {
 public:
  SimilarityJoin(RowIteratorPtr left, RowIteratorPtr right,
                 int left_key, int right_key, double epsilon)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key),
        epsilon_(epsilon),
        schema_(left_->schema().Concat(right_->schema())) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }

 private:
  RowIteratorPtr left_;
  RowIteratorPtr right_;
  int left_key_;
  int right_key_;
  double epsilon_;
  Schema schema_;
  std::vector<std::pair<double, Row>> sorted_right_;
  Row current_left_;
  bool left_valid_ = false;
  size_t window_index_ = 0;  // cursor within the current match window
  size_t window_end_ = 0;
};

// --- Aggregation ----------------------------------------------------

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  int column = -1;  // ignored for kCount
  std::string output_name;
};

// Hash group-by aggregate. Group keys are column indices; empty keys
// means a single global group.
class HashAggregate : public RowIterator {
 public:
  HashAggregate(RowIteratorPtr child, std::vector<int> group_keys,
                std::vector<AggSpec> aggs);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }

 private:
  RowIteratorPtr child_;
  std::vector<int> group_keys_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Row> results_;
  size_t result_index_ = 0;
};

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_OPERATOR_H_
