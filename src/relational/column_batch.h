// ColumnBatch / ColumnChunk: the batch-at-a-time unit of the
// vectorized execution path.
//
// A chunk holds one column of ~1-4K rows as a contiguous typed array
// (int64/double/string, or a flattened float-vector payload with
// per-row offsets) plus an optional validity bitmap. Operators iterate
// tight loops over these arrays instead of boxing every cell into a
// Value, which is what makes scan/filter/project vectorizable and lets
// feature columns move into GEMM input tiles with plain memcpys.
//
// NULL semantics: the Value model has no NULL alternative, so a null
// slot still stores a type-default payload (0 / 0.0 / "" / empty
// vector). The bitmap records which slots were null at ingest; the
// row-compatibility shim and the vectorized evaluator both see the
// default payload, keeping the two paths bit-identical until a real
// NULL type lands in the Value layer.

#ifndef RELSERVE_RELATIONAL_COLUMN_BATCH_H_
#define RELSERVE_RELATIONAL_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/row.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace relserve {

struct ColumnChunk {
  ValueType type = ValueType::kInt64;
  int64_t length = 0;
  // Validity bitmap, LSB-first: row r is valid iff bit r of
  // validity[r/8] is set. Empty means every row is valid (the common
  // case pays no bitmap cost).
  std::vector<uint8_t> validity;

  // Exactly one payload below is populated, selected by `type`.
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;
  // Float-vector payload, flattened: row r spans
  // vec_data[vec_offsets[r], vec_offsets[r+1]).
  std::vector<float> vec_data;
  std::vector<int64_t> vec_offsets;  // size length+1 once constructed

  ColumnChunk() { vec_offsets.push_back(0); }
  explicit ColumnChunk(ValueType t) : type(t) {
    vec_offsets.push_back(0);
  }

  void Reserve(int64_t n);

  // Appends one cell; the value's type must match `type`.
  void AppendValue(const Value& v);
  // Appends a null slot (type-default payload, bitmap bit cleared).
  void AppendNull();
  // Appends row `r` of `src` (same type), preserving validity.
  void AppendFrom(const ColumnChunk& src, int64_t r);

  bool has_nulls() const { return !validity.empty(); }
  bool IsValid(int64_t r) const {
    return validity.empty() ||
           (validity[static_cast<size_t>(r >> 3)] >> (r & 7)) & 1;
  }
  bool IsNull(int64_t r) const { return !IsValid(r); }

  // Boxes row `r` into a Value (null slots box their default payload).
  Value GetValue(int64_t r) const;

  // Approximate in-memory payload bytes (what a scan touched).
  int64_t ByteSize() const;

 private:
  // Tracks validity for one appended slot; materializes the bitmap
  // lazily on the first null.
  void PushValidity(bool valid);
};

// A horizontal slice of a relation in columnar form: one chunk per
// schema column, all of equal length.
struct ColumnBatch {
  Schema schema;
  std::vector<ColumnChunk> columns;
  int64_t num_rows = 0;

  ColumnBatch() = default;
  explicit ColumnBatch(const Schema& s);

  void Reserve(int64_t n);

  // Appends one row; arity and per-column types must match the schema.
  void AppendRow(const Row& row);

  // Boxes row `r` back into the row representation.
  Row RowAt(int64_t r) const;
  std::vector<Row> ToRows() const;

  static ColumnBatch FromRows(const Schema& s,
                              const std::vector<Row>& rows);

  int64_t ByteSize() const;
};

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_COLUMN_BATCH_H_
