#include "relational/schema.h"

namespace relserve {

Result<int> Schema::FieldIndex(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (int i : indices) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& right) const {
  std::vector<Column> cols = columns_;
  for (const Column& c : right.columns()) {
    Column copy = c;
    if (FieldIndex(copy.name).ok()) copy.name += "_r";
    cols.push_back(std::move(copy));
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ": ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace relserve
