// Vectorized (batch-at-a-time) execution over ColumnBatch.
//
// The row operators in operator.h pull one boxed Row per Next(); the
// functions here evaluate expressions over whole chunks — tight loops
// on contiguous int64/double arrays producing branch-free selection
// vectors — and scan a ColumnarTable fragment-parallel on the shared
// ThreadPool (morsel = fragment, grains from ScanCostModel). The
// semantics contract is exact: every query must produce bit-identical
// rows through either path, including the row evaluator's typed
// equality (Int64 3 != Float64 3.0), per-row AND/OR short-circuit
// (errors in an unevaluated branch are suppressed), and double
// arithmetic applied in the same order per row.
//
// ColumnarRowScan is the compatibility shim: a RowIterator over the
// batch scan, so every row operator (joins, aggregates, sorts)
// composes over columnar tables unchanged.

#ifndef RELSERVE_RELATIONAL_VECTORIZED_H_
#define RELSERVE_RELATIONAL_VECTORIZED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "relational/column_batch.h"
#include "relational/expression.h"
#include "relational/operator.h"
#include "resource/thread_pool.h"
#include "storage/column_store.h"
#include "storage/mvcc.h"

namespace relserve {

// Ascending row indices into a batch that passed a predicate.
using SelVector = std::vector<int32_t>;

// Evaluates `pred` over rows sel[0..n) of `batch` (nullptr sel = all
// rows) and returns the passing subset. `col_map`, when non-null,
// maps table column index -> chunk slot in `batch` (-1 = absent), so
// predicates bound against the table schema evaluate over a
// projection-pushed-down batch.
Result<SelVector> EvalPredicate(const Expression& pred,
                                const ColumnBatch& batch,
                                const int32_t* sel, int64_t n,
                                const std::vector<int>* col_map = nullptr);
Result<SelVector> EvalPredicate(const Expression& pred,
                                const ColumnBatch& batch);

// Gathers `sel` rows of the chunks named by `slots` into a fresh
// batch with schema `out_schema`.
ColumnBatch CompactBatch(const ColumnBatch& batch, const SelVector& sel,
                         const std::vector<int>& slots,
                         const Schema& out_schema);

struct ColumnarScanOptions {
  // Predicate over the *table* schema; null = no filter.
  ExprPtr predicate;
  // Output columns as table indices; empty = all columns in order.
  std::vector<int> projection;
  // Fragment-parallel scan when a pool is given and the cost model
  // says the table is big enough.
  ThreadPool* pool = nullptr;
  bool force_serial = false;
  // Cap on emitted rows (applied after the filter); -1 = no cap.
  int64_t limit = -1;
  // MVCC snapshot read: rows of each fragment that are not visible at
  // `snapshot` are dropped before the predicate runs (the visibility
  // selection feeds EvalPredicate as the initial selection vector).
  // Fragments that are entirely visible take the AllVisible fast path
  // and skip per-row checks. null = every row visible.
  const VisibilityMap* visibility = nullptr;
  Version snapshot = 0;
};

struct ColumnarScanOutput {
  std::vector<ColumnBatch> batches;  // fragment order, may hold empties
  Schema schema;                     // projection schema
  int64_t rows_scanned = 0;   // rows decoded from fragments
  int64_t bytes_scanned = 0;  // chunk payload bytes decoded
  int64_t rows_emitted = 0;   // rows surviving filter+limit
  int64_t nanos = 0;
  bool parallel = false;

  std::vector<Row> ToRows() const;
};

// Scans `table` with filter + projection pushdown. Fragments are
// decoded, filtered and compacted independently (deterministic
// fragment order in the output) and in parallel when profitable.
// Feeds measured cost back into ScanCostModel.
Result<ColumnarScanOutput> ColumnarScan(const ColumnarTable& table,
                                        const ColumnarScanOptions& opts);

// Row-at-a-time compatibility shim over the batch path: decodes one
// fragment at a time and serves boxed rows, so row operators compose
// over columnar tables.
class ColumnarRowScan : public RowIterator {
 public:
  explicit ColumnarRowScan(const ColumnarTable* table)
      : table_(table), schema_(table->schema()) {}

  Status Open() override {
    fragment_ = 0;
    row_ = 0;
    batch_ = ColumnBatch();
    return Status::OK();
  }
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }
  int64_t SizeHint() const override { return table_->num_rows(); }

  // MVCC snapshot read, mirroring SeqScan::set_visibility.
  void set_visibility(const VisibilityMap* visibility,
                      Version snapshot) {
    visibility_ = visibility;
    snapshot_ = snapshot;
  }

 private:
  const ColumnarTable* table_;
  Schema schema_;
  int64_t fragment_ = 0;
  ColumnBatch batch_;
  int64_t row_ = 0;
  int64_t batch_start_ = 0;  // table ordinal of batch_ row 0
  const VisibilityMap* visibility_ = nullptr;
  Version snapshot_ = 0;
};

// Scan over whichever layout the table uses (exactly one of
// heap/columnar is non-null in the catalog).
RowIteratorPtr MakeTableScan(const TableHeap* heap,
                             const ColumnarTable* columnar,
                             const Schema& schema);

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_VECTORIZED_H_
