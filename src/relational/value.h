// Value: one cell of a relational row.
//
// Besides scalars, a Value may hold a float vector: inference queries
// carry wide feature columns (hundreds of floats per tuple, e.g. the
// 968-feature Bosch rows in Sec. 7.2.1), and packing them as one
// vector-valued attribute mirrors how tensor-aware RDBMSs store
// per-tuple embeddings.

#ifndef RELSERVE_RELATIONAL_VALUE_H_
#define RELSERVE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"

namespace relserve {

enum class ValueType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
  kFloatVector = 3,
};

const char* ValueTypeName(ValueType type);

class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(std::vector<float> v) : repr_(std::move(v)) {}

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }

  int64_t AsInt64() const {
    RELSERVE_DCHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(repr_);
  }
  double AsFloat64() const {
    RELSERVE_DCHECK(type() == ValueType::kFloat64);
    return std::get<double>(repr_);
  }
  const std::string& AsString() const {
    RELSERVE_DCHECK(type() == ValueType::kString);
    return std::get<std::string>(repr_);
  }
  const std::vector<float>& AsFloatVector() const {
    RELSERVE_DCHECK(type() == ValueType::kFloatVector);
    return std::get<std::vector<float>>(repr_);
  }

  // Numeric view: Int64 and Float64 both convert; anything else is a
  // programmer error.
  double AsNumeric() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;

  // Hash usable for join/aggregate keys.
  size_t Hash() const;

 private:
  // Variant alternative order must match ValueType's enumerators.
  std::variant<int64_t, double, std::string, std::vector<float>> repr_;
};

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_VALUE_H_
