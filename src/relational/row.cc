#include "relational/row.h"

#include <cstring>

namespace relserve {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const char*& cursor, const char* end, T* v) {
  if (cursor + sizeof(T) > end) return false;
  std::memcpy(v, cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

}  // namespace

std::string Row::ToString() const {
  std::string out = "[";
  for (int i = 0; i < num_values(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

void Row::SerializeTo(std::string* out) const {
  // Exact encoded size up front: one growth instead of a realloc per
  // value (ingest serializes every row through here).
  size_t encoded = 0;
  for (const Value& v : values_) {
    encoded += 1;  // type tag
    switch (v.type()) {
      case ValueType::kInt64:
        encoded += sizeof(int64_t);
        break;
      case ValueType::kFloat64:
        encoded += sizeof(double);
        break;
      case ValueType::kString:
        encoded += sizeof(uint32_t) + v.AsString().size();
        break;
      case ValueType::kFloatVector:
        encoded += sizeof(uint32_t) +
                   v.AsFloatVector().size() * sizeof(float);
        break;
    }
  }
  out->reserve(out->size() + encoded);
  for (const Value& v : values_) {
    AppendPod<uint8_t>(out, static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kInt64:
        AppendPod<int64_t>(out, v.AsInt64());
        break;
      case ValueType::kFloat64:
        AppendPod<double>(out, v.AsFloat64());
        break;
      case ValueType::kString: {
        const std::string& s = v.AsString();
        AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
      case ValueType::kFloatVector: {
        const std::vector<float>& vec = v.AsFloatVector();
        AppendPod<uint32_t>(out, static_cast<uint32_t>(vec.size()));
        out->append(reinterpret_cast<const char*>(vec.data()),
                    vec.size() * sizeof(float));
        break;
      }
    }
  }
}

Result<Row> Row::Deserialize(const char* data, int64_t size) {
  const char* cursor = data;
  const char* end = data + size;
  std::vector<Value> values;
  while (cursor < end) {
    uint8_t tag;
    if (!ReadPod(cursor, end, &tag)) {
      return Status::Internal("row decode: truncated tag");
    }
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kInt64: {
        int64_t v;
        if (!ReadPod(cursor, end, &v)) {
          return Status::Internal("row decode: truncated int64");
        }
        values.emplace_back(v);
        break;
      }
      case ValueType::kFloat64: {
        double v;
        if (!ReadPod(cursor, end, &v)) {
          return Status::Internal("row decode: truncated float64");
        }
        values.emplace_back(v);
        break;
      }
      case ValueType::kString: {
        uint32_t len;
        if (!ReadPod(cursor, end, &len) || cursor + len > end) {
          return Status::Internal("row decode: truncated string");
        }
        values.emplace_back(std::string(cursor, len));
        cursor += len;
        break;
      }
      case ValueType::kFloatVector: {
        uint32_t n;
        if (!ReadPod(cursor, end, &n) ||
            cursor + n * sizeof(float) > end) {
          return Status::Internal("row decode: truncated vector");
        }
        std::vector<float> vec(n);
        std::memcpy(vec.data(), cursor, n * sizeof(float));
        cursor += n * sizeof(float);
        values.emplace_back(std::move(vec));
        break;
      }
      default:
        return Status::Internal("row decode: bad type tag " +
                                std::to_string(tag));
    }
  }
  return Row(std::move(values));
}

}  // namespace relserve
