#include "relational/expression.h"

#include <cmath>

namespace relserve {

ExprPtr Expression::Column(int index) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kColumn;
  e->column_index_ = index;
  return e;
}

ExprPtr Expression::Literal(Value v) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expression::Binary(ExprKind kind, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = kind;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expression::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expression::AbsDiffLe(ExprPtr left, ExprPtr right,
                              double epsilon) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kAbsDiffLe;
  e->epsilon_ = epsilon;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

Result<Value> Expression::Evaluate(const Row& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (column_index_ < 0 || column_index_ >= row.num_values()) {
        return Status::InvalidArgument(
            "column index " + std::to_string(column_index_) +
            " out of range for row of " +
            std::to_string(row.num_values()));
      }
      return row.value(column_index_);
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      RELSERVE_ASSIGN_OR_RETURN(Value l, children_[0]->Evaluate(row));
      RELSERVE_ASSIGN_OR_RETURN(Value r, children_[1]->Evaluate(row));
      const double a = l.AsNumeric();
      const double b = r.AsNumeric();
      double v = 0.0;
      if (kind_ == ExprKind::kAdd) v = a + b;
      if (kind_ == ExprKind::kSub) v = a - b;
      if (kind_ == ExprKind::kMul) v = a * b;
      return Value(v);
    }
    case ExprKind::kEq: {
      RELSERVE_ASSIGN_OR_RETURN(Value l, children_[0]->Evaluate(row));
      RELSERVE_ASSIGN_OR_RETURN(Value r, children_[1]->Evaluate(row));
      return Value(int64_t{l == r ? 1 : 0});
    }
    case ExprKind::kLt:
    case ExprKind::kLe: {
      RELSERVE_ASSIGN_OR_RETURN(Value l, children_[0]->Evaluate(row));
      RELSERVE_ASSIGN_OR_RETURN(Value r, children_[1]->Evaluate(row));
      const double a = l.AsNumeric();
      const double b = r.AsNumeric();
      const bool v = (kind_ == ExprKind::kLt) ? a < b : a <= b;
      return Value(int64_t{v ? 1 : 0});
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      RELSERVE_ASSIGN_OR_RETURN(bool l, children_[0]->EvaluateBool(row));
      // Short-circuit.
      if (kind_ == ExprKind::kAnd && !l) return Value(int64_t{0});
      if (kind_ == ExprKind::kOr && l) return Value(int64_t{1});
      RELSERVE_ASSIGN_OR_RETURN(bool r, children_[1]->EvaluateBool(row));
      return Value(int64_t{r ? 1 : 0});
    }
    case ExprKind::kNot: {
      RELSERVE_ASSIGN_OR_RETURN(bool v, children_[0]->EvaluateBool(row));
      return Value(int64_t{v ? 0 : 1});
    }
    case ExprKind::kAbsDiffLe: {
      RELSERVE_ASSIGN_OR_RETURN(Value l, children_[0]->Evaluate(row));
      RELSERVE_ASSIGN_OR_RETURN(Value r, children_[1]->Evaluate(row));
      const bool v =
          std::fabs(l.AsNumeric() - r.AsNumeric()) <= epsilon_;
      return Value(int64_t{v ? 1 : 0});
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Expression::EvaluateBool(const Row& row) const {
  RELSERVE_ASSIGN_OR_RETURN(Value v, Evaluate(row));
  return v.AsNumeric() != 0.0;
}

std::string Expression::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return "$" + std::to_string(column_index_);
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kAdd:
      return "(" + children_[0]->ToString() + " + " +
             children_[1]->ToString() + ")";
    case ExprKind::kSub:
      return "(" + children_[0]->ToString() + " - " +
             children_[1]->ToString() + ")";
    case ExprKind::kMul:
      return "(" + children_[0]->ToString() + " * " +
             children_[1]->ToString() + ")";
    case ExprKind::kEq:
      return "(" + children_[0]->ToString() + " = " +
             children_[1]->ToString() + ")";
    case ExprKind::kLt:
      return "(" + children_[0]->ToString() + " < " +
             children_[1]->ToString() + ")";
    case ExprKind::kLe:
      return "(" + children_[0]->ToString() + " <= " +
             children_[1]->ToString() + ")";
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + children_[0]->ToString() + ")";
    case ExprKind::kAbsDiffLe:
      return "(|" + children_[0]->ToString() + " - " +
             children_[1]->ToString() +
             "| <= " + std::to_string(epsilon_) + ")";
  }
  return "?";
}

}  // namespace relserve
