// A small expression tree evaluated against rows: column references,
// literals, arithmetic, comparisons, and boolean connectives. Used by
// Filter predicates and computed projections.

#ifndef RELSERVE_RELATIONAL_EXPRESSION_H_
#define RELSERVE_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/row.h"

namespace relserve {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

enum class ExprKind {
  kColumn,     // value of a column by index
  kLiteral,    // constant
  kAdd,        // numeric +
  kSub,        // numeric -
  kMul,        // numeric *
  kEq,         // equality (any type) -> Int64 0/1
  kLt,         // numeric <
  kLe,         // numeric <=
  kAnd,        // boolean and
  kOr,         // boolean or
  kNot,        // boolean not
  kAbsDiffLe,  // |a - b| <= c, the band-join predicate
};

class Expression {
 public:
  // Factory functions — expressions are immutable and shared.
  static ExprPtr Column(int index);
  static ExprPtr Literal(Value v);
  static ExprPtr Binary(ExprKind kind, ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr operand);
  // |left - right| <= epsilon (all numeric).
  static ExprPtr AbsDiffLe(ExprPtr left, ExprPtr right, double epsilon);

  ExprKind kind() const { return kind_; }
  int column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  double epsilon() const { return epsilon_; }

  // Evaluates against one row. Comparison/boolean results are Int64
  // 0/1.
  Result<Value> Evaluate(const Row& row) const;

  // Convenience: evaluate and interpret as a boolean.
  Result<bool> EvaluateBool(const Row& row) const;

  std::string ToString() const;

 private:
  Expression() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  int column_index_ = -1;
  Value literal_;
  double epsilon_ = 0.0;
  std::vector<ExprPtr> children_;
};

}  // namespace relserve

#endif  // RELSERVE_RELATIONAL_EXPRESSION_H_
