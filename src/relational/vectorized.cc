#include "relational/vectorized.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>

#include "kernels/predicate_simd.h"
#include "optimizer/scan_cost.h"

namespace relserve {

namespace {

// Rows of `sel` not present in `subset` (both ascending).
SelVector Complement(const int32_t* sel, int64_t n,
                     const SelVector& subset) {
  SelVector out;
  out.reserve(n - static_cast<int64_t>(subset.size()));
  size_t j = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (j < subset.size() && subset[j] == sel[i]) {
      ++j;
    } else {
      out.push_back(sel[i]);
    }
  }
  return out;
}

// Merge of two disjoint ascending selections.
SelVector MergeSorted(const SelVector& a, const SelVector& b) {
  SelVector out;
  out.resize(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

void CollectColumns(const Expression& e, std::vector<bool>* need) {
  if (e.kind() == ExprKind::kColumn) {
    const int c = e.column_index();
    if (c >= 0 && c < static_cast<int>(need->size())) {
      (*need)[c] = true;
    }
    return;
  }
  for (const ExprPtr& child : e.children()) {
    CollectColumns(*child, need);
  }
}

class Evaluator {
 public:
  Evaluator(const ColumnBatch& batch, const std::vector<int>* col_map)
      : batch_(batch), col_map_(col_map) {}

  Result<SelVector> EvalBool(const Expression& e, const int32_t* sel,
                             int64_t n);

 private:
  int NumTableColumns() const {
    return col_map_ != nullptr
               ? static_cast<int>(col_map_->size())
               : static_cast<int>(batch_.columns.size());
  }

  Result<const ColumnChunk*> Chunk(int table_col) const {
    int slot = table_col;
    if (col_map_ != nullptr) {
      slot = (table_col >= 0 &&
              table_col < static_cast<int>(col_map_->size()))
                 ? (*col_map_)[table_col]
                 : -1;
    }
    if (slot < 0 || slot >= static_cast<int>(batch_.columns.size())) {
      // Same failure the row evaluator reports for a bad column ref.
      return Status::InvalidArgument(
          "column index " + std::to_string(table_col) +
          " out of range for row of " +
          std::to_string(NumTableColumns()));
    }
    return &batch_.columns[slot];
  }

  Result<ValueType> StaticType(const Expression& e) const {
    switch (e.kind()) {
      case ExprKind::kColumn: {
        RELSERVE_ASSIGN_OR_RETURN(const ColumnChunk* chunk,
                                  Chunk(e.column_index()));
        return chunk->type;
      }
      case ExprKind::kLiteral:
        return e.literal().type();
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
        return ValueType::kFloat64;
      default:
        return ValueType::kInt64;  // comparisons / boolean connectives
    }
  }

  // Writes n doubles aligned with sel, applying the row evaluator's
  // AsNumeric view (Int64 widens; anything else is not numeric).
  Status EvalNumeric(const Expression& e, const int32_t* sel,
                     int64_t n, double* out);
  // Int64-typed expressions only (columns, literals, bool results).
  Status EvalInt64(const Expression& e, const int32_t* sel, int64_t n,
                   int64_t* out);
  Result<SelVector> EvalEq(const Expression& e, const int32_t* sel,
                           int64_t n);

  const ColumnBatch& batch_;
  const std::vector<int>* col_map_;
};

Status Evaluator::EvalNumeric(const Expression& e, const int32_t* sel,
                              int64_t n, double* out) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      RELSERVE_ASSIGN_OR_RETURN(const ColumnChunk* chunk,
                                Chunk(e.column_index()));
      if (chunk->type == ValueType::kInt64) {
        const int64_t* v = chunk->i64.data();
        for (int64_t i = 0; i < n; ++i) {
          out[i] = static_cast<double>(v[sel[i]]);
        }
        return Status::OK();
      }
      if (chunk->type == ValueType::kFloat64) {
        const double* v = chunk->f64.data();
        for (int64_t i = 0; i < n; ++i) out[i] = v[sel[i]];
        return Status::OK();
      }
      return Status::InvalidArgument(
          "column index " + std::to_string(e.column_index()) +
          " is not numeric");
    }
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      double b = 0.0;
      if (v.type() == ValueType::kInt64) {
        b = static_cast<double>(v.AsInt64());
      } else if (v.type() == ValueType::kFloat64) {
        b = v.AsFloat64();
      } else {
        return Status::InvalidArgument("literal is not numeric");
      }
      for (int64_t i = 0; i < n; ++i) out[i] = b;
      return Status::OK();
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      std::vector<double> a(n), b(n);
      RELSERVE_RETURN_NOT_OK(
          EvalNumeric(*e.children()[0], sel, n, a.data()));
      RELSERVE_RETURN_NOT_OK(
          EvalNumeric(*e.children()[1], sel, n, b.data()));
      if (e.kind() == ExprKind::kAdd) {
        for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
      } else if (e.kind() == ExprKind::kSub) {
        for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
      } else {
        for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
      }
      return Status::OK();
    }
    default: {
      // Comparison / boolean kinds: 0/1 per row.
      RELSERVE_ASSIGN_OR_RETURN(SelVector pass, EvalBool(e, sel, n));
      size_t j = 0;
      for (int64_t i = 0; i < n; ++i) {
        const bool hit = j < pass.size() && pass[j] == sel[i];
        out[i] = hit ? 1.0 : 0.0;
        j += hit;
      }
      return Status::OK();
    }
  }
}

Status Evaluator::EvalInt64(const Expression& e, const int32_t* sel,
                            int64_t n, int64_t* out) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      RELSERVE_ASSIGN_OR_RETURN(const ColumnChunk* chunk,
                                Chunk(e.column_index()));
      if (chunk->type != ValueType::kInt64) {
        return Status::Internal("EvalInt64 on non-int64 column");
      }
      const int64_t* v = chunk->i64.data();
      for (int64_t i = 0; i < n; ++i) out[i] = v[sel[i]];
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      const int64_t b = e.literal().AsInt64();
      for (int64_t i = 0; i < n; ++i) out[i] = b;
      return Status::OK();
    }
    default: {
      RELSERVE_ASSIGN_OR_RETURN(SelVector pass, EvalBool(e, sel, n));
      size_t j = 0;
      for (int64_t i = 0; i < n; ++i) {
        const bool hit = j < pass.size() && pass[j] == sel[i];
        out[i] = hit ? 1 : 0;
        j += hit;
      }
      return Status::OK();
    }
  }
}

Result<SelVector> Evaluator::EvalEq(const Expression& e,
                                    const int32_t* sel, int64_t n) {
  const Expression& left = *e.children()[0];
  const Expression& right = *e.children()[1];
  RELSERVE_ASSIGN_OR_RETURN(ValueType lt, StaticType(left));
  RELSERVE_ASSIGN_OR_RETURN(ValueType rt, StaticType(right));
  // Value equality is typed (Int64 3 != Float64 3.0); with both
  // sides' types resolved, a mismatch is simply never equal.
  if (lt != rt) return SelVector{};
  SelVector out;
  switch (lt) {
    case ValueType::kInt64: {
      std::vector<int64_t> a(n), b(n);
      RELSERVE_RETURN_NOT_OK(EvalInt64(left, sel, n, a.data()));
      RELSERVE_RETURN_NOT_OK(EvalInt64(right, sel, n, b.data()));
      out.resize(n);
      const kernels::PredicateKernels* pk =
          kernels::GetPredicateKernels(kernels::ActiveSimdLevel());
      out.resize(pk->eq_i64(a.data(), b.data(), sel, n, out.data()));
      return out;
    }
    case ValueType::kFloat64: {
      std::vector<double> a(n), b(n);
      RELSERVE_RETURN_NOT_OK(EvalNumeric(left, sel, n, a.data()));
      RELSERVE_RETURN_NOT_OK(EvalNumeric(right, sel, n, b.data()));
      out.resize(n);
      const kernels::PredicateKernels* pk =
          kernels::GetPredicateKernels(kernels::ActiveSimdLevel());
      out.resize(pk->eq_f64(a.data(), b.data(), sel, n, out.data()));
      return out;
    }
    case ValueType::kString: {
      // String-typed expressions are columns or literals only.
      const ColumnChunk* lc = nullptr;
      const ColumnChunk* rc = nullptr;
      const std::string* llit = nullptr;
      const std::string* rlit = nullptr;
      if (left.kind() == ExprKind::kColumn) {
        RELSERVE_ASSIGN_OR_RETURN(lc, Chunk(left.column_index()));
      } else {
        llit = &left.literal().AsString();
      }
      if (right.kind() == ExprKind::kColumn) {
        RELSERVE_ASSIGN_OR_RETURN(rc, Chunk(right.column_index()));
      } else {
        rlit = &right.literal().AsString();
      }
      out.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        const std::string& a = lc ? lc->str[sel[i]] : *llit;
        const std::string& b = rc ? rc->str[sel[i]] : *rlit;
        if (a == b) out.push_back(sel[i]);
      }
      return out;
    }
    case ValueType::kFloatVector: {
      const ColumnChunk* lc = nullptr;
      const ColumnChunk* rc = nullptr;
      if (left.kind() == ExprKind::kColumn) {
        RELSERVE_ASSIGN_OR_RETURN(lc, Chunk(left.column_index()));
      }
      if (right.kind() == ExprKind::kColumn) {
        RELSERVE_ASSIGN_OR_RETURN(rc, Chunk(right.column_index()));
      }
      auto span = [](const ColumnChunk* c, const Expression& expr,
                     int32_t r) -> std::pair<const float*, int64_t> {
        if (c != nullptr) {
          const int64_t lo = c->vec_offsets[r];
          return {c->vec_data.data() + lo, c->vec_offsets[r + 1] - lo};
        }
        const std::vector<float>& v = expr.literal().AsFloatVector();
        return {v.data(), static_cast<int64_t>(v.size())};
      };
      out.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        const auto [ap, an] = span(lc, left, sel[i]);
        const auto [bp, bn] = span(rc, right, sel[i]);
        if (an == bn && std::equal(ap, ap + an, bp)) {
          out.push_back(sel[i]);
        }
      }
      return out;
    }
  }
  return Status::Internal("unhandled equality type");
}

Result<SelVector> Evaluator::EvalBool(const Expression& e,
                                      const int32_t* sel, int64_t n) {
  // No rows selected: nothing is evaluated, so nothing can fail —
  // exactly like the row path, which never runs the evaluator here.
  if (n == 0) return SelVector{};
  switch (e.kind()) {
    case ExprKind::kAnd: {
      // Left selects; right is evaluated only over passing rows,
      // preserving per-row short-circuit (errors in the unevaluated
      // branch stay suppressed).
      RELSERVE_ASSIGN_OR_RETURN(
          SelVector pass, EvalBool(*e.children()[0], sel, n));
      return EvalBool(*e.children()[1], pass.data(),
                      static_cast<int64_t>(pass.size()));
    }
    case ExprKind::kOr: {
      RELSERVE_ASSIGN_OR_RETURN(
          SelVector pass, EvalBool(*e.children()[0], sel, n));
      const SelVector rest = Complement(sel, n, pass);
      RELSERVE_ASSIGN_OR_RETURN(
          SelVector right_pass,
          EvalBool(*e.children()[1], rest.data(),
                   static_cast<int64_t>(rest.size())));
      return MergeSorted(pass, right_pass);
    }
    case ExprKind::kNot: {
      RELSERVE_ASSIGN_OR_RETURN(
          SelVector pass, EvalBool(*e.children()[0], sel, n));
      return Complement(sel, n, pass);
    }
    case ExprKind::kEq:
      return EvalEq(e, sel, n);
    case ExprKind::kLt:
    case ExprKind::kLe: {
      std::vector<double> a(n), b(n);
      RELSERVE_RETURN_NOT_OK(
          EvalNumeric(*e.children()[0], sel, n, a.data()));
      RELSERVE_RETURN_NOT_OK(
          EvalNumeric(*e.children()[1], sel, n, b.data()));
      SelVector out(n);
      const kernels::PredicateKernels* pk =
          kernels::GetPredicateKernels(kernels::ActiveSimdLevel());
      const auto strip =
          e.kind() == ExprKind::kLt ? pk->lt_f64 : pk->le_f64;
      out.resize(strip(a.data(), b.data(), sel, n, out.data()));
      return out;
    }
    case ExprKind::kAbsDiffLe: {
      std::vector<double> a(n), b(n);
      RELSERVE_RETURN_NOT_OK(
          EvalNumeric(*e.children()[0], sel, n, a.data()));
      RELSERVE_RETURN_NOT_OK(
          EvalNumeric(*e.children()[1], sel, n, b.data()));
      const double eps = e.epsilon();
      SelVector out(n);
      const kernels::PredicateKernels* pk =
          kernels::GetPredicateKernels(kernels::ActiveSimdLevel());
      out.resize(pk->absdiff_le_f64(a.data(), b.data(), eps, sel, n,
                                    out.data()));
      return out;
    }
    default: {
      // Truthiness of a numeric expression (column, literal, arith).
      std::vector<double> v(n);
      RELSERVE_RETURN_NOT_OK(EvalNumeric(e, sel, n, v.data()));
      SelVector out(n);
      const kernels::PredicateKernels* pk =
          kernels::GetPredicateKernels(kernels::ActiveSimdLevel());
      out.resize(pk->nonzero_f64(v.data(), sel, n, out.data()));
      return out;
    }
  }
}

}  // namespace

Result<SelVector> EvalPredicate(const Expression& pred,
                                const ColumnBatch& batch,
                                const int32_t* sel, int64_t n,
                                const std::vector<int>* col_map) {
  SelVector identity;
  if (sel == nullptr) {
    identity.resize(batch.num_rows);
    std::iota(identity.begin(), identity.end(), 0);
    sel = identity.data();
    n = batch.num_rows;
  }
  Evaluator ev(batch, col_map);
  return ev.EvalBool(pred, sel, n);
}

Result<SelVector> EvalPredicate(const Expression& pred,
                                const ColumnBatch& batch) {
  return EvalPredicate(pred, batch, nullptr, 0, nullptr);
}

ColumnBatch CompactBatch(const ColumnBatch& batch, const SelVector& sel,
                         const std::vector<int>& slots,
                         const Schema& out_schema) {
  ColumnBatch out(out_schema);
  const int64_t n = static_cast<int64_t>(sel.size());
  out.num_rows = n;
  for (size_t k = 0; k < slots.size(); ++k) {
    const ColumnChunk& src = batch.columns[slots[k]];
    ColumnChunk& dst = out.columns[k];
    if (n == batch.num_rows) {
      dst = src;  // full selection: whole-chunk copy
      continue;
    }
    switch (src.type) {
      case ValueType::kInt64: {
        dst.i64.resize(n);
        for (int64_t i = 0; i < n; ++i) dst.i64[i] = src.i64[sel[i]];
        break;
      }
      case ValueType::kFloat64: {
        dst.f64.resize(n);
        for (int64_t i = 0; i < n; ++i) dst.f64[i] = src.f64[sel[i]];
        break;
      }
      case ValueType::kString: {
        dst.str.reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          dst.str.push_back(src.str[sel[i]]);
        }
        break;
      }
      case ValueType::kFloatVector: {
        int64_t total = 0;
        for (int64_t i = 0; i < n; ++i) {
          total += src.vec_offsets[sel[i] + 1] - src.vec_offsets[sel[i]];
        }
        dst.vec_data.reserve(total);
        dst.vec_offsets.reserve(n + 1);
        for (int64_t i = 0; i < n; ++i) {
          const int64_t lo = src.vec_offsets[sel[i]];
          const int64_t hi = src.vec_offsets[sel[i] + 1];
          dst.vec_data.insert(dst.vec_data.end(),
                              src.vec_data.begin() + lo,
                              src.vec_data.begin() + hi);
          dst.vec_offsets.push_back(
              static_cast<int64_t>(dst.vec_data.size()));
        }
        break;
      }
    }
    if (src.has_nulls()) {
      dst.validity.assign(static_cast<size_t>((n + 7) / 8), 0);
      for (int64_t i = 0; i < n; ++i) {
        if (src.IsValid(sel[i])) {
          dst.validity[static_cast<size_t>(i >> 3)] |=
              static_cast<uint8_t>(1u << (i & 7));
        }
      }
    }
    dst.length = n;
  }
  return out;
}

std::vector<Row> ColumnarScanOutput::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(rows_emitted);
  for (const ColumnBatch& batch : batches) {
    for (int64_t r = 0; r < batch.num_rows; ++r) {
      rows.push_back(batch.RowAt(r));
    }
  }
  return rows;
}

Result<ColumnarScanOutput> ColumnarScan(const ColumnarTable& table,
                                        const ColumnarScanOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  ColumnarScanOutput out;
  const Schema& schema = table.schema();
  const int ncols = schema.num_columns();

  std::vector<int> projection = opts.projection;
  if (projection.empty()) {
    projection.resize(ncols);
    std::iota(projection.begin(), projection.end(), 0);
  }
  for (int c : projection) {
    if (c < 0 || c >= ncols) {
      return Status::InvalidArgument("projection column " +
                                     std::to_string(c) +
                                     " out of range");
    }
  }
  // Projection pushdown: decode only the columns the output or the
  // predicate touches.
  std::vector<bool> need(ncols, false);
  for (int c : projection) need[c] = true;
  if (opts.predicate != nullptr) {
    CollectColumns(*opts.predicate, &need);
  }
  std::vector<int> needed;
  std::vector<int> col_map(ncols, -1);
  for (int c = 0; c < ncols; ++c) {
    if (need[c]) {
      col_map[c] = static_cast<int>(needed.size());
      needed.push_back(c);
    }
  }
  std::vector<int> proj_slots(projection.size());
  for (size_t i = 0; i < projection.size(); ++i) {
    proj_slots[i] = col_map[projection[i]];
  }
  out.schema = schema.Project(projection);
  const bool passthrough =
      opts.predicate == nullptr && needed == projection;

  // Late materialization: decode only the predicate's columns first
  // and fetch the remaining projected columns per fragment only when
  // at least one row passed. A fragment the filter rejects outright
  // never touches the other column streams.
  std::vector<bool> pred_need(ncols, false);
  if (opts.predicate != nullptr) {
    CollectColumns(*opts.predicate, &pred_need);
  }
  std::vector<int> pred_cols, rest_cols;
  std::vector<int> pred_col_map(ncols, -1);
  std::vector<int> rest_col_map(ncols, -1);
  for (int c : needed) {
    if (pred_need[c]) {
      pred_col_map[c] = static_cast<int>(pred_cols.size());
      pred_cols.push_back(c);
    } else {
      rest_col_map[c] = static_cast<int>(rest_cols.size());
      rest_cols.push_back(c);
    }
  }
  const bool late = opts.predicate != nullptr && !rest_cols.empty();
  const Schema needed_schema = schema.Project(needed);

  const int64_t nfrags = table.num_fragments();
  out.batches.resize(nfrags);
  std::vector<Status> statuses(nfrags, Status::OK());
  std::atomic<int64_t> rows_scanned{0};
  std::atomic<int64_t> bytes_scanned{0};

  // When every row of a fragment survives the filter, the projected
  // chunks can move into the output as-is — no per-row compaction.
  // (Duplicate projection columns alias the same slot; the first
  // occurrence takes the chunk, later ones copy it.)
  auto project_chunks = [&](ColumnBatch&& batch) {
    ColumnBatch kept(out.schema);
    std::vector<int> first(needed.size(), -1);
    for (size_t i = 0; i < proj_slots.size(); ++i) {
      const int slot = proj_slots[i];
      if (first[slot] >= 0) {
        kept.columns[i] = kept.columns[first[slot]];
      } else {
        kept.columns[i] = std::move(batch.columns[slot]);
        first[slot] = static_cast<int>(i);
      }
    }
    kept.num_rows = batch.num_rows;
    return kept;
  };

  const Schema rest_schema = schema.Project(rest_cols);

  auto scan_fragment = [&](int64_t f) {
    // Table ordinal of this fragment's first row, read before the
    // fragment itself: seals never move a fragment's start, and rows a
    // concurrent commit appends after this point carry begin versions
    // beyond any already-pinned snapshot.
    const int64_t frag_start =
        opts.visibility != nullptr ? table.FragmentStartRow(f) : 0;
    SelVector vis_sel;
    bool vis_filtered = false;
    // Visibility pre-selection (within-fragment offsets), computed
    // once the fragment's decoded row count is known. Fully visible
    // fragments skip the per-row pass entirely.
    auto compute_visibility = [&](int64_t rows) {
      if (opts.visibility == nullptr) return;
      if (opts.visibility->AllVisible(frag_start, rows,
                                      opts.snapshot)) {
        return;
      }
      opts.visibility->VisibleSelection(frag_start, rows,
                                        opts.snapshot, &vis_sel);
      vis_filtered = true;
    };
    ColumnBatch batch;
    SelVector sel;
    bool filtered = false;
    if (late) {
      Result<ColumnBatch> read = table.ReadFragment(f, &pred_cols);
      if (!read.ok()) {
        statuses[f] = read.status();
        return;
      }
      ColumnBatch pred_batch = std::move(read).ValueOrDie();
      rows_scanned.fetch_add(pred_batch.num_rows,
                             std::memory_order_relaxed);
      bytes_scanned.fetch_add(pred_batch.ByteSize(),
                              std::memory_order_relaxed);
      compute_visibility(pred_batch.num_rows);
      Result<SelVector> passed =
          vis_filtered
              ? EvalPredicate(*opts.predicate, pred_batch,
                              vis_sel.data(),
                              static_cast<int64_t>(vis_sel.size()),
                              &pred_col_map)
              : EvalPredicate(*opts.predicate, pred_batch, nullptr, 0,
                              &pred_col_map);
      if (!passed.ok()) {
        statuses[f] = passed.status();
        return;
      }
      sel = std::move(passed).ValueOrDie();
      filtered = true;
      if (sel.empty()) {
        out.batches[f] = ColumnBatch(out.schema);
        return;
      }
      Result<ColumnBatch> rest = table.ReadFragment(f, &rest_cols);
      if (!rest.ok()) {
        statuses[f] = rest.status();
        return;
      }
      ColumnBatch rest_batch = std::move(rest).ValueOrDie();
      bytes_scanned.fetch_add(rest_batch.ByteSize(),
                              std::memory_order_relaxed);
      if (rest_batch.num_rows > pred_batch.num_rows) {
        // A concurrent append grew the open tail between the two
        // reads; trim the rest columns back to the rows the predicate
        // saw so every chunk of the assembled batch agrees.
        SelVector head(pred_batch.num_rows);
        std::iota(head.begin(), head.end(), 0);
        std::vector<int> identity(rest_batch.columns.size());
        std::iota(identity.begin(), identity.end(), 0);
        rest_batch =
            CompactBatch(rest_batch, head, identity, rest_schema);
      }
      batch = ColumnBatch(needed_schema);
      for (size_t i = 0; i < needed.size(); ++i) {
        const int c = needed[i];
        batch.columns[i] =
            pred_need[c]
                ? std::move(pred_batch.columns[pred_col_map[c]])
                : std::move(rest_batch.columns[rest_col_map[c]]);
      }
      batch.num_rows = pred_batch.num_rows;
    } else {
      Result<ColumnBatch> read = table.ReadFragment(f, &needed);
      if (!read.ok()) {
        statuses[f] = read.status();
        return;
      }
      batch = std::move(read).ValueOrDie();
      rows_scanned.fetch_add(batch.num_rows,
                             std::memory_order_relaxed);
      bytes_scanned.fetch_add(batch.ByteSize(),
                              std::memory_order_relaxed);
      compute_visibility(batch.num_rows);
      if (opts.predicate != nullptr) {
        Result<SelVector> passed =
            vis_filtered
                ? EvalPredicate(*opts.predicate, batch, vis_sel.data(),
                                static_cast<int64_t>(vis_sel.size()),
                                &col_map)
                : EvalPredicate(*opts.predicate, batch, nullptr, 0,
                                &col_map);
        if (!passed.ok()) {
          statuses[f] = passed.status();
          return;
        }
        sel = std::move(passed).ValueOrDie();
        filtered = true;
      } else if (vis_filtered) {
        sel = std::move(vis_sel);
        filtered = true;
      }
    }
    if (filtered) {
      if (static_cast<int64_t>(sel.size()) == batch.num_rows) {
        out.batches[f] = project_chunks(std::move(batch));
      } else {
        out.batches[f] =
            CompactBatch(batch, sel, proj_slots, out.schema);
      }
    } else if (passthrough) {
      out.batches[f] = std::move(batch);
      out.batches[f].schema = out.schema;
    } else {
      out.batches[f] = project_chunks(std::move(batch));
    }
  };

  const bool parallel =
      opts.pool != nullptr && !opts.force_serial && nfrags > 1 &&
      opts.limit < 0 &&
      ScanCostModel::ShouldParallelize(
          table.num_rows(), static_cast<int64_t>(needed.size()),
          opts.pool->num_threads());
  if (parallel) {
    // Morsel = fragment: each morsel decodes whole fragments, grains
    // grouped by the cost model's per-fragment work estimate.
    opts.pool->ParallelFor(
        0, nfrags,
        [&](int64_t lo, int64_t hi) {
          for (int64_t f = lo; f < hi; ++f) scan_fragment(f);
        },
        /*grain=*/0,
        ScanCostModel::FragmentWorkHint(
            table.fragment_rows(),
            static_cast<int64_t>(needed.size())));
  } else {
    int64_t emitted = 0;
    for (int64_t f = 0; f < nfrags; ++f) {
      scan_fragment(f);
      if (!statuses[f].ok()) break;
      emitted += out.batches[f].num_rows;
      if (opts.limit >= 0 && emitted >= opts.limit) break;
    }
  }
  // Deterministic first-error in fragment order, regardless of which
  // morsel hit it first on the clock.
  for (int64_t f = 0; f < nfrags; ++f) {
    RELSERVE_RETURN_NOT_OK(statuses[f]);
  }

  if (opts.limit >= 0) {
    int64_t remaining = opts.limit;
    for (ColumnBatch& batch : out.batches) {
      if (remaining <= 0) {
        batch = ColumnBatch(out.schema);
        continue;
      }
      if (batch.num_rows > remaining) {
        SelVector head(remaining);
        std::iota(head.begin(), head.end(), 0);
        std::vector<int> identity(batch.columns.size());
        std::iota(identity.begin(), identity.end(), 0);
        batch = CompactBatch(batch, head, identity, out.schema);
      }
      remaining -= batch.num_rows;
    }
  }
  for (const ColumnBatch& batch : out.batches) {
    out.rows_emitted += batch.num_rows;
  }
  out.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
  out.bytes_scanned = bytes_scanned.load(std::memory_order_relaxed);
  out.parallel = parallel;
  out.nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  ScanCostModel::ObserveColumnarScan(
      out.rows_scanned * static_cast<int64_t>(needed.size()),
      out.nanos);
  return out;
}

Result<bool> ColumnarRowScan::Next(Row* row) {
  while (true) {
    while (row_ >= batch_.num_rows) {
      if (fragment_ >= table_->num_fragments()) return false;
      // Start ordinal read before the fragment: a concurrent seal
      // never moves it, and rows appended afterwards carry begin
      // versions beyond any pinned snapshot.
      batch_start_ = table_->FragmentStartRow(fragment_);
      RELSERVE_ASSIGN_OR_RETURN(
          batch_, table_->ReadFragment(fragment_++, nullptr));
      row_ = 0;
    }
    const int64_t r = row_++;
    if (visibility_ != nullptr &&
        !visibility_->IsVisible(batch_start_ + r, snapshot_)) {
      continue;  // not in this reader's snapshot
    }
    *row = batch_.RowAt(r);
    return true;
  }
}

RowIteratorPtr MakeTableScan(const TableHeap* heap,
                             const ColumnarTable* columnar,
                             const Schema& schema) {
  if (columnar != nullptr) {
    return std::make_unique<ColumnarRowScan>(columnar);
  }
  return std::make_unique<SeqScan>(heap, schema);
}

}  // namespace relserve
