#include "relational/column_batch.h"

#include "common/logging.h"

namespace relserve {

void ColumnChunk::Reserve(int64_t n) {
  switch (type) {
    case ValueType::kInt64:
      i64.reserve(n);
      break;
    case ValueType::kFloat64:
      f64.reserve(n);
      break;
    case ValueType::kString:
      str.reserve(n);
      break;
    case ValueType::kFloatVector:
      vec_offsets.reserve(n + 1);
      break;
  }
}

void ColumnChunk::PushValidity(bool valid) {
  if (valid && validity.empty()) return;  // all-valid fast path
  if (validity.empty()) {
    // First null: materialize an all-valid prefix for rows [0, length).
    validity.assign(static_cast<size_t>((length + 8) >> 3), 0);
    for (int64_t r = 0; r < length; ++r) {
      validity[static_cast<size_t>(r >> 3)] |=
          static_cast<uint8_t>(1u << (r & 7));
    }
  }
  const int64_t r = length;
  if (static_cast<size_t>(r >> 3) >= validity.size()) {
    validity.push_back(0);
  }
  if (valid) {
    validity[static_cast<size_t>(r >> 3)] |=
        static_cast<uint8_t>(1u << (r & 7));
  }
}

void ColumnChunk::AppendValue(const Value& v) {
  RELSERVE_DCHECK(v.type() == type);
  PushValidity(/*valid=*/true);
  switch (type) {
    case ValueType::kInt64:
      i64.push_back(v.AsInt64());
      break;
    case ValueType::kFloat64:
      f64.push_back(v.AsFloat64());
      break;
    case ValueType::kString:
      str.push_back(v.AsString());
      break;
    case ValueType::kFloatVector: {
      const std::vector<float>& vec = v.AsFloatVector();
      vec_data.insert(vec_data.end(), vec.begin(), vec.end());
      vec_offsets.push_back(static_cast<int64_t>(vec_data.size()));
      break;
    }
  }
  ++length;
}

void ColumnChunk::AppendNull() {
  PushValidity(/*valid=*/false);
  switch (type) {
    case ValueType::kInt64:
      i64.push_back(0);
      break;
    case ValueType::kFloat64:
      f64.push_back(0.0);
      break;
    case ValueType::kString:
      str.emplace_back();
      break;
    case ValueType::kFloatVector:
      vec_offsets.push_back(static_cast<int64_t>(vec_data.size()));
      break;
  }
  ++length;
}

void ColumnChunk::AppendFrom(const ColumnChunk& src, int64_t r) {
  RELSERVE_DCHECK(src.type == type);
  PushValidity(src.IsValid(r));
  switch (type) {
    case ValueType::kInt64:
      i64.push_back(src.i64[r]);
      break;
    case ValueType::kFloat64:
      f64.push_back(src.f64[r]);
      break;
    case ValueType::kString:
      str.push_back(src.str[r]);
      break;
    case ValueType::kFloatVector: {
      const int64_t lo = src.vec_offsets[r];
      const int64_t hi = src.vec_offsets[r + 1];
      vec_data.insert(vec_data.end(), src.vec_data.begin() + lo,
                      src.vec_data.begin() + hi);
      vec_offsets.push_back(static_cast<int64_t>(vec_data.size()));
      break;
    }
  }
  ++length;
}

Value ColumnChunk::GetValue(int64_t r) const {
  RELSERVE_DCHECK(r >= 0 && r < length);
  switch (type) {
    case ValueType::kInt64:
      return Value(i64[r]);
    case ValueType::kFloat64:
      return Value(f64[r]);
    case ValueType::kString:
      return Value(str[r]);
    case ValueType::kFloatVector: {
      const int64_t lo = vec_offsets[r];
      const int64_t hi = vec_offsets[r + 1];
      return Value(std::vector<float>(vec_data.begin() + lo,
                                      vec_data.begin() + hi));
    }
  }
  return Value();
}

int64_t ColumnChunk::ByteSize() const {
  int64_t bytes = static_cast<int64_t>(validity.size());
  switch (type) {
    case ValueType::kInt64:
      bytes += static_cast<int64_t>(i64.size()) * 8;
      break;
    case ValueType::kFloat64:
      bytes += static_cast<int64_t>(f64.size()) * 8;
      break;
    case ValueType::kString:
      for (const std::string& s : str) {
        bytes += static_cast<int64_t>(s.size()) + 4;
      }
      break;
    case ValueType::kFloatVector:
      bytes += static_cast<int64_t>(vec_data.size()) * 4 +
               static_cast<int64_t>(vec_offsets.size()) * 8;
      break;
  }
  return bytes;
}

ColumnBatch::ColumnBatch(const Schema& s) : schema(s) {
  columns.reserve(s.num_columns());
  for (const Column& c : s.columns()) {
    columns.emplace_back(c.type);
  }
}

void ColumnBatch::Reserve(int64_t n) {
  for (ColumnChunk& c : columns) c.Reserve(n);
}

void ColumnBatch::AppendRow(const Row& row) {
  RELSERVE_DCHECK(row.num_values() ==
                  static_cast<int>(columns.size()));
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].AppendValue(row.value(static_cast<int>(c)));
  }
  ++num_rows;
}

Row ColumnBatch::RowAt(int64_t r) const {
  std::vector<Value> values;
  values.reserve(columns.size());
  for (const ColumnChunk& c : columns) {
    values.push_back(c.GetValue(r));
  }
  return Row(std::move(values));
}

std::vector<Row> ColumnBatch::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows);
  for (int64_t r = 0; r < num_rows; ++r) rows.push_back(RowAt(r));
  return rows;
}

ColumnBatch ColumnBatch::FromRows(const Schema& s,
                                  const std::vector<Row>& rows) {
  ColumnBatch batch(s);
  batch.Reserve(static_cast<int64_t>(rows.size()));
  for (const Row& row : rows) batch.AppendRow(row);
  return batch;
}

int64_t ColumnBatch::ByteSize() const {
  int64_t bytes = 0;
  for (const ColumnChunk& c : columns) bytes += c.ByteSize();
  return bytes;
}

}  // namespace relserve
