#include "serving/join_pipeline.h"

#include <cstring>
#include <memory>

#include "engine/hybrid_executor.h"
#include "kernels/kernels.h"
#include "optimizer/decomposition.h"
#include "relational/operator.h"

namespace relserve {

namespace {

struct SideInfo {
  TableInfo* table = nullptr;
  int key_col = -1;
  int feature_col = -1;
};

Result<SideInfo> ResolveSide(ServingSession* session,
                             const std::string& table_name,
                             const JoinInferenceSpec& spec) {
  SideInfo side;
  RELSERVE_ASSIGN_OR_RETURN(side.table, session->GetTable(table_name));
  RELSERVE_ASSIGN_OR_RETURN(side.key_col,
                            side.table->schema.FieldIndex(spec.key_col));
  RELSERVE_ASSIGN_OR_RETURN(
      side.feature_col, side.table->schema.FieldIndex(spec.feature_col));
  return side;
}

// Runs a prepared all-UDF model on an in-memory batch.
Result<Tensor> RunWholeModel(ServingSession* session, const Model& model,
                             const Tensor& input) {
  InferencePlan plan;
  plan.batch_size = input.shape().dim(0);
  for (const Node& node : model.nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, Repr::kUdf, 0});
  }
  ExecContext* ctx = session->exec_context();
  RELSERVE_ASSIGN_OR_RETURN(
      PreparedModel prepared,
      PreparedModel::Prepare(&model, std::move(plan), ctx));
  RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                            HybridExecutor::Run(prepared, input, ctx));
  return out.ToTensor(ctx);
}

}  // namespace

Result<JoinInferenceResult> RunJoinThenInfer(
    ServingSession* session, const JoinInferenceSpec& spec) {
  RELSERVE_ASSIGN_OR_RETURN(SideInfo d1,
                            ResolveSide(session, spec.d1_table, spec));
  RELSERVE_ASSIGN_OR_RETURN(SideInfo d2,
                            ResolveSide(session, spec.d2_table, spec));
  RELSERVE_ASSIGN_OR_RETURN(const Model* model,
                            session->GetModel(spec.model));

  // join(D1, D2) with the full wide tuples flowing through the join.
  auto left = std::make_unique<SeqScan>(d1.table->heap.get(),
                                        d1.table->schema);
  auto right = std::make_unique<SeqScan>(d2.table->heap.get(),
                                         d2.table->schema);
  SimilarityJoin join(std::move(left), std::move(right), d1.key_col,
                      d2.key_col, spec.epsilon);
  const int right_feature_col =
      d1.table->schema.num_columns() + d2.feature_col;

  // Concatenate the two feature vectors of every joined tuple.
  RELSERVE_RETURN_NOT_OK(join.Open());
  std::vector<float> staging;
  int64_t matches = 0;
  int64_t width = -1;
  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, join.Next(&row));
    if (!has) break;
    const std::vector<float>& f1 =
        row.value(d1.feature_col).AsFloatVector();
    const std::vector<float>& f2 =
        row.value(right_feature_col).AsFloatVector();
    if (width < 0) width = static_cast<int64_t>(f1.size() + f2.size());
    staging.insert(staging.end(), f1.begin(), f1.end());
    staging.insert(staging.end(), f2.begin(), f2.end());
    ++matches;
  }
  if (matches == 0) {
    return Status::InvalidArgument("similarity join produced no rows");
  }
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor input,
      Tensor::FromData(Shape{matches, width}, staging,
                       session->working_memory()));

  JoinInferenceResult result;
  result.join_matches = matches;
  RELSERVE_ASSIGN_OR_RETURN(result.predictions,
                            RunWholeModel(session, *model, input));
  return result;
}

Result<JoinInferenceResult> RunDecomposedInfer(
    ServingSession* session, const JoinInferenceSpec& spec) {
  RELSERVE_ASSIGN_OR_RETURN(SideInfo d1,
                            ResolveSide(session, spec.d1_table, spec));
  RELSERVE_ASSIGN_OR_RETURN(SideInfo d2,
                            ResolveSide(session, spec.d2_table, spec));
  RELSERVE_ASSIGN_OR_RETURN(const Model* model,
                            session->GetModel(spec.model));
  if (!CanDecomposeFirstLayer(*model)) {
    return Status::InvalidArgument(
        "model's first layer does not reduce dimensionality; "
        "decomposition is not profitable");
  }
  ExecContext* ctx = session->exec_context();
  MemoryTracker* arena = session->working_memory();

  // Materialize each partition's features and keys once.
  auto load_side = [&](const SideInfo& side, Tensor* features,
                       std::vector<double>* keys) -> Status {
    SeqScan scan(side.table->heap.get(), side.table->schema);
    RELSERVE_RETURN_NOT_OK(scan.Open());
    std::vector<float> staging;
    Row row;
    int64_t n = 0;
    int64_t width = -1;
    while (true) {
      RELSERVE_ASSIGN_OR_RETURN(bool has, scan.Next(&row));
      if (!has) break;
      const std::vector<float>& f =
          row.value(side.feature_col).AsFloatVector();
      if (width < 0) width = static_cast<int64_t>(f.size());
      staging.insert(staging.end(), f.begin(), f.end());
      keys->push_back(row.value(side.key_col).AsNumeric());
      ++n;
    }
    if (n == 0) return Status::InvalidArgument("empty partition");
    RELSERVE_ASSIGN_OR_RETURN(
        *features, Tensor::FromData(Shape{n, width}, staging, arena));
    return Status::OK();
  };

  Tensor x1, x2;
  std::vector<double> keys1, keys2;
  RELSERVE_RETURN_NOT_OK(load_side(d1, &x1, &keys1));
  RELSERVE_RETURN_NOT_OK(load_side(d2, &x2, &keys2));

  // Push-down: partial first-layer products per partition.
  RELSERVE_ASSIGN_OR_RETURN(
      SplitWeights split,
      SplitFirstLayerWeights(*model, x1.shape().dim(1), arena));
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor p1, kernels::MatMul(x1, split.w1, /*transpose_b=*/true,
                                 arena, ctx->pool));
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor p2, kernels::MatMul(x2, split.w2, /*transpose_b=*/true,
                                 arena, ctx->pool));
  const int64_t hidden = p1.shape().dim(1);

  // The join now flows narrow tuples: (key, partition row index).
  Schema slim_schema({{"key", ValueType::kFloat64},
                      {"idx", ValueType::kInt64}});
  auto make_slim = [&](const std::vector<double>& keys) {
    std::vector<Row> rows;
    rows.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      rows.emplace_back(std::vector<Value>{
          Value(keys[i]), Value(static_cast<int64_t>(i))});
    }
    return std::make_unique<MemScan>(std::move(rows), slim_schema);
  };
  SimilarityJoin join(make_slim(keys1), make_slim(keys2), /*left_key=*/0,
                      /*right_key=*/0, spec.epsilon);
  RELSERVE_RETURN_NOT_OK(join.Open());
  std::vector<std::pair<int64_t, int64_t>> pairs;
  Row row;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, join.Next(&row));
    if (!has) break;
    pairs.emplace_back(row.value(1).AsInt64(), row.value(3).AsInt64());
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("similarity join produced no rows");
  }

  // Combine partials: H[m] = P1[i] + P2[j] (the distributed W x D).
  const int64_t matches = static_cast<int64_t>(pairs.size());
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor h, Tensor::Create(Shape{matches, hidden}, arena));
  for (int64_t m = 0; m < matches; ++m) {
    const float* a = p1.data() + pairs[m].first * hidden;
    const float* b = p2.data() + pairs[m].second * hidden;
    float* dst = h.data() + m * hidden;
    for (int64_t c = 0; c < hidden; ++c) dst[c] = a[c] + b[c];
  }

  // The rest of the model runs unchanged on the narrow activations.
  RELSERVE_ASSIGN_OR_RETURN(Model tail, BuildTailModel(*model));
  JoinInferenceResult result;
  result.join_matches = matches;
  RELSERVE_ASSIGN_OR_RETURN(result.predictions,
                            RunWholeModel(session, tail, h));
  return result;
}

}  // namespace relserve
