#include "serving/request_scheduler.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace relserve {

void RequestScheduler::Fulfill(Request& request,
                               Result<Tensor> value) {
  if (request.on_done) {
    request.on_done(std::move(value));
    return;
  }
  request.promise.set_value(std::move(value));
}

RequestScheduler::RequestScheduler(ServingSession* session,
                                   SchedulerConfig config)
    : session_(session),
      config_(config),
      admission_(std::max<size_t>(1, config.queue_capacity)),
      // The batch queue is the backpressure valve: one slot per
      // worker, so a dispatcher ahead of the engine blocks here and
      // the admission queue accumulates rows for the next batch.
      batch_queue_(static_cast<size_t>(std::max(1, config.num_workers))) {
  config_.num_workers = std::max(1, config_.num_workers);
  config_.max_batch_rows = std::max<int64_t>(1, config_.max_batch_rows);
  config_.max_delay_us = std::max<int64_t>(0, config_.max_delay_us);
  paused_ = config_.start_paused;
  dispatcher_ = std::thread(&RequestScheduler::DispatcherLoop, this);
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back(&RequestScheduler::WorkerLoop, this);
  }
}

RequestScheduler::~RequestScheduler() { Shutdown(); }

std::future<Result<Tensor>> RequestScheduler::SubmitBatch(
    const std::string& model, Tensor input, int64_t deadline_us) {
  Request request;
  request.kind = RequestKind::kBatch;
  request.model = model;
  request.input = std::move(input);
  request.has_deadline = deadline_us != 0;
  request.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(deadline_us);
  return Submit(std::move(request));
}

void RequestScheduler::SubmitBatchCallback(
    const std::string& model, Tensor input, int64_t deadline_us,
    std::function<void(Result<Tensor>)> on_done) {
  Request request;
  request.kind = RequestKind::kBatch;
  request.model = model;
  request.input = std::move(input);
  request.has_deadline = deadline_us != 0;
  request.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(deadline_us);
  request.on_done = std::move(on_done);
  // Sheds resolve through the callback too (inline, possibly on this
  // very thread); the returned future is vacuous and dropped.
  Submit(std::move(request));
}

std::future<Result<Tensor>> RequestScheduler::SubmitCached(
    const std::string& model, Tensor input, int64_t deadline_us) {
  Request request;
  request.kind = RequestKind::kCached;
  request.model = model;
  request.input = std::move(input);
  request.has_deadline = deadline_us != 0;
  request.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(deadline_us);
  return Submit(std::move(request));
}

std::future<Result<Tensor>> RequestScheduler::SubmitPredict(
    const std::string& model, const std::string& table,
    const std::string& feature_col, int64_t deadline_us) {
  Request request;
  request.kind = RequestKind::kTable;
  request.model = model;
  request.table = table;
  request.feature_col = feature_col;
  request.has_deadline = deadline_us != 0;
  request.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(deadline_us);
  return Submit(std::move(request));
}

std::future<Result<Tensor>> RequestScheduler::Submit(Request request) {
  std::future<Result<Tensor>> future = request.promise.get_future();
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (stopped_) {
      Fulfill(request,
              Status::Unavailable("scheduler is shut down"));
      return future;
    }
  }
  if (!admission_.TryPush(std::move(request))) {
    // TryPush leaves `request` intact on failure, so the promise is
    // still ours to resolve.
    stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    Fulfill(request,
            Status::Unavailable(
                "admission queue full: serving front-end overloaded"));
  }
  return future;
}

std::string RequestScheduler::CoalesceKey(const Request& request) {
  // Table scans are already maximal batches; rank-<2 inputs have no
  // row axis to concatenate along.
  if (request.kind == RequestKind::kTable) return "";
  if (request.input.shape().ndim() < 2) return "";
  std::string key =
      request.kind == RequestKind::kBatch ? "B|" : "C|";
  key += request.model;
  const Shape& shape = request.input.shape();
  for (int i = 1; i < shape.ndim(); ++i) {
    key += '|';
    key += std::to_string(shape.dim(i));
  }
  return key;
}

int64_t RequestScheduler::RowsOf(const Request& request) {
  if (request.kind == RequestKind::kTable) return 0;  // unknown here
  if (request.input.shape().ndim() < 1) return 1;
  return request.input.shape().ndim() < 2
             ? 1
             : request.input.shape().dim(0);
}

bool RequestScheduler::Expired(
    const Request& request, std::chrono::steady_clock::time_point now) {
  return request.has_deadline && request.deadline <= now;
}

void RequestScheduler::ShedExpired(Request request) {
  stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
  Fulfill(request,
          Status::DeadlineExceeded(
              "request deadline expired before execution"));
}

void RequestScheduler::DispatcherLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(control_mu_);
      control_cv_.wait(lock, [this] { return !paused_ || stopped_; });
    }
    // Stashed requests (incompatible leftovers from an earlier
    // batching window) are served before new arrivals — FIFO across
    // coalesce keys, so nothing is starved.
    Request first;
    if (!stash_.empty()) {
      first = std::move(stash_.front());
      stash_.pop_front();
    } else {
      std::optional<Request> popped = admission_.Pop();
      if (!popped) break;  // closed and drained: shut down
      first = std::move(*popped);
    }
    if (Expired(first, std::chrono::steady_clock::now())) {
      ShedExpired(std::move(first));
      continue;
    }

    Batch batch;
    const std::string key = CoalesceKey(first);
    int64_t rows = RowsOf(first);
    batch.requests.push_back(std::move(first));
    if (!key.empty()) {
      // First sweep the stash for compatible waiters, then hold the
      // batching window open on the admission queue.
      for (auto it = stash_.begin();
           it != stash_.end() && rows < config_.max_batch_rows;) {
        if (Expired(*it, std::chrono::steady_clock::now())) {
          ShedExpired(std::move(*it));
          it = stash_.erase(it);
          continue;
        }
        if (CoalesceKey(*it) == key) {
          rows += RowsOf(*it);
          batch.requests.push_back(std::move(*it));
          it = stash_.erase(it);
        } else {
          ++it;
        }
      }
      const auto window =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.max_delay_us);
      while (rows < config_.max_batch_rows) {
        std::optional<Request> next = admission_.PopUntil(window);
        if (!next) break;  // window elapsed (or queue closed+empty)
        if (Expired(*next, std::chrono::steady_clock::now())) {
          ShedExpired(std::move(*next));
          continue;
        }
        if (CoalesceKey(*next) == key) {
          rows += RowsOf(*next);
          batch.requests.push_back(std::move(*next));
        } else {
          stash_.push_back(std::move(*next));
        }
      }
    }
    // Blocking push = backpressure: while every worker is busy the
    // admission queue keeps filling, so the next batch forms larger.
    batch_queue_.Push(std::move(batch));
  }

  // Admission closed: everything left in the stash still gets served.
  while (!stash_.empty()) {
    Request first = std::move(stash_.front());
    stash_.pop_front();
    Batch batch;
    const std::string key = CoalesceKey(first);
    int64_t rows = RowsOf(first);
    batch.requests.push_back(std::move(first));
    if (!key.empty()) {
      for (auto it = stash_.begin();
           it != stash_.end() && rows < config_.max_batch_rows;) {
        if (CoalesceKey(*it) == key) {
          rows += RowsOf(*it);
          batch.requests.push_back(std::move(*it));
          it = stash_.erase(it);
        } else {
          ++it;
        }
      }
    }
    batch_queue_.Push(std::move(batch));
  }
  batch_queue_.Close();
}

void RequestScheduler::WorkerLoop() {
  while (std::optional<Batch> batch = batch_queue_.Pop()) {
    ExecuteBatch(std::move(*batch));
  }
}

CircuitBreaker* RequestScheduler::breaker(const std::string& model) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(model);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(model, std::make_unique<CircuitBreaker>(
                                 config_.breaker))
             .first;
  }
  return it->second.get();
}

Result<Tensor> RequestScheduler::RunResilient(
    const std::string& model,
    const std::function<Result<Tensor>()>& fn, bool* breaker_shed) {
  *breaker_shed = false;
  CircuitBreaker* model_breaker =
      config_.enable_circuit_breaker ? breaker(model) : nullptr;
  if (model_breaker != nullptr && !model_breaker->Allow()) {
    *breaker_shed = true;
    return Status::Unavailable(
        "circuit breaker open for model '" + model +
        "': shedding until the backend recovers");
  }
  int64_t retries = 0;
  const uint64_t seed =
      jitter_seq_.fetch_add(1, std::memory_order_relaxed) * 2 + 1;
  // The "scheduler.dispatch" failpoint models a fault between the
  // scheduler and the engine (chaos tests inject engine-level failure
  // here without involving the storage stack). It sits inside the
  // retried closure so injected transients exercise the real retry
  // path.
  Result<Tensor> result = CallWithRetry(
      config_.retry, seed,
      [&]() -> Result<Tensor> {
        if (failpoint::AnyActive()) {
          Status injected =
              failpoint::InjectedStatus("scheduler.dispatch");
          if (!injected.ok()) return injected;
        }
        return fn();
      },
      &retries);
  if (retries > 0) {
    stats_.retries.fetch_add(retries, std::memory_order_relaxed);
  }
  if (model_breaker != nullptr) {
    const Status status = result.status();
    if (status.IsIOError() || status.IsUnavailable() ||
        status.IsDataLoss()) {
      model_breaker->RecordFailure();
    } else {
      // OK — or a client-level error (InvalidArgument, NotFound): the
      // backend is reachable, which is what the breaker measures.
      model_breaker->RecordSuccess();
    }
  }
  if (!result.ok() && result.status().IsIOError()) {
    // The engine exhausted its retry budget on a transient fault. To
    // the client this is still "try again later", not "your data is
    // gone": surface it as Unavailable, keeping DataLoss the only
    // storage-corruption verdict.
    return Status::Unavailable(
        "transient I/O failure persisted across retries: " +
        result.status().message());
  }
  return result;
}

Result<Tensor> RequestScheduler::RunSingle(Request& request) {
  switch (request.kind) {
    case RequestKind::kTable: {
      RELSERVE_ASSIGN_OR_RETURN(
          ExecOutput out,
          session_->Predict(request.model, request.table,
                            request.feature_col));
      return out.ToTensor(session_->exec_context());
    }
    case RequestKind::kBatch: {
      RELSERVE_ASSIGN_OR_RETURN(
          ExecOutput out,
          session_->PredictBatch(request.model, request.input));
      return out.ToTensor(session_->exec_context());
    }
    case RequestKind::kCached:
      return session_->PredictWithCache(request.model, request.input);
  }
  return Status::Internal("unknown request kind");
}

void RequestScheduler::ExecuteBatch(Batch batch) {
  // A batch may have aged in the queue; shed what is already late so
  // the engine only burns cycles on results someone still wants.
  const auto now = std::chrono::steady_clock::now();
  std::vector<Request> live;
  live.reserve(batch.requests.size());
  for (Request& request : batch.requests) {
    if (Expired(request, now)) {
      ShedExpired(std::move(request));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  stats_.batches.fetch_add(1, std::memory_order_relaxed);

  if (live.size() == 1) {
    Request& request = live[0];
    bool breaker_shed = false;
    Result<Tensor> result = RunResilient(
        request.model, [&] { return RunSingle(request); },
        &breaker_shed);
    if (breaker_shed) {
      stats_.shed_breaker.fetch_add(1, std::memory_order_relaxed);
    }
    int64_t rows = RowsOf(request);
    if (rows == 0 && result.ok()) {
      // Table scans learn their row count from the output.
      rows = result->shape().ndim() > 0 ? result->shape().dim(0) : 1;
    }
    stats_.total_rows.fetch_add(rows, std::memory_order_relaxed);
    int64_t prev = stats_.max_batch_rows_seen.load();
    while (prev < rows &&
           !stats_.max_batch_rows_seen.compare_exchange_weak(prev,
                                                             rows)) {
    }
    Fulfill(request, std::move(result));
    return;
  }

  // Coalesced path: every request shares kind, model, and per-row
  // shape (the dispatcher's CoalesceKey guarantees it). Concatenate
  // the row-major inputs into one contiguous micro-batch tensor.
  int64_t total_rows = 0;
  for (const Request& request : live) total_rows += RowsOf(request);
  std::vector<int64_t> dims = live[0].input.shape().dims();
  dims[0] = total_rows;

  auto fail_all = [&live](const Status& status) {
    for (Request& request : live) {
      Fulfill(request, Result<Tensor>(status));
    }
  };

  Result<Tensor> merged_or = Tensor::Create(Shape(dims), nullptr);
  if (!merged_or.ok()) {
    fail_all(merged_or.status());
    return;
  }
  Tensor merged = std::move(*merged_or);
  {
    float* dst = merged.data();
    for (const Request& request : live) {
      const int64_t n = request.input.NumElements();
      std::memcpy(dst, request.input.data(), n * sizeof(float));
      dst += n;
    }
  }

  stats_.coalesced_requests.fetch_add(
      static_cast<int64_t>(live.size()), std::memory_order_relaxed);
  stats_.total_rows.fetch_add(total_rows, std::memory_order_relaxed);
  int64_t prev = stats_.max_batch_rows_seen.load();
  while (prev < total_rows &&
         !stats_.max_batch_rows_seen.compare_exchange_weak(
             prev, total_rows)) {
  }

  Result<Tensor> out_or = Status::Internal("uninitialized");
  bool breaker_shed = false;
  if (live[0].kind == RequestKind::kBatch) {
    out_or = RunResilient(
        live[0].model,
        [&]() -> Result<Tensor> {
          Result<ExecOutput> exec =
              session_->PredictBatch(live[0].model, merged);
          return exec.ok() ? exec->ToTensor(session_->exec_context())
                           : Result<Tensor>(exec.status());
        },
        &breaker_shed);
  } else {
    out_or = RunResilient(
        live[0].model,
        [&] {
          return session_->PredictWithCache(live[0].model, merged);
        },
        &breaker_shed);
  }
  if (breaker_shed) {
    stats_.shed_breaker.fetch_add(static_cast<int64_t>(live.size()),
                                  std::memory_order_relaxed);
  }
  if (!out_or.ok()) {
    fail_all(out_or.status());
    return;
  }
  const Tensor& out = *out_or;
  if (out.shape().ndim() < 1 || out.shape().dim(0) != total_rows ||
      out.NumElements() % total_rows != 0) {
    fail_all(Status::Internal(
        "batched output shape " + out.shape().ToString() +
        " does not cover " + std::to_string(total_rows) + " rows"));
    return;
  }

  // Scatter: each caller gets exactly its row slice, bit-for-bit what
  // a solo run would have produced.
  const int64_t out_row_elems = out.NumElements() / total_rows;
  std::vector<int64_t> out_dims = out.shape().dims();
  int64_t offset_rows = 0;
  for (Request& request : live) {
    const int64_t rows = RowsOf(request);
    out_dims[0] = rows;
    Result<Tensor> slice_or = Tensor::Create(Shape(out_dims), nullptr);
    if (!slice_or.ok()) {
      Fulfill(request, std::move(slice_or));
      offset_rows += rows;
      continue;
    }
    std::memcpy(slice_or->data(),
                out.data() + offset_rows * out_row_elems,
                rows * out_row_elems * sizeof(float));
    offset_rows += rows;
    Fulfill(request, std::move(slice_or));
  }
}

void RequestScheduler::Pause() {
  std::lock_guard<std::mutex> lock(control_mu_);
  paused_ = true;
}

void RequestScheduler::Resume() {
  std::lock_guard<std::mutex> lock(control_mu_);
  paused_ = false;
  control_cv_.notify_all();
}

void RequestScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (stopped_) return;
    stopped_ = true;
    paused_ = false;
    control_cv_.notify_all();
  }
  admission_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace relserve
