#include "serving/model_versions.h"

#include <algorithm>
#include <set>

#include "engine/hybrid_executor.h"
#include "engine/prepared_model.h"
#include "storage/quantize.h"
#include "workloads/datasets.h"

namespace relserve {

namespace {

// Runs a model whole-tensor on `input` through the session's context.
Result<Tensor> ProbeRun(ServingSession* session, const Model& model,
                        const Tensor& input) {
  InferencePlan plan;
  for (const Node& node : model.nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, Repr::kUdf, 0});
  }
  ExecContext* ctx = session->exec_context();
  RELSERVE_ASSIGN_OR_RETURN(
      PreparedModel prepared,
      PreparedModel::Prepare(&model, std::move(plan), ctx));
  RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                            HybridExecutor::Run(prepared, input, ctx));
  return out.ToTensor(ctx);
}

}  // namespace

Result<std::vector<ModelVersion>> CreateQuantizedVersion(
    ServingSession* session, const std::string& base_model,
    int64_t probe_batch, uint64_t seed) {
  RELSERVE_ASSIGN_OR_RETURN(const Model* base,
                            session->GetModel(base_model));
  // Rebuild the graph with quantize/dequantize-roundtripped weights.
  Model quantized(base_model + "@int8", base->sample_shape());
  for (const Node& node : base->nodes()) {
    if (node.kind == OpKind::kInput) {
      quantized.AddNode(OpKind::kInput);
    } else {
      quantized.AddNode(node.kind, node.weight_name, node.stride,
                        node.input);
    }
  }
  // Only matmul weights are worth compressing — they dominate the
  // footprint. Everything else (biases, conv kernels) is carried over
  // as a buffer-sharing copy of the base tensor, byte-identical, so
  // deploy-time binding through the shared PhysicalBlockIndex dedups
  // those layers against the base model's deployment.
  std::set<std::string> matmul_weights;
  for (const Node& node : base->nodes()) {
    if (node.kind == OpKind::kMatMul && !node.weight_name.empty()) {
      matmul_weights.insert(node.weight_name);
    }
  }
  int64_t quantized_bytes = 0;
  for (const auto& [name, weight] : base->weights()) {
    if (matmul_weights.count(name) == 0) {
      // Shared with the base: no marginal bytes for this version.
      RELSERVE_RETURN_NOT_OK(quantized.AddWeight(name, weight));
      continue;
    }
    RELSERVE_ASSIGN_OR_RETURN(QuantizedTensor q,
                              QuantizeUniform8(weight));
    quantized_bytes += q.ByteSize() + static_cast<int64_t>(
        2 * sizeof(float));  // scale + offset
    RELSERVE_ASSIGN_OR_RETURN(Tensor restored, Dequantize(q));
    RELSERVE_RETURN_NOT_OK(quantized.AddWeight(name, std::move(restored)));
  }

  // Measure the output deviation on a probe batch.
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor probe,
      workloads::GenBatch(probe_batch, base->sample_shape(), seed));
  RELSERVE_ASSIGN_OR_RETURN(Tensor reference,
                            ProbeRun(session, *base, probe));
  RELSERVE_ASSIGN_OR_RETURN(Tensor approx,
                            ProbeRun(session, quantized, probe));
  const float error = reference.MaxAbsDiff(approx);

  std::vector<ModelVersion> versions;
  versions.push_back(
      ModelVersion{base_model, base->TotalWeightBytes(), 0.0f});
  versions.push_back(ModelVersion{quantized.name(), quantized_bytes,
                                  error});
  RELSERVE_RETURN_NOT_OK(session->RegisterModel(std::move(quantized)));
  return versions;
}

Result<std::string> SelectVersionForSla(
    const std::vector<ModelVersion>& versions, float max_error) {
  const ModelVersion* best = nullptr;
  for (const ModelVersion& v : versions) {
    if (v.max_output_error > max_error) continue;
    if (best == nullptr || v.weight_bytes < best->weight_bytes) {
      best = &v;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no model version satisfies error bound " +
                            std::to_string(max_error));
  }
  return best->model_name;
}

}  // namespace relserve
