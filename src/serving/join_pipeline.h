// The Sec. 7.2.1 inference pipeline: a similarity join of two
// vertically partitioned feature tables feeding an FFNN, executed
// either naively (join first, then the model on wide joined tuples)
// or with the decomposition + push-down rewrite (partial first-layer
// products computed per partition *below* the join).

#ifndef RELSERVE_SERVING_JOIN_PIPELINE_H_
#define RELSERVE_SERVING_JOIN_PIPELINE_H_

#include <string>

#include "common/result.h"
#include "serving/serving_session.h"
#include "tensor/tensor.h"

namespace relserve {

struct JoinInferenceSpec {
  std::string d1_table;
  std::string d2_table;
  std::string key_col = "sim_key";       // correlated numeric columns
  std::string feature_col = "features";  // FLOAT_VECTOR columns
  double epsilon = 0.5;                  // band-join radius
  std::string model;  // registered FFNN over concatenated features
};

struct JoinInferenceResult {
  Tensor predictions;     // [matches, classes]
  int64_t join_matches = 0;
};

// Naive plan:  D1 |><|_eps D2  ->  concat features  ->  model.
Result<JoinInferenceResult> RunJoinThenInfer(ServingSession* session,
                                             const JoinInferenceSpec& spec);

// Rewritten plan (Sec. 2 / Sec. 7.2.1):
//   P1 = D1.features x W1^T,  P2 = D2.features x W2^T   (push-down)
//   H  = P1 |><|_eps P2 combined by elementwise sum
//   out = tail(H)   (bias, relu, remaining layers)
// Produces the same predictions up to float summation order.
Result<JoinInferenceResult> RunDecomposedInfer(
    ServingSession* session, const JoinInferenceSpec& spec);

}  // namespace relserve

#endif  // RELSERVE_SERVING_JOIN_PIPELINE_H_
