// Accuracy-aware model versions (paper Sec. 4(1)): the storage
// optimizer keeps multiple versions of a model with different
// size/accuracy trade-offs (here: the fp32 original and an int8
// uniform-quantized variant), measures each version's output deviation
// on a probe batch, and the query optimizer selects the smallest
// version whose measured error fits the query's SLA.

#ifndef RELSERVE_SERVING_MODEL_VERSIONS_H_
#define RELSERVE_SERVING_MODEL_VERSIONS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "serving/serving_session.h"

namespace relserve {

struct ModelVersion {
  std::string model_name;      // registered name of this version
  int64_t weight_bytes = 0;    // storage footprint
  // Max |output - reference output| measured on the probe batch
  // (0 for the reference version itself).
  float max_output_error = 0.0f;
};

// Registers "<base>@int8" — the base model with every weight run
// through uniform 8-bit quantize/dequantize — and measures its output
// deviation against the base on a random probe batch. Returns the
// version descriptors for both (base first).
Result<std::vector<ModelVersion>> CreateQuantizedVersion(
    ServingSession* session, const std::string& base_model,
    int64_t probe_batch, uint64_t seed);

// The smallest-footprint version with measured error <= max_error;
// NotFound if none qualifies (callers then fall back to the base).
Result<std::string> SelectVersionForSla(
    const std::vector<ModelVersion>& versions, float max_error);

}  // namespace relserve

#endif  // RELSERVE_SERVING_MODEL_VERSIONS_H_
