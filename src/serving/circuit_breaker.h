// CircuitBreaker: per-model fast-fail under sustained infrastructure
// failure (DESIGN.md "Fault model & recovery").
//
// Retry handles the *transient* fault; the breaker handles the
// *persistent* one. When a model's recent executions fail at a rate
// above the threshold, the breaker opens: further requests shed
// immediately with Status::Unavailable instead of burning an engine
// worker (and a retry budget) on a backend that is down. After a
// cooldown the breaker goes half-open and admits a few probe requests;
// enough successes close it, any failure re-opens it for another
// cooldown.
//
//   closed ──(failure rate over windowed threshold)──> open
//   open ──(cooldown elapses)──> half-open
//   half-open ──(probe successes)──> closed
//   half-open ──(probe failure)──> open
//
// Thread-safe; every serving worker consults the same instance for a
// given model.

#ifndef RELSERVE_SERVING_CIRCUIT_BREAKER_H_
#define RELSERVE_SERVING_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <chrono>
#include <deque>
#include <mutex>
#include <string>

namespace relserve {

struct CircuitBreakerConfig {
  // Sliding window of recent execution outcomes.
  int window_size = 32;
  // The breaker never opens before this many outcomes are recorded —
  // one unlucky first request must not condemn a model.
  int min_samples = 8;
  // Open when (failures / outcomes in window) reaches this.
  double failure_rate_threshold = 0.5;
  // How long an open breaker sheds before probing (half-open).
  int64_t open_cooldown_us = 50'000;
  // Consecutive half-open successes required to close.
  int half_open_successes_to_close = 2;
  // Probes admitted concurrently while half-open.
  int half_open_max_probes = 2;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  // Should this request execute? False = shed now with Unavailable.
  // An open breaker whose cooldown elapsed flips to half-open here and
  // admits up to half_open_max_probes in-flight probes.
  bool Allow();

  // Outcome of an execution that Allow() admitted.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  int64_t times_opened() const;
  int64_t shed_count() const;

  static const char* StateName(State state);

 private:
  void TransitionToOpenLocked();

  const CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::deque<bool> window_;  // true = failure
  int window_failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  int half_open_in_flight_ = 0;
  int half_open_successes_ = 0;
  int64_t times_opened_ = 0;
  int64_t shed_count_ = 0;
};

}  // namespace relserve

#endif  // RELSERVE_SERVING_CIRCUIT_BREAKER_H_
