// RequestScheduler: the concurrent serving front-end.
//
// Many client threads submit Predict / PredictBatch / PredictWithCache
// requests; the scheduler coalesces compatible ones (same kind, same
// model, same per-row feature shape) into adaptive micro-batches so
// the fixed per-query cost — plan lookup, kernel dispatch, GEMM setup —
// is amortized across requests. Batching is governed by two knobs:
//
//   max_batch_rows  — a batch closes as soon as it holds this many rows
//   max_delay_us    — ... or when the oldest member has waited this long
//
// and adapts to load through backpressure: the dispatcher blocks
// pushing a finished batch into the bounded batch queue while every
// worker is busy, so under saturation the admission queue accumulates
// and the *next* batch naturally grows — bigger batches exactly when
// the engine is the bottleneck, minimal latency when it is idle.
//
// Per-row results are scattered back to callers through
// std::promise/std::future. Coalescing is bit-transparent: the engine's
// per-row accumulation order is independent of batch size, so a row
// served in a 256-row micro-batch returns the same bits as one served
// alone (serving_concurrency_test asserts this).
//
// Admission control: the front queue is bounded. When it is full the
// submit returns an already-resolved future carrying
// Status::Unavailable (shed, not stalled); a request whose deadline
// has passed by the time a dispatcher or worker sees it resolves to
// Status::DeadlineExceeded without touching the engine.

#ifndef RELSERVE_SERVING_REQUEST_SCHEDULER_H_
#define RELSERVE_SERVING_REQUEST_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "resource/bounded_queue.h"
#include "serving/circuit_breaker.h"
#include "serving/serving_session.h"
#include "tensor/tensor.h"

namespace relserve {

struct SchedulerConfig {
  // A micro-batch closes once it holds this many feature rows.
  int64_t max_batch_rows = 256;
  // ... or once the first request in it has waited this long.
  int64_t max_delay_us = 200;
  // Admission queue depth; a full queue sheds with Unavailable.
  size_t queue_capacity = 1024;
  // Threads executing micro-batches against the session.
  int num_workers = 2;
  // Start with the dispatcher paused (tests use this to fill the
  // admission queue deterministically, then Resume()).
  bool start_paused = false;
  // Resilience (DESIGN.md "Fault model & recovery"): transient engine
  // failures (IOError, Unavailable) retry with jittered backoff;
  // sustained failure opens a per-model circuit breaker that sheds
  // with Unavailable until the backend recovers.
  RetryPolicy retry;
  bool enable_circuit_breaker = true;
  CircuitBreakerConfig breaker;
};

// Counters are atomics: submits race with the dispatcher and workers.
struct SchedulerStats {
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> shed_queue_full{0};   // Unavailable at admission
  std::atomic<int64_t> shed_deadline{0};     // DeadlineExceeded
  std::atomic<int64_t> shed_breaker{0};      // Unavailable, breaker open
  std::atomic<int64_t> retries{0};           // transient-fault re-runs
  std::atomic<int64_t> batches{0};           // micro-batches executed
  std::atomic<int64_t> coalesced_requests{0};  // requests that shared
  std::atomic<int64_t> total_rows{0};        // rows through the engine
  std::atomic<int64_t> max_batch_rows_seen{0};

  SchedulerStats() = default;
  SchedulerStats(const SchedulerStats& other) { *this = other; }
  // Relaxed snapshot: stats are read while scheduler workers update
  // them; per-counter coherence is all callers rely on.
  SchedulerStats& operator=(const SchedulerStats& other) {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    submitted.store(other.submitted.load(kRelaxed), kRelaxed);
    shed_queue_full.store(other.shed_queue_full.load(kRelaxed),
                          kRelaxed);
    shed_deadline.store(other.shed_deadline.load(kRelaxed), kRelaxed);
    shed_breaker.store(other.shed_breaker.load(kRelaxed), kRelaxed);
    retries.store(other.retries.load(kRelaxed), kRelaxed);
    batches.store(other.batches.load(kRelaxed), kRelaxed);
    coalesced_requests.store(other.coalesced_requests.load(kRelaxed),
                             kRelaxed);
    total_rows.store(other.total_rows.load(kRelaxed), kRelaxed);
    max_batch_rows_seen.store(other.max_batch_rows_seen.load(kRelaxed),
                              kRelaxed);
    return *this;
  }

  double MeanBatchRows() const {
    const int64_t b = batches.load();
    return b == 0 ? 0.0
                  : static_cast<double>(total_rows.load()) /
                        static_cast<double>(b);
  }
};

class RequestScheduler {
 public:
  // `session` must outlive the scheduler. The scheduler serializes
  // nothing about the session itself — ServingSession is internally
  // thread-safe; the scheduler's job is purely batching policy.
  RequestScheduler(ServingSession* session, SchedulerConfig config);
  ~RequestScheduler();  // implies Shutdown()

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  // --- Asynchronous submission --------------------------------------
  //
  // `deadline_us`: 0 = no deadline; > 0 = resolve DeadlineExceeded if
  // not executed within that many microseconds; < 0 = already expired
  // (tests use this for a deterministic shed).

  // In-memory batch inference (rows coalesce across requests).
  std::future<Result<Tensor>> SubmitBatch(const std::string& model,
                                          Tensor input,
                                          int64_t deadline_us = 0);

  // Like SubmitBatch, but the result is delivered by invoking
  // `on_done` inline on whichever scheduler thread resolves the
  // request (a worker after execution; the dispatcher or even the
  // submitting thread for sheds) instead of through a future. This is
  // the zero-handoff completion path the network front-end uses: the
  // callback must be cheap-ish and must not re-enter the scheduler.
  void SubmitBatchCallback(
      const std::string& model, Tensor input, int64_t deadline_us,
      std::function<void(Result<Tensor>)> on_done);

  // Cache-tier serving (rows coalesce; hits short-circuit per row
  // inside the session).
  std::future<Result<Tensor>> SubmitCached(const std::string& model,
                                           Tensor input,
                                           int64_t deadline_us = 0);

  // Whole-table inference. Table scans never coalesce with other
  // requests — they are already maximal batches.
  std::future<Result<Tensor>> SubmitPredict(
      const std::string& model, const std::string& table,
      const std::string& feature_col = "features",
      int64_t deadline_us = 0);

  // --- Synchronous conveniences -------------------------------------

  Result<Tensor> PredictBatch(const std::string& model, Tensor input) {
    return SubmitBatch(model, std::move(input)).get();
  }
  Result<Tensor> PredictWithCache(const std::string& model,
                                  Tensor input) {
    return SubmitCached(model, std::move(input)).get();
  }

  // --- Control -------------------------------------------------------

  // Pause()/Resume() gate the dispatcher *before* it pops, so a paused
  // scheduler admits (or sheds) but never executes.
  void Pause();
  void Resume();

  // Closes admission, drains every already-admitted request (each gets
  // a real result or a typed shed status — never a broken promise),
  // joins all threads. Idempotent; later submits get Unavailable.
  void Shutdown();

  SchedulerStats stats() const { return stats_; }

  // The per-model breaker (created on first use). Stable for the
  // scheduler's lifetime; tests observe state transitions through it.
  CircuitBreaker* breaker(const std::string& model);

 private:
  enum class RequestKind { kTable, kBatch, kCached };

  struct Request {
    RequestKind kind;
    std::string model;
    std::string table;        // kTable only
    std::string feature_col;  // kTable only
    Tensor input;             // kBatch / kCached
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::promise<Result<Tensor>> promise;
    // Non-empty = callback completion: resolved by calling this
    // instead of the promise (see SubmitBatchCallback).
    std::function<void(Result<Tensor>)> on_done;
  };

  struct Batch {
    std::vector<Request> requests;
  };

  std::future<Result<Tensor>> Submit(Request request);

  // Resolves a request: invokes on_done inline when set (callback
  // completion), otherwise fulfills the promise.
  static void Fulfill(Request& request, Result<Tensor> value);

  // "" when the request cannot coalesce (table scans, rank-<2 inputs).
  static std::string CoalesceKey(const Request& request);
  static int64_t RowsOf(const Request& request);
  static bool Expired(const Request& request,
                      std::chrono::steady_clock::time_point now);

  void DispatcherLoop();
  void WorkerLoop();
  void ExecuteBatch(Batch batch);
  Result<Tensor> RunSingle(Request& request);
  void ShedExpired(Request request);

  // Wraps one engine execution for `model` in the resilience stack:
  // breaker admission check (shed -> Unavailable, *breaker_shed set),
  // jittered retry of transient failures, outcome recording, and
  // mapping of terminal IOError to Unavailable (retryable from the
  // client's view — the next attempt may land after recovery).
  Result<Tensor> RunResilient(const std::string& model,
                              const std::function<Result<Tensor>()>& fn,
                              bool* breaker_shed);

  ServingSession* session_;
  SchedulerConfig config_;
  SchedulerStats stats_;

  BoundedQueue<Request> admission_;
  BoundedQueue<Batch> batch_queue_;

  // Requests popped during a batching window that did not match the
  // batch being formed; served first on the next iteration (FIFO
  // across keys, so a lone incompatible request is never starved).
  std::deque<Request> stash_;

  std::mutex breakers_mu_;
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>>
      breakers_;
  std::atomic<uint64_t> jitter_seq_{0};  // per-execution jitter seeds

  std::mutex control_mu_;
  std::condition_variable control_cv_;
  bool paused_ = false;
  bool stopped_ = false;

  std::thread dispatcher_;
  std::vector<std::thread> workers_;
};

}  // namespace relserve

#endif  // RELSERVE_SERVING_REQUEST_SCHEDULER_H_
