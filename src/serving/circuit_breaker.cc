#include "serving/circuit_breaker.h"

namespace relserve {

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const auto elapsed =
          std::chrono::steady_clock::now() - opened_at_;
      if (elapsed <
          std::chrono::microseconds(config_.open_cooldown_us)) {
        ++shed_count_;
        return false;
      }
      // Cooldown over: probe the backend.
      state_ = State::kHalfOpen;
      half_open_in_flight_ = 1;
      half_open_successes_ = 0;
      return true;
    }
    case State::kHalfOpen:
      if (half_open_in_flight_ >= config_.half_open_max_probes) {
        ++shed_count_;
        return false;
      }
      ++half_open_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::TransitionToOpenLocked() {
  state_ = State::kOpen;
  opened_at_ = std::chrono::steady_clock::now();
  ++times_opened_;
  window_.clear();
  window_failures_ = 0;
  half_open_in_flight_ = 0;
  half_open_successes_ = 0;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (half_open_in_flight_ > 0) --half_open_in_flight_;
    if (++half_open_successes_ >=
        config_.half_open_successes_to_close) {
      state_ = State::kClosed;
      window_.clear();
      window_failures_ = 0;
    }
    return;
  }
  if (state_ == State::kOpen) return;  // late result from before opening
  window_.push_back(false);
  if (static_cast<int>(window_.size()) > config_.window_size) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The backend is still sick: one failed probe re-opens.
    TransitionToOpenLocked();
    return;
  }
  if (state_ == State::kOpen) return;
  window_.push_back(true);
  ++window_failures_;
  if (static_cast<int>(window_.size()) > config_.window_size) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) >= config_.min_samples &&
      static_cast<double>(window_failures_) >=
          config_.failure_rate_threshold *
              static_cast<double>(window_.size())) {
    TransitionToOpenLocked();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

int64_t CircuitBreaker::shed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_count_;
}

}  // namespace relserve
