// ServingSession: the public API of relserve — an RDBMS session that
// manages tables, loads models, optimizes inference queries across the
// UDF-centric / relation-centric middle ground, optionally offloads to
// an external DL runtime (DL-centric), and serves cached predictions.
//
// Typical use (see examples/quickstart.cc):
//   ServingSession session(ServingConfig{});
//   auto* table = *session.CreateTable("tx", FeatureTableSchema());
//   ... load rows ...
//   session.RegisterModel(*BuildFFNN("fraud", {28, 256, 2}, 1));
//   session.Deploy("fraud", ServingMode::kAdaptive, batch);
//   Tensor scores = *session.Predict("fraud", "tx");

#ifndef RELSERVE_SERVING_SERVING_SESSION_H_
#define RELSERVE_SERVING_SERVING_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "common/result.h"
#include "engine/connector.h"
#include "engine/exec_context.h"
#include "engine/external_runtime.h"
#include "engine/hybrid_executor.h"
#include "engine/physical_plan.h"
#include "engine/prepared_model.h"
#include "graph/model.h"
#include "optimizer/optimizer.h"
#include "relational/row.h"
#include "storage/catalog.h"
#include "storage/disk_manager.h"
#include "storage/mvcc.h"
#include "storage/physical_block_index.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace relserve {

struct ServingConfig {
  // Buffer pool size in pages (kPageSize each) — the paper's "20 GB
  // buffer pool", scaled.
  int64_t buffer_pool_pages = 2048;  // 128 MiB
  // Hard limit of the in-database working-memory arena.
  int64_t working_memory_bytes = 512LL * 1024 * 1024;
  // The adaptive optimizer's representation threshold — the paper's
  // "2 GB", scaled.
  int64_t memory_threshold_bytes = 64LL * 1024 * 1024;
  // Tensor block geometry for relation-centric execution.
  int64_t block_rows = 512;
  int64_t block_cols = 512;
  // Worker threads for intra-query parallelism. 0 (the default)
  // sizes the pool to the hardware: oversubscribing a small machine
  // roughly doubles the latency of morsel-parallel kernels, so a
  // fixed count is only for tests/benches that pin one deliberately.
  int num_threads = 0;
  // Spill file path; empty = unique temp file.
  std::string spill_path;
  // Spill-file reliability knobs (CRC32C page checksums, re-read
  // budget). The default honors RELSERVE_PAGE_CHECKSUMS — the bench
  // ablation switch.
  DiskManagerOptions disk;
  // Simulated cost of the RDBMS <-> external-runtime hop used by
  // PredictViaRuntime (see TransferLink in engine/connector.h). Zero
  // both fields for a free link.
  TransferLink connector_link;
  // Kernel-arm knobs handed to the adaptive optimizer (int8 quantized
  // arm, CSR sparse arm, fused top-k head). Defaults leave every arm
  // off; RELSERVE_QUANTIZE further overrides the int8 arm at runtime.
  OptimizerTuning optimizer_tuning;
  // Durability: when non-empty, the session write-ahead-logs every
  // CreateTable/ApplyWrite to <wal_dir>/relserve.wal, replaying it on
  // construction (crash recovery). Empty = in-memory only, exactly the
  // pre-WAL behavior.
  std::string wal_dir;
  WalFsyncPolicy wal_fsync = WalFsyncPolicy::kEveryCommit;
  int64_t wal_group_window_us = 200;
  // Cross-model weight deduplication: deploy-time weight binding
  // resolves blocks through a content-addressed, ref-counted
  // PhysicalBlockIndex so fine-tuned variants share identical weight
  // pages/buffers. Off = every deployment owns private copies (the
  // naive arm of bench_multitenant).
  bool dedup_weights = true;
  // Elementwise tolerance for weight-block matching. 0 (the default)
  // is byte-exact — deduped deployments stay bit-identical. Positive
  // values enable the paper's accuracy-aware mode.
  float dedup_tolerance = 0.0f;
};

// One row mutation inside an ApplyWrite transaction.
struct WriteOp {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  // Physical row ordinal targeted by kUpdate/kDelete (the scan-visible
  // insertion order); ignored for kInsert.
  int64_t ordinal = -1;
  // New row contents for kInsert/kUpdate.
  Row row;
};

enum class ServingMode {
  kAdaptive,          // the rule-based optimizer decides per operator
  kForceUdf,          // pure UDF-centric
  kForceRelational,   // pure relation-centric
};

class ServingSession {
 public:
  explicit ServingSession(ServingConfig config);

  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;

  // Construction never aborts. A failed spill-file open lands here and
  // on every storage I/O the session performs afterwards.
  Status status() const { return disk_->status(); }

  Catalog* catalog() { return catalog_.get(); }
  ExecContext* exec_context() { return &ctx_; }
  MemoryTracker* working_memory() { return &working_memory_; }
  ThreadPool* thread_pool() { return pool_.get(); }
  const ServingConfig& config() const { return config_; }

  // --- Tables -------------------------------------------------------

  Result<TableInfo*> CreateTable(const std::string& name, Schema schema,
                                 TableLayout layout = TableLayout::kRow);
  Result<TableInfo*> GetTable(const std::string& name);

  // --- Transactional writes (serve-while-ingest) --------------------

  // Applies `ops` to `table_name` as one atomic, durable transaction:
  // WAL-log every op plus a commit record, wait for durability per the
  // fsync policy, apply the storage mutations, publish the commit
  // version, then fence the result caches bound to the table. Readers
  // pinned at an earlier snapshot never see any of it; readers pinning
  // afterwards see all of it. On a WAL failure nothing is applied and
  // the typed error (kIOError / injected code) surfaces to the caller.
  Status ApplyWrite(const std::string& table_name,
                    std::vector<WriteOp> ops);

  // Convenience: one insert-only transaction.
  Status IngestRows(const std::string& table_name,
                    const std::vector<Row>& rows);

  // The snapshot a read should evaluate at: every commit published so
  // far, nothing in flight.
  Version PinSnapshot() const { return clock_.LatestPublished(); }

  // Version clock / WAL / recovery introspection. wal() is null when
  // the session runs without a WAL (empty wal_dir) or its open failed
  // (see wal_status()).
  VersionClock* version_clock() { return &clock_; }
  WriteAheadLog* wal() { return wal_.get(); }
  const Status& wal_status() const { return wal_status_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Declares that cached predictions for `model_name` are computed
  // from rows of `table_name`: every committed write to the table
  // fences the model's cache tiers, so a hit can never return a
  // prediction older than the rows it was derived from.
  Status BindCacheToTable(const std::string& model_name,
                          const std::string& table_name);

  // The per-table EXPLAIN ANALYZE stages of the vectorized serving
  // path (columnar-scan + columnar-gather). Created lazily on first
  // access; stats accumulate across Predict calls on columnar tables.
  struct ColumnarTableStages {
    PhysicalStage scan;
    PhysicalStage gather;
  };
  ColumnarTableStages* ColumnarStages(const std::string& table_name);

  // --- Models -------------------------------------------------------

  // Takes ownership of the model (weights included).
  Status RegisterModel(Model model);
  Result<const Model*> GetModel(const std::string& name) const;

  // Optimizes + prepares a model for execution. Re-deploying with a
  // different mode/batch replaces the prepared instance. Returns the
  // plan for inspection (EXPLAIN).
  Result<const InferencePlan*> Deploy(const std::string& model_name,
                                      ServingMode mode,
                                      int64_t batch_size);

  // Drops every deployed plan (default + AoT variants) for the model;
  // the registered model itself stays. In-flight queries that already
  // resolved their deployment finish on the pinned shared_ptr;
  // requests resolving afterwards — including ones sitting in the
  // scheduler's queue between admission and dispatch — get a typed
  // NotFound, never a crash. NotFound if nothing was deployed.
  Status Undeploy(const std::string& model_name);

  // Ahead-of-time compilation (paper Sec. 2): when the model is
  // loaded, compile one prepared plan per *distinct representation
  // signature* across the given batch sizes; at query time
  // PredictBatch/Predict pick the matching plan without re-preparing.
  // Returns the number of distinct plans compiled.
  Result<int> DeployAot(const std::string& model_name,
                        const std::vector<int64_t>& batch_sizes);

  // The number of AoT plan variants held for a model (0 if none).
  int NumAotPlans(const std::string& model_name) const;

  // --- Multi-tenant introspection -----------------------------------

  // One deployed model as SHOW MODELS renders it: plan count (default
  // + AoT variants) and the weight bytes those plans bind, logical
  // (naive per-model storage) vs. physical (after shared-block
  // resolution through the block index).
  struct DeployedModelInfo {
    std::string name;
    int num_plans = 0;
    int64_t logical_weight_bytes = 0;
    int64_t physical_weight_bytes = 0;
    int64_t shared_blocks = 0;
    int64_t total_blocks = 0;
  };

  // Snapshot of every deployed model, name-ordered.
  std::vector<DeployedModelInfo> ListDeployedModels() const;

  // The shared weight-block index (null when dedup_weights is off).
  PhysicalBlockIndex* block_index() { return block_index_.get(); }
  const PhysicalBlockIndex* block_index() const {
    return block_index_.get();
  }

  // The compiled stage pipeline of the current default deployment —
  // what EXPLAIN ANALYZE renders. The aliasing shared_ptr keeps the
  // whole deployment (weights included) alive while the caller reads
  // stage stats, even across a concurrent redeploy.
  Result<std::shared_ptr<const PhysicalPlan>> DeployedPhysicalPlan(
      const std::string& model_name);

  // --- In-database inference ----------------------------------------

  // Runs the deployed model over every row of `table_name`
  // (feature_col must be a FLOAT_VECTOR column). If the plan chunks
  // the input, rows are streamed straight into a block relation and
  // the batch tensor is never materialized.
  Result<ExecOutput> Predict(const std::string& model_name,
                             const std::string& table_name,
                             const std::string& feature_col = "features");

  // Predict evaluated at an explicit MVCC snapshot: only rows whose
  // version interval contains `snapshot` feed the model. Bit-identical
  // across concurrent ingest for any fixed snapshot. Predict() itself
  // delegates here at PinSnapshot().
  Result<ExecOutput> PredictAtSnapshot(const std::string& model_name,
                                       const std::string& table_name,
                                       const std::string& feature_col,
                                       Version snapshot);

  // Runs the deployed model on an in-memory batch.
  Result<ExecOutput> PredictBatch(const std::string& model_name,
                                  const Tensor& input);

  // --- DL-centric offload -------------------------------------------

  // Attaches an external runtime (not owned) and registers the model
  // with it.
  Status OffloadModel(const std::string& model_name,
                      ExternalRuntime* runtime);

  // Full DL-centric round trip: export features over the connector,
  // infer in the external runtime, import predictions.
  Result<Tensor> PredictViaRuntime(const std::string& model_name,
                                   const std::string& table_name,
                                   const std::string& feature_col =
                                       "features");

  // --- Inference result caching --------------------------------------

  // Creates an approximate result cache for the model (input must be
  // rank-1 flattenable features of `dim`).
  Status EnableApproxCache(const std::string& model_name, int64_t dim,
                           ApproxResultCache::Config config);

  Result<ApproxResultCache*> GetApproxCache(
      const std::string& model_name);

  // Enables the exact (hash-keyed) result cache tier for a model —
  // zero accuracy cost, hits only on byte-identical requests. When
  // both tiers are enabled, lookups consult exact before approximate.
  Status EnableExactCache(const std::string& model_name);

  Result<ExactResultCache*> GetExactCache(
      const std::string& model_name);

  // Row-wise serving through the enabled cache tiers: hits return the
  // cached prediction; misses run the model (batched) and populate
  // every enabled tier.
  Result<Tensor> PredictWithCache(const std::string& model_name,
                                  const Tensor& input);

 private:
  struct Deployment {
    InferencePlan plan;
    std::unique_ptr<PreparedModel> prepared;
  };

  // Resolves the deployment serving `model_name` for a query of
  // `batch_size` rows: an AoT variant whose representation signature
  // matches what the optimizer would pick for that batch, else the
  // single Deploy()-ed instance. `batch_size` < 0 skips AoT matching.
  //
  // Returns a shared_ptr so an in-flight prediction keeps its
  // deployment (and the prepared weights inside) alive even if a
  // concurrent Deploy/DeployAot replaces it mid-query — the
  // use-after-free the serving front-end would otherwise hit. The old
  // instance's arena charge is released when the last query drops it.
  Result<std::shared_ptr<Deployment>> GetDeployment(
      const std::string& model_name, int64_t batch_size = -1);

  // Fences every cache tier bound to `table_name` at `version` (a
  // just-published commit). Caches registered after the lookup copy
  // are created empty, so they cannot hold a stale entry.
  void InvalidateCachesForTable(const std::string& table_name,
                                Version version);

  ServingConfig config_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> buffer_pool_;
  // Declared before the deployment maps below: plans release their
  // shared block handles into the index at destruction, so the index
  // must be destroyed after them (members destruct in reverse order).
  std::unique_ptr<PhysicalBlockIndex> block_index_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<ThreadPool> pool_;
  MemoryTracker working_memory_;
  ExecContext ctx_;

  // Guards every registry map below. Queries take it shared (lookups
  // only — model pointers and shared_ptr values stay valid after the
  // lock drops); Register/Deploy/Enable take it exclusive. Plan
  // preparation itself runs outside the lock so serving never stalls
  // behind a slow compile.
  mutable std::shared_mutex registry_mu_;

  std::map<std::string, std::unique_ptr<Model>> models_;
  std::map<std::string, std::shared_ptr<Deployment>> deployments_;
  // AoT variants: model name -> representation signature -> deployment.
  std::map<std::string, std::map<std::string, std::shared_ptr<Deployment>>>
      aot_plans_;
  std::map<std::string, ExternalRuntime*> offloaded_;
  std::map<std::string, std::unique_ptr<ColumnarTableStages>>
      columnar_stages_;
  std::map<std::string, std::shared_ptr<ApproxResultCache>> caches_;
  std::map<std::string, std::shared_ptr<ExactResultCache>>
      exact_caches_;
  // table name -> models whose caches derive from that table
  // (guarded by registry_mu_ like every registry map).
  std::map<std::string, std::vector<std::string>> cache_bindings_;

  // --- Durability & MVCC --------------------------------------------

  // Serializes the whole commit protocol (log ops + commit record,
  // wait durable, apply, publish). One lock means transactions never
  // interleave in the WAL, which is what lets recovery equate LSN
  // order with apply order.
  std::mutex commit_mu_;
  VersionClock clock_;
  std::unique_ptr<WriteAheadLog> wal_;
  // Why the WAL is absent/degraded: OK when disabled by config, the
  // open/recovery error otherwise. ApplyWrite refuses to run when the
  // configured WAL failed — no silent loss of durability.
  Status wal_status_ = Status::OK();
  RecoveryStats recovery_stats_;
  uint64_t next_txn_ = 1;  // under commit_mu_
};

}  // namespace relserve

#endif  // RELSERVE_SERVING_SERVING_SESSION_H_
