#include "serving/serving_session.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/failpoint.h"
#include "engine/block_ops.h"
#include "engine/connector.h"
#include "relational/operator.h"
#include "relational/vectorized.h"

namespace relserve {

namespace {

// A plan's representation and kernel-arm choices as a compact key
// ("uurru..." plus arm/topk markers), the identity under which AoT
// variants are cached. Two plans that agree on representations but
// differ in kernel arms bind different weight forms and must not
// share a compiled instance.
std::string PlanSignature(const InferencePlan& plan) {
  std::string signature;
  signature.reserve(plan.decisions.size());
  for (const NodeDecision& d : plan.decisions) {
    signature += d.repr == Repr::kUdf ? 'u' : 'r';
    if (d.arm == KernelArm::kInt8) signature += 'q';
    if (d.arm == KernelArm::kSparse) signature += 's';
    if (d.topk > 0) signature += 'k' + std::to_string(d.topk);
  }
  return signature;
}

}  // namespace

ServingSession::ServingSession(ServingConfig config)
    : config_(config),
      disk_(std::make_unique<DiskManager>(config.spill_path,
                                          config.disk)),
      buffer_pool_(std::make_unique<BufferPool>(
          disk_.get(), config.buffer_pool_pages)),
      block_index_(config.dedup_weights
                       ? std::make_unique<PhysicalBlockIndex>(
                             buffer_pool_.get())
                       : nullptr),
      catalog_(std::make_unique<Catalog>(buffer_pool_.get())),
      pool_(std::make_unique<ThreadPool>(
          config.num_threads > 0
              ? config.num_threads
              : std::max(1, static_cast<int>(
                                std::thread::hardware_concurrency())))),
      working_memory_("db-working-memory",
                      config.working_memory_bytes) {
  ctx_.tracker = &working_memory_;
  ctx_.pool = pool_.get();
  ctx_.buffer_pool = buffer_pool_.get();
  ctx_.block_rows = config.block_rows;
  ctx_.block_cols = config.block_cols;
  ctx_.block_index = block_index_.get();
  ctx_.dedup_tolerance = config.dedup_tolerance;

  if (!config_.wal_dir.empty()) {
    // Replay whatever log survives at the configured path, then open
    // it for appending. Construction never aborts: a failed replay or
    // open parks the error in wal_status_, and every subsequent
    // ApplyWrite refuses with it rather than writing non-durably.
    ::mkdir(config_.wal_dir.c_str(), 0755);  // best-effort
    const std::string wal_path = config_.wal_dir + "/relserve.wal";
    Result<RecoveryStats> recovered =
        RecoverCatalog(wal_path, catalog_.get(), &clock_);
    if (!recovered.ok()) {
      wal_status_ = recovered.status();
      return;
    }
    recovery_stats_ = std::move(recovered).ValueOrDie();
    WalOptions wal_opts;
    wal_opts.path = wal_path;
    wal_opts.fsync_policy = config_.wal_fsync;
    wal_opts.group_window_us = config_.wal_group_window_us;
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(wal_opts);
    if (!wal.ok()) {
      wal_status_ = wal.status();
      return;
    }
    wal_ = std::move(wal).ValueOrDie();
  }
}

Result<TableInfo*> ServingSession::CreateTable(const std::string& name,
                                               Schema schema,
                                               TableLayout layout) {
  if (wal_ == nullptr) {
    if (!config_.wal_dir.empty() && !wal_status_.ok()) {
      return wal_status_;
    }
    return catalog_->CreateTable(name, std::move(schema), layout);
  }
  std::lock_guard<std::mutex> commit(commit_mu_);
  const uint64_t txn = next_txn_++;
  WalRecord create;
  create.type = WalRecord::Type::kCreateTable;
  create.txn_id = txn;
  create.table = name;
  create.layout = static_cast<uint8_t>(layout);
  EncodeSchema(schema, &create.schema_encoding);
  RELSERVE_ASSIGN_OR_RETURN(uint64_t lsn, wal_->Append(create));
  // Catalog failure (duplicate name) leaves the logged create
  // uncommitted; recovery drops it.
  RELSERVE_ASSIGN_OR_RETURN(
      TableInfo * table,
      catalog_->CreateTable(name, std::move(schema), layout));
  const Version v = clock_.Allocate();
  WalRecord commit_rec;
  commit_rec.type = WalRecord::Type::kCommit;
  commit_rec.txn_id = txn;
  commit_rec.table = name;
  commit_rec.commit_version = v;
  commit_rec.op_count = 1;
  RELSERVE_ASSIGN_OR_RETURN(lsn, wal_->Append(commit_rec));
  RELSERVE_RETURN_NOT_OK(wal_->WaitDurable(lsn));
  clock_.Publish(v);
  return table;
}

ServingSession::ColumnarTableStages* ServingSession::ColumnarStages(
    const std::string& table_name) {
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = columnar_stages_.find(table_name);
    if (it != columnar_stages_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  auto& slot = columnar_stages_[table_name];
  if (slot == nullptr) {
    slot = std::make_unique<ColumnarTableStages>();
    slot->scan.kind = StageKind::kColumnarScan;
    slot->scan.label = "scan " + table_name;
    slot->gather.kind = StageKind::kColumnarGather;
    slot->gather.label = "pivot " + table_name;
  }
  return slot.get();
}

Result<TableInfo*> ServingSession::GetTable(const std::string& name) {
  return catalog_->GetTable(name);
}

Status ServingSession::ApplyWrite(const std::string& table_name,
                                  std::vector<WriteOp> ops) {
  if (ops.empty()) return Status::OK();
  RELSERVE_ASSIGN_OR_RETURN(TableInfo* table,
                            catalog_->GetTable(table_name));
  // Validate and serialize outside the commit lock.
  std::vector<std::string> row_bytes(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const WriteOp& op = ops[i];
    if (op.kind != WriteOp::Kind::kInsert && op.ordinal < 0) {
      return Status::InvalidArgument(
          "update/delete needs a row ordinal");
    }
    if (op.kind != WriteOp::Kind::kDelete) {
      op.row.SerializeTo(&row_bytes[i]);
    }
  }

  std::lock_guard<std::mutex> commit(commit_mu_);
  if (!config_.wal_dir.empty() && !wal_status_.ok()) {
    // The configured WAL never opened/recovered: refuse rather than
    // apply a write that would not survive a crash.
    return wal_status_;
  }
  const uint64_t txn = next_txn_++;

  // 1. Log every op, then the commit record, then wait for
  //    durability. Any failure here returns before a single storage
  //    mutation: recovery sees an uncommitted (or absent) transaction
  //    and drops it — no torn writes, no phantom rows.
  uint64_t last_lsn = 0;
  if (wal_ != nullptr) {
    for (size_t i = 0; i < ops.size(); ++i) {
      const WriteOp& op = ops[i];
      WalRecord rec;
      rec.txn_id = txn;
      rec.table = table_name;
      switch (op.kind) {
        case WriteOp::Kind::kInsert:
          rec.type = WalRecord::Type::kInsert;
          rec.row_bytes = row_bytes[i];
          break;
        case WriteOp::Kind::kUpdate:
          rec.type = WalRecord::Type::kUpdate;
          rec.ordinal = op.ordinal;
          rec.row_bytes = row_bytes[i];
          break;
        case WriteOp::Kind::kDelete:
          rec.type = WalRecord::Type::kDelete;
          rec.ordinal = op.ordinal;
          break;
      }
      RELSERVE_ASSIGN_OR_RETURN(last_lsn, wal_->Append(rec));
    }
  }
  const Version v = clock_.Allocate();
  if (wal_ != nullptr) {
    WalRecord commit_rec;
    commit_rec.type = WalRecord::Type::kCommit;
    commit_rec.txn_id = txn;
    commit_rec.table = table_name;
    commit_rec.commit_version = v;
    commit_rec.op_count = static_cast<uint32_t>(ops.size());
    RELSERVE_ASSIGN_OR_RETURN(last_lsn, wal_->Append(commit_rec));
    RELSERVE_RETURN_NOT_OK(wal_->WaitDurable(last_lsn));
  }

  // 2. Apply. The version is not yet published, so rows landing here
  //    carry begin = v > every pinned snapshot — concurrent readers
  //    cannot observe a partially applied transaction.
  VisibilityMap* vis = table->visibility.get();
  for (size_t i = 0; i < ops.size(); ++i) {
    const WriteOp& op = ops[i];
    if (op.kind != WriteOp::Kind::kInsert) {
      RELSERVE_RETURN_NOT_OK(vis->MarkDeleted(op.ordinal, v));
    }
    if (op.kind != WriteOp::Kind::kDelete) {
      // Interval first, bytes second: an untracked ordinal defaults
      // to always-visible, so registering [v, inf) before the row
      // physically exists is what keeps a reader pinned below v from
      // glimpsing it mid-append. (A storage failure past this point
      // leaves memory behind the durable log either way — the commit
      // is already on disk.)
      vis->PadTo(table->num_rows());
      vis->AppendRow(v);
      if (table->heap != nullptr) {
        RELSERVE_RETURN_NOT_OK(table->heap->Append(
            row_bytes[i].data(),
            static_cast<int64_t>(row_bytes[i].size())));
      } else {
        RELSERVE_RETURN_NOT_OK(table->columnar->AppendRow(op.row));
      }
    }
  }

  // 3. Publish, then fence the caches serving this table. A cached
  //    entry stamped with a snapshot < v can no longer hit.
  clock_.Publish(v);
  InvalidateCachesForTable(table_name, v);
  return Status::OK();
}

Status ServingSession::IngestRows(const std::string& table_name,
                                  const std::vector<Row>& rows) {
  std::vector<WriteOp> ops;
  ops.reserve(rows.size());
  for (const Row& row : rows) {
    WriteOp op;
    op.kind = WriteOp::Kind::kInsert;
    op.row = row;
    ops.push_back(std::move(op));
  }
  return ApplyWrite(table_name, std::move(ops));
}

Status ServingSession::BindCacheToTable(const std::string& model_name,
                                        const std::string& table_name) {
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (models_.count(model_name) == 0) {
    return Status::NotFound("model '" + model_name + "'");
  }
  std::vector<std::string>& bound = cache_bindings_[table_name];
  if (std::find(bound.begin(), bound.end(), model_name) ==
      bound.end()) {
    bound.push_back(model_name);
  }
  return Status::OK();
}

void ServingSession::InvalidateCachesForTable(
    const std::string& table_name, Version version) {
  std::vector<std::shared_ptr<ApproxResultCache>> approx;
  std::vector<std::shared_ptr<ExactResultCache>> exact;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = cache_bindings_.find(table_name);
    if (it == cache_bindings_.end()) return;
    for (const std::string& model : it->second) {
      auto a = caches_.find(model);
      if (a != caches_.end()) approx.push_back(a->second);
      auto e = exact_caches_.find(model);
      if (e != exact_caches_.end()) exact.push_back(e->second);
    }
  }
  for (auto& cache : approx) cache->Invalidate(version);
  for (auto& cache : exact) cache->Invalidate(version);
}

Status ServingSession::RegisterModel(Model model) {
  const std::string name = model.name();
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (models_.count(name) > 0) {
    return Status::AlreadyExists("model '" + name + "'");
  }
  models_.emplace(name, std::make_unique<Model>(std::move(model)));
  return Status::OK();
}

Result<const Model*> ServingSession::GetModel(
    const std::string& name) const {
  // Models are never erased, so the pointer stays valid after the
  // shared lock drops; the lock only orders the map lookup against
  // concurrent RegisterModel insertions.
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "'");
  }
  return it->second.get();
}

Result<const InferencePlan*> ServingSession::Deploy(
    const std::string& model_name, ServingMode mode,
    int64_t batch_size) {
  RELSERVE_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  InferencePlan plan;
  switch (mode) {
    case ServingMode::kAdaptive: {
      RuleBasedOptimizer optimizer(config_.memory_threshold_bytes, nullptr,
                                   config_.optimizer_tuning);
      RELSERVE_ASSIGN_OR_RETURN(plan,
                                optimizer.Optimize(*model, batch_size));
      break;
    }
    case ServingMode::kForceUdf:
      plan = MakeForcedPlan(*model, Repr::kUdf, batch_size);
      break;
    case ServingMode::kForceRelational:
      plan = MakeForcedPlan(*model, Repr::kRelational, batch_size);
      break;
  }
  // Prepare outside the registry lock, then swap atomically: queries
  // in flight keep serving the old deployment (their shared_ptr holds
  // it and its arena charge alive) and never observe a window with no
  // deployment at all. The old instance's weights leave the arena
  // when the last in-flight query drops its reference.
  RELSERVE_ASSIGN_OR_RETURN(
      PreparedModel prepared,
      PreparedModel::Prepare(model, std::move(plan), &ctx_));
  auto deployment = std::make_shared<Deployment>();
  deployment->plan = prepared.plan();
  deployment->prepared =
      std::make_unique<PreparedModel>(std::move(prepared));
  const InferencePlan* installed_plan = &deployment->plan;
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    deployments_[model_name] = std::move(deployment);
  }
  return installed_plan;
}

Status ServingSession::Undeploy(const std::string& model_name) {
  std::shared_ptr<Deployment> dropped;
  std::map<std::string, std::shared_ptr<Deployment>> dropped_aot;
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    const auto it = deployments_.find(model_name);
    const auto aot = aot_plans_.find(model_name);
    if (it == deployments_.end() && aot == aot_plans_.end()) {
      return Status::NotFound("model '" + model_name +
                              "' has no deployment");
    }
    if (it != deployments_.end()) {
      dropped = std::move(it->second);
      deployments_.erase(it);
    }
    if (aot != aot_plans_.end()) {
      dropped_aot = std::move(aot->second);
      aot_plans_.erase(aot);
    }
  }
  // `dropped` destructs outside the lock: queries that resolved their
  // deployment before the erase finish on their pinned shared_ptr;
  // anything resolving after gets a typed NotFound.
  return Status::OK();
}

Result<int> ServingSession::DeployAot(
    const std::string& model_name,
    const std::vector<int64_t>& batch_sizes) {
  RELSERVE_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  if (batch_sizes.empty()) {
    return Status::InvalidArgument("no batch sizes to compile for");
  }
  RuleBasedOptimizer optimizer(config_.memory_threshold_bytes, nullptr,
                                   config_.optimizer_tuning);
  // Compile the variants outside the registry lock; in-flight queries
  // keep serving the old generation until the swap below.
  std::map<std::string, std::shared_ptr<Deployment>> variants;
  for (const int64_t batch : batch_sizes) {
    RELSERVE_ASSIGN_OR_RETURN(InferencePlan plan,
                              optimizer.Optimize(*model, batch));
    const std::string signature = PlanSignature(plan);
    if (variants.count(signature) > 0) continue;
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel prepared,
        PreparedModel::Prepare(model, std::move(plan), &ctx_));
    auto deployment = std::make_shared<Deployment>();
    deployment->plan = prepared.plan();
    deployment->prepared =
        std::make_unique<PreparedModel>(std::move(prepared));
    variants.emplace(signature, std::move(deployment));
  }
  const int compiled = static_cast<int>(variants.size());
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    aot_plans_[model_name] = std::move(variants);
  }
  return compiled;
}

Result<std::shared_ptr<const PhysicalPlan>>
ServingSession::DeployedPhysicalPlan(const std::string& model_name) {
  RELSERVE_ASSIGN_OR_RETURN(std::shared_ptr<Deployment> deployment,
                            GetDeployment(model_name));
  return std::shared_ptr<const PhysicalPlan>(
      deployment, &deployment->prepared->physical());
}

int ServingSession::NumAotPlans(const std::string& model_name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = aot_plans_.find(model_name);
  return it == aot_plans_.end() ? 0
                                : static_cast<int>(it->second.size());
}

std::vector<ServingSession::DeployedModelInfo>
ServingSession::ListDeployedModels() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  // Name -> info, aggregating the default deployment and every AoT
  // variant (each compiled plan binds its own weight set).
  std::map<std::string, DeployedModelInfo> by_name;
  auto fold = [&by_name](const std::string& name,
                         const Deployment& deployment) {
    DeployedModelInfo& info = by_name[name];
    info.name = name;
    info.num_plans += 1;
    const WeightFootprint& fp =
        deployment.prepared->physical().weight_footprint();
    info.logical_weight_bytes += fp.logical_bytes;
    info.physical_weight_bytes += fp.physical_bytes;
    info.shared_blocks += fp.shared_blocks;
    info.total_blocks += fp.total_blocks;
  };
  for (const auto& [name, deployment] : deployments_) {
    fold(name, *deployment);
  }
  for (const auto& [name, variants] : aot_plans_) {
    for (const auto& [signature, deployment] : variants) {
      (void)signature;
      fold(name, *deployment);
    }
  }
  std::vector<DeployedModelInfo> out;
  out.reserve(by_name.size());
  for (auto& [name, info] : by_name) out.push_back(std::move(info));
  return out;
}

Result<std::shared_ptr<ServingSession::Deployment>>
ServingSession::GetDeployment(const std::string& model_name,
                              int64_t batch_size) {
  // Runtime plan selection among the AoT-compiled variants: cheap
  // re-optimization yields the signature; the matching prepared plan
  // is reused without re-chunking any weights. The whole resolution
  // runs under the shared registry lock (the optimizer pass touches
  // no registry state), and the returned shared_ptr pins the chosen
  // deployment across the caller's execution.
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto aot = aot_plans_.find(model_name);
  bool has_aot = aot != aot_plans_.end() && !aot->second.empty();
  if (batch_size >= 0 && has_aot) {
    auto model = models_.find(model_name);
    if (model != models_.end()) {
      RuleBasedOptimizer optimizer(config_.memory_threshold_bytes, nullptr,
                                   config_.optimizer_tuning);
      auto plan = optimizer.Optimize(*model->second, batch_size);
      if (plan.ok()) {
        auto variant = aot->second.find(PlanSignature(*plan));
        if (variant != aot->second.end()) return variant->second;
      }
    }
  }
  auto it = deployments_.find(model_name);
  if (it == deployments_.end()) {
    if (has_aot) {
      return Status::NotFound(
          "no AoT plan variant matches batch " +
          std::to_string(batch_size) + " for model '" + model_name +
          "' and the model has no default deployment");
    }
    return Status::NotFound("model '" + model_name +
                            "' is not deployed");
  }
  return it->second;
}

Result<ExecOutput> ServingSession::Predict(
    const std::string& model_name, const std::string& table_name,
    const std::string& feature_col) {
  return PredictAtSnapshot(model_name, table_name, feature_col,
                           PinSnapshot());
}

Result<ExecOutput> ServingSession::PredictAtSnapshot(
    const std::string& model_name, const std::string& table_name,
    const std::string& feature_col, Version snapshot) {
  RELSERVE_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  RELSERVE_ASSIGN_OR_RETURN(TableInfo* table,
                            catalog_->GetTable(table_name));
  RELSERVE_ASSIGN_OR_RETURN(int col,
                            table->schema.FieldIndex(feature_col));

  // The visible row count at the pinned snapshot is the model's batch
  // size. Rows a concurrent commit appends after this point carry
  // begin versions beyond `snapshot`, so the scans below return
  // exactly `n` rows.
  const VisibilityMap* vis = table->visibility.get();
  const int64_t n =
      vis != nullptr
          ? vis->VisibleCount(0, table->num_rows(), snapshot)
          : table->num_rows();
  if (n == 0) return Status::InvalidArgument("empty table");
  RELSERVE_ASSIGN_OR_RETURN(std::shared_ptr<Deployment> deployment,
                            GetDeployment(model_name, n));
  const int64_t width = model->sample_shape().NumElements();

  const bool stream_input =
      deployment->plan.decisions[0].repr == Repr::kRelational;

  if (table->layout == TableLayout::kColumnar) {
    // Vectorized fast path: scan only the feature column (fragment-
    // parallel), then move the chunks' flattened payloads straight
    // into the model input — no Row/Value boxing anywhere.
    ColumnarTableStages* stages = ColumnarStages(table_name);
    ColumnarScanOptions opts;
    opts.projection = {col};
    opts.pool = pool_.get();
    opts.visibility = vis;
    opts.snapshot = snapshot;
    RELSERVE_ASSIGN_OR_RETURN(ColumnarScanOutput scanned,
                              ColumnarScan(*table->columnar, opts));
    stages->scan.stats.invocations.fetch_add(1,
                                             std::memory_order_relaxed);
    stages->scan.stats.nanos.fetch_add(scanned.nanos,
                                       std::memory_order_relaxed);
    stages->scan.stats.rows.fetch_add(scanned.rows_scanned,
                                      std::memory_order_relaxed);
    stages->scan.stats.bytes.fetch_add(scanned.bytes_scanned,
                                       std::memory_order_relaxed);

    if (stream_input) {
      // Chunks feed the block relation directly; each fragment's
      // payload is already the row-major strip AppendRow expects.
      RELSERVE_ASSIGN_OR_RETURN(
          blockops::MatrixStreamWriter writer,
          blockops::MatrixStreamWriter::Create(n, width, &ctx_));
      for (const ColumnBatch& batch : scanned.batches) {
        if (batch.num_rows == 0) continue;
        const ColumnChunk& chunk = batch.columns[0];
        for (int64_t r = 0; r < chunk.length; ++r) {
          const int64_t row_width =
              chunk.vec_offsets[r + 1] - chunk.vec_offsets[r];
          if (row_width != width) {
            return Status::InvalidArgument(
                "feature width " + std::to_string(row_width) +
                " != model input width " + std::to_string(width));
          }
          RELSERVE_RETURN_NOT_OK(writer.AppendRow(
              chunk.vec_data.data() + chunk.vec_offsets[r]));
        }
      }
      RELSERVE_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> store,
                                writer.Finish());
      return HybridExecutor::RunOnStore(*deployment->prepared,
                                        std::move(store), &ctx_);
    }

    RELSERVE_ASSIGN_OR_RETURN(
        Tensor input,
        ExecuteColumnarGather(stages->gather, scanned.batches,
                              /*chunk_index=*/0, width, feature_col,
                              &working_memory_));
    std::vector<int64_t> dims = {n};
    for (int64_t d : model->sample_shape().dims()) dims.push_back(d);
    RELSERVE_ASSIGN_OR_RETURN(Tensor shaped,
                              input.Reshape(Shape(std::move(dims))));
    return HybridExecutor::Run(*deployment->prepared, shaped, &ctx_);
  }

  SeqScan scan(table->heap.get(), table->schema);
  scan.set_visibility(vis, snapshot);

  if (stream_input) {
    // The batch never exists whole: rows go straight into a block
    // relation through a one-block staging buffer.
    RELSERVE_ASSIGN_OR_RETURN(
        blockops::MatrixStreamWriter writer,
        blockops::MatrixStreamWriter::Create(n, width, &ctx_));
    RELSERVE_RETURN_NOT_OK(scan.Open());
    Row row;
    while (true) {
      RELSERVE_ASSIGN_OR_RETURN(bool has, scan.Next(&row));
      if (!has) break;
      const std::vector<float>& features =
          row.value(col).AsFloatVector();
      if (static_cast<int64_t>(features.size()) != width) {
        return Status::InvalidArgument(
            "feature width " + std::to_string(features.size()) +
            " != model input width " + std::to_string(width));
      }
      RELSERVE_RETURN_NOT_OK(writer.AppendRow(features.data()));
    }
    RELSERVE_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> store,
                              writer.Finish());
    return HybridExecutor::RunOnStore(*deployment->prepared,
                                      std::move(store), &ctx_);
  }

  // Whole-batch path: materialize [n, width] in the working arena.
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor input, Tensor::Create(Shape{n, width}, &working_memory_));
  RELSERVE_RETURN_NOT_OK(scan.Open());
  Row row;
  int64_t r = 0;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, scan.Next(&row));
    if (!has) break;
    const std::vector<float>& features =
        row.value(col).AsFloatVector();
    if (static_cast<int64_t>(features.size()) != width) {
      return Status::InvalidArgument(
          "feature width " + std::to_string(features.size()) +
          " != model input width " + std::to_string(width));
    }
    std::memcpy(input.data() + r * width, features.data(),
                width * sizeof(float));
    ++r;
  }
  // Feed in the model's sample shape.
  std::vector<int64_t> dims = {n};
  for (int64_t d : model->sample_shape().dims()) dims.push_back(d);
  RELSERVE_ASSIGN_OR_RETURN(Tensor shaped,
                            input.Reshape(Shape(std::move(dims))));
  return HybridExecutor::Run(*deployment->prepared, shaped, &ctx_);
}

Result<ExecOutput> ServingSession::PredictBatch(
    const std::string& model_name, const Tensor& input) {
  if (input.shape().ndim() < 1) {
    return Status::InvalidArgument("input must have a batch dimension");
  }
  RELSERVE_ASSIGN_OR_RETURN(
      std::shared_ptr<Deployment> deployment,
      GetDeployment(model_name, input.shape().dim(0)));
  return HybridExecutor::Run(*deployment->prepared, input, &ctx_);
}

Status ServingSession::OffloadModel(const std::string& model_name,
                                    ExternalRuntime* runtime) {
  RELSERVE_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  RELSERVE_RETURN_NOT_OK(runtime->RegisterModel(model));
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  offloaded_[model_name] = runtime;
  return Status::OK();
}

Result<Tensor> ServingSession::PredictViaRuntime(
    const std::string& model_name, const std::string& table_name,
    const std::string& feature_col) {
  ExternalRuntime* runtime = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = offloaded_.find(model_name);
    if (it == offloaded_.end()) {
      return Status::NotFound("model '" + model_name +
                              "' is not offloaded to a runtime");
    }
    runtime = it->second;
  }
  RELSERVE_ASSIGN_OR_RETURN(TableInfo* table,
                            catalog_->GetTable(table_name));
  RELSERVE_ASSIGN_OR_RETURN(int col,
                            table->schema.FieldIndex(feature_col));

  // Export: scan -> wire encoding -> copy across the system boundary.
  // MakeTableScan serves whichever layout the table uses.
  RowIteratorPtr scan = MakeTableScan(table->heap.get(),
                                      table->columnar.get(),
                                      table->schema);
  RELSERVE_ASSIGN_OR_RETURN(
      std::string encoded,
      Connector::EncodeFeatureStream(scan.get(), col));
  const std::string request =
      Connector::Transmit(encoded, config_.connector_link);
  RELSERVE_ASSIGN_OR_RETURN(std::string response,
                            runtime->Infer(model_name, request));
  // Import: copy back -> decode into database memory.
  const std::string imported =
      Connector::Transmit(response, config_.connector_link);
  return Connector::DecodeTensor(imported, &working_memory_);
}

Status ServingSession::EnableApproxCache(
    const std::string& model_name, int64_t dim,
    ApproxResultCache::Config config) {
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (models_.count(model_name) == 0) {
    return Status::NotFound("model '" + model_name + "'");
  }
  caches_[model_name] = std::make_shared<ApproxResultCache>(
      static_cast<int>(dim), config);
  return Status::OK();
}

Result<ApproxResultCache*> ServingSession::GetApproxCache(
    const std::string& model_name) {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = caches_.find(model_name);
  if (it == caches_.end()) {
    return Status::NotFound("no cache for model '" + model_name + "'");
  }
  return it->second.get();
}

Status ServingSession::EnableExactCache(const std::string& model_name) {
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (models_.count(model_name) == 0) {
    return Status::NotFound("model '" + model_name + "'");
  }
  exact_caches_[model_name] = std::make_shared<ExactResultCache>();
  return Status::OK();
}

Result<ExactResultCache*> ServingSession::GetExactCache(
    const std::string& model_name) {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = exact_caches_.find(model_name);
  if (it == exact_caches_.end()) {
    return Status::NotFound("no exact cache for model '" + model_name +
                            "'");
  }
  return it->second.get();
}

Result<Tensor> ServingSession::PredictWithCache(
    const std::string& model_name, const Tensor& input) {
  // Pin the snapshot before any lookup: entries inserted below are
  // stamped with it, so a commit that lands during this call (version
  // > snap) raises the fence above the stamp and the entry can never
  // serve a stale hit — the invalidation race is lost by construction.
  const Version snap = PinSnapshot();
  // Copy the shared_ptrs out so a concurrent Enable*Cache replacing a
  // tier cannot free it under this query; the caches themselves are
  // safe for concurrent Lookup/Insert.
  std::shared_ptr<ApproxResultCache> approx;
  std::shared_ptr<ExactResultCache> exact;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto approx_it = caches_.find(model_name);
    if (approx_it != caches_.end()) approx = approx_it->second;
    auto exact_it = exact_caches_.find(model_name);
    if (exact_it != exact_caches_.end()) exact = exact_it->second;
  }
  if (approx == nullptr && exact == nullptr) {
    return Status::NotFound("no cache enabled for model '" +
                            model_name + "'");
  }
  RELSERVE_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  if (input.shape().ndim() != 2) {
    return Status::InvalidArgument(
        "PredictWithCache expects [batch, features]");
  }
  const int64_t n = input.shape().dim(0);
  const int64_t width = input.shape().dim(1);

  std::vector<int64_t> miss_rows;
  std::vector<std::vector<float>> hits(n);
  std::vector<bool> hit_mask(n, false);
  for (int64_t r = 0; r < n; ++r) {
    std::vector<float> features(input.data() + r * width,
                                input.data() + (r + 1) * width);
    if (failpoint::AnyActive() &&
        !failpoint::InjectedStatus("cache.lookup").ok()) {
      // Graceful degradation: a failed cache tier is treated as a
      // miss and the row takes the full inference path. The cache is
      // an accelerator, never a correctness dependency — its failure
      // costs latency, not availability.
      miss_rows.push_back(r);
      continue;
    }
    // Exact tier first (free of accuracy cost), then approximate.
    std::optional<std::vector<float>> cached;
    if (exact != nullptr) cached = exact->Lookup(features);
    if (!cached.has_value() && approx != nullptr) {
      cached = approx->Lookup(features);
    }
    if (cached.has_value()) {
      hits[r] = std::move(*cached);
      hit_mask[r] = true;
    } else {
      miss_rows.push_back(r);
    }
  }

  int64_t out_width = -1;
  Tensor miss_output;
  if (!miss_rows.empty()) {
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor misses,
        Tensor::Create(
            Shape{static_cast<int64_t>(miss_rows.size()), width},
            &working_memory_));
    for (size_t i = 0; i < miss_rows.size(); ++i) {
      std::memcpy(misses.data() + i * width,
                  input.data() + miss_rows[i] * width,
                  width * sizeof(float));
    }
    std::vector<int64_t> dims = {
        static_cast<int64_t>(miss_rows.size())};
    for (int64_t d : model->sample_shape().dims()) dims.push_back(d);
    RELSERVE_ASSIGN_OR_RETURN(Tensor shaped,
                              misses.Reshape(Shape(std::move(dims))));
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              PredictBatch(model_name, shaped));
    RELSERVE_ASSIGN_OR_RETURN(miss_output, out.ToTensor(&ctx_));
    out_width = miss_output.shape().dim(1);
    // Populate every enabled tier with the fresh predictions.
    for (size_t i = 0; i < miss_rows.size(); ++i) {
      std::vector<float> features(
          input.data() + miss_rows[i] * width,
          input.data() + (miss_rows[i] + 1) * width);
      std::vector<float> prediction(
          miss_output.data() + i * out_width,
          miss_output.data() + (i + 1) * out_width);
      if (exact != nullptr) exact->Insert(features, prediction, snap);
      if (approx != nullptr) {
        RELSERVE_RETURN_NOT_OK(
            approx->Insert(features, std::move(prediction), snap));
      }
    }
  } else {
    out_width = static_cast<int64_t>(hits[0].size());
  }

  RELSERVE_ASSIGN_OR_RETURN(
      Tensor output,
      Tensor::Create(Shape{n, out_width}, &working_memory_));
  size_t miss_cursor = 0;
  for (int64_t r = 0; r < n; ++r) {
    if (hit_mask[r]) {
      std::memcpy(output.data() + r * out_width, hits[r].data(),
                  out_width * sizeof(float));
    } else {
      std::memcpy(output.data() + r * out_width,
                  miss_output.data() + miss_cursor * out_width,
                  out_width * sizeof(float));
      ++miss_cursor;
    }
  }
  return output;
}

}  // namespace relserve
