#include "cache/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace relserve {

HnswIndex::HnswIndex(int dim, Config config)
    : dim_(dim),
      config_(config),
      level_lambda_(1.0 / std::log(std::max(2, config.max_links))),
      rng_(config.seed) {
  RELSERVE_CHECK(dim >= 1);
}

float HnswIndex::DistanceSq(const float* a, const float* b) const {
  float sum = 0.0f;
  for (int i = 0; i < dim_; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

int HnswIndex::RandomLevel() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  double r = dist(rng_);
  // Avoid log(0).
  r = std::max(r, 1e-12);
  return static_cast<int>(-std::log(r) * level_lambda_);
}

std::vector<std::pair<float, int64_t>> HnswIndex::SearchLayer(
    const float* query, int64_t entry, int level, int ef) const {
  // Max-heap of current best (farthest on top) + min-heap of
  // candidates to expand (closest on top). Visited nodes are tracked
  // with a flat byte vector — far cheaper than a hash set on the
  // serving hot path.
  using Item = std::pair<float, int64_t>;
  std::priority_queue<Item> best;                      // max by dist
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  std::vector<uint8_t> visited(nodes_.size(), 0);

  const float entry_dist = DistanceSq(query, nodes_[entry].vec.data());
  best.emplace(entry_dist, entry);
  frontier.emplace(entry_dist, entry);
  visited[entry] = 1;

  while (!frontier.empty()) {
    const auto [dist, id] = frontier.top();
    frontier.pop();
    if (dist > best.top().first &&
        static_cast<int>(best.size()) >= ef) {
      break;
    }
    if (level < static_cast<int>(nodes_[id].links.size())) {
      for (const int64_t next : nodes_[id].links[level]) {
        if (visited[next]) continue;
        visited[next] = 1;
        const float next_dist =
            DistanceSq(query, nodes_[next].vec.data());
        if (static_cast<int>(best.size()) < ef ||
            next_dist < best.top().first) {
          best.emplace(next_dist, next);
          frontier.emplace(next_dist, next);
          if (static_cast<int>(best.size()) > ef) best.pop();
        }
      }
    }
  }

  std::vector<Item> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // closest first
  return out;
}

std::vector<int64_t> HnswIndex::SelectNeighbors(
    const std::vector<std::pair<float, int64_t>>& candidates, int m,
    int64_t exclude) const {
  // Malkov & Yashunin's heuristic: take a candidate only if it is
  // closer to the base point than to every already-selected neighbor.
  // This diversifies links across directions (and clusters), keeping
  // the graph navigable where plain "M closest" would trap it inside
  // one dense cluster.
  std::vector<int64_t> selected;
  selected.reserve(m);
  for (const auto& [dist, id] : candidates) {
    if (id == exclude) continue;
    if (static_cast<int>(selected.size()) >= m) break;
    bool diverse = true;
    for (const int64_t other : selected) {
      if (DistanceSq(nodes_[id].vec.data(),
                     nodes_[other].vec.data()) < dist) {
        diverse = false;
        break;
      }
    }
    if (diverse) selected.push_back(id);
  }
  // Backfill with the closest skipped candidates if diversity left
  // slots unused.
  if (static_cast<int>(selected.size()) < m) {
    for (const auto& [dist, id] : candidates) {
      if (static_cast<int>(selected.size()) >= m) break;
      if (id == exclude) continue;
      if (std::find(selected.begin(), selected.end(), id) ==
          selected.end()) {
        selected.push_back(id);
      }
    }
  }
  return selected;
}

Result<int64_t> HnswIndex::Add(const std::vector<float>& vec) {
  if (static_cast<int>(vec.size()) != dim_) {
    return Status::InvalidArgument(
        "vector of " + std::to_string(vec.size()) + " dims in index of " +
        std::to_string(dim_));
  }
  const int64_t id = static_cast<int64_t>(nodes_.size());
  const int level = RandomLevel();
  NodeData node;
  node.vec = vec;
  node.links.resize(level + 1);
  nodes_.push_back(std::move(node));

  if (entry_point_ < 0) {
    entry_point_ = id;
    max_level_ = level;
    return id;
  }

  int64_t entry = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int l = max_level_; l > level; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (l < static_cast<int>(nodes_[entry].links.size())) {
        const float cur =
            DistanceSq(vec.data(), nodes_[entry].vec.data());
        for (const int64_t next : nodes_[entry].links[l]) {
          if (DistanceSq(vec.data(), nodes_[next].vec.data()) < cur) {
            entry = next;
            improved = true;
            break;
          }
        }
      }
    }
  }

  // Connect at each level from min(level, max_level_) down to 0.
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto candidates =
        SearchLayer(vec.data(), entry, l, config_.ef_construction);
    if (!candidates.empty()) entry = candidates.front().second;
    const std::vector<int64_t> selected =
        SelectNeighbors(candidates, config_.max_links, id);
    for (const int64_t neighbor : selected) {
      nodes_[id].links[l].push_back(neighbor);
      auto& back_links = nodes_[neighbor].links[l];
      back_links.push_back(id);
      // Re-select the neighbor's links with the same diversification
      // heuristic when they overflow M.
      if (static_cast<int>(back_links.size()) > config_.max_links) {
        const float* base = nodes_[neighbor].vec.data();
        std::vector<std::pair<float, int64_t>> pool;
        pool.reserve(back_links.size());
        for (const int64_t link : back_links) {
          pool.emplace_back(DistanceSq(base, nodes_[link].vec.data()),
                            link);
        }
        std::sort(pool.begin(), pool.end());
        back_links =
            SelectNeighbors(pool, config_.max_links, neighbor);
      }
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
  return id;
}

Result<std::vector<HnswIndex::Neighbor>> HnswIndex::Search(
    const std::vector<float>& query, int k) const {
  if (static_cast<int>(query.size()) != dim_) {
    return Status::InvalidArgument("query dim mismatch");
  }
  std::vector<Neighbor> out;
  if (entry_point_ < 0 || k <= 0) return out;

  int64_t entry = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (l < static_cast<int>(nodes_[entry].links.size())) {
        const float cur =
            DistanceSq(query.data(), nodes_[entry].vec.data());
        for (const int64_t next : nodes_[entry].links[l]) {
          if (DistanceSq(query.data(), nodes_[next].vec.data()) < cur) {
            entry = next;
            improved = true;
            break;
          }
        }
      }
    }
  }
  const int ef = std::max(config_.ef_search, k);
  auto candidates = SearchLayer(query.data(), entry, 0, ef);
  const int take = std::min<int>(k, static_cast<int>(candidates.size()));
  out.reserve(take);
  for (int i = 0; i < take; ++i) {
    out.push_back(Neighbor{candidates[i].second,
                           std::sqrt(candidates[i].first)});
  }
  return out;
}

}  // namespace relserve
