// AnnIndex: the approximate-nearest-neighbor interface behind the
// inference result cache. The paper (Sec. 5(1)) lists HNSW, IVF, LSH,
// and product quantization as candidate in-RDBMS indexes; relserve
// implements HNSW (hnsw_index.h) and IVF-Flat (ivf_index.h) behind
// this interface.

#ifndef RELSERVE_CACHE_ANN_INDEX_H_
#define RELSERVE_CACHE_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace relserve {

class AnnIndex {
 public:
  struct Neighbor {
    int64_t id = -1;
    float distance = 0.0f;  // L2 (not squared)
  };

  virtual ~AnnIndex() = default;

  // Inserts a vector; ids are sequential from 0.
  virtual Result<int64_t> Add(const std::vector<float>& vec) = 0;

  // Up to k approximate nearest neighbors, closest first.
  virtual Result<std::vector<Neighbor>> Search(
      const std::vector<float>& query, int k) const = 0;

  virtual int64_t size() const = 0;
  virtual int dim() const = 0;
};

}  // namespace relserve

#endif  // RELSERVE_CACHE_ANN_INDEX_H_
