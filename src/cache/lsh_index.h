// LshIndex: Euclidean locality-sensitive hashing (E2LSH, p-stable
// scheme): h(v) = floor((a.v + b) / w) with Gaussian a and uniform b.
// Vectors land in per-table buckets; a query unions the buckets its
// hashes select across all tables and ranks the candidates by true
// distance. Third ANN option of the paper's Sec. 5(1) list.

#ifndef RELSERVE_CACHE_LSH_INDEX_H_
#define RELSERVE_CACHE_LSH_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/ann_index.h"

namespace relserve {

class LshIndex : public AnnIndex {
 public:
  struct Config {
    int num_tables = 8;       // independent hash tables (recall knob)
    int hashes_per_table = 4; // concatenated hashes (precision knob)
    // Quantization width; should be on the order of the nearest-
    // neighbor distances in the data.
    float bucket_width = 1.0f;
    uint64_t seed = 42;
  };

  explicit LshIndex(int dim) : LshIndex(dim, Config()) {}
  LshIndex(int dim, Config config);

  Result<int64_t> Add(const std::vector<float>& vec) override;
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       int k) const override;
  int64_t size() const override {
    return static_cast<int64_t>(vectors_.size());
  }
  int dim() const override { return dim_; }

 private:
  struct HashTable {
    // hashes_per_table projections, each `dim` floats, plus offsets.
    std::vector<float> projections;  // [hashes_per_table * dim]
    std::vector<float> offsets;      // [hashes_per_table]
    std::unordered_map<std::string, std::vector<int64_t>> buckets;
  };

  std::string BucketKey(const HashTable& table,
                        const float* vec) const;
  float DistanceSq(const float* a, const float* b) const;

  const int dim_;
  const Config config_;
  std::vector<HashTable> tables_;
  std::vector<std::vector<float>> vectors_;
};

}  // namespace relserve

#endif  // RELSERVE_CACHE_LSH_INDEX_H_
