// HnswIndex: Hierarchical Navigable Small World approximate
// nearest-neighbor index (Malkov & Yashunin, 2018), from scratch.
//
// The paper (Sec. 5(1), Sec. 7.2.2) uses Faiss's HNSW to index the
// features of frequent inference requests so a query can retrieve a
// cached prediction instead of running the model. This is the same
// algorithm: multi-layer skip-list-like graph, greedy descent through
// upper layers, beam (ef) search on layer 0.

#ifndef RELSERVE_CACHE_HNSW_INDEX_H_
#define RELSERVE_CACHE_HNSW_INDEX_H_

#include <cstdint>
#include <random>
#include <vector>

#include "cache/ann_index.h"
#include "common/result.h"

namespace relserve {

class HnswIndex : public AnnIndex {
 public:
  struct Config {
    int max_links = 16;         // M: links per node per layer
    int ef_construction = 100;  // beam width while building
    int ef_search = 50;         // beam width while querying
    uint64_t seed = 42;
  };

  explicit HnswIndex(int dim) : HnswIndex(dim, Config()) {}
  HnswIndex(int dim, Config config);

  // Inserts a vector (must have `dim` elements); returns its id
  // (sequential from 0).
  Result<int64_t> Add(const std::vector<float>& vec) override;

  // k approximate nearest neighbors, closest first.
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       int k) const override;

  int64_t size() const override {
    return static_cast<int64_t>(nodes_.size());
  }
  int dim() const override { return dim_; }
  const std::vector<float>& vector(int64_t id) const {
    return nodes_[id].vec;
  }

 private:
  struct NodeData {
    std::vector<float> vec;
    // links[level] = neighbor ids at that level.
    std::vector<std::vector<int64_t>> links;
  };

  float DistanceSq(const float* a, const float* b) const;
  int RandomLevel();

  // Diversifying neighbor selection (the HNSW paper's heuristic):
  // keeps the graph navigable on clustered data.
  std::vector<int64_t> SelectNeighbors(
      const std::vector<std::pair<float, int64_t>>& candidates, int m,
      int64_t exclude) const;

  // Beam search at one level from `entry`, returning up to `ef`
  // candidates as (dist_sq, id), closest first.
  std::vector<std::pair<float, int64_t>> SearchLayer(
      const float* query, int64_t entry, int level, int ef) const;

  const int dim_;
  const Config config_;
  const double level_lambda_;  // 1/ln(M)
  std::mt19937_64 rng_;
  std::vector<NodeData> nodes_;
  int64_t entry_point_ = -1;
  int max_level_ = -1;
};

}  // namespace relserve

#endif  // RELSERVE_CACHE_HNSW_INDEX_H_
