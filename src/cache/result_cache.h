// Inference result caches (paper Sec. 5(1), validated in Sec. 7.2.2).
//
// Two flavors:
//  - ExactResultCache: hash of the exact feature bytes -> prediction;
//    zero accuracy loss, only helps on exact repeats.
//  - ApproxResultCache: HNSW over request features; a query within
//    `max_distance` of a cached request reuses its prediction,
//    trading accuracy for latency.
// MonteCarloCachePolicy estimates the accuracy cost on a sample and
// decides whether the trade is within the application's SLA.

#ifndef RELSERVE_CACHE_RESULT_CACHE_H_
#define RELSERVE_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/ann_index.h"
#include "cache/hnsw_index.h"
#include "cache/ivf_index.h"
#include "cache/lsh_index.h"
#include "common/result.h"
#include "tensor/tensor.h"

namespace relserve {

struct CacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t insertions = 0;

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

class ExactResultCache {
 public:
  void Insert(const std::vector<float>& features,
              std::vector<float> prediction);

  // The cached prediction for exactly these features, if present.
  std::optional<std::vector<float>> Lookup(
      const std::vector<float>& features);

  const CacheStats& stats() const { return stats_; }
  int64_t size() const { return static_cast<int64_t>(map_.size()); }

 private:
  static std::string Key(const std::vector<float>& features);

  std::unordered_map<std::string, std::vector<float>> map_;
  CacheStats stats_;
};

class ApproxResultCache {
 public:
  enum class IndexKind { kHnsw, kIvf, kLsh };

  struct Config {
    // A lookup hits iff the nearest cached request is within this L2
    // distance.
    float max_distance = 1.0f;
    IndexKind index_kind = IndexKind::kHnsw;
    HnswIndex::Config hnsw;
    IvfIndex::Config ivf;
    LshIndex::Config lsh;
  };

  ApproxResultCache(int dim, Config config);

  // Bring-your-own index (any AnnIndex implementation).
  ApproxResultCache(Config config, std::unique_ptr<AnnIndex> index)
      : config_(config), index_(std::move(index)) {}

  Status Insert(const std::vector<float>& features,
                std::vector<float> prediction);

  std::optional<std::vector<float>> Lookup(
      const std::vector<float>& features);

  const CacheStats& stats() const { return stats_; }
  int64_t size() const { return index_->size(); }
  const AnnIndex& index() const { return *index_; }

 private:
  Config config_;
  std::unique_ptr<AnnIndex> index_;
  std::vector<std::vector<float>> predictions_;  // by index id
  CacheStats stats_;
};

// Decides whether approximate caching meets the SLA (paper Sec. 5(1):
// "estimate a probabilistic error bound using Monte Carlo sampling").
// `infer` must produce the true prediction row for a feature vector.
struct CachePolicyDecision {
  bool enable_cache = false;
  double estimated_accuracy = 0.0;  // agreement of cached vs true argmax
  int64_t sample_size = 0;
};

Result<CachePolicyDecision> MonteCarloCachePolicy(
    ApproxResultCache* cache,
    const std::vector<std::vector<float>>& sample_requests,
    const std::function<Result<std::vector<float>>(
        const std::vector<float>&)>& infer,
    double sla_min_accuracy);

}  // namespace relserve

#endif  // RELSERVE_CACHE_RESULT_CACHE_H_
