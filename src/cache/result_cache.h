// Inference result caches (paper Sec. 5(1), validated in Sec. 7.2.2).
//
// Two flavors:
//  - ExactResultCache: hash of the exact feature bytes -> prediction;
//    zero accuracy loss, only helps on exact repeats.
//  - ApproxResultCache: HNSW over request features; a query within
//    `max_distance` of a cached request reuses its prediction,
//    trading accuracy for latency.
// MonteCarloCachePolicy estimates the accuracy cost on a sample and
// decides whether the trade is within the application's SLA.

#ifndef RELSERVE_CACHE_RESULT_CACHE_H_
#define RELSERVE_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/ann_index.h"
#include "cache/hnsw_index.h"
#include "cache/ivf_index.h"
#include "cache/lsh_index.h"
#include "common/result.h"
#include "tensor/tensor.h"

namespace relserve {

// Counters are atomics because concurrent serving (the batched
// cache-miss fill racing row lookups) updates them from several
// threads; copy semantics mirror ExecStats so snapshots stay cheap.
struct CacheStats {
  std::atomic<int64_t> lookups{0};
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> insertions{0};
  // Entries rejected by the version fence: their input rows were
  // superseded by a commit after the prediction was computed.
  std::atomic<int64_t> invalidations{0};

  CacheStats() = default;
  CacheStats(const CacheStats& other) { *this = other; }
  // Relaxed snapshot: stats are read while queries update them;
  // per-counter coherence is all callers rely on.
  CacheStats& operator=(const CacheStats& other) {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    lookups.store(other.lookups.load(kRelaxed), kRelaxed);
    hits.store(other.hits.load(kRelaxed), kRelaxed);
    insertions.store(other.insertions.load(kRelaxed), kRelaxed);
    invalidations.store(other.invalidations.load(kRelaxed), kRelaxed);
    return *this;
  }

  double HitRate() const {
    const int64_t l = lookups.load();
    return l == 0 ? 0.0 : static_cast<double>(hits.load()) / l;
  }
};

// Both caches are safe under concurrent Lookup/Insert: lookups share
// a reader lock, inserts take the writer lock, and the stats counters
// are atomics updated outside any exclusive section. This is what
// lets the serving scheduler fill a batched miss while other client
// threads keep probing the same cache.
//
// Version fencing (DESIGN.md "Durability & snapshot isolation"): every
// entry is stamped with the MVCC snapshot its input rows were read at,
// and Invalidate(v) raises a fence below which entries no longer hit.
// An entry is valid iff entry.version >= fence — an entry computed at
// snapshot s is stale exactly when some commit c with s < c touched
// the serving table, and Invalidate(c) makes the fence at least c.
// Staleness is therefore impossible by construction even against a
// racing commit: an in-flight prediction stamps the snapshot it
// *pinned before reading*, so if a commit lands between its read and
// its Insert, the stamp is already below the fence and the entry never
// hits. The default Insert overload stamps the current fence (always
// valid), so single-table static workloads behave exactly as before.
class ExactResultCache {
 public:
  void Insert(const std::vector<float>& features,
              std::vector<float> prediction);
  void Insert(const std::vector<float>& features,
              std::vector<float> prediction, uint64_t version);

  // The cached prediction for exactly these features, if present and
  // not version-fenced. Fenced entries are erased on discovery.
  std::optional<std::vector<float>> Lookup(
      const std::vector<float>& features);

  // Fences out every entry computed at a snapshot below `version`.
  void Invalidate(uint64_t version);

  uint64_t fence() const {
    return fence_.load(std::memory_order_acquire);
  }

  const CacheStats& stats() const { return stats_; }
  int64_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<int64_t>(map_.size());
  }

 private:
  struct Entry {
    std::vector<float> prediction;
    uint64_t version = 0;
  };

  static std::string Key(const std::vector<float>& features);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::atomic<uint64_t> fence_{0};
  CacheStats stats_;
};

class ApproxResultCache {
 public:
  enum class IndexKind { kHnsw, kIvf, kLsh };

  struct Config {
    // A lookup hits iff the nearest cached request is within this L2
    // distance.
    float max_distance = 1.0f;
    IndexKind index_kind = IndexKind::kHnsw;
    HnswIndex::Config hnsw;
    IvfIndex::Config ivf;
    LshIndex::Config lsh;
  };

  ApproxResultCache(int dim, Config config);

  // Bring-your-own index (any AnnIndex implementation).
  ApproxResultCache(Config config, std::unique_ptr<AnnIndex> index)
      : config_(config), index_(std::move(index)) {}

  Status Insert(const std::vector<float>& features,
                std::vector<float> prediction);
  Status Insert(const std::vector<float>& features,
                std::vector<float> prediction, uint64_t version);

  std::optional<std::vector<float>> Lookup(
      const std::vector<float>& features);

  // Version fence, same contract as ExactResultCache::Invalidate.
  // Fenced entries stop hitting immediately; their ANN graph nodes
  // remain (the index has no removal) and are skipped at lookup.
  void Invalidate(uint64_t version);

  uint64_t fence() const {
    return fence_.load(std::memory_order_acquire);
  }

  const CacheStats& stats() const { return stats_; }
  int64_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return index_->size();
  }
  const AnnIndex& index() const { return *index_; }

 private:
  Config config_;
  // Guards the index graph and the predictions table together: Search
  // is read-only on the graph (shared), Add rewires links (exclusive).
  mutable std::shared_mutex mu_;
  std::unique_ptr<AnnIndex> index_;
  std::vector<std::vector<float>> predictions_;  // by index id
  std::vector<uint64_t> versions_;               // by index id
  std::atomic<uint64_t> fence_{0};
  CacheStats stats_;
};

// Decides whether approximate caching meets the SLA (paper Sec. 5(1):
// "estimate a probabilistic error bound using Monte Carlo sampling").
// `infer` must produce the true prediction row for a feature vector.
struct CachePolicyDecision {
  bool enable_cache = false;
  double estimated_accuracy = 0.0;  // agreement of cached vs true argmax
  int64_t sample_size = 0;
};

Result<CachePolicyDecision> MonteCarloCachePolicy(
    ApproxResultCache* cache,
    const std::vector<std::vector<float>>& sample_requests,
    const std::function<Result<std::vector<float>>(
        const std::vector<float>&)>& infer,
    double sla_min_accuracy);

}  // namespace relserve

#endif  // RELSERVE_CACHE_RESULT_CACHE_H_
