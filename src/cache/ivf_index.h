// IvfIndex: inverted-file (IVF-Flat) approximate nearest-neighbor
// index (Sivic & Zisserman's inverted file, as used by Faiss).
//
// Vectors are bucketed by their nearest coarse centroid (k-means over
// the first vectors seen); a query scans only the `nprobe` closest
// buckets. Before enough vectors arrive to train the centroids the
// index answers by brute force (exact), then trains lazily.

#ifndef RELSERVE_CACHE_IVF_INDEX_H_
#define RELSERVE_CACHE_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "cache/ann_index.h"

namespace relserve {

class IvfIndex : public AnnIndex {
 public:
  struct Config {
    int num_lists = 16;      // coarse centroids
    int num_probes = 2;      // lists scanned per query
    int kmeans_iterations = 8;
    // Train once this many vectors have been added.
    int train_threshold = 256;
    uint64_t seed = 42;
  };

  explicit IvfIndex(int dim) : IvfIndex(dim, Config()) {}
  IvfIndex(int dim, Config config);

  Result<int64_t> Add(const std::vector<float>& vec) override;
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       int k) const override;
  int64_t size() const override {
    return static_cast<int64_t>(vectors_.size());
  }
  int dim() const override { return dim_; }

  bool trained() const { return trained_; }

 private:
  float DistanceSq(const float* a, const float* b) const;
  void Train();
  int NearestCentroid(const float* vec) const;

  const int dim_;
  const Config config_;
  std::vector<std::vector<float>> vectors_;
  bool trained_ = false;
  std::vector<std::vector<float>> centroids_;
  std::vector<std::vector<int64_t>> lists_;  // per-centroid id lists
};

}  // namespace relserve

#endif  // RELSERVE_CACHE_IVF_INDEX_H_
