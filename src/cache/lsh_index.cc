#include "cache/lsh_index.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>

#include "common/logging.h"

namespace relserve {

LshIndex::LshIndex(int dim, Config config)
    : dim_(dim), config_(config) {
  RELSERVE_CHECK(dim >= 1);
  RELSERVE_CHECK(config.num_tables >= 1);
  RELSERVE_CHECK(config.hashes_per_table >= 1);
  RELSERVE_CHECK(config.bucket_width > 0.0f);
  std::mt19937_64 rng(config.seed);
  std::normal_distribution<float> gaussian(0.0f, 1.0f);
  std::uniform_real_distribution<float> uniform(0.0f,
                                                config.bucket_width);
  tables_.resize(config.num_tables);
  for (HashTable& table : tables_) {
    table.projections.resize(
        static_cast<size_t>(config.hashes_per_table) * dim_);
    for (float& p : table.projections) p = gaussian(rng);
    table.offsets.resize(config.hashes_per_table);
    for (float& b : table.offsets) b = uniform(rng);
  }
}

float LshIndex::DistanceSq(const float* a, const float* b) const {
  float sum = 0.0f;
  for (int i = 0; i < dim_; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

std::string LshIndex::BucketKey(const HashTable& table,
                                const float* vec) const {
  std::string key;
  key.reserve(config_.hashes_per_table * sizeof(int32_t));
  for (int h = 0; h < config_.hashes_per_table; ++h) {
    const float* a = table.projections.data() + h * dim_;
    float dot = 0.0f;
    for (int i = 0; i < dim_; ++i) dot += a[i] * vec[i];
    const int32_t slot = static_cast<int32_t>(std::floor(
        (dot + table.offsets[h]) / config_.bucket_width));
    key.append(reinterpret_cast<const char*>(&slot), sizeof(slot));
  }
  return key;
}

Result<int64_t> LshIndex::Add(const std::vector<float>& vec) {
  if (static_cast<int>(vec.size()) != dim_) {
    return Status::InvalidArgument("vector dim mismatch");
  }
  const int64_t id = static_cast<int64_t>(vectors_.size());
  vectors_.push_back(vec);
  for (HashTable& table : tables_) {
    table.buckets[BucketKey(table, vec.data())].push_back(id);
  }
  return id;
}

Result<std::vector<AnnIndex::Neighbor>> LshIndex::Search(
    const std::vector<float>& query, int k) const {
  if (static_cast<int>(query.size()) != dim_) {
    return Status::InvalidArgument("query dim mismatch");
  }
  std::vector<Neighbor> out;
  if (vectors_.empty() || k <= 0) return out;

  std::unordered_set<int64_t> seen;
  std::vector<std::pair<float, int64_t>> candidates;
  for (const HashTable& table : tables_) {
    const auto it = table.buckets.find(BucketKey(table, query.data()));
    if (it == table.buckets.end()) continue;
    for (const int64_t id : it->second) {
      if (!seen.insert(id).second) continue;
      candidates.emplace_back(
          DistanceSq(query.data(), vectors_[id].data()), id);
    }
  }
  const int take = std::min<int>(k, static_cast<int>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end());
  out.reserve(take);
  for (int i = 0; i < take; ++i) {
    out.push_back(Neighbor{candidates[i].second,
                           std::sqrt(candidates[i].first)});
  }
  return out;
}

}  // namespace relserve
