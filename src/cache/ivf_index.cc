#include "cache/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/logging.h"

namespace relserve {

IvfIndex::IvfIndex(int dim, Config config)
    : dim_(dim), config_(config) {
  RELSERVE_CHECK(dim >= 1);
  RELSERVE_CHECK(config.num_lists >= 1);
  RELSERVE_CHECK(config.num_probes >= 1);
}

float IvfIndex::DistanceSq(const float* a, const float* b) const {
  float sum = 0.0f;
  for (int i = 0; i < dim_; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

int IvfIndex::NearestCentroid(const float* vec) const {
  int best = 0;
  float best_dist = DistanceSq(vec, centroids_[0].data());
  for (size_t c = 1; c < centroids_.size(); ++c) {
    const float d = DistanceSq(vec, centroids_[c].data());
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void IvfIndex::Train() {
  const int k = std::min<int>(config_.num_lists,
                              static_cast<int>(vectors_.size()));
  // Init: k distinct random vectors as seeds.
  std::mt19937_64 rng(config_.seed);
  std::vector<int64_t> seeds(vectors_.size());
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  std::shuffle(seeds.begin(), seeds.end(), rng);
  centroids_.assign(k, std::vector<float>(dim_));
  for (int c = 0; c < k; ++c) centroids_[c] = vectors_[seeds[c]];

  std::vector<int> assignment(vectors_.size(), 0);
  for (int iter = 0; iter < config_.kmeans_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < vectors_.size(); ++i) {
      const int c = NearestCentroid(vectors_[i].data());
      if (c != assignment[i]) {
        assignment[i] = c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids.
    std::vector<std::vector<double>> sums(
        k, std::vector<double>(dim_, 0.0));
    std::vector<int64_t> counts(k, 0);
    for (size_t i = 0; i < vectors_.size(); ++i) {
      ++counts[assignment[i]];
      for (int d = 0; d < dim_; ++d) {
        sums[assignment[i]][d] += vectors_[i][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty list keeps its seed
      for (int d = 0; d < dim_; ++d) {
        centroids_[c][d] = static_cast<float>(sums[c][d] / counts[c]);
      }
    }
  }
  lists_.assign(k, {});
  for (size_t i = 0; i < vectors_.size(); ++i) {
    lists_[assignment[i]].push_back(static_cast<int64_t>(i));
  }
  trained_ = true;
}

Result<int64_t> IvfIndex::Add(const std::vector<float>& vec) {
  if (static_cast<int>(vec.size()) != dim_) {
    return Status::InvalidArgument("vector dim mismatch");
  }
  const int64_t id = static_cast<int64_t>(vectors_.size());
  vectors_.push_back(vec);
  if (trained_) {
    lists_[NearestCentroid(vec.data())].push_back(id);
  } else if (static_cast<int>(vectors_.size()) >=
             config_.train_threshold) {
    Train();
  }
  return id;
}

Result<std::vector<AnnIndex::Neighbor>> IvfIndex::Search(
    const std::vector<float>& query, int k) const {
  if (static_cast<int>(query.size()) != dim_) {
    return Status::InvalidArgument("query dim mismatch");
  }
  std::vector<Neighbor> out;
  if (vectors_.empty() || k <= 0) return out;

  std::vector<std::pair<float, int64_t>> candidates;
  if (!trained_) {
    // Exact scan until trained.
    candidates.reserve(vectors_.size());
    for (size_t i = 0; i < vectors_.size(); ++i) {
      candidates.emplace_back(DistanceSq(query.data(),
                                         vectors_[i].data()),
                              static_cast<int64_t>(i));
    }
  } else {
    // Rank centroids, scan the nprobe closest lists.
    std::vector<std::pair<float, int>> by_centroid;
    by_centroid.reserve(centroids_.size());
    for (size_t c = 0; c < centroids_.size(); ++c) {
      by_centroid.emplace_back(
          DistanceSq(query.data(), centroids_[c].data()),
          static_cast<int>(c));
    }
    const int probes = std::min<int>(config_.num_probes,
                                     static_cast<int>(by_centroid.size()));
    std::partial_sort(by_centroid.begin(),
                      by_centroid.begin() + probes, by_centroid.end());
    for (int p = 0; p < probes; ++p) {
      for (const int64_t id : lists_[by_centroid[p].second]) {
        candidates.emplace_back(
            DistanceSq(query.data(), vectors_[id].data()), id);
      }
    }
  }
  const int take = std::min<int>(k, static_cast<int>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end());
  out.reserve(take);
  for (int i = 0; i < take; ++i) {
    out.push_back(Neighbor{candidates[i].second,
                           std::sqrt(candidates[i].first)});
  }
  return out;
}

}  // namespace relserve
