#include "cache/result_cache.h"

#include <algorithm>
#include <memory>
#include <mutex>

namespace relserve {

ApproxResultCache::ApproxResultCache(int dim, Config config)
    : config_(config) {
  switch (config.index_kind) {
    case IndexKind::kHnsw:
      index_ = std::make_unique<HnswIndex>(dim, config.hnsw);
      break;
    case IndexKind::kIvf:
      index_ = std::make_unique<IvfIndex>(dim, config.ivf);
      break;
    case IndexKind::kLsh:
      index_ = std::make_unique<LshIndex>(dim, config.lsh);
      break;
  }
}

std::string ExactResultCache::Key(const std::vector<float>& features) {
  return std::string(reinterpret_cast<const char*>(features.data()),
                     features.size() * sizeof(float));
}

void ExactResultCache::Insert(const std::vector<float>& features,
                              std::vector<float> prediction) {
  Insert(features, std::move(prediction),
         fence_.load(std::memory_order_acquire));
}

void ExactResultCache::Insert(const std::vector<float>& features,
                              std::vector<float> prediction,
                              uint64_t version) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    map_[Key(features)] = Entry{std::move(prediction), version};
  }
  stats_.insertions += 1;
}

std::optional<std::vector<float>> ExactResultCache::Lookup(
    const std::vector<float>& features) {
  stats_.lookups += 1;
  const std::string key = Key(features);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    if (it->second.version >=
        fence_.load(std::memory_order_acquire)) {
      stats_.hits += 1;
      return it->second.prediction;
    }
  }
  // Fenced entry: erase it (re-checking under the writer lock — a
  // racing Insert may have refreshed it with a newer stamp).
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() &&
        it->second.version < fence_.load(std::memory_order_acquire)) {
      map_.erase(it);
      stats_.invalidations += 1;
    }
  }
  return std::nullopt;
}

void ExactResultCache::Invalidate(uint64_t version) {
  uint64_t cur = fence_.load(std::memory_order_relaxed);
  while (cur < version &&
         !fence_.compare_exchange_weak(cur, version,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

Status ApproxResultCache::Insert(const std::vector<float>& features,
                                 std::vector<float> prediction) {
  return Insert(features, std::move(prediction),
                fence_.load(std::memory_order_acquire));
}

Status ApproxResultCache::Insert(const std::vector<float>& features,
                                 std::vector<float> prediction,
                                 uint64_t version) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    RELSERVE_ASSIGN_OR_RETURN(int64_t id, index_->Add(features));
    if (id != static_cast<int64_t>(predictions_.size())) {
      return Status::Internal("cache id out of sync with index");
    }
    predictions_.push_back(std::move(prediction));
    versions_.push_back(version);
  }
  stats_.insertions += 1;
  return Status::OK();
}

std::optional<std::vector<float>> ApproxResultCache::Lookup(
    const std::vector<float>& features) {
  stats_.lookups += 1;
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto neighbors = index_->Search(features, 1);
  if (!neighbors.ok() || neighbors->empty()) return std::nullopt;
  const AnnIndex::Neighbor& nearest = neighbors->front();
  if (nearest.distance > config_.max_distance) return std::nullopt;
  if (versions_[nearest.id] < fence_.load(std::memory_order_acquire)) {
    stats_.invalidations += 1;
    return std::nullopt;
  }
  stats_.hits += 1;
  return predictions_[nearest.id];
}

void ApproxResultCache::Invalidate(uint64_t version) {
  uint64_t cur = fence_.load(std::memory_order_relaxed);
  while (cur < version &&
         !fence_.compare_exchange_weak(cur, version,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

namespace {

int64_t ArgMax(const std::vector<float>& v) {
  return static_cast<int64_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

Result<CachePolicyDecision> MonteCarloCachePolicy(
    ApproxResultCache* cache,
    const std::vector<std::vector<float>>& sample_requests,
    const std::function<Result<std::vector<float>>(
        const std::vector<float>&)>& infer,
    double sla_min_accuracy) {
  if (sample_requests.empty()) {
    return Status::InvalidArgument("empty Monte Carlo sample");
  }
  int64_t agreements = 0;
  int64_t decided = 0;
  for (const std::vector<float>& request : sample_requests) {
    RELSERVE_ASSIGN_OR_RETURN(std::vector<float> truth, infer(request));
    std::optional<std::vector<float>> cached = cache->Lookup(request);
    ++decided;
    if (!cached.has_value()) {
      // A miss falls through to real inference — no accuracy cost.
      ++agreements;
      continue;
    }
    if (ArgMax(*cached) == ArgMax(truth)) ++agreements;
  }
  CachePolicyDecision decision;
  decision.sample_size = decided;
  decision.estimated_accuracy =
      static_cast<double>(agreements) / decided;
  decision.enable_cache =
      decision.estimated_accuracy >= sla_min_accuracy;
  return decision;
}

}  // namespace relserve
