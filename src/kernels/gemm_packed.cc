#include "kernels/gemm_packed.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/aligned_alloc.h"
#include "kernels/micro_kernel.h"

namespace relserve {
namespace kernels {
namespace internal {

namespace {

// Packs A[ic .. ic+mc, pc .. pc+kc) into kMr-tall row slivers:
//   dst[(ir/kMr) * kc * kMr + p * kMr + i] = A[ic+ir+i, pc+p]
// zero-padding rows past mc so the micro-kernel always reads a full
// sliver.
void PackA(const float* a, int64_t lda, bool trans_a, int64_t ic,
           int64_t pc, int64_t mc, int64_t kc, float* dst) {
  for (int64_t ir = 0; ir < mc; ir += kMr) {
    const int64_t m_r = std::min(kMr, mc - ir);
    float* sliver = dst + (ir / kMr) * kc * kMr;
    if (!trans_a) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* col = a + (ic + ir) * lda + pc + p;
        float* out = sliver + p * kMr;
        for (int64_t i = 0; i < m_r; ++i) out[i] = col[i * lda];
        for (int64_t i = m_r; i < kMr; ++i) out[i] = 0.0f;
      }
    } else {
      // Logical A[i, p] lives at a[p * lda + i]: a sliver column is
      // contiguous in memory.
      for (int64_t p = 0; p < kc; ++p) {
        const float* row = a + (pc + p) * lda + ic + ir;
        float* out = sliver + p * kMr;
        for (int64_t i = 0; i < m_r; ++i) out[i] = row[i];
        for (int64_t i = m_r; i < kMr; ++i) out[i] = 0.0f;
      }
    }
  }
}

// Packs B[pc .. pc+kc, jc .. jc+nc) into kNr-wide column slivers:
//   dst[(jr/kNr) * kc * kNr + p * kNr + j] = B[pc+p, jc+jr+j]
// zero-padding columns past nc.
void PackB(const float* b, int64_t ldb, bool trans_b, int64_t pc,
           int64_t jc, int64_t kc, int64_t nc, float* dst) {
  for (int64_t jr = 0; jr < nc; jr += kNr) {
    const int64_t n_r = std::min(kNr, nc - jr);
    float* sliver = dst + (jr / kNr) * kc * kNr;
    if (!trans_b) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* row = b + (pc + p) * ldb + jc + jr;
        float* out = sliver + p * kNr;
        for (int64_t j = 0; j < n_r; ++j) out[j] = row[j];
        for (int64_t j = n_r; j < kNr; ++j) out[j] = 0.0f;
      }
    } else {
      // Logical B[p, j] lives at b[j * ldb + p].
      for (int64_t p = 0; p < kc; ++p) {
        const float* col = b + (jc + jr) * ldb + pc + p;
        float* out = sliver + p * kNr;
        for (int64_t j = 0; j < n_r; ++j) out[j] = col[j * ldb];
        for (int64_t j = n_r; j < kNr; ++j) out[j] = 0.0f;
      }
    }
  }
}

inline int64_t RoundUp(int64_t v, int64_t to) {
  return (v + to - 1) / to * to;
}

}  // namespace

Status GemmPacked(int64_t m, int64_t n, int64_t k, const float* a,
                  int64_t lda, bool trans_a, const float* b, int64_t ldb,
                  bool trans_b, float* c, int64_t ldc, bool accumulate,
                  ThreadPool* pool) {
  if (m <= 0 || n <= 0) return Status::OK();
  if (k <= 0) {
    // An empty contraction still defines the output.
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, n * sizeof(float));
      }
    }
    return Status::OK();
  }
  const KernelBackend* backend = GetKernelBackend(ActiveSimdLevel());

  // One shared B panel, packed by the calling thread per (jc, pc) and
  // read-only during the parallel macro-tile sweep.
  AlignedBuffer b_packed(RoundUp(std::min(n, kNc), kNr) *
                         std::min(k, kKc));
  if (!b_packed.ok()) {
    return Status::OutOfMemory("GEMM B packing panel");
  }

  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      // The first kc block either overwrites C or continues the
      // caller's accumulation; later blocks always accumulate the
      // partials already stored in C.
      const bool acc_block = accumulate || pc > 0;
      PackB(b, ldb, trans_b, pc, jc, kc, nc, b_packed.data());

      const int64_t num_tiles = (m + kMc - 1) / kMc;
      std::atomic<bool> panel_oom{false};
      auto run_tiles = [&](int64_t t_lo, int64_t t_hi) {
        // Each worker owns one A panel (kMc x kc floats, ~72 KiB).
        AlignedBuffer a_packed(kMc * kc);
        if (!a_packed.ok()) {
          panel_oom.store(true, std::memory_order_relaxed);
          return;
        }
        for (int64_t t = t_lo; t < t_hi; ++t) {
          const int64_t ic = t * kMc;
          const int64_t mc = std::min(kMc, m - ic);
          PackA(a, lda, trans_a, ic, pc, mc, kc, a_packed.data());
          for (int64_t jr = 0; jr < nc; jr += kNr) {
            const int64_t n_r = std::min(kNr, nc - jr);
            const float* b_sliver =
                b_packed.data() + (jr / kNr) * kc * kNr;
            for (int64_t ir = 0; ir < mc; ir += kMr) {
              const int64_t m_r = std::min(kMr, mc - ir);
              const float* a_sliver =
                  a_packed.data() + (ir / kMr) * kc * kMr;
              float* c_tile = c + (ic + ir) * ldc + jc + jr;
              if (m_r == kMr && n_r == kNr) {
                backend->gemm_tile(kc, a_sliver, b_sliver, c_tile, ldc,
                                   acc_block);
              } else {
                backend->gemm_tile_edge(kc, a_sliver, b_sliver, c_tile,
                                        ldc, acc_block, m_r, n_r);
              }
            }
          }
        }
      };
      if (pool != nullptr && num_tiles >= 2) {
        // work_hint = flops in one macro-tile, so the pool's
        // cost-based grain always gives tiles their own morsels
        // (a tile is ~10^7 flops) while single-tile products run
        // inline above.
        pool->ParallelFor(0, num_tiles, run_tiles, /*grain=*/0,
                          /*work_hint=*/2 * kMc * kc * nc);
      } else {
        run_tiles(0, num_tiles);
      }
      if (panel_oom.load(std::memory_order_relaxed)) {
        return Status::OutOfMemory("GEMM A packing panel");
      }
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace kernels
}  // namespace relserve
