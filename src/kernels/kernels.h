// Dense linear-algebra kernels shared by every execution architecture.
//
// The UDF-centric executor calls these on whole tensors; the
// relation-centric executor calls them on individual tensor blocks; the
// simulated external DL runtime calls them inside its own arena. Using
// one kernel set everywhere means latency differences between
// architectures come only from data movement, blocking overheads, and
// memory management — the effects the paper's evaluation isolates.
//
// "Into" variants write into a caller-allocated output; allocating
// variants charge a MemoryTracker and can therefore fail with
// OutOfMemory.
//
// Every matrix product lowers to the cache-blocked, panel-packed
// micro-kernel layer (gemm_packed.h / micro_kernel.h), which selects
// an AVX2+FMA or portable-scalar register tile at runtime via
// cpu_features.h; the elementwise strips dispatch on the same level.
// The dense inner loops deliberately do NOT skip zero multiplicands —
// a data-dependent branch per k-step costs more on dense weights than
// the multiplies it saves. Sparsity exploitation belongs in an
// explicit sparse entry point over deduplicated block relations, not
// hidden inside the dense path.

#ifndef RELSERVE_KERNELS_KERNELS_H_
#define RELSERVE_KERNELS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "resource/thread_pool.h"
#include "tensor/tensor.h"

namespace relserve {
namespace kernels {

// out[m,n] = a[m,k] * b[k,n]   (transpose_b=false, b is [k,n])
// out[m,n] = a[m,k] * b[n,k]^T (transpose_b=true,  b is [n,k])
// If `accumulate` is true, adds into `out` instead of overwriting.
// `pool` may be null (serial execution).
Status GemmInto(const Tensor& a, const Tensor& b, bool transpose_b,
                bool accumulate, Tensor* out, ThreadPool* pool = nullptr);

// Allocating matmul; `out = a * b(^T)`.
Result<Tensor> MatMul(const Tensor& a, const Tensor& b, bool transpose_b,
                      MemoryTracker* tracker = nullptr,
                      ThreadPool* pool = nullptr);

// out[m, k] = a[n, m]^T * b[n, k] — the weight-gradient contraction of
// backpropagation (dW = dZ^T * A). If `accumulate`, adds into `out`.
// `pool` may be null (serial execution).
Status GemmTransAInto(const Tensor& a, const Tensor& b, bool accumulate,
                      Tensor* out, ThreadPool* pool = nullptr);

// Column sums of a matrix into a rank-1 tensor (bias gradients).
Status ColumnSumInto(const Tensor& x, Tensor* out);

// Elementwise max(x, 0) in place.
void ReluInPlace(Tensor* x);

// x[r, c] += bias[c] for every row r. `bias` must be rank-1 with
// bias.dim(0) == x.dim(last).
Status BiasAddInPlace(Tensor* x, const Tensor& bias);

// Row-wise numerically-stable softmax over the last dimension of a
// matrix.
Status SoftmaxRowsInPlace(Tensor* x);

// a += b, elementwise; shapes must match.
Status AddInPlace(Tensor* a, const Tensor& b);

// Per-row argmax of a matrix — the class decision of a classifier head.
std::vector<int64_t> ArgMaxRows(const Tensor& x);

// Lowers one [h, w, c] image to the im2col matrix
// [out_h*out_w, kh*kw*c] for valid convolution with the given stride —
// the "spatial rewriting" of the paper's Sec. 7.1 (there with 1x1
// kernels, where the matrix is [h*w, c]).
Result<Tensor> Im2Col(const Tensor& image, int64_t kernel_h,
                      int64_t kernel_w, int64_t stride,
                      MemoryTracker* tracker = nullptr);

// Writes rows [row_lo, row_hi) of the im2col matrix into `out`
// (shape [row_hi-row_lo, kh*kw*c]). Lets the relation-centric executor
// materialize the im2col relation one block at a time instead of all
// out_h*out_w rows at once.
Status Im2ColRowsInto(const Tensor& image, int64_t kernel_h,
                      int64_t kernel_w, int64_t stride, int64_t row_lo,
                      int64_t row_hi, Tensor* out);

// Valid 2-D convolution of a batch.
//   input:  [n, h, w, in_c]
//   kernel: [out_c, kh, kw, in_c]
//   output: [n, out_h, out_w, out_c]
// Implemented as im2col followed by GEMM against the flattened kernel.
Result<Tensor> Conv2D(const Tensor& input, const Tensor& kernel,
                      int64_t stride, MemoryTracker* tracker = nullptr,
                      ThreadPool* pool = nullptr);

// 2x2 max-pooling with stride 2 over [n, h, w, c].
Result<Tensor> MaxPool2x2(const Tensor& input,
                          MemoryTracker* tracker = nullptr);

}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_KERNELS_H_
