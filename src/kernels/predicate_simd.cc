// Scalar predicate strips — the always-correct reference the AVX2
// backend must match bit-for-bit. These are the exact loops the
// vectorized evaluator used before the SIMD backends existed.

#include "kernels/predicate_simd.h"

#include <cmath>

namespace relserve {
namespace kernels {
namespace {

int64_t ScalarLtF64(const double* a, const double* b,
                    const int32_t* sel, int64_t n, int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[m] = sel[i];
    m += a[i] < b[i];
  }
  return m;
}

int64_t ScalarLeF64(const double* a, const double* b,
                    const int32_t* sel, int64_t n, int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[m] = sel[i];
    m += a[i] <= b[i];
  }
  return m;
}

int64_t ScalarEqF64(const double* a, const double* b,
                    const int32_t* sel, int64_t n, int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[m] = sel[i];
    m += a[i] == b[i];
  }
  return m;
}

int64_t ScalarAbsDiffLeF64(const double* a, const double* b, double eps,
                           const int32_t* sel, int64_t n, int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[m] = sel[i];
    m += std::fabs(a[i] - b[i]) <= eps;
  }
  return m;
}

int64_t ScalarEqI64(const int64_t* a, const int64_t* b,
                    const int32_t* sel, int64_t n, int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[m] = sel[i];
    m += a[i] == b[i];
  }
  return m;
}

int64_t ScalarNonzeroF64(const double* v, const int32_t* sel, int64_t n,
                         int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[m] = sel[i];
    m += v[i] != 0.0;
  }
  return m;
}

constexpr PredicateKernels kScalarPredicateKernels = {
    SimdLevel::kScalar, ScalarLtF64,      ScalarLeF64, ScalarEqF64,
    ScalarAbsDiffLeF64, ScalarEqI64,      ScalarNonzeroF64,
};

}  // namespace

const PredicateKernels* GetScalarPredicateKernels() {
  return &kScalarPredicateKernels;
}

}  // namespace kernels
}  // namespace relserve
